#!/usr/bin/env bash
# Tier-1 verification: what every PR must keep green.
#
#   fmt check -> build (release) -> workspace tests -> fault-feature
#   tests -> clippy (-D warnings)
#
# Every step is mandatory. The formatter and clippy gates run the
# pinned workspace toolchain, so lint results are reproducible.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0
step() {
    echo
    echo "==> $*"
    if ! "$@"; then
        echo "FAILED: $*" >&2
        fail=1
    fi
}

step cargo fmt --check
step cargo build --release
step cargo test -q --workspace
# the fault-injection layer is feature-gated off by default; test it too
step cargo test -q --features fault -p pimvo-pim -p pimvo-core
step cargo clippy --all-targets --all-features -- -D warnings

if [ "$fail" -ne 0 ]; then
    echo
    echo "tier-1: FAILED" >&2
    exit 1
fi
echo
echo "tier-1: OK"
