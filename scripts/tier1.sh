#!/usr/bin/env bash
# Tier-1 verification: what every PR must keep green.
#
#   fmt check -> build (release) -> workspace tests -> fault-feature
#   tests -> clippy (-D warnings) -> rustdoc (-D warnings) -> IR golden
#   snapshots
#
# Every step is mandatory. The formatter and clippy gates run the
# pinned workspace toolchain, so lint results are reproducible.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0
step() {
    echo
    echo "==> $*"
    if ! "$@"; then
        echo "FAILED: $*" >&2
        fail=1
    fi
}

step cargo fmt --check
step cargo build --release
step cargo test -q --workspace
# the fault-injection layer is feature-gated off by default; test it
# too, including the fleet fault-containment proptests in pimvo-serve
step cargo test -q --features fault -p pimvo-pim -p pimvo-core
step cargo test -q --features fault -p pimvo-serve
# feature-gate matrix: the deprecated hand-scheduled kernel wrappers
# must still build and pass their equivalence tests when re-enabled
step cargo test -q -p pimvo-kernels --features legacy-kernels
step cargo clippy --all-targets --all-features -- -D warnings
# rustdoc, warnings as errors (vendored dep stubs excluded: their docs
# mirror the upstream crates, not this project)
step env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace \
    --exclude proptest --exclude criterion

# golden IR snapshots: regenerate the kernel/pose program listings and
# fail if they drift from the committed out/ir_*.txt, so any change to
# the IR builders or the lowering pass shows up as a reviewable diff
step cargo run -q --release --example dump_ir
step git diff --exit-code -- 'out/ir_*.txt'

# lowering determinism: two cold dump_ir runs (separate processes,
# fresh lowered-program caches, --report included so the per-pass
# statistics are covered too) must be byte-identical
det_a="$(mktemp -d)"; det_b="$(mktemp -d)"
step cargo run -q --release --example dump_ir -- "$det_a" --report
step cargo run -q --release --example dump_ir -- "$det_b" --report
step diff -r "$det_a" "$det_b"

# bounded chaos smoke: kill-and-restore, snapshot corruption, budget
# squeezes and quarantine storms must hold every invariant (exit 0)
chaos_out="$(mktemp -d)"
step cargo run -q --release -p pimvo-bench --bin chaos_soak -- \
    --frames 30 --seed 1 --out "$chaos_out"
# checkpoint round trip through the example: snapshot a run, resume it
# (interval chosen so the last snapshot leaves frames to replay)
step cargo run -q --release --example track_sequence -- \
    xyz pim 20 "$chaos_out" 1 --checkpoint-every 8
step cargo run -q --release --example track_sequence -- \
    xyz pim 20 "$chaos_out" 1 --resume "$chaos_out/track_sequence.ckpt"
# dma-overlap smoke: the modeled host<->array channels must be fully
# deterministic — two identical runs, byte-identical op traces
step cargo run -q --release --example track_sequence -- \
    xyz pim 12 --dma-overlap --trace-bin "$chaos_out/dma_a.bin"
step cargo run -q --release --example track_sequence -- \
    xyz pim 12 --dma-overlap --trace-bin "$chaos_out/dma_b.bin"
step cmp "$chaos_out/dma_a.bin" "$chaos_out/dma_b.bin"
# fleet-soak smoke: 4 sessions x 2 arrays, ~50 frames through the
# pimvo-serve scheduler (admission control, EDF, shed ladder) must
# complete and emit a report
step cargo run -q --release -p pimvo-bench --bin fleet_soak -- \
    --sessions 4 --arrays 2 --frames 13 --out "$chaos_out"
# fleet-chaos smoke: defect storm + breaker trip + scrub recovery +
# kill-and-recover must hold every invariant, and the report must be
# byte-identical across two runs of the same seed
fc_a="$chaos_out/fc_a"; fc_b="$chaos_out/fc_b"
step cargo run -q --release -p pimvo-bench --bin fleet_chaos -- \
    --frames 16 --sessions 2 --arrays 3 --out "$fc_a"
step cargo run -q --release -p pimvo-bench --bin fleet_chaos -- \
    --frames 16 --sessions 2 --arrays 3 --out "$fc_b"
step cmp "$fc_a/BENCH_fleet_chaos.json" "$fc_b/BENCH_fleet_chaos.json"
# op-trace smoke: record -> decode -> profile twice; the binary trace,
# the rendered attribution table and BENCH_profile.json must be
# byte-identical across runs, and the table must match the committed
# golden out/profile_fig9a.txt
tp_a="$chaos_out/tp_a"; tp_b="$chaos_out/tp_b"
step cargo run -q --release -p pimvo-bench --bin trace_profile -- --out "$tp_a"
step cargo run -q --release -p pimvo-bench --bin trace_profile -- --out "$tp_b"
step cmp "$tp_a/trace_fig9a.bin" "$tp_b/trace_fig9a.bin"
step cmp "$tp_a/BENCH_profile.json" "$tp_b/BENCH_profile.json"
step cmp "$tp_a/profile_fig9a.txt" out/profile_fig9a.txt
rm -rf "$chaos_out"

# bench regression gate: the headline cycle counts must match the
# committed BENCH_*.json snapshots within tolerance
step scripts/bench_check.sh

if [ "$fail" -ne 0 ]; then
    echo
    echo "tier-1: FAILED" >&2
    exit 1
fi
echo
echo "tier-1: OK"
