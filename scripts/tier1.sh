#!/usr/bin/env bash
# Tier-1 verification: what every PR must keep green.
#
#   build (release) -> workspace tests -> fault-feature tests -> clippy
#
# Clippy is advisory (soft-fail): a lint regression prints a warning but
# does not fail the gate, so toolchain lint churn cannot block a merge.
# Everything before it is mandatory.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0
step() {
    echo
    echo "==> $*"
    if ! "$@"; then
        echo "FAILED: $*" >&2
        fail=1
    fi
}

step cargo build --release
step cargo test -q --workspace
# the fault-injection layer is feature-gated off by default; test it too
step cargo test -q --features fault -p pimvo-pim -p pimvo-core

echo
echo "==> cargo clippy --all-targets -- -D warnings (advisory)"
if ! cargo clippy --all-targets -- -D warnings; then
    echo "WARNING: clippy reported lints (advisory, not failing tier-1)" >&2
fi

if [ "$fail" -ne 0 ]; then
    echo
    echo "tier-1: FAILED" >&2
    exit 1
fi
echo
echo "tier-1: OK"
