#!/usr/bin/env bash
# Regenerates the machine-readable benchmark snapshots (BENCH_*.json)
# at the repo root. Runs a reduced frame count so the cycle-accurate
# simulation stays affordable; pass a frame count to override.
#
#   scripts/bench_snapshot.sh [frames]
#
# exp_all writes one BENCH_<experiment>.json per experiment plus
# BENCH_summary.json; the fault build adds BENCH_fault_sweep.json.
set -euo pipefail
cd "$(dirname "$0")/.."

FRAMES="${1:-30}"

cargo run --release -p pimvo-bench --bin exp_all -- "$FRAMES" --out .
cargo run --release -p pimvo-bench --features fault --bin fault_sweep -- 10
# fleet-soak sweep: {1,4,16} sessions x {2,4,8} arrays through the
# pimvo-serve scheduler -> BENCH_fleet.json
cargo run --release -p pimvo-bench --bin fleet_soak -- --out .
# self-healing fleet soak: defect storm -> scrub/remap recovery ->
# kill + manifest replay -> BENCH_fleet_chaos.json
cargo run --release -p pimvo-bench --bin fleet_chaos -- --out .
# op-trace critical-path profile: refreshes the committed golden
# out/profile_fig9a.txt plus out/BENCH_profile.json
cargo run --release -p pimvo-bench --bin trace_profile -- --out out >/dev/null

echo
echo "bench snapshot written:"
ls -1 BENCH_*.json out/BENCH_profile.json
