#!/usr/bin/env bash
# Bench regression gate: regenerates the headline benchmark snapshots
# into a temp directory and compares their cycle-count metrics against
# the committed BENCH_*.json at the repo root.
#
#   scripts/bench_check.sh [frames] [tolerance]
#
# `frames` must match what scripts/bench_snapshot.sh used for the
# committed snapshots (default 30). Cycle counts are fully
# deterministic, so the relative tolerance (default 1 %) exists only to
# absorb intentional small cost-model adjustments; wall-clock seconds
# and derived float ratios are not compared.
set -euo pipefail
cd "$(dirname "$0")/.."

FRAMES="${1:-30}"
TOL="${2:-0.01}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "bench_check: regenerating snapshots (${FRAMES} frames) ..."
cargo run -q --release -p pimvo-bench --bin exp_all -- "$FRAMES" --out "$tmp" \
    >/dev/null 2>&1

fail=0
check_file() { # $1 = committed snapshot, $2 = fresh snapshot
    local committed="$1" fresh="$2"
    if [ ! -f "$committed" ]; then
        echo "bench_check: missing committed snapshot $committed" >&2
        return 1
    fi
    if [ ! -f "$fresh" ]; then
        echo "bench_check: $(basename "$fresh") was not regenerated" >&2
        return 1
    fi
    awk -v tol="$TOL" -v name="$(basename "$committed")" '
        FNR == 1 { file++ }
        # pretty-printed "key": number lines inside "metrics"
        $1 ~ /^"[a-z0-9_]+":$/ && $2 ~ /^-?[0-9.eE+-]+,?$/ {
            key = $1; gsub(/[":]/, "", key)
            v = $2; gsub(/,/, "", v)
            if (file == 1) a[key] = v; else b[key] = v
        }
        END {
            bad = 0
            for (k in a) {
                # gate deterministic counts only: cycle totals plus the
                # structural counters of the summary report
                if (!(k ~ /_cycles$/ || k == "experiments" || k == "frames" \
                      || k == "features"))
                    continue
                if (!(k in b)) {
                    printf "%s: metric %s missing from fresh run\n", name, k
                    bad = 1; continue
                }
                d = b[k] - a[k]
                if (d < 0) d = -d
                ref = a[k] < 0 ? -a[k] : a[k]
                rel = ref > 0 ? d / ref : d
                if (rel > tol) {
                    printf "%s: %s drifted: committed %s, fresh %s (rel %.4f > %.4f)\n", \
                        name, k, a[k], b[k], rel, tol
                    bad = 1
                }
            }
            exit bad
        }' "$committed" "$fresh"
}

for snap in BENCH_fig9a.json BENCH_lowering.json BENCH_overlap.json BENCH_summary.json; do
    if check_file "$snap" "$tmp/$snap"; then
        echo "bench_check: $snap within tolerance"
    else
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "bench_check: FAILED (regenerate with scripts/bench_snapshot.sh if the drift is intentional)" >&2
    exit 1
fi
echo "bench_check: OK"
