//! End-to-end integration: generated RGB-D sequences → EBVO tracking on
//! both backends → trajectory evaluation. Spans every crate in the
//! workspace.

use pimvo::core::{BackendKind, Tracker, TrackerConfig};
use pimvo::scene::{ate_rmse, rpe_rmse, Sequence, SequenceKind, Trajectory};

fn track(seq: &Sequence, backend: BackendKind) -> (Trajectory, usize) {
    let mut tracker = Tracker::new(TrackerConfig::default(), backend);
    let mut est = Trajectory::new();
    let mut keyframes = 0;
    for f in &seq.frames {
        let r = tracker.process_frame(&f.gray, &f.depth);
        est.push(f.time, r.pose_wc);
        keyframes += r.is_keyframe as usize;
    }
    (est, keyframes)
}

#[test]
fn tracks_textured_sequence_with_low_drift() {
    let seq = Sequence::generate(SequenceKind::Xyz, 12);
    let (est, keyframes) = track(&seq, BackendKind::Float);
    let rpe = rpe_rmse(&est, &seq.ground_truth, 1.0);
    assert!(keyframes >= 1);
    // ~1.5 cm/s drift budget on the rich-texture profile (the paper's
    // regime is 0.02-0.04 m/s on real TUM data)
    assert!(
        rpe.trans_mps < 0.03,
        "translational drift {}",
        rpe.trans_mps
    );
    assert!(rpe.rot_dps < 1.0, "rotational drift {}", rpe.rot_dps);
}

#[test]
fn pim_backend_tracks_on_par_with_baseline() {
    // Table 1's headline: the quantized PIM pipeline matches the float
    // baseline's accuracy
    let seq = Sequence::generate(SequenceKind::Desk, 12);
    let (est_f, _) = track(&seq, BackendKind::Float);
    let (est_p, _) = track(&seq, BackendKind::Pim);
    let rpe_f = rpe_rmse(&est_f, &seq.ground_truth, 1.0);
    let rpe_p = rpe_rmse(&est_p, &seq.ground_truth, 1.0);
    assert!(
        rpe_p.trans_mps < 2.5 * rpe_f.trans_mps + 0.01,
        "PIM {} vs float {}",
        rpe_p.trans_mps,
        rpe_f.trans_mps
    );
    let ate_p = ate_rmse(&est_p, &seq.ground_truth);
    assert!(ate_p < 0.05, "PIM ATE {ate_p}");
}

#[test]
fn texture_poor_structural_sequence_still_tracks() {
    // Fig. 8's point: EBVO is robust under feature-poor scenes because
    // it aligns structural edges
    let seq = Sequence::generate(SequenceKind::StrNtexFar, 12);
    let (est, _) = track(&seq, BackendKind::Pim);
    let rpe = rpe_rmse(&est, &seq.ground_truth, 1.0);
    assert!(rpe.trans_mps < 0.10, "drift {}", rpe.trans_mps);
}

#[test]
fn pim_costs_accumulate_across_frames() {
    let seq = Sequence::generate(SequenceKind::Desk, 4);
    let mut tracker = Tracker::new(TrackerConfig::default(), BackendKind::Pim);
    for f in &seq.frames {
        let _ = tracker.process_frame(&f.gray, &f.depth);
    }
    let stats = tracker.stats();
    assert_eq!(stats.frames, 4);
    assert!(stats.edge_cycles > 3 * 12_000, "edge {}", stats.edge_cycles);
    assert!(stats.lm_cycles > 100_000, "lm {}", stats.lm_cycles);
    assert!(stats.energy_mj > 0.0);
    let pim = stats.pim.expect("pim stats");
    assert!(pim.sram_reads > 0 && pim.sram_writes > 0 && pim.tmp_accesses > 0);
}

#[test]
fn trajectory_export_round_trips() {
    let seq = Sequence::generate(SequenceKind::Xyz, 6);
    let (est, _) = track(&seq, BackendKind::Float);
    let text = pimvo::scene::format_tum(&est);
    let parsed = pimvo::scene::parse_tum(&text).expect("parse own output");
    assert_eq!(parsed.len(), est.len());
}

#[test]
fn pyramid_enlarges_the_convergence_basin() {
    // a 0.1 m lateral jump (~13 px at 2-3 m depth) overwhelms the
    // single-level DT basin but tracks cleanly coarse-to-fine
    use pimvo::scene::{build_scene, RenderOptions};
    use pimvo::vomath::{Pinhole, SE3};

    let scene = build_scene(SequenceKind::Xyz);
    let cam = Pinhole::qvga();
    let opts = RenderOptions::default();
    let (g0, d0) = scene.render(&cam, &SE3::IDENTITY, &opts, 0);
    let jump = SE3::exp(&[0.1, 0.0, 0.0, 0.0, 0.0, 0.0]);
    let (g1, d1) = scene.render(&cam, &jump, &opts, 1);

    let run = |levels: usize| -> f64 {
        let config = TrackerConfig {
            pyramid_levels: levels,
            ..TrackerConfig::default()
        };
        let mut t = Tracker::new(config, BackendKind::Float);
        t.process_frame(&g0, &d0);
        let r = t.process_frame(&g1, &d1);
        (r.pose_wc.translation.x - 0.1).abs()
    };
    let err_single = run(1);
    let err_pyramid = run(3);
    assert!(
        err_pyramid < 0.02,
        "3-level pyramid should track the jump: err {err_pyramid}"
    );
    assert!(
        err_pyramid < err_single / 3.0,
        "pyramid {err_pyramid} vs single-level {err_single}"
    );
}

#[test]
fn pyramid_matches_single_level_on_easy_motion() {
    // with gentle motion the pyramid must not hurt
    let seq = Sequence::generate(SequenceKind::Desk, 8);
    let config = TrackerConfig {
        pyramid_levels: 2,
        ..TrackerConfig::default()
    };
    let mut t = Tracker::new(config, BackendKind::Pim);
    let mut est = Trajectory::new();
    for f in &seq.frames {
        let r = t.process_frame(&f.gray, &f.depth);
        est.push(f.time, r.pose_wc);
    }
    let rpe = rpe_rmse(&est, &seq.ground_truth, 1.0);
    assert!(rpe.trans_mps < 0.08, "pyramid drift {}", rpe.trans_mps);
}

#[test]
fn gyro_warm_start_survives_whip_pan() {
    // ~15 px/frame of pure rotation loses vision-only tracking but is
    // trivial with an inertial rotation prediction (the paper's VIO
    // future-work direction)
    use pimvo::scene::{build_scene, RenderOptions};
    use pimvo::vomath::{Pinhole, Vec3, SE3, SO3};

    let scene = build_scene(SequenceKind::Xyz);
    let cam = Pinhole::qvga();
    let opts = RenderOptions::default();
    let n = 10usize;
    let poses: Vec<SE3> = (0..n)
        .map(|i| {
            SE3::new(
                SO3::exp(Vec3::new(0.0, 0.055 * i as f64, 0.0)),
                Vec3::new(0.002 * i as f64, 0.0, 0.0),
            )
        })
        .collect();
    let frames: Vec<_> = poses
        .iter()
        .enumerate()
        .map(|(i, p)| scene.render(&cam, p, &opts, i as u32))
        .collect();

    let run = |use_gyro: bool| -> f64 {
        let mut t = Tracker::new(TrackerConfig::default(), BackendKind::Float);
        let mut worst: f64 = 0.0;
        for i in 0..n {
            let delta = (use_gyro && i > 0)
                .then(|| poses[i - 1].rotation.inverse().compose(&poses[i].rotation));
            let r = t.process_frame_with_gyro(&frames[i].0, &frames[i].1, delta);
            worst = worst.max(r.pose_wc.compose(&poses[i].inverse()).rotation_angle());
        }
        worst
    };
    let err_vo = run(false);
    let err_vio = run(true);
    assert!(err_vio < 0.02, "gyro-aided error {err_vio} rad");
    assert!(err_vio < err_vo / 10.0, "vio {err_vio} vs vo {err_vo}");
}

#[test]
fn semi_dense_map_reconstructs_scene_depths() {
    // the desk scene's structure lies between ~1.3 m (clutter) and
    // 3.2 m (back wall) from the camera path around the origin; the
    // reconstructed map must land in that envelope
    let seq = Sequence::generate(SequenceKind::Desk, 10);
    let config = TrackerConfig {
        build_map: true,
        ..TrackerConfig::default()
    };
    let mut t = Tracker::new(config, BackendKind::Float);
    for f in &seq.frames {
        let _ = t.process_frame(&f.gray, &f.depth);
    }
    let map = t.map().expect("map building enabled");
    assert!(map.len() > 500, "map points {}", map.len());
    let in_envelope = map
        .points()
        .iter()
        .filter(|p| p.z > 0.5 && p.z < 4.0 && p.x.abs() < 3.0)
        .count();
    assert!(
        in_envelope as f64 / map.len() as f64 > 0.95,
        "{in_envelope}/{} in envelope",
        map.len()
    );
    // and the PLY export carries every point
    let ply = map.to_ply();
    assert!(ply.contains(&format!("element vertex {}", map.len())));
}
