//! System-level integration of the PIM array as a *general-purpose*
//! accelerator (the paper's §6 framing): visual odometry, CNN inference
//! and raw kernel work time-sharing one simulated machine, with one
//! coherent cycle/energy ledger.

use pimvo::cnn::{render_shape, Shape, SmallNet};
use pimvo::core::pim_exec::{run_batch, BATCH};
use pimvo::core::{extract_features, Keyframe, QFeature, QPose};
use pimvo::kernels::{ir, EdgeConfig};
use pimvo::pim::{ArrayConfig, CostModel, OpClass, PimMachine};
use pimvo::scene::{Sequence, SequenceKind};
use pimvo::vomath::{Pinhole, SE3};

#[test]
fn one_machine_runs_vo_and_cnn_workloads() {
    let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
    let cam = Pinhole::qvga();
    let cfg = EdgeConfig::default();
    let seq = Sequence::generate(SequenceKind::Desk, 1);
    let frame = &seq.frames[0];

    // 1. edge detection on the array
    let maps = ir::edge_detect(&mut m, &frame.gray, &cfg, pimvo::pim::LowerLevel::Opt);
    assert!(maps.edge_count() > 1000);

    // 2. one pose-estimation batch on the same array (pose staging rows
    //    live above the edge regions)
    let features = extract_features(&maps.mask, &frame.depth, &cam, 2000, 0.3, 8.0);
    let kf = Keyframe::build(0, SE3::IDENTITY, maps.mask.clone(), &cam);
    let qpose = QPose::quantize(&SE3::IDENTITY);
    let qfeats: Vec<QFeature> = features.iter().map(QFeature::quantize).collect();
    let out = run_batch(
        &mut m,
        5 * 256 + 64,
        &qfeats[..BATCH.min(qfeats.len())],
        &qpose,
        &kf.q_tables,
        &cam,
    );
    assert!(out.valid.iter().filter(|&&v| v).count() > 40);

    // 3. CNN inference in a spare bank of the same array
    let mut net = SmallNet::untrained();
    let _ = net.train_head(15, 5, 8);
    let img = render_shape(Shape::Triangle, 7);
    let pim_logits = net.forward_pim(&mut m, 4 * 256, &img);
    assert_eq!(pim_logits, net.forward_scalar(&img), "CNN must stay exact");

    // 4. one coherent ledger over all three workloads
    let stats = m.stats();
    assert!(stats.cycles > 20_000);
    let energy = stats.energy(&CostModel::default());
    assert!(energy.sram_share() > 0.7);
    // the op mix spans image kernels, pose math and CNN layers
    for class in [OpClass::Avg, OpClass::Mul, OpClass::Div, OpClass::Gather] {
        assert!(
            stats.op_histogram.get(&class).copied().unwrap_or(0) > 0,
            "missing {class:?} in the combined workload"
        );
    }
}

#[test]
fn multireg_and_single_reg_machines_agree_end_to_end() {
    let seq = Sequence::generate(SequenceKind::Xyz, 1);
    let cfg = EdgeConfig::default();

    let mut m1 = PimMachine::new(ArrayConfig::qvga_banks(6));
    let single = ir::edge_detect(
        &mut m1,
        &seq.frames[0].gray,
        &cfg,
        pimvo::pim::LowerLevel::Opt,
    );

    let mut m4 = PimMachine::new(ArrayConfig::qvga_banks(6));
    m4.set_tmp_regs(ir::REGS_REQUIRED);
    let multi = ir::edge_detect(
        &mut m4,
        &seq.frames[0].gray,
        &cfg,
        pimvo::pim::LowerLevel::MultiReg(ir::REGS_REQUIRED),
    );

    assert_eq!(single.mask, multi.mask);
    let e1 = m1.stats().energy(&CostModel::default());
    let e4 = m4.stats().energy(&CostModel::default());
    assert!(
        e4.total_pj() < 0.7 * e1.total_pj(),
        "multireg energy {} vs {}",
        e4.total_pj(),
        e1.total_pj()
    );
}

#[test]
fn trace_covers_a_full_edge_detection() {
    let seq = Sequence::generate(SequenceKind::Desk, 1);
    let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
    m.set_tracing(true);
    let _ = ir::edge_detect(
        &mut m,
        &seq.frames[0].gray,
        &EdgeConfig::default(),
        pimvo::pim::LowerLevel::Opt,
    );
    let trace = m.trace().expect("tracing on");
    assert!(trace.len() > 3_000, "trace events {}", trace.len());
    // the trace's cycle accounting must agree with the machine ledger
    let traced_cycles: u64 = trace.events().iter().map(|e| e.cycles).sum();
    assert_eq!(traced_cycles, m.stats().cycles);
    let traced_writes: u64 = trace.events().iter().map(|e| e.sram_writes).sum();
    assert_eq!(traced_writes, m.stats().sram_writes);
}

#[test]
fn trace_ledger_agrees_on_the_multireg_pipeline_too() {
    let seq = Sequence::generate(SequenceKind::Desk, 1);
    let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
    m.set_tmp_regs(ir::REGS_REQUIRED);
    m.set_tracing(true);
    let _ = ir::edge_detect(
        &mut m,
        &seq.frames[0].gray,
        &EdgeConfig::default(),
        pimvo::pim::LowerLevel::MultiReg(ir::REGS_REQUIRED),
    );
    let trace = m.trace().expect("tracing on");
    let traced_cycles: u64 = trace.events().iter().map(|e| e.cycles).sum();
    assert_eq!(traced_cycles, m.stats().cycles);
}
