//! Shape tests for the paper's headline results: these encode, as
//! assertions, the qualitative claims every experiment must reproduce
//! (who wins, by roughly what factor). The exact numbers live in
//! `EXPERIMENTS.md`; these tests keep the shapes from regressing.

use pimvo::core::{extract_features, BackendKind, Keyframe, Tracker, TrackerConfig};
use pimvo::kernels::{ir, EdgeConfig};
use pimvo::mcu::{CostCounter, FloatFeature};
use pimvo::pim::{ArrayConfig, CostModel, PimMachine};
use pimvo::scene::{Sequence, SequenceKind};
use pimvo::vomath::{Pinhole, SE3};

fn canonical_frame() -> (pimvo::kernels::GrayImage, pimvo::kernels::DepthImage) {
    let seq = Sequence::generate(SequenceKind::Xyz, 1);
    let f = &seq.frames[0];
    (f.gray.clone(), f.depth.clone())
}

#[test]
fn edge_detection_speedup_shape() {
    // paper: 48x (PicoEdge vs PIM); ours is leaner on the PIM side, so
    // anything far above 10x with identical output preserves the claim
    let (gray, _) = canonical_frame();
    let cfg = EdgeConfig::default();

    let mut counter = CostCounter::new();
    let mcu_maps = pimvo::mcu::edge_detect_counted(&gray, &cfg, &mut counter);

    let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
    let pim_maps = ir::edge_detect(&mut m, &gray, &cfg, pimvo::pim::LowerLevel::Opt);

    assert_eq!(mcu_maps.mask, pim_maps.mask, "outputs must be identical");
    let speedup = counter.cycles() as f64 / m.stats().cycles as f64;
    assert!(speedup > 40.0, "edge speedup {speedup}");
}

#[test]
fn lm_speedup_and_overall_shape() {
    // paper: 9x LM, ~11x overall; our regime: LM 4-12x, overall 5-20x
    let (gray, depth) = canonical_frame();
    let cam = Pinhole::qvga();
    let cfg = EdgeConfig::default();

    let mut counter = CostCounter::new();
    let maps = pimvo::mcu::edge_detect_counted(&gray, &cfg, &mut counter);
    let mcu_edge = counter.cycles();
    let features = extract_features(&maps.mask, &depth, &cam, 6000, 0.3, 8.0);
    assert!(features.len() > 2000, "features {}", features.len());
    let floats: Vec<FloatFeature> = features
        .iter()
        .map(|f| FloatFeature {
            a: f.a,
            b: f.b,
            c: f.c,
        })
        .collect();
    let kf = Keyframe::build(0, SE3::IDENTITY, maps.mask.clone(), &cam);
    counter.reset();
    let _ = pimvo::mcu::linearize_counted(&floats, &kf.tables, &cam, &SE3::IDENTITY, &mut counter);
    let mcu_lm = counter.cycles();

    let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
    let c0 = m.stats().cycles;
    let _ = ir::edge_detect(&mut m, &gray, &cfg, pimvo::pim::LowerLevel::Opt);
    let pim_edge = m.stats().cycles - c0;
    let qpose = pimvo::core::QPose::quantize(&SE3::IDENTITY);
    let qfeats: Vec<pimvo::core::QFeature> = features
        .iter()
        .map(pimvo::core::QFeature::quantize)
        .collect();
    let c1 = m.stats().cycles;
    let _ = pimvo::core::pim_exec::run_batch(
        &mut m,
        5 * 256 + 64,
        &qfeats[..pimvo::core::pim_exec::BATCH],
        &qpose,
        &kf.q_tables,
        &cam,
    );
    let batches = features.len().div_ceil(pimvo::core::pim_exec::BATCH) as u64;
    let pim_lm = (m.stats().cycles - c1) * batches;

    let lm_speedup = mcu_lm as f64 / pim_lm as f64;
    assert!((3.0..15.0).contains(&lm_speedup), "LM speedup {lm_speedup}");

    let overall = (mcu_edge + 8 * mcu_lm) as f64 / (pim_edge + 8 * pim_lm) as f64;
    assert!((5.0..20.0).contains(&overall), "overall speedup {overall}");

    // LM speedup must be smaller than the edge speedup (32-bit mul/div
    // throughput penalty, §5.3)
    let edge_speedup = mcu_edge as f64 / pim_edge as f64;
    assert!(edge_speedup > lm_speedup, "{edge_speedup} vs {lm_speedup}");
}

#[test]
fn energy_shape() {
    // paper: 10.3 mJ vs 0.495 mJ per frame (20.8x); SRAM dominates the
    // PIM budget (86 %); writes are a small slice after the Tmp-Reg
    // optimization
    let seq = Sequence::generate(SequenceKind::Xyz, 3);
    let mut tf = Tracker::new(TrackerConfig::default(), BackendKind::Float);
    let mut tp = Tracker::new(TrackerConfig::default(), BackendKind::Pim);
    for f in &seq.frames {
        let _ = tf.process_frame(&f.gray, &f.depth);
        let _ = tp.process_frame(&f.gray, &f.depth);
    }
    let mcu_mj = tf.stats().energy_mj / 3.0;
    let pim_mj = tp.stats().energy_mj / 3.0;
    assert!((5.0..20.0).contains(&mcu_mj), "MCU {mcu_mj} mJ/frame");
    assert!((0.1..1.5).contains(&pim_mj), "PIM {pim_mj} mJ/frame");
    let ratio = mcu_mj / pim_mj;
    assert!((8.0..40.0).contains(&ratio), "energy ratio {ratio}");

    let pim = tp.stats().pim.expect("pim stats");
    let e = pim.energy(&CostModel::default());
    assert!(e.sram_share() > 0.75, "SRAM share {}", e.sram_share());
    let mem = pim.mem_accesses();
    assert!(
        mem.write_share() < 0.10,
        "write share {}",
        mem.write_share()
    );
}

#[test]
fn feature_count_in_paper_regime() {
    // paper: 3000-6000 tracked features at QVGA
    for kind in [SequenceKind::Xyz, SequenceKind::Desk] {
        let seq = Sequence::generate(kind, 1);
        let f = &seq.frames[0];
        let cfg = TrackerConfig::default();
        let maps = pimvo::kernels::scalar::edge_detect(&f.gray, &cfg.edge);
        let feats = extract_features(
            &maps.mask,
            &f.depth,
            &cfg.camera,
            cfg.max_features,
            cfg.min_depth,
            cfg.max_depth,
        );
        assert!(
            (1500..=6000).contains(&feats.len()),
            "{}: {} features",
            kind.name(),
            feats.len()
        );
    }
}

#[test]
fn lm_converges_within_ten_iterations() {
    // paper: the LM solver converges within 8.1 iterations on average
    let seq = Sequence::generate(SequenceKind::Desk, 8);
    let mut tracker = Tracker::new(TrackerConfig::default(), BackendKind::Float);
    let mut total_iters = 0usize;
    let mut tracked = 0usize;
    for f in &seq.frames {
        let r = tracker.process_frame(&f.gray, &f.depth);
        if r.iterations > 0 {
            total_iters += r.iterations;
            tracked += 1;
        }
    }
    assert!(tracked >= 5);
    let mean = total_iters as f64 / tracked as f64;
    assert!(mean <= 10.0, "mean LM iterations {mean}");
}
