//! Drive the bit-parallel SRAM-PIM machine directly: reproduces the
//! arithmetic walk-throughs of Fig. 7 of the paper (absolute
//! difference, branch-free min/max, shift-accumulate multiplication,
//! restoring division) and shows the cycle/energy ledger the simulator
//! keeps.
//!
//! ```sh
//! cargo run --release --example pim_playground
//! ```

use pimvo::pim::{ArrayConfig, CostModel, LaneWidth, Operand, PimMachine, Signedness};
use Operand::{Row, Tmp};

fn main() {
    let mut m = PimMachine::new(ArrayConfig::qvga());
    m.set_tracing(true);
    println!(
        "array: {} rows x {} bits ({} lanes at 8-bit)",
        m.config().rows,
        m.config().row_bits,
        m.config().lanes(LaneWidth::W8)
    );
    println!();

    // Fig. 7-a: absolute difference |A - B|
    m.host_write_lanes(0, &[121, 12]).unwrap();
    m.host_write_lanes(1, &[106, 22]).unwrap();
    m.abs_diff(Row(0), Row(1));
    println!("Fig.7-a |[121,12] - [106,22]| = {:?}", &m.tmp_lanes()[..2]);

    // Fig. 7-b: branch-free min/max
    m.min(Row(0), Row(1));
    let min2 = m.tmp_lanes()[..2].to_vec();
    m.max(Row(0), Row(1));
    println!("Fig.7-b min = {:?}, max = {:?}", min2, &m.tmp_lanes()[..2]);

    // Fig. 7-c: multiplication 13 x 11 = 143 (n+2 cycles at 8 bits)
    m.host_write_lanes(2, &[13]).unwrap();
    m.host_write_lanes(3, &[11]).unwrap();
    let c0 = m.stats().cycles;
    m.mul(Row(2), Row(3));
    m.writeback(4);
    println!(
        "Fig.7-c 13 x 11 = {} in {} cycles (paper: n+2 = 10)",
        m.host_read_lanes(4)[0],
        m.stats().cycles - c0
    );

    // Fig. 7-d: division 15 / 6 = 2 rem 3
    m.host_write_lanes(2, &[15]).unwrap();
    m.host_write_lanes(3, &[6]).unwrap();
    m.div(Row(2), Row(3));
    let q = m.tmp_lanes()[0];
    m.rem(Row(2), Row(3));
    println!("Fig.7-d 15 / 6 = {} rem {}", q, m.tmp_lanes()[0]);
    println!();

    // a taste of the SIMD width: 320 pixel averages in one cycle
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    let a: Vec<i64> = (0..320).map(|i| (i % 251) as i64).collect();
    let b: Vec<i64> = (0..320).map(|i| ((i * 7) % 251) as i64).collect();
    m.host_write_lanes(10, &a).unwrap();
    m.host_write_lanes(11, &b).unwrap();
    let c1 = m.stats().cycles;
    m.avg(Row(10), Row(11));
    m.avg_sh(Tmp, Tmp, 1); // fused shift-average (Fig. 2's LPF step)
    println!(
        "320-lane 2x2 box filter step: {} cycles for 640 pixel averages",
        m.stats().cycles - c1
    );
    println!();

    // instruction trace (disassembly-style)
    if let Some(trace) = m.trace() {
        println!("last instructions:");
        for e in trace.events().iter().rev().take(5).rev() {
            println!("  {e}");
        }
        println!();
    }

    // the ledger
    let s = m.stats();
    let e = s.energy(&CostModel::default());
    println!(
        "ledger: {} cycles, {} SRAM reads, {} writes, {} Tmp accesses",
        s.cycles, s.sram_reads, s.sram_writes, s.tmp_accesses
    );
    println!(
        "energy: {:.1} nJ (SRAM {:.0} %, datapath {:.0} %)",
        e.total_pj() / 1e3,
        100.0 * e.sram_share(),
        100.0 * (1.0 - e.sram_share())
    );
}
