//! Full sequence tracking with evaluation: generates one of the three
//! synthetic sequence profiles, tracks it with the chosen backend, and
//! reports RPE/ATE plus the backend's cycle/energy bill. Optionally
//! writes the trajectories in TUM format and, with the telemetry
//! flags, a Perfetto trace / metrics snapshot / JSONL event log of the
//! whole run.
//!
//! ```sh
//! cargo run --release --example track_sequence -- desk pim 90
//! cargo run --release --example track_sequence -- xyz float 60 out/ 3   # 3 pyramid levels
//! cargo run --release --example track_sequence -- desk pim 30 \
//!     --trace-out trace.json --metrics-out metrics.txt --log-jsonl events.jsonl
//! cargo run --release --example track_sequence -- desk pim 30 \
//!     --trace-bin trace.bin --flight-recorder 4
//! cargo run --release --example track_sequence -- xyz pim 30 --dma-overlap
//! cargo run --release --features fault --example track_sequence -- \
//!     xyz pim 30 --dma-fault-rate 0.2
//! ```
//!
//! `--dma-overlap` attaches modeled host↔array DMA channels so strip
//! transfers overlap compute (bit-identical poses, fewer wall cycles);
//! `--dma-fault-rate R` (implies `--dma-overlap`, needs a
//! `--features fault` build) additionally runs a seeded transfer-fault
//! storm against those channels — poses must not move.
//!
//! Open `trace.json` at <https://ui.perfetto.dev> to see the
//! frame → stage → pool-phase → shard span hierarchy in both the
//! wall-time and PIM-cycle tracks.
//!
//! `--trace-bin FILE` arms the PIM pool's op recorders and writes the
//! whole run as one dependency-tracked binary trace (profile it with
//! the `trace_profile` tooling in `pimvo-bench`). `--flight-recorder N`
//! keeps the op traces of the last N frames in a ring and writes a
//! flight-recorder dump at the end of the run — reason `deadline` if
//! any budgeted frame overran, `manual` otherwise. Both flags need the
//! `pim` backend.

use pimvo::core::{BackendKind, Checkpoint, TrackerBuilder, TrackerConfig};
use pimvo::scene::{ate_rmse, format_tum, rpe_rmse, Sequence, SequenceKind, Trajectory};
use pimvo::serve::{DumpReason, FlightDump, FlightFrame};
use pimvo::telemetry::optrace::OpTrace;
use pimvo::telemetry::Telemetry;
use std::collections::VecDeque;
use std::env;

fn usage() -> ! {
    eprintln!(
        "usage: track_sequence [xyz|desk|str_ntex_far|pan] [float|pim] [frames>=2] \
         [out_dir] [pyramid_levels]\n       \
         [--trace-out FILE] [--metrics-out FILE] [--log-jsonl FILE]\n       \
         [--checkpoint-every N] [--resume FILE] [--frame-budget-cycles K]\n       \
         [--trace-bin FILE] [--flight-recorder N]\n       \
         [--dma-overlap] [--dma-fault-rate R]"
    );
    std::process::exit(2)
}

fn main() {
    // split "--flag value" pairs from the positional arguments
    let mut positional: Vec<String> = Vec::new();
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut log_jsonl: Option<String> = None;
    let mut checkpoint_every: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut frame_budget: Option<String> = None;
    let mut trace_bin: Option<String> = None;
    let mut flight_recorder: Option<String> = None;
    let mut dma_overlap = false;
    let mut dma_fault_rate: Option<String> = None;
    let mut args = env::args().skip(1);
    while let Some(a) = args.next() {
        let mut flag = |dst: &mut Option<String>| match args.next() {
            Some(v) => *dst = Some(v),
            None => usage(),
        };
        match a.as_str() {
            "--trace-out" => flag(&mut trace_out),
            "--metrics-out" => flag(&mut metrics_out),
            "--log-jsonl" => flag(&mut log_jsonl),
            "--checkpoint-every" => flag(&mut checkpoint_every),
            "--resume" => flag(&mut resume),
            "--frame-budget-cycles" => flag(&mut frame_budget),
            "--trace-bin" => flag(&mut trace_bin),
            "--flight-recorder" => flag(&mut flight_recorder),
            "--dma-overlap" => dma_overlap = true,
            "--dma-fault-rate" => flag(&mut dma_fault_rate),
            "--help" | "-h" => usage(),
            _ => positional.push(a),
        }
    }
    let checkpoint_every: Option<usize> =
        checkpoint_every.map(|v| v.parse().unwrap_or_else(|_| usage()));
    let frame_budget: Option<u64> = frame_budget.map(|v| v.parse().unwrap_or_else(|_| usage()));
    let flight_recorder: Option<usize> = flight_recorder.map(|v| {
        let n = v.parse().unwrap_or_else(|_| usage());
        if n == 0 {
            eprintln!("error: --flight-recorder needs at least 1 frame");
            usage();
        }
        n
    });
    let dma_fault_rate: Option<f64> = dma_fault_rate.map(|v| {
        let r: f64 = v.parse().unwrap_or_else(|_| usage());
        if !(0.0..1.0).contains(&r) {
            eprintln!("error: --dma-fault-rate needs a rate in [0, 1)");
            usage();
        }
        r
    });
    // a fault sweep only makes sense on the modeled channels
    if dma_fault_rate.is_some() {
        dma_overlap = true;
    }

    let kind = match positional.first().map(String::as_str) {
        Some("xyz") | None => SequenceKind::Xyz,
        Some("desk") => SequenceKind::Desk,
        Some("str_ntex_far") => SequenceKind::StrNtexFar,
        Some("pan") => SequenceKind::Pan,
        Some(_) => usage(),
    };
    let backend = match positional.get(1).map(String::as_str) {
        Some("float") => BackendKind::Float,
        Some("pim") | None => BackendKind::Pim,
        Some(_) => usage(),
    };
    let frames: usize = positional
        .get(2)
        .map(|a| a.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(90);
    if frames < 2 {
        eprintln!("error: need at least 2 frames to evaluate drift");
        usage();
    }

    let levels: usize = positional
        .get(4)
        .map(|a| a.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(1);

    println!("generating {} frames of '{}'...", frames, kind.name());
    let seq = Sequence::generate(kind, frames);

    let config = TrackerConfig {
        pyramid_levels: levels,
        build_map: positional.get(3).is_some(), // reconstruct when exporting
        ..TrackerConfig::default()
    };
    let mut builder = TrackerBuilder::new(config).backend(backend);
    if dma_overlap {
        builder = builder.dma(pimvo::pim::DmaConfig::default());
    }
    let mut tracker = builder.build();
    if dma_overlap && tracker.pool_mut().is_none() {
        eprintln!("error: --dma-overlap / --dma-fault-rate need the pim backend");
        usage();
    }
    if let Some(rate) = dma_fault_rate {
        // R is the total per-attempt fault probability, split 60 %
        // payload flips / 30 % stalls / 10 % dropped completions
        #[cfg(feature = "fault")]
        {
            let model =
                pimvo::pim::DmaFaultModel::new(0xd3a0_cafe, rate * 0.6, rate * 0.3, rate * 0.1);
            tracker
                .pool_mut()
                .expect("pim backend checked above")
                .set_dma_fault(model);
            println!("dma faults     : seeded transfer storm, total rate {rate}");
        }
        #[cfg(not(feature = "fault"))]
        {
            let _ = rate;
            eprintln!("error: --dma-fault-rate needs a fault build (--features fault)");
            std::process::exit(2);
        }
    }
    let telemetry = if trace_out.is_some() || metrics_out.is_some() || log_jsonl.is_some() {
        let t = Telemetry::new();
        tracker.set_telemetry(t.clone());
        Some(t)
    } else {
        None
    };
    if let Some(cycles) = frame_budget {
        tracker.set_frame_budget_cycles(Some(cycles));
        println!("frame budget   : {cycles} PIM/MCU cycles per frame");
    }

    // Op tracing: arm the pool's dependency-tracked recorders. The
    // flight ring drains per frame (each FlightFrame scopes exactly one
    // frame's pool work); a bare --trace-bin drains once at the end so
    // cross-frame serial edges survive.
    let mut flight_ring: VecDeque<FlightFrame> = VecDeque::new();
    let mut merged_trace = OpTrace::new();
    let mut last_wall = 0u64;
    if trace_bin.is_some() || flight_recorder.is_some() {
        match tracker.pool_mut() {
            Some(pool) => {
                pool.arm_op_recorders(pimvo::pim::DEFAULT_OP_RING_CAPACITY);
                last_wall = pool.wall_cycles();
            }
            None => {
                eprintln!("error: --trace-bin / --flight-recorder need the pim backend");
                usage();
            }
        }
    }

    // Resume mid-sequence from a snapshot: restore the tracker and skip
    // the frames it has already processed.
    let mut skip = 0;
    if let Some(path) = &resume {
        let ckpt = Checkpoint::read_file(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read snapshot {path}: {e}");
            std::process::exit(1);
        });
        tracker.restore(&ckpt).unwrap_or_else(|e| {
            eprintln!("error: cannot restore from {path}: {e}");
            std::process::exit(1);
        });
        skip = ckpt.frame_index + 1;
        println!("resumed from {path} at frame {}", ckpt.frame_index);
    }

    let ckpt_path = format!(
        "{}/track_sequence.ckpt",
        positional.get(3).map(String::as_str).unwrap_or(".")
    );
    let mut estimate = Trajectory::new();
    let mut keyframes = 0;
    for (i, f) in seq.frames.iter().enumerate().skip(skip) {
        let r = tracker.process_frame(&f.gray, &f.depth);
        estimate.push(f.time, r.pose_wc);
        keyframes += r.is_keyframe as usize;
        if let Some(cap) = flight_recorder {
            let pool = tracker.pool_mut().expect("recorders are armed on a pool");
            let wall = pool.wall_cycles();
            if let Some(trace) = pool.drain_op_trace() {
                if trace_bin.is_some() {
                    merged_trace.merge(trace.clone());
                }
                if flight_ring.len() >= cap {
                    flight_ring.pop_front();
                }
                flight_ring.push_back(FlightFrame {
                    frame: r.index as u64,
                    wall_delta: wall - last_wall,
                    trace,
                });
            }
            last_wall = wall;
        }
        if let Some(every) = checkpoint_every {
            if every > 0 && (i + 1) % every == 0 {
                if let Some(dir) = positional.get(3) {
                    std::fs::create_dir_all(dir).expect("create output dir");
                }
                tracker.save_checkpoint(&ckpt_path).expect("write snapshot");
            }
        }
    }
    if checkpoint_every.is_some() {
        println!("checkpoints    : latest snapshot at {ckpt_path}");
    }
    if estimate.len() < 2 {
        println!(
            "resumed at frame {} of {}; fewer than 2 frames left to track — nothing to evaluate",
            skip,
            seq.frames.len()
        );
        return;
    }

    // A resumed run only covers the tail of the sequence; evaluate
    // against the matching ground-truth window.
    let ground_truth = if skip > 0 {
        Trajectory {
            samples: seq
                .ground_truth
                .samples
                .iter()
                .skip(skip)
                .copied()
                .collect(),
        }
    } else {
        seq.ground_truth.clone()
    };
    let rpe = rpe_rmse(&estimate, &ground_truth, 1.0);
    let ate = ate_rmse(&estimate, &ground_truth);
    println!();
    println!("backend        : {backend:?}");
    println!("keyframes      : {keyframes}");
    println!(
        "RPE (1 s)      : {:.4} m/s, {:.3} °/s",
        rpe.trans_mps, rpe.rot_dps
    );
    println!(
        "ATE RMSE       : {ate:.4} m over a {:.2} m path",
        seq.ground_truth.path_length()
    );

    let stats = tracker.stats();
    println!(
        "cycles         : {} edge + {} pose estimation",
        stats.edge_cycles, stats.lm_cycles
    );
    println!(
        "energy         : {:.3} mJ/frame",
        stats.energy_mj / stats.frames.max(1) as f64
    );
    let fps = 216.0e6 / ((stats.total_cycles() as f64) / stats.frames.max(1) as f64);
    println!("throughput     : {fps:.0} frames/s at a 216 MHz clock");
    if dma_overlap {
        if let Some(pool) = tracker.pool_mut() {
            let h = pool.dma_health();
            println!(
                "dma            : {} descriptors ({} prefetches), {} faults, \
                 {} retries, {} quarantines, {} sync fallbacks",
                h.issued,
                h.prefetches,
                h.faults(),
                h.retries,
                h.quarantines,
                h.sync_fallbacks
            );
        }
    }
    if frame_budget.is_some() {
        let b = tracker.budget_status();
        println!(
            "deadline       : {} misses, {} coasted frames, final rung {}",
            b.deadline_misses,
            b.coasted_frames,
            b.rung.name()
        );
    }

    if let Some(dir) = positional.get(3) {
        std::fs::create_dir_all(dir).expect("create output dir");
        let est = format!("{dir}/{}_estimate.txt", kind.name());
        let gt = format!("{dir}/{}_groundtruth.txt", kind.name());
        std::fs::write(&est, format_tum(&estimate)).expect("write estimate");
        std::fs::write(&gt, format_tum(&ground_truth)).expect("write ground truth");
        println!("wrote {est} and {gt}");
        if let Some(map) = tracker.map() {
            let ply = format!("{dir}/{}_map.ply", kind.name());
            std::fs::write(&ply, map.to_ply()).expect("write map");
            println!("wrote {ply} ({} points)", map.len());
        }
        let svg = format!("{dir}/{}_trajectory.svg", kind.name());
        std::fs::write(
            &svg,
            pimvo::scene::plot_trajectories_svg(
                &estimate,
                &ground_truth,
                pimvo::scene::PlotPlane::Xz,
                kind.name(),
            ),
        )
        .expect("write plot");
        println!("wrote {svg}");
    }

    if let Some(path) = &trace_bin {
        let trace = if flight_recorder.is_some() {
            std::mem::take(&mut merged_trace)
        } else {
            tracker
                .pool_mut()
                .and_then(|p| p.drain_op_trace())
                .unwrap_or_default()
        };
        std::fs::write(path, trace.encode()).expect("write binary trace");
        println!(
            "wrote {path} ({} op records, {} dropped by the ring)",
            trace.len(),
            trace.dropped
        );
    }
    if flight_recorder.is_some() {
        let misses = tracker.budget_status().deadline_misses;
        let reason = if misses > 0 {
            DumpReason::DeadlineMiss
        } else {
            DumpReason::Manual
        };
        let dir = positional.get(3).map(String::as_str).unwrap_or(".");
        std::fs::create_dir_all(dir).expect("create output dir");
        let path = format!("{dir}/track_sequence_flight_{}.bin", reason.as_str());
        let dump = FlightDump {
            session: 0,
            reason,
            frames: flight_ring.into_iter().collect(),
        };
        dump.save(std::path::Path::new(&path))
            .expect("write flight dump");
        println!(
            "flight dump    : {path} ({} frames, reason {})",
            dump.frames.len(),
            reason.as_str()
        );
    }

    if let Some(t) = telemetry {
        if let Some(path) = trace_out {
            std::fs::write(&path, t.perfetto_json()).expect("write trace");
            println!("wrote {path} (open at https://ui.perfetto.dev)");
        }
        if let Some(path) = metrics_out {
            std::fs::write(&path, t.metrics_text()).expect("write metrics");
            println!("wrote {path}");
        }
        if let Some(path) = log_jsonl {
            std::fs::write(&path, t.log_jsonl()).expect("write event log");
            println!("wrote {path}");
        }
    }
}
