//! The paper's stated extension (§6): CNN inference on the same
//! SRAM-PIM. Trains a small shape classifier's head, then runs
//! inference on the simulated array and compares against the scalar
//! reference — bit-for-bit identical logits — with the accelerator's
//! cycle/energy bill.
//!
//! ```sh
//! cargo run --release --example cnn_on_pim
//! ```

use pimvo::cnn::{render_shape, Shape, SmallNet};
use pimvo::pim::{ArrayConfig, CostModel, PimMachine};

fn main() {
    println!("training the dense head (fixed conv features)...");
    let mut net = SmallNet::untrained();
    let report = net.train_head(60, 20, 25);
    println!(
        "  {} training samples, held-out accuracy {:.1} %",
        report.train_samples,
        100.0 * report.test_accuracy
    );
    println!();

    let mut m = PimMachine::new(ArrayConfig::qvga());
    let mut correct = 0;
    let mut total = 0;
    let c0 = m.stats().cycles;
    for seed in 300..310u32 {
        for shape in Shape::all() {
            let img = render_shape(shape, seed);
            let pim_logits = net.forward_pim(&mut m, 0, &img);
            let scalar_logits = net.forward_scalar(&img);
            assert_eq!(pim_logits, scalar_logits, "PIM must match scalar");
            let pred = pim_logits
                .iter()
                .enumerate()
                .max_by_key(|(_, &v)| v)
                .map(|(i, _)| i)
                .unwrap();
            total += 1;
            correct += (pred == shape.label()) as usize;
        }
    }
    let cycles = m.stats().cycles - c0;
    let energy = m.stats().energy(&CostModel::default());
    println!("PIM inference on {total} fresh shapes: {correct}/{total} correct");
    println!("  (every logit bit-identical to the scalar reference)");
    println!(
        "  {} cycles per inference = {:.1} µs at 216 MHz",
        cycles / total as u64,
        (cycles / total as u64) as f64 / 216.0
    );
    println!(
        "  {:.2} µJ per inference (SRAM share {:.0} %)",
        energy.total_pj() / total as f64 / 1e6,
        100.0 * energy.sram_share()
    );
}
