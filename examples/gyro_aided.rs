//! Gyro-aided tracking — the first step toward the paper's future-work
//! VIO: a synthetic MEMS gyroscope (with bias and noise) predicts the
//! inter-frame rotation, warm-starting the PIM edge alignment through a
//! whip-pan that defeats vision-only tracking.
//!
//! ```sh
//! cargo run --release --example gyro_aided
//! ```

use pimvo::core::{BackendKind, Tracker, TrackerConfig};
use pimvo::scene::{generate_imu, integrate_gyro, ImuNoise, Sequence, SequenceKind};

fn main() {
    // the fast-pan profile, consumed at 6 Hz (every 5th frame): the
    // inter-frame rotation reaches ~20 px of image motion
    let full = Sequence::generate(SequenceKind::Pan, 60);
    let imu = generate_imu(SequenceKind::Pan, 2.0, 200.0, &ImuNoise::default());
    let frames: Vec<_> = full.frames.iter().step_by(5).collect();

    for use_gyro in [false, true] {
        let mut tracker = Tracker::new(TrackerConfig::default(), BackendKind::Pim);
        let mut worst_rot: f64 = 0.0;
        let mut worst_t: f64 = 0.0;
        let mut prev_time = frames[0].time;
        for f in &frames {
            let delta =
                (use_gyro && f.time > prev_time).then(|| integrate_gyro(&imu, prev_time, f.time));
            let r = tracker.process_frame_with_gyro(&f.gray, &f.depth, delta);
            // compare against the first-pose-aligned ground truth
            let gt_rel = frames[0].gt_wc.inverse().compose(&f.gt_wc);
            let err = r.pose_wc.compose(&gt_rel.inverse());
            worst_rot = worst_rot.max(err.rotation_angle());
            worst_t = worst_t.max(err.translation_norm());
            prev_time = f.time;
        }
        println!(
            "{}: worst rotation error {:.4} rad, worst translation error {:.4} m",
            if use_gyro {
                "gyro-aided "
            } else {
                "vision-only"
            },
            worst_rot,
            worst_t
        );
    }
}
