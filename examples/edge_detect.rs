//! Edge detection on the PIM, end to end: renders a frame, runs the
//! optimized LPF → HPF → NMS mappings on the simulated array, prints an
//! ASCII rendering of the edge mask, and compares the cycle bill
//! against the naive mapping and the MCU baseline.
//!
//! ```sh
//! cargo run --release --example edge_detect
//! ```

use pimvo::kernels::{ir, EdgeConfig, GrayImage};
use pimvo::mcu::CostCounter;
use pimvo::pim::{ArrayConfig, LowerLevel, PimMachine};
use pimvo::scene::{Sequence, SequenceKind};

fn ascii_render(mask: &GrayImage, cols: u32, rows: u32) {
    let sx = mask.width() / cols;
    let sy = mask.height() / rows;
    for by in 0..rows {
        let mut line = String::new();
        for bx in 0..cols {
            let mut n = 0;
            for y in by * sy..(by + 1) * sy {
                for x in bx * sx..(bx + 1) * sx {
                    n += (mask.get(x, y) != 0) as u32;
                }
            }
            line.push(match n {
                0 => ' ',
                1..=2 => '.',
                3..=6 => '+',
                _ => '#',
            });
        }
        println!("{line}");
    }
}

fn main() {
    let seq = Sequence::generate(SequenceKind::Desk, 1);
    let gray = &seq.frames[0].gray;
    let cfg = EdgeConfig::default();

    // optimized PIM mapping
    let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
    let maps = ir::edge_detect(&mut m, gray, &cfg, LowerLevel::Opt);
    let opt_cycles = m.stats().cycles;

    println!("edge mask ({} edge pixels):", maps.edge_count());
    ascii_render(&maps.mask, 80, 30);

    // naive PIM mapping (identical output, more cycles)
    let mut mn = PimMachine::new(ArrayConfig::qvga_banks(6));
    let naive = ir::edge_detect(&mut mn, gray, &cfg, LowerLevel::Naive);
    assert_eq!(naive.mask, maps.mask, "mappings must agree bit-for-bit");

    // MCU baseline
    let mut counter = CostCounter::new();
    let mcu = pimvo::mcu::edge_detect_counted(gray, &cfg, &mut counter);
    assert_eq!(mcu.mask, maps.mask);

    println!();
    println!("cycles: PIM optimized {:>10}", opt_cycles);
    println!(
        "        PIM naive     {:>10}  ({:.2}x)",
        mn.stats().cycles,
        mn.stats().cycles as f64 / opt_cycles as f64
    );
    println!(
        "        MCU baseline  {:>10}  ({:.0}x slower than PIM)",
        counter.cycles(),
        counter.cycles() as f64 / opt_cycles as f64
    );
}
