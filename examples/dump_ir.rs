//! Dumps every macro-op program — the edge-detection kernels and the
//! five pose-estimation phases — together with its lowering at each
//! level into `out/ir_*.txt`.
//!
//! These files are the committed golden snapshots that make lowering
//! changes reviewable: `scripts/tier1.sh` regenerates them and fails
//! when the listings drift from what is in git, so any change to the
//! IR builders or the optimizing lowering pass shows up as a readable
//! program diff in the PR.
//!
//! Usage: `cargo run --example dump_ir [-- <output-dir>]` (default
//! `out/`). Each snapshot lists the virtual-register IR first, then
//! the machine-instruction listings at `Naive`, `Opt` and
//! `MultiReg(4)`.

use std::fmt::Write as _;
use std::path::Path;

use pimvo::core::pim_exec::{pose_programs, pose_scratch};
use pimvo::core::Interp;
use pimvo::kernels::ir::{
    downsample_program, hpf_program, lpf_pass1_program, lpf_pass2_program, nms_program,
    scratch_pool,
};
use pimvo::kernels::pim_util::Regions;
use pimvo::pim::{lower, ArrayConfig, LowerLevel, PimMachine, PimProgram, ScratchRows};

const LEVELS: [LowerLevel; 3] = [LowerLevel::Naive, LowerLevel::Opt, LowerLevel::MultiReg(4)];

/// The IR listing followed by the lowered listing at every level.
fn listing(prog: &PimProgram, scratch: &ScratchRows) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{prog}");
    for level in LEVELS {
        let lowered = lower(prog, level, scratch)
            .unwrap_or_else(|e| panic!("lowering {} at {level}: {e}", prog.name()));
        let _ = writeln!(s, "{lowered}");
    }
    s
}

fn write_snapshot(dir: &str, name: &str, text: &str) {
    let path = Path::new(dir).join(format!("ir_{name}.txt"));
    std::fs::write(&path, text).expect("write snapshot");
    println!("wrote {}", path.display());
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "out".into());
    std::fs::create_dir_all(&dir).expect("create output dir");

    // Edge kernels: one two-row strip of a four-row image — small
    // enough to read, tall enough to exercise halo rows and the
    // adjacent-shift fusion.
    let m = PimMachine::new(ArrayConfig::qvga_banks(6));
    let r = Regions::for_machine(&m, 4);
    let ks = scratch_pool(&r);
    let h = 4;
    let kernel_progs = [
        lpf_pass1_program(&r, r.input, h, 0, 2),
        lpf_pass2_program(&r, r.aux2, h, None, 0, 2),
        hpf_program(&r, r.aux2, r.aux3, h, None, 0, 2),
        nms_program(&r, r.aux3, r.out, h, None, 0, 2),
        downsample_program(&r, 0, 2),
    ];
    for p in &kernel_progs {
        write_snapshot(&dir, p.name(), &listing(p, &ks));
    }

    // Pose estimation: the five programs run_batch submits, at the
    // staging base the system tests use (ff = 12, bilinear residuals).
    let base = 5 * 256 + 64;
    let ps = pose_scratch(base);
    let mut s = String::new();
    for p in pose_programs(base, 12, Interp::Bilinear) {
        s.push_str(&listing(&p, &ps));
    }
    write_snapshot(&dir, "pose", &s);
}
