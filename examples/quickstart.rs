//! Quickstart: track a short synthetic RGB-D sequence on the simulated
//! SRAM-PIM accelerator and print per-frame pose estimates plus the
//! accelerator's cycle/energy bill.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pimvo::core::{BackendKind, Tracker, TrackerConfig};
use pimvo::scene::{Sequence, SequenceKind};

fn main() {
    // 1. generate a short desk sequence (stands in for TUM fr2_desk)
    let seq = Sequence::generate(SequenceKind::Desk, 12);

    // 2. create a tracker on the PIM backend
    let mut tracker = Tracker::new(TrackerConfig::default(), BackendKind::Pim);

    // 3. feed frames and print the pose estimates
    println!("frame | est translation (m)           | feats | iters | kf");
    for frame in &seq.frames {
        let r = tracker.process_frame(&frame.gray, &frame.depth);
        let t = r.pose_wc.translation;
        println!(
            "{:>5} | ({:+.4}, {:+.4}, {:+.4}) | {:>5} | {:>5} | {}",
            r.index,
            t.x,
            t.y,
            t.z,
            r.features,
            r.iterations,
            if r.is_keyframe { "*" } else { " " }
        );
    }

    // 4. what did it cost on the accelerator?
    let stats = tracker.stats();
    println!();
    println!(
        "PIM cycles: {} edge + {} pose estimation over {} frames",
        stats.edge_cycles, stats.lm_cycles, stats.frames
    );
    println!(
        "energy: {:.3} mJ total ({:.3} mJ/frame)",
        stats.energy_mj,
        stats.energy_mj / stats.frames as f64
    );
    if let Some(pim) = &stats.pim {
        let e = pim.energy(&pimvo::pim::CostModel::default());
        println!(
            "energy split: SRAM {:.1} %, shifter/adder {:.1} %, Tmp Reg {:.1} %",
            100.0 * e.sram_pj / e.total_pj(),
            100.0 * e.shifter_adder_pj / e.total_pj(),
            100.0 * e.tmp_reg_pj / e.total_pj()
        );
    }
}
