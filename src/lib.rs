#![warn(missing_docs)]

//! Umbrella crate re-exporting the pimvo workspace.
pub use pimvo_cnn as cnn;
pub use pimvo_core as core;
pub use pimvo_fixed as fixed;
pub use pimvo_kernels as kernels;
pub use pimvo_mcu as mcu;
pub use pimvo_pim as pim;
pub use pimvo_scene as scene;
pub use pimvo_serve as serve;
pub use pimvo_telemetry as telemetry;
pub use pimvo_vomath as vomath;
