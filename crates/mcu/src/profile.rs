//! Instruction-mix profiling — the paper's §1 motivation experiment.
//!
//! Profiling REVO with Valgrind, the authors find that 43 % of executed
//! x86 instructions (51 % on ARM) are data movement. This module
//! derives the equivalent statistic from a [`CostCounter`] trace of our
//! baseline EBVO frame.

use crate::counter::{CostCounter, InstrClass};

/// Instruction-mix summary of a counted workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    /// Total instructions.
    pub total: u64,
    /// Data-movement instructions (loads + stores).
    pub memory: u64,
    /// Arithmetic instructions (ALU + MUL + DIV).
    pub arithmetic: u64,
    /// Control instructions (branches + calls).
    pub control: u64,
}

impl InstructionMix {
    /// Builds the mix from a counter.
    pub fn from_counter(c: &CostCounter) -> Self {
        let mut mix = InstructionMix {
            total: 0,
            memory: 0,
            arithmetic: 0,
            control: 0,
        };
        for class in InstrClass::all() {
            let n = c.count(class);
            mix.total += n;
            if class.is_memory() {
                mix.memory += n;
            } else if matches!(class, InstrClass::Branch | InstrClass::Call) {
                mix.control += n;
            } else {
                mix.arithmetic += n;
            }
        }
        mix
    }

    /// Fraction of instructions that move data (paper: 0.43-0.51).
    pub fn memory_share(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.memory as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::edge_detect_counted_with;
    use crate::lm::{linearize_counted_with, FloatFeature, KeyframeTables};
    use pimvo_kernels::{EdgeConfig, GrayImage};
    use pimvo_vomath::{distance_transform, gradient_maps, Pinhole, SE3};

    #[test]
    fn ebvo_frame_is_memory_bound() {
        // one full frame of baseline work: edge detection + 8 LM
        // iterations, as in the paper's profile
        let img = GrayImage::from_fn(320, 240, |x, y| {
            ((x * 13 + y * 31).wrapping_mul(2654435761) >> 10) as u8
        });
        let cfg = EdgeConfig::default();
        let mut c = CostCounter::new();
        let maps =
            edge_detect_counted_with(&img, &cfg, &mut c, crate::CodegenModel::PortableScalar);

        let cam = Pinhole::qvga();
        let dt = distance_transform(maps.mask.pixels(), 320, 240);
        let (grad_x, grad_y) = gradient_maps(&dt);
        let tables = KeyframeTables { dt, grad_x, grad_y };
        let features: Vec<FloatFeature> = (0..4000)
            .map(|i| {
                let (a, b, cc) = cam.inverse_depth_coords(
                    10.0 + (i % 300) as f64,
                    10.0 + ((i / 300) * 16 % 220) as f64,
                    2.5,
                );
                FloatFeature { a, b, c: cc }
            })
            .collect();
        for _ in 0..8 {
            let _ = linearize_counted_with(
                &features,
                &tables,
                &cam,
                &SE3::IDENTITY,
                &mut c,
                crate::CodegenModel::PortableScalar,
            );
        }

        let mix = InstructionMix::from_counter(&c);
        let share = mix.memory_share();
        // paper: 43 % (x86) to 51 % (ARM) of instructions move data
        assert!(
            (0.30..0.60).contains(&share),
            "memory share {share:.3} out of the motivating range"
        );
    }

    #[test]
    fn empty_counter_has_zero_share() {
        let c = CostCounter::new();
        let mix = InstructionMix::from_counter(&c);
        assert_eq!(mix.memory_share(), 0.0);
        assert_eq!(mix.total, 0);
    }
}
