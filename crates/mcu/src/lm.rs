//! Instrumented baseline pose-estimation linearization.
//!
//! One LM iteration of the baseline warps every feature to the
//! keyframe, looks up the distance-transform residual and gradient, and
//! accumulates the 6x6 normal equations — all scalar 32-bit work on the
//! MCU (the DSP byte-SIMD does not help here, which is why the paper's
//! LM speedup is smaller than the image-kernel speedup).

use crate::counter::CostCounter;
use crate::CodegenModel;
use pimvo_vomath::{DistanceMap, NormalEquations, Pinhole, Vec3, SE3};

/// A feature in inverse-depth coordinates `(a, b, c)` (Fig. 5-a):
/// the 3D point is `(a, b, 1) / c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloatFeature {
    /// `(u - cx) / f` on the anchor frame.
    pub a: f64,
    /// `(v - cy) / f` on the anchor frame.
    pub b: f64,
    /// Inverse depth `1 / d`.
    pub c: f64,
}

/// Keyframe lookup tables: the distance transform of the keyframe edge
/// map and its gradient maps.
#[derive(Debug, Clone)]
pub struct KeyframeTables {
    /// Distance transform of the keyframe edge mask.
    pub dt: DistanceMap,
    /// `∂DT/∂u`, row-major.
    pub grad_x: Vec<f32>,
    /// `∂DT/∂v`, row-major.
    pub grad_y: Vec<f32>,
}

impl KeyframeTables {
    /// Looks up (residual, gradient) at `(u, v)`: bilinear residual
    /// (sub-pixel accuracy matters for convergence), nearest-neighbour
    /// gradients (already smooth). `None` outside the map.
    pub fn lookup(&self, u: f64, v: f64) -> Option<(f64, f64, f64)> {
        let w = self.dt.width();
        let h = self.dt.height();
        let x = u.round();
        let y = v.round();
        if x < 0.0 || y < 0.0 || x >= w as f64 || y >= h as f64 {
            return None;
        }
        let (xi, yi) = (x as u32, y as u32);
        let idx = (yi * w + xi) as usize;
        Some((
            self.dt.sample(u, v) as f64,
            self.grad_x[idx] as f64,
            self.grad_y[idx] as f64,
        ))
    }
}

/// Warps one feature by `pose` (current → keyframe) and returns the
/// keyframe-frame point `(X, Y, Z)` per Fig. 5-b.
///
/// `(X, Y, Z) = R (a, b, 1) + t c`; the true 3D point is that divided
/// by `c`, but the projection `u' = f X/Z + cx` is scale-invariant so
/// the division by `c` never happens — the trick that makes the
/// fixed-point PIM version feasible.
pub fn warp_point(f: &FloatFeature, pose: &SE3) -> Vec3 {
    let rotated = pose.rotation.rotate(Vec3::new(f.a, f.b, 1.0));
    rotated + pose.translation * f.c
}

/// Evaluates one linearization (residuals, Jacobians, normal
/// equations) over all features, charging the MCU cost model.
///
/// The Jacobian rows follow Fig. 5-c, using the shared-subexpression
/// ordering of Fig. 5-d.
pub fn linearize_counted(
    features: &[FloatFeature],
    tables: &KeyframeTables,
    cam: &Pinhole,
    pose: &SE3,
    counter: &mut CostCounter,
) -> NormalEquations {
    linearize_counted_with(features, tables, cam, pose, counter, CodegenModel::TunedDsp)
}

/// [`linearize_counted`] with an explicit code-generation model.
///
/// [`CodegenModel::TunedDsp`] keeps the Jacobian and the running
/// normal-equation accumulators in (FPU) registers, as a hand-tuned
/// PicoVO-class implementation does; [`CodegenModel::PortableScalar`]
/// models a straightforwardly compiled implementation (REVO-style)
/// whose accumulators and rotation matrix spill to memory on every
/// feature — the code the paper's Valgrind profile measured.
pub fn linearize_counted_with(
    features: &[FloatFeature],
    tables: &KeyframeTables,
    cam: &Pinhole,
    pose: &SE3,
    counter: &mut CostCounter,
    model: CodegenModel,
) -> NormalEquations {
    let mut eq = NormalEquations::zero();
    for f in features {
        if model == CodegenModel::PortableScalar {
            // spills: rotation/translation reload (12), Jacobian row
            // store+reload (6+12), accumulator read-modify-write (27+27)
            counter.load(12 + 12 + 27);
            counter.store(6 + 27);
        }
        // warp: 9 MUL + 8 ALU for R(a,b,1), 3 MUL + 3 ALU for + t*c,
        // feature load (3 words)
        counter.load(3);
        counter.mul(12);
        counter.alu(11);
        let p = warp_point(f, pose);
        // projection: 2 DIV + 2 MUL + 2 ALU, plus bounds checks
        counter.div(2);
        counter.mul(2);
        counter.alu(6);
        counter.branch(1);
        if p.z <= 1e-9 {
            continue;
        }
        let u = cam.f * p.x / p.z + cam.cx;
        let v = cam.f * p.y / p.z + cam.cy;
        if !cam.in_bounds(u, v, 1.0) {
            continue;
        }
        // residual lookup (bilinear: 4 corner loads + 3 lerps) and
        // nearest-neighbour gradient loads, plus index arithmetic
        counter.mul(4);
        counter.alu(12);
        counter.load(6);
        let Some((r, iu, iv)) = tables.lookup(u, v) else {
            continue;
        };
        // Jacobian (Fig. 5-d): s = (X Iu + Y Iv)/Z shared term
        // ~8 MUL + 2 DIV + 6 ALU
        counter.mul(8);
        counter.div(2);
        counter.alu(6);
        // (X, Y, Z) = warp output is the real point scaled by c, so
        // the projection ratios x̂ = X/Z, ŷ = Y/Z are scale-free while
        // the translation block needs 1/Z_real = c/Z. Gradients are
        // scaled by the focal length (residuals are in pixels).
        let inv_z = 1.0 / p.z;
        let inv_z_real = f.c * inv_z;
        let (gu, gv) = (cam.f * iu, cam.f * iv);
        let (xh, yh) = (p.x * inv_z, p.y * inv_z);
        let s = xh * gu + yh * gv;
        let j = [
            gu * inv_z_real,
            gv * inv_z_real,
            -s * inv_z_real,
            -(yh * s + gv),
            xh * s + gu,
            xh * gv - yh * gu,
        ];
        // Hessian/steepest-descent accumulation: 21 + 6 MACs with
        // register-pressure spills (~14 load/store)
        counter.mul(27);
        counter.load(8);
        counter.store(6);
        counter.alu(4);
        eq.accumulate(&j, r, 1.0);
    }
    // final accumulator write-out
    counter.store(27);
    counter.call(1);
    eq
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimvo_vomath::distance_transform;

    fn tables_with_edge_column(w: u32, h: u32, col: u32) -> KeyframeTables {
        let mut mask = vec![0u8; (w * h) as usize];
        for y in 0..h {
            mask[(y * w + col) as usize] = 255;
        }
        let dt = distance_transform(&mask, w, h);
        let (grad_x, grad_y) = pimvo_vomath::gradient_maps(&dt);
        KeyframeTables { dt, grad_x, grad_y }
    }

    #[test]
    fn warp_identity_preserves_projection() {
        let cam = Pinhole::qvga();
        let (a, b, c) = cam.inverse_depth_coords(100.0, 80.0, 2.0);
        let f = FloatFeature { a, b, c };
        let p = warp_point(&f, &SE3::IDENTITY);
        let u = cam.f * p.x / p.z + cam.cx;
        let v = cam.f * p.y / p.z + cam.cy;
        assert!((u - 100.0).abs() < 1e-9 && (v - 80.0).abs() < 1e-9);
    }

    #[test]
    fn warp_translation_moves_projection() {
        let cam = Pinhole::qvga();
        let (a, b, c) = cam.inverse_depth_coords(160.0, 120.0, 2.0);
        let f = FloatFeature { a, b, c };
        // camera moves 0.1 m right => feature projects left
        let pose = SE3::exp(&[-0.1, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let p = warp_point(&f, &pose);
        let u = cam.f * p.x / p.z + cam.cx;
        assert!(u < 160.0);
    }

    #[test]
    fn lm_iteration_cost_near_paper_figure() {
        let cam = Pinhole::qvga();
        let tables = tables_with_edge_column(320, 240, 150);
        // ~4000 features spread over the frame
        let features: Vec<FloatFeature> = (0..4000)
            .map(|i| {
                let u = 10.0 + (i % 300) as f64;
                let v = 10.0 + ((i / 300) * 16 % 220) as f64;
                let (a, b, c) = cam.inverse_depth_coords(u, v, 2.0 + (i % 7) as f64 * 0.3);
                FloatFeature { a, b, c }
            })
            .collect();
        let mut counter = CostCounter::new();
        let eq = linearize_counted(&features, &tables, &cam, &SE3::IDENTITY, &mut counter);
        assert!(eq.count > 3000);
        let cycles = counter.cycles();
        // paper: ~540k cycles per LM iteration on the MCU
        assert!(
            (300_000..900_000).contains(&cycles),
            "LM iteration cycles {cycles}"
        );
    }

    #[test]
    fn residual_reflects_distance_to_edge() {
        let cam = Pinhole::qvga();
        let tables = tables_with_edge_column(320, 240, 150);
        let (a, b, c) = cam.inverse_depth_coords(145.0, 120.0, 2.0);
        let mut counter = CostCounter::new();
        let eq = linearize_counted(
            &[FloatFeature { a, b, c }],
            &tables,
            &cam,
            &SE3::IDENTITY,
            &mut counter,
        );
        assert_eq!(eq.count, 1);
        // 5 px from the edge column
        assert!((eq.cost.sqrt() - 5.0).abs() < 0.5, "{}", eq.cost.sqrt());
    }
}
