//! Instrumented baseline edge detection.
//!
//! The pixel math delegates to the [`pimvo_kernels::scalar`] reference
//! (the outputs must be identical across every implementation); the
//! *cost* is charged per 4-pixel group, modeling a PicoVO-class inner
//! loop built on the ARMv7E-M DSP byte-SIMD instructions (`UHADD8`,
//! `USUB8`/`SEL`, …) that Cortex-M7 implementations use for pixel
//! processing. At QVGA this lands at ≈1.4 M cycles per frame — the
//! PicoEdge figure the paper reports for the STM32F7.

use crate::counter::CostCounter;
use crate::CodegenModel;
use pimvo_kernels::{scalar, EdgeConfig, EdgeMaps, GrayImage};

/// Runs baseline edge detection, charging the MCU cost model.
pub fn edge_detect_counted(
    img: &GrayImage,
    cfg: &EdgeConfig,
    counter: &mut CostCounter,
) -> EdgeMaps {
    edge_detect_counted_with(img, cfg, counter, CodegenModel::TunedDsp)
}

/// [`edge_detect_counted`] with an explicit code-generation model:
/// [`CodegenModel::PortableScalar`] charges per-pixel scalar loads (no
/// byte-SIMD), modeling a portable REVO-style build.
pub fn edge_detect_counted_with(
    img: &GrayImage,
    cfg: &EdgeConfig,
    counter: &mut CostCounter,
    model: CodegenModel,
) -> EdgeMaps {
    let maps = scalar::edge_detect(img, cfg);
    match model {
        CodegenModel::TunedDsp => charge_edge_costs(img.width(), img.height(), counter),
        CodegenModel::PortableScalar => {
            // scalar per-pixel loops: every neighbourhood access is a
            // byte load, every intermediate a store
            let px = img.width() as u64 * img.height() as u64;
            counter.load((4 + 6 + 6) * px);
            counter.alu((4 + 11 + 17) * px);
            counter.store(3 * px);
            counter.branch(px);
        }
    }
    maps
}

/// Charges the structural cost of the three kernels for a `w x h` frame.
///
/// Per 4-pixel SIMD group and per pass:
///
/// * LPF (two 2x2 averaging passes): 3 loads (two aligned rows + one
///   unaligned shifted group), 2 `UHADD8`, 1 store, loop overhead.
/// * HPF (4-direction SAD/4): 6 loads (3 rows, aligned + unaligned),
///   4 absolute differences (USUB8/SEL pairs), 3 averages, 1 store.
/// * NMS (branch-free min/max form): 6 loads, 4 max + 3 min
///   (USUB8+SEL each), threshold compare/select, mask store.
fn charge_edge_costs(w: u32, h: u32, counter: &mut CostCounter) {
    let groups = ((w as u64) / 4) * (h as u64);
    // LPF: two passes
    for _pass in 0..2 {
        counter.load(3 * groups);
        counter.alu(2 * groups);
        counter.store(groups);
        counter.branch(groups / 4); // unrolled x4
    }
    // HPF
    counter.load(6 * groups);
    counter.alu((4 * 2 + 3) * groups); // 4 abs-diffs (2 insns) + 3 avgs
    counter.store(groups);
    counter.branch(groups / 4);
    // NMS
    counter.load(6 * groups);
    counter.alu((7 * 2 + 3) * groups); // 7 min/max (2 insns) + cmp/sel
    counter.store(groups);
    counter.branch(groups / 4);
    counter.call(3 * h as u64); // per-row kernel dispatch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qvga_frame_lands_near_picovo_figure() {
        let img = GrayImage::from_fn(320, 240, |x, y| ((x * 3 + y * 5) % 251) as u8);
        let mut c = CostCounter::new();
        let _ = edge_detect_counted(&img, &EdgeConfig::default(), &mut c);
        let cycles = c.cycles();
        // paper: PicoEdge takes ~1.42 M cycles on the STM32F7
        assert!(
            (900_000..2_200_000).contains(&cycles),
            "edge cycles {cycles}"
        );
    }

    #[test]
    fn output_is_the_reference_output() {
        let img = GrayImage::from_fn(64, 48, |x, y| (x * y) as u8);
        let cfg = EdgeConfig::default();
        let mut c = CostCounter::new();
        let got = edge_detect_counted(&img, &cfg, &mut c);
        let want = scalar::edge_detect(&img, &cfg);
        assert_eq!(got.mask, want.mask);
    }

    #[test]
    fn cost_scales_with_area() {
        let mut c1 = CostCounter::new();
        charge_edge_costs(320, 120, &mut c1);
        let mut c2 = CostCounter::new();
        charge_edge_costs(320, 240, &mut c2);
        assert!(c2.cycles() > c1.cycles() * 19 / 10);
    }
}
