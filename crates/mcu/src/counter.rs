use std::collections::BTreeMap;

/// Instruction classes of the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstrClass {
    /// Simple ALU (add/sub/shift/logic/compare/select).
    Alu,
    /// 32-bit multiply or multiply-accumulate.
    Mul,
    /// Integer divide.
    Div,
    /// Memory load (word or SIMD4 byte group).
    Load,
    /// Memory store.
    Store,
    /// Taken branch / loop overhead.
    Branch,
    /// Call/return overhead.
    Call,
}

impl InstrClass {
    /// All classes, for iteration.
    pub fn all() -> [InstrClass; 7] {
        use InstrClass::*;
        [Alu, Mul, Div, Load, Store, Branch, Call]
    }

    /// True for data-movement instructions (the profile of §1).
    pub fn is_memory(self) -> bool {
        matches!(self, InstrClass::Load | InstrClass::Store)
    }
}

/// Per-class cycle costs and the energy constant of the MCU model.
#[derive(Debug, Clone, PartialEq)]
pub struct McuCostTable {
    /// Cycles per ALU instruction.
    pub alu: u64,
    /// Cycles per multiply/MAC.
    pub mul: u64,
    /// Cycles per divide (SDIV/UDIV mid-range).
    pub div: u64,
    /// Cycles per load.
    pub load: u64,
    /// Cycles per store.
    pub store: u64,
    /// Cycles per taken branch.
    pub branch: u64,
    /// Cycles per call/return pair.
    pub call: u64,
    /// Energy per cycle in nJ. Calibrated so a PicoVO-class frame
    /// (≈6.8 M cycles) costs ≈10.3 mJ, matching both the paper's §5.4
    /// figure and the STM32F7 datasheet envelope (≈0.33 W @ 216 MHz).
    pub energy_nj_per_cycle: f64,
    /// Clock frequency, Hz.
    pub clock_hz: f64,
}

impl McuCostTable {
    /// Cortex-M7-class defaults.
    pub fn cortex_m7() -> Self {
        McuCostTable {
            alu: 1,
            mul: 1,
            div: 6,
            load: 2,
            store: 1,
            branch: 2,
            call: 4,
            energy_nj_per_cycle: 1.51,
            clock_hz: 216.0e6,
        }
    }

    /// Cycles for one instruction of a class.
    pub fn cycles(&self, class: InstrClass) -> u64 {
        match class {
            InstrClass::Alu => self.alu,
            InstrClass::Mul => self.mul,
            InstrClass::Div => self.div,
            InstrClass::Load => self.load,
            InstrClass::Store => self.store,
            InstrClass::Branch => self.branch,
            InstrClass::Call => self.call,
        }
    }
}

impl Default for McuCostTable {
    fn default() -> Self {
        Self::cortex_m7()
    }
}

/// Accumulates instruction counts and cycles for the MCU model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostCounter {
    table: McuCostTable,
    counts: BTreeMap<InstrClass, u64>,
    cycles: u64,
}

impl CostCounter {
    /// New counter with the default Cortex-M7 table.
    pub fn new() -> Self {
        Self::with_table(McuCostTable::default())
    }

    /// New counter with an explicit cost table.
    pub fn with_table(table: McuCostTable) -> Self {
        CostCounter {
            table,
            counts: BTreeMap::new(),
            cycles: 0,
        }
    }

    /// Charges `n` instructions of a class.
    #[inline]
    pub fn charge(&mut self, class: InstrClass, n: u64) {
        *self.counts.entry(class).or_insert(0) += n;
        self.cycles += n * self.table.cycles(class);
    }

    /// Shorthand charges.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.charge(InstrClass::Alu, n);
    }
    /// Charges multiplies.
    #[inline]
    pub fn mul(&mut self, n: u64) {
        self.charge(InstrClass::Mul, n);
    }
    /// Charges divides.
    #[inline]
    pub fn div(&mut self, n: u64) {
        self.charge(InstrClass::Div, n);
    }
    /// Charges loads.
    #[inline]
    pub fn load(&mut self, n: u64) {
        self.charge(InstrClass::Load, n);
    }
    /// Charges stores.
    #[inline]
    pub fn store(&mut self, n: u64) {
        self.charge(InstrClass::Store, n);
    }
    /// Charges branches.
    #[inline]
    pub fn branch(&mut self, n: u64) {
        self.charge(InstrClass::Branch, n);
    }
    /// Charges call/returns.
    #[inline]
    pub fn call(&mut self, n: u64) {
        self.charge(InstrClass::Call, n);
    }

    /// Total modeled cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instruction count of one class.
    pub fn count(&self, class: InstrClass) -> u64 {
        self.counts.get(&class).copied().unwrap_or(0)
    }

    /// Total instruction count.
    pub fn total_instructions(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Modeled energy in mJ.
    pub fn energy_mj(&self) -> f64 {
        self.cycles as f64 * self.table.energy_nj_per_cycle * 1e-6
    }

    /// Wall-clock seconds at the table's clock.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / self.table.clock_hz
    }

    /// The cost table in use.
    pub fn table(&self) -> &McuCostTable {
        &self.table
    }

    /// Resets counters, keeping the table.
    pub fn reset(&mut self) {
        self.counts.clear();
        self.cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut c = CostCounter::new();
        c.alu(10);
        c.load(5);
        c.div(2);
        assert_eq!(c.count(InstrClass::Alu), 10);
        assert_eq!(c.cycles(), 10 + 5 * 2 + 2 * 6);
        assert_eq!(c.total_instructions(), 17);
    }

    #[test]
    fn energy_scales_with_cycles() {
        let mut c = CostCounter::new();
        c.alu(1_000_000);
        assert!((c.energy_mj() - 1.51).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_counts() {
        let mut c = CostCounter::new();
        c.mul(3);
        c.reset();
        assert_eq!(c.cycles(), 0);
        assert_eq!(c.total_instructions(), 0);
    }

    #[test]
    fn memory_classification() {
        assert!(InstrClass::Load.is_memory());
        assert!(InstrClass::Store.is_memory());
        assert!(!InstrClass::Mul.is_memory());
    }
}
