#![warn(missing_docs)]

//! The embedded-MCU baseline: a PicoVO-style EBVO implementation with a
//! Cortex-M7-class instruction cost model.
//!
//! The paper compares its PIM accelerator against PicoVO running on a
//! 216 MHz STM32F7 (90 nm). We cannot run on that silicon here, so this
//! crate provides the substitute documented in `DESIGN.md`: the same
//! algorithms executed in plain Rust, with every operation charged to an
//! instruction-class [`CostCounter`] whose per-class cycle costs follow
//! the Cortex-M7 pipeline (single-cycle ALU/MAC, 2-cycle loads, mid
//! single-digit division, and the ARMv7E-M DSP extension's 4-lane byte
//! SIMD for pixel processing — which PicoVO-class implementations rely
//! on to reach real-time rates).
//!
//! Three things come out of it:
//!
//! * per-frame **cycle counts** for Fig. 9-a (edge detection ≈ 1.4 M
//!   cycles, one LM iteration ≈ 0.5 M cycles at ~4 k features);
//! * per-frame **energy** for §5.4 (the STM32F7 runs ≈ 0.33 W at
//!   216 MHz → ≈ 1.5 nJ/cycle);
//! * the **instruction-mix profile** motivating the paper (§1: about
//!   half of all executed instructions are data movement).

mod counter;
mod edge;
mod lm;
mod profile;

pub use counter::{CostCounter, InstrClass, McuCostTable};
pub use edge::{edge_detect_counted, edge_detect_counted_with};
pub use lm::{linearize_counted, linearize_counted_with, FloatFeature, KeyframeTables};
pub use profile::InstructionMix;

/// How the baseline was compiled — the paper's two baselines differ:
/// the cycle/energy comparison uses the hand-tuned PicoVO (DSP
/// byte-SIMD, register-resident accumulators) while the §1 Valgrind
/// profile measured portable REVO builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodegenModel {
    /// Hand-tuned DSP/SIMD implementation (PicoVO-class).
    TunedDsp,
    /// Straightforward portable build (REVO-class).
    PortableScalar,
}
