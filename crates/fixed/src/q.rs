use crate::FixedError;
use std::cmp::Ordering;
use std::fmt;

/// A two's-complement fixed-point number in Q`I`.`F` format.
///
/// `I` counts the integer bits *including the sign bit* and `F` the
/// fractional bits, following the convention of the paper (Q4.12, Q1.15,
/// Q14.2 and Q29.3 are all 16- or 32-bit words). The total width
/// `I + F` must be between 2 and 63 bits.
///
/// The raw value is stored sign-extended in an `i64`; every constructor
/// and arithmetic method maintains the invariant that the raw value fits
/// in `I + F` bits.
///
/// Arithmetic comes in two flavours mirroring the PIM datapath:
/// *wrapping* (`wrapping_add`, plain `+`) which reduces modulo 2^(I+F)
/// exactly like the hardware accumulator with carry propagation cut at
/// the word boundary, and *saturating* (`saturating_add`, …) which uses
/// the carry-extension overflow mask the way the paper's `sat` operator
/// does.
///
/// ```
/// use pimvo_fixed::Q;
/// let a: Q<4, 12> = Q::from_f64(3.25);
/// let b: Q<4, 12> = Q::from_f64(6.0); // saturates: max is ~7.9998
/// assert_eq!(a.saturating_add(b), Q::<4, 12>::MAX);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Q<const I: u32, const F: u32>(i64);

impl<const I: u32, const F: u32> Q<I, F> {
    /// Total bit width of the format (integer + fractional bits).
    pub const BITS: u32 = I + F;
    /// Largest representable value.
    pub const MAX: Self = {
        assert!(I + F >= 2 && I + F <= 63, "Q format must be 2..=63 bits");
        Q((1i64 << (I + F - 1)) - 1)
    };
    /// Most negative representable value.
    pub const MIN: Self = Q(-(1i64 << (I + F - 1)));
    /// Zero.
    pub const ZERO: Self = Q(0);
    /// The smallest positive increment (one LSB).
    pub const EPSILON: Self = Q(1);
    /// Scale factor: one unit equals `2^F` raw LSBs.
    pub const SCALE: f64 = (1u64 << F) as f64;

    /// Builds a value from its raw two's-complement representation.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `raw` does not fit in `I + F` bits.
    #[inline]
    pub fn from_raw(raw: i64) -> Self {
        debug_assert!(
            raw >= Self::MIN.0 && raw <= Self::MAX.0,
            "raw value {raw} out of range for Q{I}.{F}"
        );
        Q(raw)
    }

    /// Builds a value from a raw representation, wrapping modulo 2^(I+F).
    #[inline]
    pub fn from_raw_wrapping(raw: i64) -> Self {
        let bits = I + F;
        let shifted = (raw as u64) << (64 - bits);
        Q((shifted as i64) >> (64 - bits))
    }

    /// Builds a value from a raw representation, saturating to the range.
    #[inline]
    pub fn from_raw_saturating(raw: i64) -> Self {
        Q(raw.clamp(Self::MIN.0, Self::MAX.0))
    }

    /// Converts from `f64`, rounding to nearest and saturating.
    #[inline]
    pub fn from_f64(v: f64) -> Self {
        if v.is_nan() {
            return Self::ZERO;
        }
        let scaled = (v * Self::SCALE).round();
        if scaled >= Self::MAX.0 as f64 {
            Self::MAX
        } else if scaled <= Self::MIN.0 as f64 {
            Self::MIN
        } else {
            Q(scaled as i64)
        }
    }

    /// Converts from `f64`, failing instead of saturating.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::NotFinite`] for NaN/infinities and
    /// [`FixedError::OutOfRange`] when the rounded value does not fit.
    pub fn try_from_f64(v: f64) -> Result<Self, FixedError> {
        if !v.is_finite() {
            return Err(FixedError::NotFinite);
        }
        let scaled = (v * Self::SCALE).round();
        if scaled > Self::MAX.0 as f64 || scaled < Self::MIN.0 as f64 {
            return Err(FixedError::OutOfRange {
                value: v,
                bits: Self::BITS,
                frac: F,
            });
        }
        Ok(Q(scaled as i64))
    }

    /// Raw two's-complement representation, sign-extended to `i64`.
    #[inline]
    pub fn raw(self) -> i64 {
        self.0
    }

    /// Converts to `f64`. Exact: every representable value fits in an f64
    /// mantissa for formats up to 53 bits.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / Self::SCALE
    }

    /// Wrapping addition (hardware accumulator semantics).
    #[inline]
    pub fn wrapping_add(self, rhs: Self) -> Self {
        Self::from_raw_wrapping(self.0 + rhs.0)
    }

    /// Wrapping subtraction.
    #[inline]
    pub fn wrapping_sub(self, rhs: Self) -> Self {
        Self::from_raw_wrapping(self.0 - rhs.0)
    }

    /// Saturating addition (carry-extension `sat` semantics).
    #[inline]
    pub fn saturating_add(self, rhs: Self) -> Self {
        Self::from_raw_saturating(self.0 + rhs.0)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self::from_raw_saturating(self.0 - rhs.0)
    }

    /// Arithmetic negation, saturating at the minimum.
    #[inline]
    pub fn saturating_neg(self) -> Self {
        Self::from_raw_saturating(-self.0)
    }

    /// Average `(a + b) / 2` with truncation toward negative infinity —
    /// the PIM `avg` primitive (add then arithmetic shift right by 1).
    #[inline]
    pub fn avg(self, rhs: Self) -> Self {
        Q((self.0 + rhs.0) >> 1)
    }

    /// Absolute difference `|a - b|`, saturating.
    #[inline]
    pub fn abs_diff(self, rhs: Self) -> Self {
        Self::from_raw_saturating((self.0 - rhs.0).abs())
    }

    /// Branch-free maximum as realized on the PIM:
    /// `max(a, b) = sat(a - b) + b` (valid because `sat` clamps the
    /// difference at 0 from below only when `a < b`... the hardware uses
    /// the carry-extension mask; the arithmetic identity below is the
    /// Hacker's-Delight form the paper cites and is what we model).
    #[inline]
    pub fn max(self, rhs: Self) -> Self {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Branch-free minimum (`min(a, b) = a - sat(a - b)` on hardware).
    #[inline]
    pub fn min(self, rhs: Self) -> Self {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Full-precision product with a value in another format.
    ///
    /// Multiplying Q`I`.`F` by Q`I2`.`F2` yields a raw value in
    /// Q(`I`+`I2`).(`F`+`F2`); this returns that raw product as `i64`
    /// (no precision loss for operand widths summing to ≤ 63 bits).
    #[inline]
    pub fn mul_raw<const I2: u32, const F2: u32>(self, rhs: Q<I2, F2>) -> i64 {
        self.0 * rhs.0
    }

    /// Multiplies by a value in another format and rescales (with
    /// round-half-up on the discarded bits) into the requested output
    /// format, saturating on overflow.
    #[inline]
    pub fn mul_rescale<const IO: u32, const FO: u32>(self, rhs: impl Into<RawQ>) -> Q<IO, FO> {
        let rhs = rhs.into();
        let prod = self.0 * rhs.raw;
        let prod_frac = F + rhs.frac;
        rescale_raw(prod, prod_frac, FO)
    }

    /// Reinterprets into another format, shifting the binary point and
    /// saturating (used for explicit down/up-conversion steps between
    /// pipeline stages).
    #[inline]
    pub fn convert<const IO: u32, const FO: u32>(self) -> Q<IO, FO> {
        rescale_raw(self.0, F, FO)
    }

    /// `self / rhs` using integer division on the raw values, keeping
    /// `FO` fractional bits in the quotient (the PIM restoring divider
    /// produces exactly this when the dividend is pre-shifted).
    ///
    /// Returns `None` when `rhs` is zero.
    #[inline]
    pub fn div_rescale<const I2: u32, const F2: u32, const IO: u32, const FO: u32>(
        self,
        rhs: Q<I2, F2>,
    ) -> Option<Q<IO, FO>> {
        if rhs.0 == 0 {
            return None;
        }
        // quotient fractional bits = F - F2 + pre_shift
        // choose pre_shift so that F - F2 + pre_shift == FO
        let pre_shift = (FO + F2) as i64 - F as i64;
        let num = if pre_shift >= 0 {
            (self.0 as i128) << pre_shift
        } else {
            (self.0 as i128) >> (-pre_shift)
        };
        let q = num / rhs.0 as i128;
        Some(Q::<IO, FO>::from_raw_saturating(
            q.clamp(i64::MIN as i128, i64::MAX as i128) as i64,
        ))
    }

    /// Absolute value, saturating at `MAX` for `MIN`.
    #[inline]
    pub fn abs(self) -> Self {
        Self::from_raw_saturating(self.0.abs())
    }

    /// True when the value is negative.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 < 0
    }
}

/// Rescales a raw fixed-point value from `from_frac` fractional bits to
/// `to_frac`, rounding half-up on right shifts, saturating into Q`IO`.`FO`.
#[inline]
fn rescale_raw<const IO: u32, const FO: u32>(raw: i64, from_frac: u32, to_frac: u32) -> Q<IO, FO> {
    let v = match from_frac.cmp(&to_frac) {
        Ordering::Greater => {
            let sh = from_frac - to_frac;
            // round half up: add 2^(sh-1) before the arithmetic shift
            ((raw as i128 + (1i128 << (sh - 1))) >> sh) as i64
        }
        Ordering::Less => {
            let sh = to_frac - from_frac;
            match raw.checked_shl(sh) {
                Some(v) if (v >> sh) == raw => v,
                _ => {
                    return if raw >= 0 {
                        Q::<IO, FO>::MAX
                    } else {
                        Q::<IO, FO>::MIN
                    }
                }
            }
        }
        Ordering::Equal => raw,
    };
    Q::<IO, FO>::from_raw_saturating(v)
}

/// Type-erased raw fixed-point value used by [`Q::mul_rescale`] so the
/// multiplier can accept any Q-format operand.
#[derive(Debug, Clone, Copy)]
pub struct RawQ {
    raw: i64,
    frac: u32,
}

impl<const I: u32, const F: u32> From<Q<I, F>> for RawQ {
    fn from(q: Q<I, F>) -> Self {
        RawQ { raw: q.0, frac: F }
    }
}

impl<const I: u32, const F: u32> fmt::Debug for Q<I, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{I}.{F}({})", self.to_f64())
    }
}

impl<const I: u32, const F: u32> fmt::Display for Q<I, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl<const I: u32, const F: u32> fmt::Binary for Q<I, F> {
    /// Formats the raw two's-complement bit pattern (masked to the
    /// format's width) — the view the PIM word line stores.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mask = if Self::BITS >= 64 {
            u64::MAX
        } else {
            (1u64 << Self::BITS) - 1
        };
        fmt::Binary::fmt(&((self.0 as u64) & mask), f)
    }
}

impl<const I: u32, const F: u32> fmt::LowerHex for Q<I, F> {
    /// Formats the raw bit pattern in hexadecimal.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mask = if Self::BITS >= 64 {
            u64::MAX
        } else {
            (1u64 << Self::BITS) - 1
        };
        fmt::LowerHex::fmt(&((self.0 as u64) & mask), f)
    }
}

impl<const I: u32, const F: u32> PartialOrd for Q<I, F> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const I: u32, const F: u32> Ord for Q<I, F> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp(&other.0)
    }
}

impl<const I: u32, const F: u32> std::ops::Add for Q<I, F> {
    type Output = Self;
    /// Wrapping addition, matching the hardware accumulator.
    fn add(self, rhs: Self) -> Self {
        self.wrapping_add(rhs)
    }
}

impl<const I: u32, const F: u32> std::ops::Sub for Q<I, F> {
    type Output = Self;
    /// Wrapping subtraction, matching the hardware accumulator.
    fn sub(self, rhs: Self) -> Self {
        self.wrapping_sub(rhs)
    }
}

impl<const I: u32, const F: u32> std::ops::Neg for Q<I, F> {
    type Output = Self;
    fn neg(self) -> Self {
        Self::from_raw_wrapping(-self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    type Q4_12 = Q<4, 12>;
    type Q1_15 = Q<1, 15>;
    type Q29_3 = Q<29, 3>;

    #[test]
    fn constants() {
        assert_eq!(Q4_12::BITS, 16);
        assert_eq!(Q4_12::MAX.raw(), 32767);
        assert_eq!(Q4_12::MIN.raw(), -32768);
        assert_eq!(Q4_12::SCALE, 4096.0);
        assert_eq!(Q29_3::BITS, 32);
    }

    #[test]
    fn f64_roundtrip_is_within_half_lsb() {
        for &v in &[0.0, 1.0, -1.0, 3.14159, -2.71828, 7.9, -7.9] {
            let q = Q4_12::from_f64(v);
            assert!((q.to_f64() - v).abs() <= 0.5 / 4096.0 + 1e-12, "v={v}");
        }
    }

    #[test]
    fn from_f64_saturates() {
        assert_eq!(Q4_12::from_f64(100.0), Q4_12::MAX);
        assert_eq!(Q4_12::from_f64(-100.0), Q4_12::MIN);
        assert_eq!(Q4_12::from_f64(f64::NAN), Q4_12::ZERO);
    }

    #[test]
    fn try_from_f64_rejects() {
        assert!(Q4_12::try_from_f64(100.0).is_err());
        assert!(Q4_12::try_from_f64(f64::INFINITY).is_err());
        assert!(Q4_12::try_from_f64(1.25).is_ok());
    }

    #[test]
    fn wrapping_add_wraps() {
        let max = Q4_12::MAX;
        let one = Q4_12::EPSILON;
        assert_eq!(max.wrapping_add(one), Q4_12::MIN);
    }

    #[test]
    fn saturating_ops_clamp() {
        let max = Q4_12::MAX;
        assert_eq!(max.saturating_add(Q4_12::EPSILON), max);
        assert_eq!(Q4_12::MIN.saturating_sub(Q4_12::EPSILON), Q4_12::MIN);
        assert_eq!(Q4_12::MIN.saturating_neg(), Q4_12::MAX);
    }

    #[test]
    fn avg_matches_shift() {
        let a = Q4_12::from_f64(3.0);
        let b = Q4_12::from_f64(1.0);
        assert_eq!(a.avg(b).to_f64(), 2.0);
        // truncation toward -inf on odd raw sums
        let a = Q4_12::from_raw(3);
        let b = Q4_12::from_raw(0);
        assert_eq!(a.avg(b).raw(), 1);
        let a = Q4_12::from_raw(-3);
        assert_eq!(a.avg(b).raw(), -2);
    }

    #[test]
    fn mul_rescale_q4_12_by_q1_15() {
        let a = Q4_12::from_f64(2.5);
        let r = Q1_15::from_f64(-0.5);
        let out: Q4_12 = a.mul_rescale(r);
        assert!((out.to_f64() + 1.25).abs() < 2.0 / 4096.0);
    }

    #[test]
    fn div_rescale_basic() {
        let x: Q<20, 12> = Q::from_f64(6.0);
        let z: Q<20, 12> = Q::from_f64(2.0);
        let q: Q<20, 12> = x.div_rescale::<20, 12, 20, 12>(z).unwrap();
        assert!((q.to_f64() - 3.0).abs() < 1.0 / 4096.0);
        assert!(x.div_rescale::<20, 12, 20, 12>(Q::ZERO).is_none());
    }

    #[test]
    fn convert_between_formats() {
        let j: Q<14, 2> = Q::<4, 12>::from_f64(3.75).convert();
        assert_eq!(j.to_f64(), 3.75);
        // precision loss rounds to nearest
        let j: Q<14, 2> = Q::<4, 12>::from_f64(3.3).convert();
        assert!((j.to_f64() - 3.25).abs() < 0.26);
    }

    #[test]
    fn min_max_and_absdiff() {
        let a = Q4_12::from_f64(1.0);
        let b = Q4_12::from_f64(-2.0);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(a.abs_diff(b).to_f64(), 3.0);
        assert_eq!(b.abs(), Q4_12::from_f64(2.0));
    }

    #[test]
    fn ordering_follows_value() {
        let mut v = [
            Q4_12::from_f64(1.5),
            Q4_12::from_f64(-3.0),
            Q4_12::from_f64(0.0),
        ];
        v.sort();
        assert_eq!(v[0].to_f64(), -3.0);
        assert_eq!(v[2].to_f64(), 1.5);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Q4_12::ZERO).is_empty());
    }

    #[test]
    fn binary_and_hex_show_raw_pattern() {
        let v = Q4_12::from_raw(-1); // all ones in 16 bits
        assert_eq!(format!("{v:x}"), "ffff");
        assert_eq!(format!("{v:b}"), "1".repeat(16));
        let one = Q4_12::from_f64(1.0); // raw 0x1000
        assert_eq!(format!("{one:x}"), "1000");
    }
}
