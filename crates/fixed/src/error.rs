use std::fmt;

/// Error produced by checked fixed-point conversions.
#[derive(Debug, Clone, PartialEq)]
pub enum FixedError {
    /// The value does not fit in the target format's representable range.
    OutOfRange {
        /// The offending value, as `f64`.
        value: f64,
        /// Total bit width of the target format.
        bits: u32,
        /// Fractional bit count of the target format.
        frac: u32,
    },
    /// The value is NaN or infinite and has no fixed-point representation.
    NotFinite,
}

impl fmt::Display for FixedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixedError::OutOfRange { value, bits, frac } => {
                write!(f, "value {value} out of range for Q{}.{frac}", bits - frac)
            }
            FixedError::NotFinite => write!(f, "value is not finite"),
        }
    }
}

impl std::error::Error for FixedError {}
