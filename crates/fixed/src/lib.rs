#![warn(missing_docs)]

//! Q-format fixed-point arithmetic for the pimvo stack.
//!
//! The DAC'22 paper quantizes every stage of the EBVO pipeline to a
//! specific two's-complement Q-format so that it can be evaluated on the
//! bit-parallel SRAM-PIM datapath:
//!
//! * 3D features in inverse-depth coordinates: **Q4.12** (16-bit),
//! * rotation/translation entries (all within (-1, 1)): **Q1.15** (16-bit),
//! * Jacobian entries: **Q14.2** (16-bit),
//! * Hessian and steepest-descent accumulators: **Q29.3** (32-bit).
//!
//! This crate provides a const-generic [`Q`] type covering those formats
//! (and any other that fits in 64 bits), with saturating conversions,
//! wrapping/saturating arithmetic and explicit rescaling — exactly the
//! operations the PIM ISA offers, so the quantized algorithm layer and the
//! hardware value model share one arithmetic definition.
//!
//! ```
//! use pimvo_fixed::{Q4_12, Q1_15};
//!
//! let a = Q4_12::from_f64(1.5);
//! let r = Q1_15::from_f64(0.25);
//! // Multiply a Q4.12 by a Q1.15: the raw product is Q5.27; rescale back.
//! let prod = a.mul_rescale::<4, 12>(r);
//! assert!((prod.to_f64() - 0.375).abs() < 2.0 / 4096.0);
//! ```

mod error;
mod q;
pub mod sat;

pub use error::FixedError;
pub use q::Q;

/// 16-bit feature coordinate format (4 integer bits incl. sign, 12 fractional).
pub type Q4_12 = Q<4, 12>;
/// 16-bit rotation/translation format (values in (-1, 1)).
pub type Q1_15 = Q<1, 15>;
/// 16-bit Jacobian entry format.
pub type Q14_2 = Q<14, 2>;
/// 32-bit Hessian/steepest-descent accumulator format.
pub type Q29_3 = Q<29, 3>;
/// 8-bit signed sample (integer only).
pub type Q8_0 = Q<8, 0>;
/// 16-bit signed integer sample.
pub type Q16_0 = Q<16, 0>;
/// A 32-bit intermediate with 12 fractional bits (warp X/Y/Z accumulators).
pub type Q20_12 = Q<20, 12>;
