//! Saturating lane arithmetic on plain integer types.
//!
//! The PIM value model (crate `pimvo-pim`) operates on lanes of 8/16/32
//! bits; these helpers define the exact semantics of the saturating and
//! averaging primitives for each lane width so that the fast vector model
//! and the gate-level bit-exact model agree on one definition.

/// Saturating unsigned 8-bit add — the `sat(A + B)` primitive on pixel data.
#[inline]
pub fn sat_add_u8(a: u8, b: u8) -> u8 {
    a.saturating_add(b)
}

/// Saturating unsigned 8-bit subtract, clamping at zero.
#[inline]
pub fn sat_sub_u8(a: u8, b: u8) -> u8 {
    a.saturating_sub(b)
}

/// Absolute difference of unsigned 8-bit values (Fig. 7-a of the paper).
#[inline]
pub fn abs_diff_u8(a: u8, b: u8) -> u8 {
    a.abs_diff(b)
}

/// Average with truncation: `(a + b) >> 1` on unsigned 8-bit pixels.
#[inline]
pub fn avg_u8(a: u8, b: u8) -> u8 {
    (((a as u16) + (b as u16)) >> 1) as u8
}

/// Branch-free max via the saturating identity the paper cites:
/// `max(a, b) = sat(a - b) + b` (unsigned saturation clamps at 0).
#[inline]
pub fn max_u8(a: u8, b: u8) -> u8 {
    sat_sub_u8(a, b).wrapping_add(b)
}

/// Branch-free min: `min(a, b) = a - sat(a - b)`.
#[inline]
pub fn min_u8(a: u8, b: u8) -> u8 {
    a.wrapping_sub(sat_sub_u8(a, b))
}

/// Generic saturating clamp of an `i64` into a signed `bits`-wide word.
#[inline]
pub fn clamp_signed(v: i64, bits: u32) -> i64 {
    let max = (1i64 << (bits - 1)) - 1;
    let min = -(1i64 << (bits - 1));
    v.clamp(min, max)
}

/// Generic wrap of an `i64` into a signed `bits`-wide word (two's
/// complement truncation, i.e. carry propagation cut at the word edge).
#[inline]
pub fn wrap_signed(v: i64, bits: u32) -> i64 {
    let sh = 64 - bits;
    ((v as u64) << sh) as i64 >> sh
}

/// Generic wrap into an unsigned `bits`-wide word.
#[inline]
pub fn wrap_unsigned(v: i64, bits: u32) -> u64 {
    (v as u64) & (u64::MAX >> (64 - bits))
}

/// Generic saturating clamp into an unsigned `bits`-wide word.
#[inline]
pub fn clamp_unsigned(v: i64, bits: u32) -> u64 {
    let max = (u64::MAX >> (64 - bits)) as i64;
    v.clamp(0, max) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u8_primitives() {
        assert_eq!(sat_add_u8(200, 100), 255);
        assert_eq!(sat_sub_u8(10, 100), 0);
        assert_eq!(abs_diff_u8(10, 100), 90);
        assert_eq!(avg_u8(3, 4), 3);
        assert_eq!(avg_u8(255, 255), 255);
    }

    #[test]
    fn branch_free_min_max_match_std() {
        for a in (0u16..=255).step_by(7) {
            for b in (0u16..=255).step_by(11) {
                let (a, b) = (a as u8, b as u8);
                assert_eq!(max_u8(a, b), a.max(b), "max({a},{b})");
                assert_eq!(min_u8(a, b), a.min(b), "min({a},{b})");
            }
        }
    }

    #[test]
    fn wrap_and_clamp() {
        assert_eq!(wrap_signed(128, 8), -128);
        assert_eq!(wrap_signed(-129, 8), 127);
        assert_eq!(clamp_signed(128, 8), 127);
        assert_eq!(clamp_signed(-300, 8), -128);
        assert_eq!(wrap_unsigned(256, 8), 0);
        assert_eq!(clamp_unsigned(-5, 8), 0);
        assert_eq!(clamp_unsigned(300, 8), 255);
    }
}
