//! Property-based tests for the fixed-point core.

use pimvo_fixed::{sat, Q};
use proptest::prelude::*;

type Q4_12 = Q<4, 12>;
type Q1_15 = Q<1, 15>;
type Q29_3 = Q<29, 3>;

proptest! {
    /// Quantization error is bounded by half an LSB for in-range values.
    #[test]
    fn quantization_error_bounded(v in -7.99f64..7.99) {
        let q = Q4_12::from_f64(v);
        prop_assert!((q.to_f64() - v).abs() <= 0.5 / 4096.0 + 1e-12);
    }

    /// Raw round-trip is lossless.
    #[test]
    fn raw_roundtrip(r in -32768i64..=32767) {
        prop_assert_eq!(Q4_12::from_raw(r).raw(), r);
    }

    /// Saturating add never leaves the representable range and is
    /// commutative.
    #[test]
    fn saturating_add_in_range(a in -32768i64..=32767, b in -32768i64..=32767) {
        let (qa, qb) = (Q4_12::from_raw(a), Q4_12::from_raw(b));
        let s = qa.saturating_add(qb);
        prop_assert!(s >= Q4_12::MIN && s <= Q4_12::MAX);
        prop_assert_eq!(s, qb.saturating_add(qa));
    }

    /// Wrapping add agrees with i16 wrapping arithmetic for 16-bit formats.
    #[test]
    fn wrapping_add_matches_i16(a in any::<i16>(), b in any::<i16>()) {
        let s = Q4_12::from_raw(a as i64).wrapping_add(Q4_12::from_raw(b as i64));
        prop_assert_eq!(s.raw(), a.wrapping_add(b) as i64);
    }

    /// avg is always between min and max of the operands.
    #[test]
    fn avg_bounded(a in any::<i16>(), b in any::<i16>()) {
        let (qa, qb) = (Q4_12::from_raw(a as i64), Q4_12::from_raw(b as i64));
        let m = qa.avg(qb);
        prop_assert!(m >= qa.min(qb) && m <= qa.max(qb));
    }

    /// Q4.12 × Q1.15 → Q4.12 matches float multiplication within the
    /// quantization budget the paper claims for warping.
    #[test]
    fn mul_rescale_accuracy(a in -7.9f64..7.9, r in -0.999f64..0.999) {
        let qa = Q4_12::from_f64(a);
        let qr = Q1_15::from_f64(r);
        let prod: Q4_12 = qa.mul_rescale(qr);
        let exact = a * r;
        if exact.abs() < 7.9 {
            // one LSB of each operand plus rounding of the product
            prop_assert!((prod.to_f64() - exact).abs() < 4.0 / 4096.0,
                "a={a} r={r} got {} want {}", prod.to_f64(), exact);
        }
    }

    /// Division matches float within one output LSB.
    #[test]
    fn div_rescale_accuracy(x in -400.0f64..400.0, z in 0.5f64..100.0) {
        let qx = Q::<20, 12>::from_f64(x);
        let qz = Q::<20, 12>::from_f64(z);
        let q: Q<20, 12> = qx.div_rescale::<20, 12, 20, 12>(qz).unwrap();
        // quotient error: operand quantization propagates as
        // (dx + |x/z| dz)/z, plus one LSB of divider truncation
        let bound = (0.5 / 4096.0) * (1.0 + (x / z).abs()) / z + 2.0 / 4096.0;
        prop_assert!((q.to_f64() - x / z).abs() < bound,
            "x={x} z={z} got {} want {}", q.to_f64(), x / z);
    }

    /// Q29.3 accumulates thousands of Jacobian-scale products without
    /// saturating (the paper's rationale for 32-bit Hessian entries).
    #[test]
    fn q29_3_accumulates_hessian_scale(vals in prop::collection::vec(-100.0f64..100.0, 100)) {
        let mut acc = Q29_3::ZERO;
        let mut exact = 0.0;
        for v in &vals {
            acc = acc.saturating_add(Q29_3::from_f64(*v));
            exact += Q29_3::from_f64(*v).to_f64();
        }
        prop_assert!((acc.to_f64() - exact).abs() < 1e-9);
    }

    /// Branch-free u8 min/max identities hold for all inputs.
    #[test]
    fn u8_minmax_identity(a in any::<u8>(), b in any::<u8>()) {
        prop_assert_eq!(sat::max_u8(a, b), a.max(b));
        prop_assert_eq!(sat::min_u8(a, b), a.min(b));
        prop_assert_eq!(
            sat::max_u8(a, b) as u16 + sat::min_u8(a, b) as u16,
            a as u16 + b as u16
        );
    }

    /// wrap_signed is idempotent and agrees with clamp for in-range values.
    #[test]
    fn wrap_signed_idempotent(v in any::<i32>(), bits in 2u32..32) {
        let w = sat::wrap_signed(v as i64, bits);
        prop_assert_eq!(sat::wrap_signed(w, bits), w);
        if w == v as i64 {
            prop_assert_eq!(sat::clamp_signed(v as i64, bits), v as i64);
        }
    }
}
