//! Modeled host↔array DMA subsystem: typed, CRC'd transfer
//! descriptors on bounded per-array channels, with a seeded fault
//! model and a retry → exponential backoff → quarantine ladder that
//! degrades gracefully to the synchronous host port.
//!
//! # Model
//!
//! Without a channel installed, every host transfer is **synchronous**
//! (PIO): the machine charges [`crate::CostModel::transfer_cycles`]
//! straight to its timeline and the data moves before the call
//! returns — the pre-DMA behaviour, now costed honestly instead of
//! being free.
//!
//! With a channel ([`DmaConfig`] via
//! [`crate::PimMachine::set_dma`] / [`crate::PimArrayPool::set_dma`]),
//! a host write or read becomes a [`TransferDescriptor`] queued on the
//! channel engine: the descriptor carries a CRC over payload + header,
//! the channel clock advances by setup + per-beat + completion cycles
//! from the [`crate::CostModel`], and the issuing compute stream moves
//! on immediately. Compute only stalls when it actually needs the
//! data: [`crate::PimMachine::run_program`] waits for outstanding
//! *inbound* completions, and a settle point waits for everything.
//! Stalls are charged to [`crate::ExecStats::dma_stall_cycles`], so
//! overlap wins show up as end-to-end timeline reductions while the
//! compute budget stays identical to the paper's.
//!
//! Payload data is applied to the SRAM eagerly at issue (the channel
//! engine snapshots the burst buffer), so results are bit-identical
//! with the channel on, off, or faulting — the DMA layer is purely a
//! timing/robustness model, which is also what makes the fault ladder
//! safe: a corrupted or lost descriptor costs retries and backoff, it
//! never corrupts delivered data.
//!
//! # Fault ladder
//!
//! A seeded [`DmaFaultModel`] (constructible only with the `fault`
//! cargo feature, inert by default) injects three failure classes per
//! delivery attempt:
//!
//! * **payload bit flips** — caught by the descriptor CRC at
//!   completion; the attempt cost is a full transfer;
//! * **stalled descriptors** — caught by the cycle-domain
//!   [`DmaConfig::timeout_cycles`];
//! * **dropped completions** — same detector: the payload landed but
//!   the completion never fired, so the host times out and retries.
//!
//! Every failed attempt costs its detection latency plus exponential
//! backoff (`backoff_base_cycles << attempt`). A descriptor that
//! exhausts [`DmaConfig::max_retries`], or a run of
//! [`DmaConfig::quarantine_after`] consecutive faulted descriptors,
//! **quarantines the channel**: all subsequent transfers fall back to
//! the synchronous port (infallible, costed, bit-identical) instead of
//! failing the frame or hanging the wave scheduler.

use crate::cost::CostModel;
use crate::optrace::OpRecorder;
use pimvo_telemetry::optrace::{crc32, OpKind, NO_ROW};
use std::collections::VecDeque;

/// What a [`TransferDescriptor`] moves. Inbound kinds map to
/// [`OpKind::DmaIn`] records, outbound to [`OpKind::DmaOut`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransferKind {
    /// Host → SRAM strip input (image rows, constants).
    #[default]
    StripIn,
    /// SRAM → host strip/result readout.
    StripOut,
    /// Host → SRAM prefetch of the *next* frame's pyramid, issued
    /// while the current frame still computes (double-buffering).
    PyramidPrefetch,
}

impl TransferKind {
    /// Whether the transfer moves data into the array.
    pub fn is_inbound(self) -> bool {
        !matches!(self, TransferKind::StripOut)
    }
}

/// One typed transfer descriptor: header + CRC over payload + header.
/// The wire header is what the CRC covers alongside the payload; the
/// simulator keeps descriptors implicit (they live for one channel
/// `issue` call) but the checksum math is real.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferDescriptor {
    /// Transfer kind.
    pub kind: TransferKind,
    /// Target / source SRAM row.
    pub row: u32,
    /// Payload bytes.
    pub bytes: u32,
    /// Channel-local descriptor sequence number.
    pub seq: u64,
    /// CRC-32 over payload + header.
    pub crc: u32,
}

impl TransferDescriptor {
    /// Builds a descriptor for `payload`, sealing the CRC.
    pub fn new(kind: TransferKind, row: u32, seq: u64, payload: &[u8]) -> Self {
        let mut d = TransferDescriptor {
            kind,
            row,
            bytes: payload.len() as u32,
            seq,
            crc: 0,
        };
        d.crc = d.payload_crc(payload);
        d
    }

    fn header_bytes(&self) -> [u8; 17] {
        let mut h = [0u8; 17];
        h[0] = match self.kind {
            TransferKind::StripIn => 0,
            TransferKind::StripOut => 1,
            TransferKind::PyramidPrefetch => 2,
        };
        h[1..5].copy_from_slice(&self.row.to_le_bytes());
        h[5..9].copy_from_slice(&self.bytes.to_le_bytes());
        h[9..17].copy_from_slice(&self.seq.to_le_bytes());
        h
    }

    /// CRC-32 over `payload` followed by the header fields.
    pub fn payload_crc(&self, payload: &[u8]) -> u32 {
        let mut buf = Vec::with_capacity(payload.len() + 17);
        buf.extend_from_slice(payload);
        buf.extend_from_slice(&self.header_bytes());
        crc32(&buf)
    }

    /// Whether `payload` matches the sealed CRC.
    pub fn verify(&self, payload: &[u8]) -> bool {
        self.payload_crc(payload) == self.crc
    }
}

/// Channel configuration. The defaults model a small on-die burst
/// engine: a 4-deep descriptor queue (double-buffering plus slack), a
/// timeout a few transfers long, and a short exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaConfig {
    /// Maximum descriptors in flight; issuing into a full queue stalls
    /// the host until the oldest completes (backpressure).
    pub queue_depth: usize,
    /// Cycle-domain completion timeout: a stalled descriptor or a
    /// dropped completion is detected after this many cycles.
    pub timeout_cycles: u64,
    /// Delivery retries per descriptor before the channel gives up and
    /// quarantines.
    pub max_retries: u32,
    /// Base backoff after a failed attempt; doubles per retry.
    pub backoff_base_cycles: u64,
    /// Consecutive faulted descriptors before the channel quarantines
    /// even when individual retries keep succeeding.
    pub quarantine_after: u32,
}

impl Default for DmaConfig {
    fn default() -> Self {
        DmaConfig {
            queue_depth: 4,
            timeout_cycles: 512,
            max_retries: 3,
            backoff_base_cycles: 32,
            quarantine_after: 8,
        }
    }
}

/// Seeded transfer-fault model. [`DmaFaultModel::none`] is inert and
/// free; active models require the `fault` cargo feature, mirroring
/// [`crate::FaultModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct DmaFaultModel {
    seed: u64,
    /// Probability a delivery attempt corrupts a payload bit.
    flip_rate: f64,
    /// Probability a delivery attempt stalls past the timeout.
    stall_rate: f64,
    /// Probability a delivered attempt's completion is dropped.
    drop_rate: f64,
}

impl DmaFaultModel {
    /// The inert model: no faults, no RNG draws, no overhead.
    pub fn none() -> Self {
        DmaFaultModel {
            seed: 0,
            flip_rate: 0.0,
            stall_rate: 0.0,
            drop_rate: 0.0,
        }
    }

    /// True when this model can never inject a fault.
    pub fn is_none(&self) -> bool {
        self.flip_rate <= 0.0 && self.stall_rate <= 0.0 && self.drop_rate <= 0.0
    }

    /// A model injecting payload flips, stalls and dropped completions
    /// at the given per-attempt probabilities, deterministically
    /// derived from `seed`.
    #[cfg(feature = "fault")]
    pub fn new(seed: u64, flip_rate: f64, stall_rate: f64, drop_rate: f64) -> Self {
        for r in [flip_rate, stall_rate, drop_rate] {
            assert!((0.0..1.0).contains(&r), "rate must be in [0, 1)");
        }
        assert!(
            flip_rate + stall_rate + drop_rate < 1.0,
            "combined fault rate must stay below 1"
        );
        DmaFaultModel {
            seed,
            flip_rate,
            stall_rate,
            drop_rate,
        }
    }

    /// A flip-only model (CRC-detected payload corruption).
    #[cfg(feature = "fault")]
    pub fn flips(seed: u64, rate: f64) -> Self {
        DmaFaultModel::new(seed, rate, 0.0, 0.0)
    }

    /// A stall-only model (timeout-detected stuck descriptors).
    #[cfg(feature = "fault")]
    pub fn stalls(seed: u64, rate: f64) -> Self {
        DmaFaultModel::new(seed, 0.0, rate, 0.0)
    }
}

impl Default for DmaFaultModel {
    fn default() -> Self {
        DmaFaultModel::none()
    }
}

/// splitmix64 (same constants as the array fault model).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Outcome of one delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Attempt {
    Ok,
    /// Payload bit `bit` flipped in flight; CRC catches it.
    Flip {
        bit: u64,
    },
    /// Descriptor stalled; the timeout catches it.
    Stall,
    /// Completion dropped; the timeout catches it.
    Drop,
}

#[derive(Debug, Clone)]
struct DmaFaultUnit {
    model: DmaFaultModel,
    rng: u64,
}

impl DmaFaultUnit {
    fn new(model: DmaFaultModel) -> Self {
        DmaFaultUnit {
            rng: splitmix64(model.seed) | 1,
            model,
        }
    }

    /// Forks the stream with `salt` so pool member channels see
    /// independent fault patterns from one shared model.
    fn reseed(&mut self, salt: u64) {
        self.rng = (self.rng ^ splitmix64(salt.wrapping_add(0x5bd1e995))) | 1;
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// One delivery-attempt draw: a single uniform sample partitioned
    /// across the three failure classes, so the stream is independent
    /// of which rates are zero.
    fn draw(&mut self, payload_bits: u64) -> Attempt {
        if self.model.is_none() {
            return Attempt::Ok;
        }
        let u = ((self.next_u64() >> 11) as f64) / 9007199254740992.0;
        let m = &self.model;
        if u < m.flip_rate {
            let bit = if payload_bits == 0 {
                0
            } else {
                self.next_u64() % payload_bits
            };
            Attempt::Flip { bit }
        } else if u < m.flip_rate + m.stall_rate {
            Attempt::Stall
        } else if u < m.flip_rate + m.stall_rate + m.drop_rate {
            Attempt::Drop
        } else {
            Attempt::Ok
        }
    }
}

/// Cumulative health counters of one channel. Monotone except
/// [`DmaHealth::quarantined`]; diff scoped windows with
/// [`DmaHealth::since`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaHealth {
    /// Descriptors issued to the channel engine.
    pub issued: u64,
    /// Inbound prefetch descriptors ([`TransferKind::PyramidPrefetch`]).
    pub prefetches: u64,
    /// Delivery retries (one per failed attempt).
    pub retries: u64,
    /// Payload corruptions rejected by the descriptor CRC.
    pub crc_errors: u64,
    /// Attempts that hit the completion timeout (stall or drop).
    pub timeouts: u64,
    /// Transfers that bypassed the channel onto the synchronous port
    /// (quarantine fallback).
    pub sync_fallbacks: u64,
    /// Times the channel entered quarantine.
    pub quarantines: u64,
    /// Cycles the issuing machine stalled on this channel: queue
    /// backpressure plus explicit settle waits.
    pub stall_cycles: u64,
    /// Whether the channel is currently quarantined.
    pub quarantined: bool,
}

impl DmaHealth {
    /// Counter difference `self - earlier` (the `quarantined` flag is
    /// taken from `self`); saturating, for scoped windows across a
    /// rehabilitation.
    pub fn since(&self, earlier: &DmaHealth) -> DmaHealth {
        DmaHealth {
            issued: self.issued.saturating_sub(earlier.issued),
            prefetches: self.prefetches.saturating_sub(earlier.prefetches),
            retries: self.retries.saturating_sub(earlier.retries),
            crc_errors: self.crc_errors.saturating_sub(earlier.crc_errors),
            timeouts: self.timeouts.saturating_sub(earlier.timeouts),
            sync_fallbacks: self.sync_fallbacks.saturating_sub(earlier.sync_fallbacks),
            quarantines: self.quarantines.saturating_sub(earlier.quarantines),
            stall_cycles: self.stall_cycles.saturating_sub(earlier.stall_cycles),
            quarantined: self.quarantined,
        }
    }

    /// Adds another channel's counters (pool aggregation). A pool is
    /// "quarantined" here when *any* member channel is.
    pub fn merge(&mut self, other: &DmaHealth) {
        self.issued += other.issued;
        self.prefetches += other.prefetches;
        self.retries += other.retries;
        self.crc_errors += other.crc_errors;
        self.timeouts += other.timeouts;
        self.sync_fallbacks += other.sync_fallbacks;
        self.quarantines += other.quarantines;
        self.stall_cycles += other.stall_cycles;
        self.quarantined |= other.quarantined;
    }

    /// Faults observed (CRC rejects + timeouts) — the serving layer's
    /// backpressure signal.
    pub fn faults(&self) -> u64 {
        self.crc_errors + self.timeouts
    }
}

/// What [`DmaChannel::issue`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct IssueOutcome {
    /// Host stall charged before the descriptor could enter the queue
    /// (backpressure on a full queue), in cycles.
    pub backpressure_stall: u64,
    /// `Some(record_id)` when the transfer went over the channel
    /// (0 when no recorder is armed); `None` when the channel
    /// quarantined and the caller must take the synchronous path.
    pub channel_record: Option<u64>,
}

/// One per-array DMA channel engine: a serial burst port with its own
/// cycle clock, a bounded in-flight queue, the fault unit, and an
/// optional op-trace lane.
///
/// All clocks live in the owning machine's *timeline* domain
/// (`compute + host I/O + stall cycles`); the channel pauses while its
/// array is parked at a pool barrier, a deliberately conservative
/// overlap model that keeps the pool's critical-path == wall-clock
/// invariant exact.
#[derive(Debug, Clone)]
pub(crate) struct DmaChannel {
    cfg: DmaConfig,
    fault: DmaFaultUnit,
    /// Channel clock: when the engine finishes everything issued.
    busy_until: u64,
    /// Latest [`TransferKind::StripIn`] completion: what
    /// [`run_program`] stalls on. Prefetch completions advance only
    /// [`DmaChannel::busy_until`] (drained at a settle point).
    ///
    /// [`run_program`]: crate::PimMachine::run_program
    in_done: u64,
    /// Completion times of in-flight descriptors (bounded queue).
    inflight: VecDeque<u64>,
    /// Descriptor sequence counter.
    seq: u64,
    /// Consecutive descriptors that needed at least one retry.
    consecutive_faulted: u32,
    health: DmaHealth,
    recorder: Option<OpRecorder>,
}

impl DmaChannel {
    pub(crate) fn new(cfg: DmaConfig) -> Self {
        DmaChannel {
            cfg,
            fault: DmaFaultUnit::new(DmaFaultModel::none()),
            busy_until: 0,
            in_done: 0,
            inflight: VecDeque::new(),
            seq: 0,
            consecutive_faulted: 0,
            health: DmaHealth::default(),
            recorder: None,
        }
    }

    pub(crate) fn set_fault(&mut self, model: DmaFaultModel) {
        self.fault = DmaFaultUnit::new(model);
    }

    pub(crate) fn reseed(&mut self, salt: u64) {
        self.fault.reseed(salt);
    }

    pub(crate) fn health(&self) -> DmaHealth {
        self.health
    }

    pub(crate) fn is_quarantined(&self) -> bool {
        self.health.quarantined
    }

    /// Lifts a quarantine (rehabilitation after a scrub / operator
    /// action); the fault counters and RNG stream are untouched.
    pub(crate) fn rehabilitate(&mut self) {
        self.health.quarantined = false;
        self.consecutive_faulted = 0;
    }

    /// Counts a transfer that bypassed the channel onto the
    /// synchronous port.
    pub(crate) fn note_sync_fallback(&mut self) {
        self.health.sync_fallbacks += 1;
    }

    /// Cycle the compute stream must reach before inbound data is
    /// usable.
    pub(crate) fn in_done(&self) -> u64 {
        self.in_done
    }

    /// Cycle at which the channel engine is fully idle.
    pub(crate) fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Drops completion bookkeeping up to `now` (the owning machine
    /// advanced past it).
    pub(crate) fn observe(&mut self, now: u64) {
        while self.inflight.front().is_some_and(|&t| t <= now) {
            self.inflight.pop_front();
        }
    }

    /// Rebases the channel clocks to a fresh timeline epoch (the owning
    /// machine reset its statistics). Health, quarantine state, the
    /// descriptor sequence and the fault stream all persist.
    pub(crate) fn reset_clocks(&mut self) {
        self.busy_until = 0;
        self.in_done = 0;
        self.inflight.clear();
    }

    pub(crate) fn arm_recorder(&mut self, stream: u16, array: u16, capacity: usize) {
        self.recorder = Some(OpRecorder::with_stream(stream, array, capacity));
    }

    pub(crate) fn recorder_mut(&mut self) -> Option<&mut OpRecorder> {
        self.recorder.as_mut()
    }

    pub(crate) fn drain_trace(&mut self) -> Option<pimvo_telemetry::optrace::OpTrace> {
        self.recorder.as_mut().map(|r| r.drain())
    }

    /// Books machine stall cycles attributed to this channel
    /// (backpressure and settle waits) into the health counters.
    pub(crate) fn add_stall(&mut self, cycles: u64) {
        self.health.stall_cycles += cycles;
    }

    /// Issues one descriptor at machine-timeline `now`. `machine_tail`
    /// is the issuing stream's last record id (the cross-stream
    /// ordering edge). Resolves the whole retry ladder up front —
    /// deterministically, from the seeded fault stream — and returns
    /// what the *caller* must charge; the channel clock, queue, health
    /// and trace lane are updated here.
    pub(crate) fn issue(
        &mut self,
        now: u64,
        machine_tail: u64,
        kind: TransferKind,
        row: u32,
        payload: &[u8],
        cost: &CostModel,
    ) -> IssueOutcome {
        if self.health.quarantined {
            self.note_sync_fallback();
            return IssueOutcome {
                backpressure_stall: 0,
                channel_record: None,
            };
        }

        // backpressure: a full queue stalls the host until the oldest
        // in-flight descriptor completes
        self.observe(now);
        let mut stall = 0;
        while self.inflight.len() >= self.cfg.queue_depth.max(1) {
            let head = self.inflight.pop_front().expect("non-empty");
            stall = stall.max(head.saturating_sub(now));
        }
        let now = now + stall;

        let desc = TransferDescriptor::new(kind, row, self.seq, payload);
        self.seq += 1;
        self.health.issued += 1;
        if kind == TransferKind::PyramidPrefetch {
            self.health.prefetches += 1;
        }

        // resolve the retry ladder: each attempt draws one fault, a
        // failed attempt costs its detection latency plus exponential
        // backoff, and the descriptor either lands or exhausts its
        // retry budget
        let wire = cost.transfer_cycles(payload.len() as u64);
        let payload_bits = (payload.len() as u64) * 8;
        let mut engine_cycles = 0u64;
        let mut faulted = false;
        let mut delivered = false;
        for attempt in 0..=self.cfg.max_retries {
            match self.fault.draw(payload_bits) {
                Attempt::Ok => {
                    engine_cycles += wire;
                    delivered = true;
                    break;
                }
                Attempt::Flip { bit } => {
                    // corrupt a copy in flight and let the CRC reject
                    // it — CRC-32 catches every short burst error, so
                    // a flipped payload can never be accepted
                    let mut dirty = payload.to_vec();
                    if !dirty.is_empty() {
                        dirty[(bit / 8) as usize] ^= 1 << (bit % 8);
                    }
                    debug_assert!(
                        dirty.is_empty() || !desc.verify(&dirty),
                        "CRC must reject a flipped payload"
                    );
                    self.health.crc_errors += 1;
                    engine_cycles += wire;
                }
                Attempt::Stall | Attempt::Drop => {
                    self.health.timeouts += 1;
                    engine_cycles += self.cfg.timeout_cycles;
                }
            }
            faulted = true;
            self.health.retries += 1;
            engine_cycles += self.cfg.backoff_base_cycles << attempt.min(16);
        }

        if faulted {
            self.consecutive_faulted += 1;
        } else {
            self.consecutive_faulted = 0;
        }
        if !delivered || self.consecutive_faulted >= self.cfg.quarantine_after.max(1) {
            // end of the ladder: quarantine the channel; this
            // descriptor (and everything after it) degrades to the
            // synchronous port
            self.health.quarantined = true;
            self.health.quarantines += 1;
            if !delivered {
                self.health.retries = self.health.retries.saturating_sub(1);
                self.note_sync_fallback();
                return IssueOutcome {
                    backpressure_stall: stall,
                    channel_record: None,
                };
            }
        }

        let start = self.busy_until.max(now);
        let done = start + engine_cycles;
        self.busy_until = done;
        // prefetch targets the *inactive* double buffer: it is drained
        // only at a settle point, never at run_program entry — that
        // window is exactly the compute/transfer overlap
        if kind == TransferKind::StripIn {
            self.in_done = self.in_done.max(done);
        }
        self.inflight.push_back(done);

        let id = match &mut self.recorder {
            Some(rec) => {
                let op = if kind.is_inbound() {
                    OpKind::DmaIn
                } else {
                    OpKind::DmaOut
                };
                let serial = rec.tail();
                let (rows, dst) = if kind.is_inbound() {
                    ([NO_ROW, NO_ROW], row)
                } else {
                    ([row, NO_ROW], NO_ROW)
                };
                rec.record_explicit(
                    op,
                    [serial, machine_tail, 0],
                    start,
                    engine_cycles,
                    rows,
                    dst,
                    payload.len() as u32,
                )
            }
            None => 0,
        };
        IssueOutcome {
            backpressure_stall: stall,
            channel_record: Some(id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn descriptor_crc_rejects_any_flip() {
        let payload = [0x5Au8; 64];
        let d = TransferDescriptor::new(TransferKind::StripIn, 7, 3, &payload);
        assert!(d.verify(&payload));
        for bit in [0usize, 17, 255, 511] {
            let mut dirty = payload;
            dirty[bit / 8] ^= 1 << (bit % 8);
            assert!(!d.verify(&dirty), "flip at bit {bit} must be caught");
        }
        // header corruption (wrong row) is caught too
        let other = TransferDescriptor::new(TransferKind::StripIn, 8, 3, &payload);
        assert_ne!(d.crc, other.crc);
    }

    #[test]
    fn fault_free_channel_overlaps_and_counts() {
        let mut ch = DmaChannel::new(DmaConfig::default());
        let c = cost();
        let payload = [0u8; 320];
        let o = ch.issue(0, 0, TransferKind::StripIn, 4, &payload, &c);
        assert_eq!(o.backpressure_stall, 0);
        assert!(o.channel_record.is_some());
        assert_eq!(ch.in_done(), c.transfer_cycles(320));
        assert_eq!(ch.health().issued, 1);
        assert_eq!(ch.health().retries, 0);
        // a second descriptor queues behind the first on the engine
        ch.issue(1, 0, TransferKind::StripIn, 5, &payload, &c);
        assert_eq!(ch.in_done(), 2 * c.transfer_cycles(320));
    }

    #[test]
    fn full_queue_backpressures() {
        let mut ch = DmaChannel::new(DmaConfig {
            queue_depth: 2,
            ..DmaConfig::default()
        });
        let c = cost();
        let payload = [0u8; 320];
        let w = c.transfer_cycles(320);
        ch.issue(0, 0, TransferKind::StripIn, 0, &payload, &c);
        ch.issue(0, 0, TransferKind::StripIn, 1, &payload, &c);
        let o = ch.issue(0, 0, TransferKind::StripIn, 2, &payload, &c);
        assert_eq!(o.backpressure_stall, w, "must wait for the oldest");
    }

    #[test]
    fn quarantined_channel_degrades_to_sync() {
        let mut ch = DmaChannel::new(DmaConfig::default());
        ch.health.quarantined = true;
        let o = ch.issue(0, 0, TransferKind::StripIn, 0, &[0u8; 8], &cost());
        assert_eq!(o.channel_record, None);
        assert_eq!(ch.health().sync_fallbacks, 1);
        ch.rehabilitate();
        assert!(!ch.is_quarantined());
        let o = ch.issue(0, 0, TransferKind::StripIn, 0, &[0u8; 8], &cost());
        assert!(o.channel_record.is_some());
    }

    #[cfg(feature = "fault")]
    #[test]
    fn fault_stream_is_deterministic_and_reseed_forks() {
        let run = |salt: Option<u64>| {
            let mut ch = DmaChannel::new(DmaConfig::default());
            ch.set_fault(DmaFaultModel::new(42, 0.2, 0.1, 0.05));
            if let Some(s) = salt {
                ch.reseed(s);
            }
            let c = cost();
            let mut now = 0;
            for i in 0..200 {
                let o = ch.issue(now, 0, TransferKind::StripIn, i % 32, &[1u8; 64], &c);
                now += o.backpressure_stall + 1;
            }
            (ch.health(), ch.busy_until())
        };
        assert_eq!(run(None), run(None));
        assert_ne!(run(None), run(Some(3)));
        let (h, _) = run(None);
        assert!(h.crc_errors > 0 && h.timeouts > 0, "rates must fire: {h:?}");
        // every failed attempt books one retry and one crc/timeout
        // counter; the one undeliverable descriptor per quarantine is
        // credited back
        assert!(h.retries + h.quarantines >= h.crc_errors + h.timeouts);
    }

    #[cfg(feature = "fault")]
    #[test]
    fn always_failing_channel_quarantines_within_its_ladder() {
        // stall rate ~1: every attempt times out; the first descriptor
        // exhausts max_retries and the channel quarantines instead of
        // hanging
        let cfg = DmaConfig {
            max_retries: 2,
            timeout_cycles: 100,
            backoff_base_cycles: 8,
            ..DmaConfig::default()
        };
        let mut ch = DmaChannel::new(cfg);
        ch.set_fault(DmaFaultModel::new(1, 0.0, 0.99, 0.0));
        let o = ch.issue(0, 0, TransferKind::StripIn, 0, &[0u8; 320], &cost());
        assert_eq!(o.channel_record, None, "undeliverable → sync fallback");
        assert!(ch.is_quarantined());
        let h = ch.health();
        assert_eq!(h.quarantines, 1);
        assert_eq!(h.timeouts, 3, "1 + max_retries attempts, all timed out");
        assert_eq!(h.sync_fallbacks, 1);
        // bounded detection: the whole ladder costs at most
        // (1 + retries) × timeout + total backoff
        assert!(ch.busy_until() == 0, "nothing ever entered the engine");
    }

    #[cfg(feature = "fault")]
    #[test]
    fn consecutive_faulted_descriptors_trip_quarantine() {
        let cfg = DmaConfig {
            quarantine_after: 3,
            ..DmaConfig::default()
        };
        let mut ch = DmaChannel::new(cfg);
        // flips always, but retries succeed eventually? flip rate 0.5:
        // most descriptors see ≥1 flip; after 3 consecutive faulted
        // ones the channel must quarantine
        ch.set_fault(DmaFaultModel::new(9, 0.5, 0.0, 0.0));
        let c = cost();
        let mut now = 0;
        for i in 0..1000 {
            if ch.is_quarantined() {
                break;
            }
            let o = ch.issue(now, 0, TransferKind::StripIn, i, &[2u8; 64], &c);
            now += o.backpressure_stall + 50;
        }
        assert!(ch.is_quarantined(), "0.5 flip rate must trip within 1000");
        assert!(ch.health().crc_errors > 0);
    }
}
