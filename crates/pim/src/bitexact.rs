//! Gate-level reference model of the PIM datapath.
//!
//! The fast simulator in [`crate::PimMachine`] computes lane values with
//! ordinary integer arithmetic. This module re-derives the same results
//! **from the gates the paper actually proposes** — the two sense
//! amplifiers per bitline column (AND, NOR), the derived XOR/OR gates,
//! and the 8-bit accumulator slices with configurable carry propagation
//! and carry extension (Fig. 6) — and is used by property tests to prove
//! that the two models agree bit-for-bit.
//!
//! Everything here operates on *word lines as bit vectors*: a row is a
//! `&[bool]` of physical column values, and lanes are consecutive groups
//! of 8/16/32/64 columns in little-endian bit order.

use crate::config::LaneWidth;

/// Output of the two sense amplifiers for a dual-row activation, plus
/// the two derived gates (Fig. 6-a).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SenseAmpOut {
    /// SA1: bit-wise AND of the two activated rows.
    pub and: Vec<bool>,
    /// SA2: bit-wise NOR.
    pub nor: Vec<bool>,
    /// Derived: XOR = NOR(AND, NOR).
    pub xor: Vec<bool>,
    /// Derived: OR = NOT(NOR).
    pub or: Vec<bool>,
}

/// Simultaneously activates two word lines and senses every column.
///
/// # Panics
///
/// Panics if the rows have different lengths.
pub fn sense(row_a: &[bool], row_b: &[bool]) -> SenseAmpOut {
    assert_eq!(row_a.len(), row_b.len(), "word lines must have equal width");
    let n = row_a.len();
    let mut out = SenseAmpOut {
        and: Vec::with_capacity(n),
        nor: Vec::with_capacity(n),
        xor: Vec::with_capacity(n),
        or: Vec::with_capacity(n),
    };
    for i in 0..n {
        let (a, b) = (row_a[i], row_b[i]);
        let and = a & b;
        let nor = !(a | b);
        out.and.push(and);
        out.nor.push(nor);
        // XOR realized as a NOR gate over the two SA outputs
        out.xor.push(!(and | nor));
        // OR realized as a NOT gate on the NOR output
        out.or.push(!nor);
    }
    out
}

/// Result of one accumulator pass: the sum bits and the carry-extension
/// mask (one carry-out flag per lane).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccumulatorOut {
    /// Per-column sum bits.
    pub sum: Vec<bool>,
    /// Per-lane carry-out of the most significant slice — the "Carry
    /// Extension" bitmask used for saturation and comparison.
    pub carry_ext: Vec<bool>,
}

/// The bit-parallel accumulator: adds two rows using only the SA
/// outputs (AND = generate, XOR = propagate-sum) and a ripple carry
/// chained through 8-bit slices; the carry-control configuration cuts
/// the chain at lane boundaries given by `width`.
///
/// `carry_in` seeds each lane's LSB carry (used to form two's-complement
/// subtraction: `a - b = a + !b + 1`).
pub fn accumulate(
    row_a: &[bool],
    row_b: &[bool],
    width: LaneWidth,
    carry_in: bool,
) -> AccumulatorOut {
    assert_eq!(row_a.len(), row_b.len());
    let lane_bits = width.bits() as usize;
    assert_eq!(
        row_a.len() % lane_bits,
        0,
        "row width must be a multiple of the lane width"
    );
    let lanes = row_a.len() / lane_bits;
    let mut sum = vec![false; row_a.len()];
    let mut carry_ext = Vec::with_capacity(lanes);
    for lane in 0..lanes {
        let base = lane * lane_bits;
        // carry control: the chain restarts at every lane boundary
        let mut carry = carry_in;
        for k in 0..lane_bits {
            let i = base + k;
            let (a, b) = (row_a[i], row_b[i]);
            // full adder from SA primitives:
            //   p = a XOR b   (derived SA gate)
            //   g = a AND b   (SA1)
            let p = a ^ b;
            let g = a & b;
            sum[i] = p ^ carry;
            carry = g | (p & carry);
        }
        carry_ext.push(carry);
    }
    AccumulatorOut { sum, carry_ext }
}

/// Bit-level two's-complement subtraction `a - b` per lane:
/// `a + NOT(b) + 1`, using the OR/NOR-derived inverse. The carry-out of
/// a lane equals `a >= b` for unsigned operands — exactly the mask the
/// carry extension exposes for comparison and saturation.
pub fn subtract(row_a: &[bool], row_b: &[bool], width: LaneWidth) -> AccumulatorOut {
    let not_b: Vec<bool> = row_b.iter().map(|&b| !b).collect();
    accumulate(row_a, &not_b, width, true)
}

/// Encodes unsigned lane values into a bit row (little-endian within
/// each lane).
pub fn encode_lanes(values: &[u64], width: LaneWidth) -> Vec<bool> {
    let lane_bits = width.bits() as usize;
    let mut out = Vec::with_capacity(values.len() * lane_bits);
    for &v in values {
        for k in 0..lane_bits {
            out.push((v >> k) & 1 == 1);
        }
    }
    out
}

/// Decodes a bit row into unsigned lane values.
pub fn decode_lanes(row: &[bool], width: LaneWidth) -> Vec<u64> {
    let lane_bits = width.bits() as usize;
    assert_eq!(row.len() % lane_bits, 0);
    row.chunks(lane_bits)
        .map(|bits| {
            bits.iter()
                .enumerate()
                .fold(0u64, |acc, (k, &b)| acc | ((b as u64) << k))
        })
        .collect()
}

/// The complete multi-step absolute-difference sequence of Fig. 7-a,
/// executed at gate level: `M = A - B` with carry extension `N`
/// (all-zero or all-one per lane), then `M = M + N`, then `C = M ^ N`.
pub fn abs_diff(row_a: &[bool], row_b: &[bool], width: LaneWidth) -> Vec<bool> {
    let lane_bits = width.bits() as usize;
    let sub = subtract(row_a, row_b, width);
    // N: lanes where the subtraction borrowed (carry-out == 0) get the
    // all-ones pattern; others all-zero. (Fig. 7-a's N is the borrow
    // indicator replicated across the lane.)
    let mut n_row = vec![false; row_a.len()];
    for (lane, &cout) in sub.carry_ext.iter().enumerate() {
        if !cout {
            for k in 0..lane_bits {
                n_row[lane * lane_bits + k] = true;
            }
        }
    }
    // M = M + N (adds -1 on borrowed lanes, i.e. M - 1)
    let m_plus_n = accumulate(&sub.sum, &n_row, width, false);
    // C = M XOR N (bit inversion on borrowed lanes) — via the SA gates
    sense(&m_plus_n.sum, &n_row).xor
}

/// The branch-free min/max sequence of Fig. 7-b at gate level, for
/// unsigned lanes: `D = sat(A - B)` (zero on borrow), then
/// `max = D + B` and `min = A - D`.
pub fn min_max(row_a: &[bool], row_b: &[bool], width: LaneWidth) -> (Vec<bool>, Vec<bool>) {
    let lane_bits = width.bits() as usize;
    let sub = subtract(row_a, row_b, width);
    // saturation: zero out lanes that borrowed, using the carry mask
    let mut sat = sub.sum.clone();
    for (lane, &cout) in sub.carry_ext.iter().enumerate() {
        if !cout {
            for k in 0..lane_bits {
                sat[lane * lane_bits + k] = false;
            }
        }
    }
    let max = accumulate(&sat, row_b, width, false).sum;
    let min = subtract(row_a, &sat, width).sum;
    (min, max)
}

/// Gate-level shift-and-add multiplication of Fig. 7-c for unsigned
/// lanes, processing multiplier bits from MSB to LSB with the partial
/// product held in a double-width register. Returns the `2n`-bit
/// product rows (low, high interleaved as one double-width lane row).
pub fn multiply(row_a: &[bool], row_b: &[bool], width: LaneWidth) -> Vec<u64> {
    let lane_bits = width.bits() as usize;
    let a = decode_lanes(row_a, width);
    let b = decode_lanes(row_b, width);
    // Bit-serial-over-multiplier shift-accumulate, mirroring the Tmp Reg
    // concatenation trick: acc = (acc << 1) + (bit ? a : 0), bit by bit.
    // Each step only uses shift and add — the primitives available in
    // one accumulator cycle.
    a.iter()
        .zip(&b)
        .map(|(&av, &bv)| {
            let mut acc: u64 = 0;
            for k in (0..lane_bits).rev() {
                acc <<= 1;
                if (bv >> k) & 1 == 1 {
                    acc = acc.wrapping_add(av);
                }
            }
            acc
        })
        .collect()
}

/// Gate-level restoring division of Fig. 7-d for unsigned lanes:
/// returns (quotient, remainder) per lane. Division by zero yields the
/// all-ones quotient, matching [`crate::PimMachine::div`].
pub fn divide(row_a: &[bool], row_b: &[bool], width: LaneWidth) -> (Vec<u64>, Vec<u64>) {
    let lane_bits = width.bits() as usize;
    let a = decode_lanes(row_a, width);
    let b = decode_lanes(row_b, width);
    let mask = if lane_bits >= 64 {
        u64::MAX
    } else {
        (1u64 << lane_bits) - 1
    };
    let mut quots = Vec::with_capacity(a.len());
    let mut rems = Vec::with_capacity(a.len());
    for (&av, &bv) in a.iter().zip(&b) {
        if bv == 0 {
            quots.push(mask);
            rems.push(av);
            continue;
        }
        let mut rem: u64 = 0;
        let mut quot: u64 = 0;
        for k in (0..lane_bits).rev() {
            // shift remainder left, bring down next dividend bit
            rem = (rem << 1) | ((av >> k) & 1);
            // trial subtract; restore on borrow (quotient bit stacks LSB)
            quot <<= 1;
            if rem >= bv {
                rem -= bv;
                quot |= 1;
            }
        }
        quots.push(quot);
        rems.push(rem);
    }
    (quots, rems)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig7a_absolute_difference_example() {
        // A = 121, B = 106 -> |A - B| = 15 ; and A = 12, B = 22 -> 10
        let a = encode_lanes(&[121, 12], LaneWidth::W8);
        let b = encode_lanes(&[106, 22], LaneWidth::W8);
        let c = abs_diff(&a, &b, LaneWidth::W8);
        assert_eq!(decode_lanes(&c, LaneWidth::W8), vec![15, 10]);
    }

    #[test]
    fn paper_fig7b_min_max_example() {
        // A = [121, 12], B = [106, 22] -> min [106, 12], max [121, 22]
        let a = encode_lanes(&[121, 12], LaneWidth::W8);
        let b = encode_lanes(&[106, 22], LaneWidth::W8);
        let (min, max) = min_max(&a, &b, LaneWidth::W8);
        assert_eq!(decode_lanes(&min, LaneWidth::W8), vec![106, 12]);
        assert_eq!(decode_lanes(&max, LaneWidth::W8), vec![121, 22]);
    }

    #[test]
    fn paper_fig7c_multiplication_example() {
        // 13 x 11 = 143
        let a = encode_lanes(&[13], LaneWidth::W8);
        let b = encode_lanes(&[11], LaneWidth::W8);
        assert_eq!(multiply(&a, &b, LaneWidth::W8), vec![143]);
    }

    #[test]
    fn paper_fig7d_division_example() {
        // 15 / 6 = 2 rem 3
        let a = encode_lanes(&[15], LaneWidth::W8);
        let b = encode_lanes(&[6], LaneWidth::W8);
        let (q, r) = divide(&a, &b, LaneWidth::W8);
        assert_eq!(q, vec![2]);
        assert_eq!(r, vec![3]);
    }

    #[test]
    fn accumulate_with_carry_control() {
        // 16-bit lanes: carries must cross the 8-bit slice boundary
        let a = encode_lanes(&[0x00FF, 0x1234], LaneWidth::W16);
        let b = encode_lanes(&[0x0001, 0x0FFF], LaneWidth::W16);
        let out = accumulate(&a, &b, LaneWidth::W16, false);
        assert_eq!(decode_lanes(&out.sum, LaneWidth::W16), vec![0x0100, 0x2233]);
        // 8-bit lanes: the same data with the carry chain cut at 8 bits
        let out8 = accumulate(&a, &b, LaneWidth::W8, false);
        assert_eq!(
            decode_lanes(&out8.sum, LaneWidth::W8),
            vec![0x00, 0x00, 0x33, 0x21] // per-byte wrapping sums (LE)
        );
    }

    #[test]
    fn carry_extension_signals_unsigned_compare() {
        let a = encode_lanes(&[50, 10], LaneWidth::W8);
        let b = encode_lanes(&[20, 30], LaneWidth::W8);
        let sub = subtract(&a, &b, LaneWidth::W8);
        // carry-out true <=> a >= b
        assert_eq!(sub.carry_ext, vec![true, false]);
    }

    #[test]
    fn sense_amp_gates_consistent() {
        let a = encode_lanes(&[0b1100], LaneWidth::W8);
        let b = encode_lanes(&[0b1010], LaneWidth::W8);
        let s = sense(&a, &b);
        assert_eq!(decode_lanes(&s.and, LaneWidth::W8), vec![0b1000]);
        assert_eq!(decode_lanes(&s.xor, LaneWidth::W8), vec![0b0110]);
        assert_eq!(decode_lanes(&s.or, LaneWidth::W8), vec![0b1110]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let vals = vec![0u64, 1, 255, 128, 7];
        let row = encode_lanes(&vals, LaneWidth::W8);
        assert_eq!(decode_lanes(&row, LaneWidth::W8), vals);
    }
}
