#![warn(missing_docs)]

//! Cycle- and energy-accurate simulator of the bit-parallel SRAM
//! processing-in-memory (PIM) architecture from the DAC'22 paper
//! *"Processing-in-SRAM Acceleration for Ultra-Low Power Visual 3D
//! Perception"*.
//!
//! # Architecture modeled
//!
//! * An SRAM array of `(320 * 8) x 256` bits: 256 word lines, each 2560
//!   bits wide (one QVGA image row of 8-bit pixels per word line).
//! * Two sense amplifiers per bitline column computing **AND** and
//!   **NOR** of two simultaneously activated rows; XOR/OR derived with
//!   one extra gate (Fig. 6-a of the paper).
//! * A bit-parallel accumulator + shifter sliced in 8-bit groups whose
//!   carry propagation is configurable at run time, yielding SIMD lanes
//!   of 8, 16, 32 or 64 bits (320/160/80/40 lanes per operation).
//! * A *carry extension* that produces per-lane overflow masks, used for
//!   saturation and comparison.
//! * A temporary register (**Tmp Reg**) holding one extended row; results
//!   land there and can feed the next operation without an SRAM
//!   write-back.
//!
//! # Simulation methodology
//!
//! Following the paper's own evaluation ("we assume that all basic
//! operations are single-cycle, and an extra write-back cycle is required
//! when the output resides in SRAM"), the simulator is:
//!
//! * **value-accurate at lane granularity** — every operation computes
//!   the exact lane values the hardware would produce (verified against
//!   the gate-level [`bitexact`] reference model by property tests);
//! * **cycle-accurate at operation granularity** — each macro operation
//!   expands into a deterministic sequence of single-cycle micro steps
//!   (multiplication and division cost `n + 2` cycles for `n`-bit
//!   operands including the SRAM read/write overhead, min/max two
//!   cycles, absolute difference three, …);
//! * **energy-accurate at component granularity** — every micro step is
//!   charged to the SRAM array, the shifter/adder, or the Tmp Reg using a
//!   configurable [`CostModel`] seeded with the paper's 90 nm numbers.
//!
//! ```
//! use pimvo_pim::{PimMachine, Operand, ArrayConfig};
//!
//! let mut pim = PimMachine::new(ArrayConfig::qvga());
//! pim.host_write_lanes(0, &[10, 20, 30]).unwrap();
//! pim.host_write_lanes(1, &[1, 2, 3]).unwrap();
//! pim.add(Operand::Row(0), Operand::Row(1));
//! assert_eq!(&pim.tmp_lanes()[..3], &[11, 22, 33]);
//! assert_eq!(pim.stats().cycles, 1);
//! ```
//!
//! Multi-array deployments are modeled by [`PimArrayPool`]: N identical
//! arrays executing disjoint shards of a kernel in parallel, with merged
//! energy statistics and wall-cycles taken as the slowest shard plus a
//! configurable inter-array synchronisation overhead.
//!
//! # Kernel IR
//!
//! Kernels are written **once** as macro-op programs over virtual
//! registers ([`ir::PimProgram`]) and lowered to machine-op sequences
//! by the optimizing pass in [`lower()`] — Tmp-Reg allocation, adjacent
//! shift fusion and dead-write elimination at [`lower::LowerLevel::Opt`],
//! register-file spilling at `MultiReg`, or the paper's unoptimized
//! write-everything-back mapping at `Naive`. [`PimMachine::run_program`]
//! executes the result, charging the same [`CostModel`] and tagging
//! trace events with IR labels. Lowered programs are submitted to a
//! pool as *jobs*: [`PoolExecutor`] queues them with session, deadline
//! class and priority metadata and dispatches in deterministic waves,
//! while [`PimArrayPool::submit_strips`] pins one program per array
//! for strip-sharded kernels ([`PimArrayPool::run_programs_labeled`]
//! is the legacy spelling, kept as a thin wrapper).
//!
//! # Fault injection & resilience
//!
//! The [`fault`] module adds a deterministic, seeded [`FaultModel`]
//! (transient read upsets, stuck-at cells) and word [`Protection`]
//! (parity / SECDED ECC) whose detect/correct overhead is charged
//! through the [`CostModel`]. The pool layer reacts to detected errors
//! with bounded retry, shard re-dispatch and array quarantine
//! ([`PoolHealth`], [`RetryPolicy`]). All of it is inert by default:
//! with [`FaultModel::none`] and [`Protection::None`] every output,
//! cycle and picojoule is identical to a build without the layer.
//! Constructing an *active* fault model requires the `fault` cargo
//! feature.
//!
//! # Host↔array data path (DMA)
//!
//! The [`dma`] module models the host↔SRAM bus the same way: typed
//! [`TransferDescriptor`]s (strip in/out, pyramid prefetch) carry a
//! CRC-32 over payload + header, cost
//! [`CostModel::transfer_cycles`] on the wire, and ride per-array
//! channel engines ([`PimMachineBuilder::dma`],
//! [`PimArrayPool::set_dma`]) whose bounded queues overlap transfers
//! with compute — the value domain never changes, only wall cycles.
//! A seeded [`DmaFaultModel`] (`fault` feature) injects payload flips
//! (caught by CRC), stalls and dropped completions (caught by a
//! cycle-domain timeout), driving a retry → exponential backoff →
//! channel-quarantine ladder; a quarantined channel degrades to the
//! synchronous port with bit-identical results. [`DmaHealth`] ledgers
//! the whole ladder per channel and merged per pool.

pub mod bitexact;
pub mod cache;
mod config;
mod cost;
pub mod dma;
pub mod executor;
pub mod fault;
pub mod ir;
mod isa;
pub mod lower;
mod machine;
pub mod optrace;
mod pool;
mod stats;
mod trace;

pub use cache::{LoweredCache, LoweredCacheStats};
pub use config::{ArrayConfig, LaneWidth, Signedness};
pub use cost::{AreaReport, CostModel};
pub use dma::{DmaConfig, DmaFaultModel, DmaHealth, TransferDescriptor, TransferKind};
pub use executor::{DeadlineClass, Job, JobHandle, JobRecord, JobResult, PoolExecutor, SessionId};
pub use fault::{FaultModel, FaultStatus, Protection, StuckBit};
pub use ir::{MacroOp, PimProgram, VReg, Val};
pub use isa::{AluOp, LogicFunc, OpClass, Operand, Shift};
pub use lower::{
    lower, lower_with_passes, lower_with_report, pass_pipeline, LowerError, LowerLevel,
    LowerReport, LoweredOp, LoweredProgram, MachineInstr, Pass, PassStats, ScratchRows,
    MAX_TMP_REGS,
};
pub use machine::{PimError, PimMachine, PimMachineBuilder};
pub use optrace::{OpRecorder, DEFAULT_OP_RING_CAPACITY};
pub use pool::{PimArrayPool, PoolHealth, RetryPolicy, ScrubConfig};
pub use stats::{EnergyBreakdown, ExecStats, MemAccessBreakdown};
pub use trace::{Trace, TraceEvent};
