//! Instruction tracing for the PIM machine.
//!
//! When enabled ([`crate::PimMachine::set_tracing`]), every macro
//! operation is appended to an in-memory trace with its operands, cycle
//! span and SRAM footprint — a disassembly-style view of what a kernel
//! actually does on the array, used to debug mappings and to audit the
//! cost model.
//!
//! The trace is unbounded by default (faithful disassembly of short
//! kernels). For long captures — a full TUM sequence is hundreds of
//! millions of macro ops — give it a capacity
//! ([`Trace::with_capacity`] / [`crate::PimMachine::set_trace_capacity`]):
//! the trace becomes a drop-oldest ring buffer and counts what it
//! sheds in [`Trace::dropped`], so memory stays bounded and the loss is
//! visible instead of silent.

use crate::isa::OpClass;
use std::collections::VecDeque;
use std::fmt;

/// One traced macro operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sequence number within the trace.
    pub seq: u64,
    /// Macro-op class.
    pub class: OpClass,
    /// Human-readable mnemonic with operands (e.g. `mul_signed r12, r13`).
    pub mnemonic: String,
    /// Cycle counter before the op.
    pub cycle_start: u64,
    /// Cycles the op consumed.
    pub cycles: u64,
    /// SRAM row activations performed by the op.
    pub sram_reads: u64,
    /// SRAM row write-backs performed by the op.
    pub sram_writes: u64,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>6}  @{:<8} {:<28} {:>3} cyc  {:>2} rd {:>2} wr",
            self.seq,
            self.cycle_start,
            self.mnemonic,
            self.cycles,
            self.sram_reads,
            self.sram_writes
        )
    }
}

/// An in-memory instruction trace, optionally bounded as a drop-oldest
/// ring buffer.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    /// Maximum retained events; `None` = unbounded (the default).
    capacity: Option<usize>,
    /// Events shed by the ring buffer since the last [`Trace::clear`].
    dropped: u64,
    /// Total events ever recorded (drives `seq` numbering even after
    /// old events were shed).
    recorded: u64,
}

impl Trace {
    /// Creates an empty, unbounded trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace that retains at most `capacity` events,
    /// dropping the oldest beyond that.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            capacity: Some(capacity),
            ..Trace::default()
        }
    }

    /// The retention limit, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Sets (or removes, with `None`) the retention limit. Shrinking
    /// below the current length sheds the oldest events immediately.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
        self.enforce_capacity();
    }

    /// Events shed by the ring buffer since the last clear.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn enforce_capacity(&mut self) {
        if let Some(cap) = self.capacity {
            while self.events.len() > cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
    }

    /// Appends an event.
    pub(crate) fn push(&mut self, event: TraceEvent) {
        self.recorded += 1;
        self.events.push_back(event);
        self.enforce_capacity();
    }

    /// Next sequence number (total events ever recorded).
    pub(crate) fn next_seq(&self) -> u64 {
        self.recorded
    }

    /// The recorded events, oldest first. With a capacity set this is
    /// the most recent window; check [`Trace::dropped`] for what was
    /// shed before it.
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// Mutable access to the most recent event (multi-step macro ops
    /// extend their first step's record).
    pub(crate) fn last_mut(&mut self) -> Option<&mut TraceEvent> {
        self.events.back_mut()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Clears the trace (retained events, the dropped counter and the
    /// sequence numbering; the capacity is kept).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
        self.recorded = 0;
    }

    /// A disassembly-style listing of the whole trace.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "... {} earlier event(s) dropped by the ring buffer ...\n",
                self.dropped
            ));
        }
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Cycle totals per op class, most expensive first.
    pub fn cycles_by_class(&self) -> Vec<(OpClass, u64)> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<OpClass, u64> = BTreeMap::new();
        for e in &self.events {
            *map.entry(e.class).or_insert(0) += e.cycles;
        }
        let mut v: Vec<(OpClass, u64)> = map.into_iter().collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }

    /// Exports every retained macro op as a cycle-domain telemetry span
    /// on `track` (op class + cycles + SRAM footprint per span), the
    /// finest level of the frame → stage → pool-phase → shard → macro-op
    /// hierarchy. `cycle_offset` shifts the spans onto a shared cycle
    /// timeline (e.g. the pool wall clock at the start of the capture).
    pub fn export_telemetry(
        &self,
        tele: &pimvo_telemetry::Telemetry,
        track: &str,
        cycle_offset: u64,
    ) {
        if !tele.is_enabled() {
            return;
        }
        for e in &self.events {
            tele.record_span(
                pimvo_telemetry::TimeDomain::Cycles,
                track,
                &e.mnemonic,
                cycle_offset + e.cycle_start,
                e.cycles,
                &[
                    ("class", format!("{:?}", e.class)),
                    ("sram_reads", e.sram_reads.to_string()),
                    ("sram_writes", e.sram_writes.to_string()),
                ],
            );
        }
        if self.dropped > 0 {
            tele.counter_add("pimvo_trace_dropped_total", self.dropped as f64);
        }
        // always exported, so Prometheus scrapes see an explicit zero
        // instead of a silent absence when nothing was shed
        tele.gauge_set("pimvo_trace_dropped", self.dropped as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrayConfig, LaneWidth, Operand, PimMachine, Signedness};

    #[test]
    fn records_ops_with_cycle_spans() {
        let mut m = PimMachine::new(ArrayConfig::qvga());
        m.set_tracing(true);
        m.host_write_lanes(0, &[3, 4]).unwrap();
        m.host_write_lanes(1, &[5, 6]).unwrap();
        m.add(Operand::Row(0), Operand::Row(1));
        m.mul(Operand::Row(0), Operand::Row(1));
        m.writeback(2);
        let trace = m.trace().expect("tracing enabled");
        assert_eq!(trace.len(), 3);
        let e = &trace.events()[1];
        assert_eq!(e.class, crate::OpClass::Mul);
        assert_eq!(e.cycles, 9); // 8-bit mul: n+1 before write-back
        assert!(e.mnemonic.contains("mul"));
        // cycle spans are contiguous
        assert_eq!(
            trace.events()[0].cycle_start + trace.events()[0].cycles,
            trace.events()[1].cycle_start
        );
    }

    #[test]
    fn listing_and_class_summary() {
        let mut m = PimMachine::new(ArrayConfig::qvga());
        m.set_lanes(LaneWidth::W16, Signedness::Signed);
        m.set_tracing(true);
        m.host_write_lanes(0, &[7]).unwrap();
        m.host_write_lanes(1, &[9]).unwrap();
        m.mul_signed(Operand::Row(0), Operand::Row(1));
        m.add(Operand::Tmp, Operand::Tmp);
        let trace = m.trace().unwrap().clone();
        let listing = trace.listing();
        assert_eq!(listing.lines().count(), 2);
        let by_class = trace.cycles_by_class();
        assert_eq!(by_class[0].0, crate::OpClass::Mul); // mul dominates
    }

    #[test]
    fn tracing_off_by_default_and_clearable() {
        let mut m = PimMachine::new(ArrayConfig::qvga());
        m.host_write_lanes(0, &[1]).unwrap();
        m.load(Operand::Row(0));
        assert!(m.trace().is_none());
        m.set_tracing(true);
        m.load(Operand::Row(0));
        assert_eq!(m.trace().unwrap().len(), 1);
        m.set_tracing(false);
        assert!(m.trace().is_none());
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let mut m = PimMachine::new(ArrayConfig::qvga());
        m.set_trace_capacity(Some(4));
        m.set_tracing(true);
        m.host_write_lanes(0, &[1, 2]).unwrap();
        for _ in 0..10 {
            m.add(Operand::Row(0), Operand::Row(0));
        }
        let trace = m.trace().expect("tracing enabled");
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.dropped(), 6);
        // the retained window is the most recent ops, seq keeps counting
        assert_eq!(trace.events()[0].seq, 6);
        assert_eq!(trace.events()[3].seq, 9);
        assert!(trace.listing().contains("6 earlier event(s) dropped"));
    }

    #[test]
    fn unlimited_by_default_and_capacity_shrinks_live() {
        let mut t = Trace::new();
        assert_eq!(t.capacity(), None);
        for i in 0..8 {
            t.push(TraceEvent {
                seq: i,
                class: OpClass::AddSub,
                mnemonic: "add".to_string(),
                cycle_start: i,
                cycles: 1,
                sram_reads: 0,
                sram_writes: 0,
            });
        }
        assert_eq!(t.len(), 8);
        assert_eq!(t.dropped(), 0);
        t.set_capacity(Some(3));
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 5);
        t.clear();
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.capacity(), Some(3));
    }

    #[test]
    fn multi_step_ops_extend_into_the_ring() {
        // a capacity-1 trace must still extend the (single) retained
        // event for multi-step macro ops
        let mut m = PimMachine::new(ArrayConfig::qvga());
        m.set_trace_capacity(Some(1));
        m.set_tracing(true);
        m.host_write_lanes(0, &[3]).unwrap();
        m.host_write_lanes(1, &[5]).unwrap();
        m.mul(Operand::Row(0), Operand::Row(1));
        let trace = m.trace().unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.events()[0].cycles, 9);
    }

    #[test]
    fn exports_macro_op_spans() {
        let tele = pimvo_telemetry::Telemetry::with_clock(Box::new(
            pimvo_telemetry::ManualClock::with_step(1),
        ));
        let mut m = PimMachine::new(ArrayConfig::qvga());
        m.set_tracing(true);
        m.host_write_lanes(0, &[3, 4]).unwrap();
        m.add(Operand::Row(0), Operand::Row(0));
        m.writeback(1);
        m.trace().unwrap().export_telemetry(&tele, "array 0", 100);
        let snap = tele.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].domain, pimvo_telemetry::TimeDomain::Cycles);
        assert_eq!(snap.spans[0].start, 100);
        assert!(snap.spans[1].name.contains("writeback"));
        // ring-buffer loss is always visible in exports, even when zero
        assert_eq!(snap.gauges.get("pimvo_trace_dropped"), Some(&0.0));
    }

    #[test]
    fn export_surfaces_ring_drops_as_counter_and_gauge() {
        let tele = pimvo_telemetry::Telemetry::with_clock(Box::new(
            pimvo_telemetry::ManualClock::with_step(1),
        ));
        let mut m = PimMachine::new(ArrayConfig::qvga());
        m.set_tracing(true);
        m.set_trace_capacity(Some(2));
        m.host_write_lanes(0, &[1]).unwrap();
        for _ in 0..5 {
            m.add(Operand::Row(0), Operand::Row(0));
        }
        m.trace().unwrap().export_telemetry(&tele, "array 0", 0);
        let snap = tele.snapshot();
        assert_eq!(snap.counters.get("pimvo_trace_dropped_total"), Some(&3.0));
        assert_eq!(snap.gauges.get("pimvo_trace_dropped"), Some(&3.0));
    }
}
