//! Instruction tracing for the PIM machine.
//!
//! When enabled ([`crate::PimMachine::set_tracing`]), every macro
//! operation is appended to an in-memory trace with its operands, cycle
//! span and SRAM footprint — a disassembly-style view of what a kernel
//! actually does on the array, used to debug mappings and to audit the
//! cost model.

use crate::isa::OpClass;
use std::fmt;

/// One traced macro operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sequence number within the trace.
    pub seq: u64,
    /// Macro-op class.
    pub class: OpClass,
    /// Human-readable mnemonic with operands (e.g. `mul_signed r12, r13`).
    pub mnemonic: String,
    /// Cycle counter before the op.
    pub cycle_start: u64,
    /// Cycles the op consumed.
    pub cycles: u64,
    /// SRAM row activations performed by the op.
    pub sram_reads: u64,
    /// SRAM row write-backs performed by the op.
    pub sram_writes: u64,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>6}  @{:<8} {:<28} {:>3} cyc  {:>2} rd {:>2} wr",
            self.seq, self.cycle_start, self.mnemonic, self.cycles, self.sram_reads, self.sram_writes
        )
    }
}

/// An in-memory instruction trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub(crate) fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Mutable access to the most recent event (multi-step macro ops
    /// extend their first step's record).
    pub(crate) fn last_mut(&mut self) -> Option<&mut TraceEvent> {
        self.events.last_mut()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Clears the trace.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// A disassembly-style listing of the whole trace.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Cycle totals per op class, most expensive first.
    pub fn cycles_by_class(&self) -> Vec<(OpClass, u64)> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<OpClass, u64> = BTreeMap::new();
        for e in &self.events {
            *map.entry(e.class).or_insert(0) += e.cycles;
        }
        let mut v: Vec<(OpClass, u64)> = map.into_iter().collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }
}

#[cfg(test)]
mod tests {
    use crate::{ArrayConfig, LaneWidth, Operand, PimMachine, Signedness};

    #[test]
    fn records_ops_with_cycle_spans() {
        let mut m = PimMachine::new(ArrayConfig::qvga());
        m.set_tracing(true);
        m.host_write_lanes(0, &[3, 4]).unwrap();
        m.host_write_lanes(1, &[5, 6]).unwrap();
        m.add(Operand::Row(0), Operand::Row(1));
        m.mul(Operand::Row(0), Operand::Row(1));
        m.writeback(2);
        let trace = m.trace().expect("tracing enabled");
        assert_eq!(trace.len(), 3);
        let e = &trace.events()[1];
        assert_eq!(e.class, crate::OpClass::Mul);
        assert_eq!(e.cycles, 9); // 8-bit mul: n+1 before write-back
        assert!(e.mnemonic.contains("mul"));
        // cycle spans are contiguous
        assert_eq!(
            trace.events()[0].cycle_start + trace.events()[0].cycles,
            trace.events()[1].cycle_start
        );
    }

    #[test]
    fn listing_and_class_summary() {
        let mut m = PimMachine::new(ArrayConfig::qvga());
        m.set_lanes(LaneWidth::W16, Signedness::Signed);
        m.set_tracing(true);
        m.host_write_lanes(0, &[7]).unwrap();
        m.host_write_lanes(1, &[9]).unwrap();
        m.mul_signed(Operand::Row(0), Operand::Row(1));
        m.add(Operand::Tmp, Operand::Tmp);
        let trace = m.trace().unwrap().clone();
        let listing = trace.listing();
        assert_eq!(listing.lines().count(), 2);
        let by_class = trace.cycles_by_class();
        assert_eq!(by_class[0].0, crate::OpClass::Mul); // mul dominates
    }

    #[test]
    fn tracing_off_by_default_and_clearable() {
        let mut m = PimMachine::new(ArrayConfig::qvga());
        m.host_write_lanes(0, &[1]).unwrap();
        m.load(Operand::Row(0));
        assert!(m.trace().is_none());
        m.set_tracing(true);
        m.load(Operand::Row(0));
        assert_eq!(m.trace().unwrap().len(), 1);
        m.set_tracing(false);
        assert!(m.trace().is_none());
    }
}
