//! Sharded multi-array execution: [`PimArrayPool`].
//!
//! The paper evaluates a single (320·8)×256-bit macro, but a deployed
//! PIM cache tiles many of them. The pool owns N independent
//! [`PimMachine`] arrays and runs *phases* — closures over disjoint
//! shards of a kernel — on scoped worker threads, one per array.
//!
//! Accounting stays deterministic and paper-faithful:
//!
//! * **Energy / op counts** are the per-array [`ExecStats`] merged by
//!   summation ([`PimArrayPool::merged_stats`]); the work performed is
//!   identical to single-array execution, it is only distributed.
//! * **Wall cycles** ([`PimArrayPool::wall_cycles`]) advance per phase
//!   by the *maximum* per-array cycle delta (the barrier waits for the
//!   slowest shard), plus [`CostModel::pool_sync_cycles`] per barrier
//!   when more than one array participates — so a pool of one is
//!   cycle-identical to a bare machine.
//!
//! Thread scheduling can never perturb results: each closure owns its
//! array exclusively for the duration of the phase, and cycle deltas
//! are computed from per-array counters after the barrier, in array
//! order.

use crate::machine::{PimMachine, PimMachineBuilder};
use crate::stats::ExecStats;

/// A pool of N identical PIM arrays executing kernel shards in parallel.
///
/// Construct through [`PimMachineBuilder::build_pool`] so every member
/// array shares one configuration:
///
/// ```
/// use pimvo_pim::{ArrayConfig, Operand, PimMachineBuilder};
///
/// let mut pool = PimMachineBuilder::new(ArrayConfig::qvga()).build_pool(2);
/// pool.array_mut(0).host_write_lanes(0, &[1, 2]).unwrap();
/// pool.array_mut(1).host_write_lanes(0, &[3, 4]).unwrap();
/// let sums: Vec<i64> = pool.run_phase(|_idx, m| {
///     m.add(Operand::Row(0), Operand::Row(0));
///     m.tmp_lanes()[0]
/// });
/// assert_eq!(sums, vec![2, 6]);
/// // both shards ran one cycle; the barrier charges one sync overhead
/// assert_eq!(pool.wall_cycles(), 1 + pool.sync_cycles());
/// ```
#[derive(Debug)]
pub struct PimArrayPool {
    arrays: Vec<PimMachine>,
    wall_cycles: u64,
    sync_cycles: u64,
    barriers: u64,
}

impl PimArrayPool {
    /// Builds a pool of `n` arrays stamped from one builder
    /// configuration. Prefer the [`PimMachineBuilder::build_pool`]
    /// spelling.
    ///
    /// # Panics
    ///
    /// Panics for `n == 0`.
    pub fn from_builder(builder: &PimMachineBuilder, n: usize) -> Self {
        assert!(n >= 1, "a pool needs at least one array");
        let arrays: Vec<PimMachine> = (0..n).map(|_| builder.build()).collect();
        let sync_cycles = arrays[0].cost_model().pool_sync_cycles;
        PimArrayPool {
            arrays,
            wall_cycles: 0,
            sync_cycles,
            barriers: 0,
        }
    }

    /// Number of arrays in the pool.
    pub fn len(&self) -> usize {
        self.arrays.len()
    }

    /// True for an (impossible) empty pool; present for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty()
    }

    /// Shared view of array `i`.
    pub fn array(&self, i: usize) -> &PimMachine {
        &self.arrays[i]
    }

    /// Exclusive access to array `i` — host-side setup (image strip
    /// loads, halo rows, boundary exchanges) between phases goes through
    /// here and costs host I/O only, never compute cycles.
    pub fn array_mut(&mut self, i: usize) -> &mut PimMachine {
        &mut self.arrays[i]
    }

    /// The per-barrier synchronisation overhead in cycles (from the
    /// cost model the pool was built with).
    pub fn sync_cycles(&self) -> u64 {
        self.sync_cycles
    }

    /// Number of multi-array barriers charged so far.
    pub fn barriers(&self) -> u64 {
        self.barriers
    }

    /// Wall-clock cycles so far: per phase, the slowest shard's cycle
    /// delta, plus one sync overhead per multi-array barrier.
    pub fn wall_cycles(&self) -> u64 {
        self.wall_cycles
    }

    /// Per-array statistics merged by summation: total energy, SRAM
    /// traffic and op counts of the distributed execution. The `cycles`
    /// field is the summed *compute* cycles (total work); use
    /// [`PimArrayPool::wall_cycles`] for elapsed time.
    pub fn merged_stats(&self) -> ExecStats {
        let mut merged = ExecStats::new();
        for m in &self.arrays {
            merged.merge(m.stats());
        }
        merged
    }

    /// Resets statistics and the wall-cycle clock on every array
    /// (array contents are preserved).
    pub fn reset_stats(&mut self) {
        for m in &mut self.arrays {
            m.reset_stats();
        }
        self.wall_cycles = 0;
        self.barriers = 0;
    }

    /// Runs one parallel phase: `f(index, machine)` executes on every
    /// array concurrently (scoped worker threads; inline for a pool of
    /// one), with each closure owning its array exclusively. Returns the
    /// per-array results in array order.
    ///
    /// The phase forms a barrier: wall cycles advance by the maximum
    /// per-array cycle delta, plus the sync overhead when the pool has
    /// more than one array.
    pub fn run_phase<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut PimMachine) -> R + Sync,
    {
        let before: Vec<u64> = self.arrays.iter().map(|m| m.stats().cycles).collect();
        let results: Vec<R> = if self.arrays.len() == 1 {
            vec![f(0, &mut self.arrays[0])]
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .arrays
                    .iter_mut()
                    .enumerate()
                    .map(|(i, m)| {
                        let f = &f;
                        s.spawn(move || f(i, m))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("pool shard thread panicked"))
                    .collect()
            })
        };
        let max_delta = self
            .arrays
            .iter()
            .zip(&before)
            .map(|(m, &b)| m.stats().cycles - b)
            .max()
            .unwrap_or(0);
        self.wall_cycles += max_delta;
        if self.arrays.len() > 1 {
            self.wall_cycles += self.sync_cycles;
            self.barriers += 1;
        }
        results
    }
}

impl PimMachineBuilder {
    /// Builds a [`PimArrayPool`] of `n` arrays with this configuration.
    pub fn build_pool(&self, n: usize) -> PimArrayPool {
        PimArrayPool::from_builder(self, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArrayConfig;
    use crate::isa::Operand;

    fn pool(n: usize) -> PimArrayPool {
        PimMachineBuilder::new(ArrayConfig::qvga()).build_pool(n)
    }

    #[test]
    fn wall_cycles_are_max_plus_sync() {
        let mut p = pool(3);
        for i in 0..3 {
            p.array_mut(i).host_write_lanes(0, &[1, 2, 3]).unwrap();
        }
        // shard i performs i+1 single-cycle adds: deltas 1, 2, 3
        p.run_phase(|i, m| {
            for _ in 0..=i {
                m.add(Operand::Row(0), Operand::Row(0));
            }
        });
        assert_eq!(p.wall_cycles(), 3 + p.sync_cycles());
        assert_eq!(p.barriers(), 1);
        // compute work is conserved: 1 + 2 + 3 summed cycles
        assert_eq!(p.merged_stats().cycles, 6);
    }

    #[test]
    fn single_array_pool_matches_bare_machine() {
        let mut p = pool(1);
        p.array_mut(0).host_write_lanes(0, &[5, 6]).unwrap();
        p.run_phase(|_, m| {
            m.add(Operand::Row(0), Operand::Row(0));
            m.writeback(1);
        });
        let mut m = PimMachine::new(ArrayConfig::qvga());
        m.host_write_lanes(0, &[5, 6]).unwrap();
        m.add(Operand::Row(0), Operand::Row(0));
        m.writeback(1);
        // no sync overhead, identical cycles and stats
        assert_eq!(p.wall_cycles(), m.stats().cycles);
        assert_eq!(p.barriers(), 0);
        assert_eq!(p.merged_stats(), *m.stats());
    }

    #[test]
    fn phase_results_in_array_order() {
        let mut p = pool(4);
        let ids = p.run_phase(|i, _| i);
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn reset_clears_wall_clock() {
        let mut p = pool(2);
        p.run_phase(|_, m| {
            m.host_broadcast(0, 7).unwrap();
            m.load(Operand::Row(0));
        });
        assert!(p.wall_cycles() > 0);
        p.reset_stats();
        assert_eq!(p.wall_cycles(), 0);
        assert_eq!(p.merged_stats().cycles, 0);
        // array contents survive the reset
        assert_eq!(p.array_mut(0).host_read_lanes(0)[0], 7);
    }

    #[test]
    #[should_panic(expected = "at least one array")]
    fn empty_pool_rejected() {
        pool(0);
    }
}
