//! Sharded multi-array execution: [`PimArrayPool`].
//!
//! The paper evaluates a single (320·8)×256-bit macro, but a deployed
//! PIM cache tiles many of them. The pool owns N independent
//! [`PimMachine`] arrays and runs *phases* — closures over disjoint
//! shards of a kernel — on scoped worker threads, one per array.
//!
//! Accounting stays deterministic and paper-faithful:
//!
//! * **Energy / op counts** are the per-array [`ExecStats`] merged by
//!   summation ([`PimArrayPool::merged_stats`]); the work performed is
//!   identical to single-array execution, it is only distributed.
//! * **Wall cycles** ([`PimArrayPool::wall_cycles`]) advance per phase
//!   by the *maximum* per-array cycle delta (the barrier waits for the
//!   slowest shard), plus [`CostModel::pool_sync_cycles`] per barrier
//!   when more than one array participates — so a pool of one is
//!   cycle-identical to a bare machine.
//!
//! Thread scheduling can never perturb results: each closure owns its
//! array exclusively for the duration of the phase, and cycle deltas
//! are computed from per-array counters after the barrier, in array
//! order.
//!
//! # Job-queue submission
//!
//! The phase API models one kernel owning the whole pool. Multi-tenant
//! submission goes through [`crate::PoolExecutor`] instead: jobs carry
//! lowered programs plus session/class/priority metadata, and arrays
//! pull work in deterministic waves (see [`crate::executor`]).
//! [`PimArrayPool::submit_strips`] is the strip-kernel entry point on
//! that path; [`PimArrayPool::run_programs_labeled`] remains as a thin
//! compatibility wrapper over it.
//!
//! # Fault resilience
//!
//! When arrays carry a [`crate::FaultModel`] with word
//! [`crate::Protection`], the pool is the recovery layer:
//! [`PimArrayPool::run_phase_resilient`] runs *self-contained* shard
//! closures, checks each array's detected-error counter after the
//! barrier, retries dirty shards on the same array (bounded by
//! [`RetryPolicy::max_retries`]), and — when the per-row syndrome log
//! says the failure is persistent (a stuck-at defect, not a transient
//! storm) — quarantines the array and re-dispatches the shard to a
//! healthy one. [`PimArrayPool::health`] reports the per-array fault
//! counters, the quarantined set and the retry/re-dispatch totals.
//! Arrays can also be quarantined manually
//! ([`PimArrayPool::try_quarantine`]) e.g. from a manufacturing test;
//! dispatch then simply skips them.
//!
//! # Rehabilitation (scrub / remap / probation)
//!
//! Quarantine alone makes capacity monotonically shrink. The scrub
//! pass ([`PimArrayPool::scrub_now`], or automatic every
//! [`ScrubConfig::interval_phases`] resilient phases) is the repair
//! driver: it march-tests every row of each quarantined array with
//! test patterns ([`PimMachine::scrub_row`]), remaps rows that fail to
//! the array's spare-row region ([`PimMachine::remap_row`]), and —
//! when every row finally verifies clean — clears the fault counters
//! and re-admits the array through a *probation* state: the array is
//! dispatched again, but each resilient phase charges it a
//! verify-on-read patrol and any new detected error restarts the
//! probation countdown. After [`ScrubConfig::probation_phases`] clean
//! phases the array regains full membership. Scrubbing destroys the
//! array contents (re-admitted arrays come back zero-filled), which is
//! safe because resilient shards are self-contained. An array whose
//! defects outnumber its spares fails its scrub and stays quarantined.

use crate::cache::LoweredCache;
use crate::dma::{DmaConfig, DmaFaultModel, DmaHealth};
use crate::executor::{Job, JobHandle, PoolExecutor};
use crate::fault::FaultStatus;
use crate::lower::LoweredProgram;
use crate::machine::{PimError, PimMachine, PimMachineBuilder};
use crate::optrace::OpRecorder;
use crate::stats::ExecStats;
use pimvo_telemetry::optrace::{OpTrace, DMA_LANE_BASE, POOL_STREAM};
use pimvo_telemetry::{Severity, Telemetry, TimeDomain};
use std::collections::BTreeMap;

/// Retry/quarantine policy of [`PimArrayPool::run_phase_resilient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Bounded retries of a dirty shard on the *same* array before the
    /// pool considers stronger measures.
    pub max_retries: u32,
    /// Detected-error events on one row (within a single phase,
    /// including its retries) at which the failure is classified as
    /// persistent — a stuck-at defect — and the array is quarantined.
    /// Below the threshold a still-dirty shard is accepted as degraded
    /// output (a transient upset storm cannot be retried away).
    pub stuck_row_threshold: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            stuck_row_threshold: 3,
        }
    }
}

/// Configuration of the scrub/probation rehabilitation pass
/// ([`PimArrayPool::scrub_now`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubConfig {
    /// Resilient phases between automatic scrub passes. `0` (the
    /// default) disables the automatic trigger; [`PimArrayPool::scrub_now`]
    /// still works, so quarantine-only behaviour is fully preserved
    /// until a host opts in.
    pub interval_phases: u64,
    /// Clean resilient phases a re-admitted array must complete under
    /// verify-on-read before regaining full membership. Any new
    /// detected error during probation restarts the countdown.
    pub probation_phases: u64,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig {
            interval_phases: 0,
            probation_phases: 3,
        }
    }
}

/// March-test patterns of one scrub pass, in order: alternating bit
/// patterns catch stuck-at and simple coupling defects; the final
/// all-zeros pass doubles as the row clear a re-admitted array starts
/// from.
const SCRUB_PATTERNS: [u8; 3] = [0x55, 0xAA, 0x00];

/// Health report of a [`PimArrayPool`]: per-array fault counters, the
/// quarantined set, and the pool's recovery activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolHealth {
    /// Per-array cumulative [`FaultStatus`] (injected / corrected /
    /// detected counters), in array order.
    pub arrays: Vec<FaultStatus>,
    /// Which arrays are quarantined (excluded from dispatch).
    pub quarantined: Vec<bool>,
    /// Shard retries performed (same-array and re-dispatch attempts
    /// beyond the first).
    pub retries: u64,
    /// Shards re-dispatched to a different array after a quarantine.
    pub redispatches: u64,
    /// Shards accepted with detected-but-uncorrected errors after
    /// retries were exhausted on a non-persistent (transient) failure.
    pub dirty_accepted: u64,
    /// Remaining clean phases each array must complete under
    /// verify-on-read before regaining full membership (`0` = not in
    /// probation), in array order.
    pub probation: Vec<u64>,
    /// Logical rows remapped to spares on each array, in array order.
    pub remapped_rows: Vec<u64>,
    /// Scrub passes run over the pool.
    pub scrubs: u64,
    /// Arrays re-admitted from quarantine by a scrub pass (cumulative;
    /// an array rehabilitated twice counts twice).
    pub rehabilitated: u64,
}

impl PoolHealth {
    /// Number of quarantined arrays.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.iter().filter(|&&q| q).count()
    }

    /// Number of arrays still accepting work.
    pub fn healthy_count(&self) -> usize {
        self.quarantined.len() - self.quarantined_count()
    }

    /// Total detected (uncorrected) error events across arrays.
    pub fn total_detected(&self) -> u64 {
        self.arrays.iter().map(|s| s.detected).sum()
    }

    /// Total ECC-corrected words across arrays.
    pub fn total_corrected(&self) -> u64 {
        self.arrays.iter().map(|s| s.corrected).sum()
    }

    /// Number of arrays currently in probation.
    pub fn probation_count(&self) -> usize {
        self.probation.iter().filter(|&&p| p > 0).count()
    }

    /// Total logical rows remapped to spares across arrays.
    pub fn total_remapped_rows(&self) -> u64 {
        self.remapped_rows.iter().sum()
    }
}

/// A pool of N identical PIM arrays executing kernel shards in parallel.
///
/// Construct through [`PimMachineBuilder::build_pool`] so every member
/// array shares one configuration:
///
/// ```
/// use pimvo_pim::{ArrayConfig, Operand, PimMachineBuilder};
///
/// let mut pool = PimMachineBuilder::new(ArrayConfig::qvga()).build_pool(2);
/// pool.array_mut(0).host_write_lanes(0, &[1, 2]).unwrap();
/// pool.array_mut(1).host_write_lanes(0, &[3, 4]).unwrap();
/// let sums: Vec<i64> = pool.run_phase(|_idx, m| {
///     m.add(Operand::Row(0), Operand::Row(0));
///     m.tmp_lanes()[0]
/// });
/// assert_eq!(sums, vec![2, 6]);
/// // both shards ran one compute cycle on top of their (equal) host
/// // strip-load transfer; the barrier charges one sync overhead
/// let io = pool.array(0).cost_model().transfer_cycles(2);
/// assert_eq!(pool.wall_cycles(), io + 1 + pool.sync_cycles());
/// ```
#[derive(Debug)]
pub struct PimArrayPool {
    arrays: Vec<PimMachine>,
    wall_cycles: u64,
    sync_cycles: u64,
    barriers: u64,
    /// Per-array timeline watermark: how much of each array's
    /// [`PimMachine::timeline`] the wall clock has already absorbed.
    /// Host I/O and DMA stalls between waves (strip loads through
    /// [`PimArrayPool::array_mut`]) are picked up at the array's next
    /// barrier; maintenance-port work (scrub) bumps the watermark
    /// without advancing the wall.
    seen: Vec<u64>,
    quarantined: Vec<bool>,
    policy: RetryPolicy,
    retries: u64,
    redispatches: u64,
    dirty_accepted: u64,
    scrub: ScrubConfig,
    phases_since_scrub: u64,
    /// Remaining clean probation phases per array (0 = full member).
    probation: Vec<u64>,
    /// Arrays whose current healthy state came from a scrub
    /// re-admission; guards [`PimArrayPool::import_health`] against
    /// stale snapshots re-quarantining a repaired array. Cleared by a
    /// new quarantine.
    rehabilitated: Vec<bool>,
    scrubs: u64,
    rehabilitations: u64,
    scrub_cycles: u64,
    telemetry: Telemetry,
    /// Pool-stream op recorder (barrier records); `Some` iff the
    /// per-array recorders are armed too.
    op_sync: Option<Box<OpRecorder>>,
    /// Ring capacity passed to [`PimArrayPool::arm_op_recorders`], kept
    /// so a DMA channel installed later gets an equally sized lane.
    op_capacity: usize,
    /// Memo table for lowered programs; defaults to a clone of the
    /// process-wide [`LoweredCache::global`] handle.
    lowered: LoweredCache,
}

impl PimArrayPool {
    /// Builds a pool of `n` arrays stamped from one builder
    /// configuration. Prefer the [`PimMachineBuilder::build_pool`]
    /// spelling.
    ///
    /// # Panics
    ///
    /// Panics for `n == 0`.
    pub fn from_builder(builder: &PimMachineBuilder, n: usize) -> Self {
        assert!(n >= 1, "a pool needs at least one array");
        let mut arrays: Vec<PimMachine> = (0..n).map(|_| builder.build()).collect();
        // fork the fault stream per array: physically distinct macros do
        // not see identical upset sequences (a no-op for inert models)
        for (i, m) in arrays.iter_mut().enumerate() {
            m.reseed_faults(i as u64);
        }
        let sync_cycles = arrays[0].cost_model().pool_sync_cycles;
        PimArrayPool {
            quarantined: vec![false; n],
            arrays,
            wall_cycles: 0,
            sync_cycles,
            barriers: 0,
            seen: vec![0; n],
            policy: RetryPolicy::default(),
            retries: 0,
            redispatches: 0,
            dirty_accepted: 0,
            scrub: ScrubConfig::default(),
            phases_since_scrub: 0,
            probation: vec![0; n],
            rehabilitated: vec![false; n],
            scrubs: 0,
            rehabilitations: 0,
            scrub_cycles: 0,
            telemetry: Telemetry::off(),
            op_sync: None,
            op_capacity: 0,
            lowered: LoweredCache::global().clone(),
        }
    }

    /// Replaces the pool's lowered-program cache handle. Kernel entry
    /// points lower through this cache, so a fleet sharing one handle
    /// across its pools lowers each distinct program exactly once.
    pub fn set_lowered_cache(&mut self, cache: LoweredCache) {
        self.lowered = cache;
    }

    /// The pool's lowered-program cache handle.
    #[must_use]
    pub fn lowered_cache(&self) -> &LoweredCache {
        &self.lowered
    }

    /// Attaches a telemetry handle: labeled phases then record
    /// pool-phase and per-shard cycle-domain spans, and the resilient
    /// path records retry/quarantine/re-dispatch events. The default
    /// handle is off ([`Telemetry::off`]) and costs one branch per phase.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The attached telemetry handle (off by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Arms an op-record ring of `capacity` records on every array plus
    /// a pool sync stream that records one barrier per wall-clock
    /// advance. Off by default; while disarmed every result, cycle and
    /// picojoule is identical to a build without the recorder.
    pub fn arm_op_recorders(&mut self, capacity: usize) {
        let n = self.arrays.len();
        for (i, m) in self.arrays.iter_mut().enumerate() {
            m.arm_op_recorder(i as u16, capacity);
        }
        // the sync stream takes namespace `n` (one past the arrays) so
        // its ids never collide with a machine stream's
        self.op_sync = Some(Box::new(OpRecorder::with_stream(
            n as u16,
            POOL_STREAM,
            capacity,
        )));
        self.op_capacity = capacity;
        self.arm_dma_lanes();
    }

    /// Arms one op-trace lane per installed DMA channel: stream
    /// namespace `n + 1 + i` (past the arrays and the sync stream),
    /// stamped `DMA_LANE_BASE | i` so the profiler renders a `dma i`
    /// lane. No-op for arrays without a channel.
    fn arm_dma_lanes(&mut self) {
        let n = self.arrays.len();
        for (i, m) in self.arrays.iter_mut().enumerate() {
            m.arm_dma_recorder(
                (n + 1 + i) as u16,
                DMA_LANE_BASE | i as u16,
                self.op_capacity,
            );
        }
    }

    /// Disarms the recorders armed by [`PimArrayPool::arm_op_recorders`],
    /// discarding any buffered records.
    pub fn disarm_op_recorders(&mut self) {
        for m in &mut self.arrays {
            m.disarm_op_recorder();
        }
        self.op_sync = None;
    }

    /// Whether [`PimArrayPool::arm_op_recorders`] is in effect.
    pub fn op_recorders_armed(&self) -> bool {
        self.op_sync.is_some()
    }

    /// Stamps subsequent op records (all streams) with a serving-layer
    /// session id. A no-op while disarmed.
    pub fn set_op_session(&mut self, session: u32) {
        for m in &mut self.arrays {
            if let Some(r) = m.op_recorder_mut() {
                r.set_session(session);
            }
        }
        if let Some(sync) = &mut self.op_sync {
            sync.set_session(session);
        }
    }

    /// Drains every armed stream into one merged [`OpTrace`] (machine
    /// streams in array order, then the pool sync stream). Returns
    /// `None` while disarmed. Recorders stay armed; ids remain unique
    /// across drains.
    pub fn drain_op_trace(&mut self) -> Option<OpTrace> {
        self.op_sync.as_ref()?;
        let mut trace = OpTrace::new();
        for m in &mut self.arrays {
            if let Some(t) = m.drain_op_trace() {
                trace.merge(t);
            }
            if let Some(t) = m.drain_dma_trace() {
                trace.merge(t);
            }
        }
        if let Some(sync) = &mut self.op_sync {
            trace.merge(sync.drain());
        }
        Some(trace)
    }

    /// Records one sync point in the pool stream after a wall-clock
    /// advance: barrier records depending on the tails of the `changed`
    /// members' streams (chained two tails per record, with `cycles` —
    /// the sync overhead just charged to the wall — carried by the last
    /// record), then restarts every armed machine stream's serial chain
    /// from the final barrier id. This is how "wall cycles advance by
    /// the slowest member" enters the dependency DAG: the critical path
    /// through the barriers equals the pool wall clock.
    fn op_sync_point(&mut self, cycles: u64, changed: &[usize]) {
        let Some(sync) = &mut self.op_sync else {
            return;
        };
        let start = self.wall_cycles;
        let tails: Vec<u64> = changed
            .iter()
            .filter_map(|&i| self.arrays[i].op_recorder())
            .map(|r| r.tail())
            .filter(|&t| t != 0)
            .collect();
        let mut chain = sync.tail();
        let last = if tails.is_empty() {
            sync.record_barrier([chain, 0, 0], start, cycles, changed.len() as u32)
        } else {
            for (n, pair) in tails.chunks(2).enumerate() {
                let is_last = (n + 1) * 2 >= tails.len();
                chain = sync.record_barrier(
                    [chain, pair[0], pair.get(1).copied().unwrap_or(0)],
                    start,
                    if is_last { cycles } else { 0 },
                    changed.len() as u32,
                );
            }
            chain
        };
        for m in &mut self.arrays {
            if let Some(r) = m.op_recorder_mut() {
                r.set_pending_dep(last);
            }
        }
    }

    /// Number of arrays in the pool.
    pub fn len(&self) -> usize {
        self.arrays.len()
    }

    /// True for an (impossible) empty pool; present for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty()
    }

    /// Shared view of array `i`.
    pub fn array(&self, i: usize) -> &PimMachine {
        &self.arrays[i]
    }

    /// Exclusive access to array `i` — host-side setup (image strip
    /// loads, halo rows, boundary exchanges) between phases goes through
    /// here. Transfers cost host-I/O (or DMA) timeline cycles, never
    /// compute cycles; the wall clock absorbs them at the array's next
    /// barrier via its timeline watermark.
    pub fn array_mut(&mut self, i: usize) -> &mut PimMachine {
        &mut self.arrays[i]
    }

    // ------------------------------------------------------------------
    // DMA channels (see `crate::dma`)
    // ------------------------------------------------------------------

    /// Installs (or removes, with `None`) one host↔array DMA channel
    /// per member array. When the op recorders are armed, each channel
    /// gets its own trace lane (`dma i`). Installing replaces existing
    /// channels: clocks, health and fault streams start fresh.
    pub fn set_dma(&mut self, cfg: Option<DmaConfig>) {
        for m in &mut self.arrays {
            m.set_dma(cfg);
        }
        if self.op_sync.is_some() {
            self.arm_dma_lanes();
        }
    }

    /// Plugs one seeded [`DmaFaultModel`] into every member channel,
    /// forking the fault stream per array index so physically distinct
    /// burst ports do not see identical fault sequences. No effect on
    /// arrays without a channel.
    pub fn set_dma_fault(&mut self, model: DmaFaultModel) {
        for (i, m) in self.arrays.iter_mut().enumerate() {
            m.set_dma_fault(model.clone());
            m.dma_reseed(i as u64);
        }
    }

    /// Member channels' health counters merged by summation
    /// (`quarantined` is true when *any* member channel is).
    pub fn dma_health(&self) -> DmaHealth {
        let mut h = DmaHealth::default();
        for m in &self.arrays {
            if let Some(mh) = m.dma_health() {
                h.merge(&mh);
            }
        }
        h
    }

    /// Lifts every member channel's quarantine (operator action after
    /// the underlying fault burst passed).
    pub fn dma_rehabilitate(&mut self) {
        for m in &mut self.arrays {
            m.dma_rehabilitate();
        }
    }

    /// Drains every member channel — strip-in, prefetch *and* outbound
    /// descriptors — at a frame/measurement boundary. Per-array stall
    /// cycles are charged and the wall clock advances by the slowest
    /// member's wait; no extra sync overhead is charged (the settle
    /// rides the frame-end barrier the caller already pays). Free when
    /// no channel is installed or everything already landed.
    pub fn dma_settle(&mut self) {
        let members: Vec<usize> = (0..self.arrays.len()).collect();
        for &i in &members {
            self.arrays[i].dma_settle();
        }
        let max_delta = members
            .iter()
            .map(|&i| self.take_timeline(i))
            .max()
            .unwrap_or(0);
        if max_delta > 0 {
            self.wall_cycles += max_delta;
            self.op_sync_point(0, &members);
        }
    }

    /// The per-barrier synchronisation overhead in cycles (from the
    /// cost model the pool was built with).
    pub fn sync_cycles(&self) -> u64 {
        self.sync_cycles
    }

    /// Number of multi-array barriers charged so far.
    pub fn barriers(&self) -> u64 {
        self.barriers
    }

    /// Wall-clock cycles so far: per phase, the slowest shard's cycle
    /// delta, plus one sync overhead per multi-array barrier.
    pub fn wall_cycles(&self) -> u64 {
        self.wall_cycles
    }

    /// Per-array statistics merged by summation: total energy, SRAM
    /// traffic and op counts of the distributed execution. The `cycles`
    /// field is the summed *compute* cycles (total work); use
    /// [`PimArrayPool::wall_cycles`] for elapsed time.
    pub fn merged_stats(&self) -> ExecStats {
        let mut merged = ExecStats::new();
        for m in &self.arrays {
            merged.merge(m.stats());
        }
        merged
    }

    /// Resets statistics and the wall-cycle clock on every array
    /// (array contents are preserved).
    pub fn reset_stats(&mut self) {
        for m in &mut self.arrays {
            m.reset_stats();
        }
        self.wall_cycles = 0;
        self.barriers = 0;
        self.seen.fill(0);
    }

    /// Advances array `i`'s timeline watermark and returns the
    /// not-yet-accounted delta: everything (compute, host I/O, DMA
    /// stalls) array `i` spent since its last barrier.
    fn take_timeline(&mut self, i: usize) -> u64 {
        let now = self.arrays[i].timeline();
        let delta = now - self.seen[i];
        self.seen[i] = now;
        delta
    }

    /// Runs one parallel phase: `f(index, machine)` executes on every
    /// array concurrently (scoped worker threads; inline for a pool of
    /// one), with each closure owning its array exclusively. Returns the
    /// per-array results in array order.
    ///
    /// The phase forms a barrier: wall cycles advance by the maximum
    /// per-array cycle delta, plus the sync overhead when the pool has
    /// more than one array.
    pub fn run_phase<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut PimMachine) -> R + Sync,
    {
        self.run_phase_labeled("phase", f)
    }

    /// [`PimArrayPool::run_phase`] with a phase label for telemetry:
    /// when a handle is attached ([`PimArrayPool::set_telemetry`]), the
    /// phase records one wall-time span and, in the cycle domain, a
    /// pool-phase span plus one span per participating array (so the
    /// trace shows the barrier waiting on the slowest shard).
    pub fn run_phase_labeled<R, F>(&mut self, label: &str, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut PimMachine) -> R + Sync,
    {
        let members: Vec<usize> = (0..self.arrays.len()).collect();
        self.run_wave(label, &members, f).0
    }

    /// Runs one parallel *wave* over the arrays listed in `members`:
    /// `f(slot, machine)` executes on `arrays[members[slot]]`, each
    /// closure owning its array exclusively (scoped worker threads;
    /// inline for a single member). Returns the per-slot results and
    /// cycle deltas, both in `members` order.
    ///
    /// This is the execution core shared by the phase API (a wave over
    /// every array) and the job executor ([`crate::PoolExecutor`], a
    /// wave over whichever arrays pulled work). Accounting is the
    /// phase rule: wall cycles advance by the slowest member's delta,
    /// plus the sync overhead when more than one member participates;
    /// telemetry records the pool-phase and per-array cycle spans.
    pub(crate) fn run_wave<R, F>(
        &mut self,
        label: &str,
        members: &[usize],
        f: F,
    ) -> (Vec<R>, Vec<u64>)
    where
        R: Send,
        F: Fn(usize, &mut PimMachine) -> R + Sync,
    {
        let _wall = self.telemetry.span("pool", label);
        let wall_start = self.wall_cycles;
        let results: Vec<R> = if members.len() == 1 {
            vec![f(0, &mut self.arrays[members[0]])]
        } else {
            let mut slot_of: Vec<Option<usize>> = vec![None; self.arrays.len()];
            for (k, &i) in members.iter().enumerate() {
                slot_of[i] = Some(k);
            }
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .arrays
                    .iter_mut()
                    .enumerate()
                    .filter_map(|(i, m)| slot_of[i].map(|k| (k, m)))
                    .map(|(k, m)| {
                        let f = &f;
                        s.spawn(move || (k, f(k, m)))
                    })
                    .collect();
                let mut out: Vec<Option<R>> = (0..members.len()).map(|_| None).collect();
                for h in handles {
                    let (k, r) = h.join().expect("pool shard thread panicked");
                    out[k] = Some(r);
                }
                out.into_iter()
                    .map(|r| r.expect("every wave slot produces a result"))
                    .collect()
            })
        };
        let deltas: Vec<u64> = members.iter().map(|&i| self.take_timeline(i)).collect();
        let max_delta = deltas.iter().copied().max().unwrap_or(0);
        self.wall_cycles += max_delta;
        if members.len() > 1 {
            self.wall_cycles += self.sync_cycles;
            self.barriers += 1;
        }
        let sync = if members.len() > 1 {
            self.sync_cycles
        } else {
            0
        };
        self.op_sync_point(sync, members);
        if self.telemetry.is_enabled() {
            let participants: Vec<(usize, u64)> = members
                .iter()
                .copied()
                .zip(deltas.iter().copied())
                .collect();
            self.record_phase_spans(label, wall_start, &participants);
        }
        (results, deltas)
    }

    /// Legacy spelling of [`PimArrayPool::submit_strips`], kept as a
    /// thin wrapper during the job-API migration so existing strip
    /// kernels and their bit-identity tests keep working unchanged.
    ///
    /// # Panics
    ///
    /// Panics when `programs.len()` differs from the pool size.
    ///
    /// # Errors
    ///
    /// As [`PimArrayPool::submit_strips`].
    pub fn run_programs_labeled(
        &mut self,
        label: &str,
        programs: &[LoweredProgram],
    ) -> Result<Vec<Vec<i64>>, PimError> {
        self.submit_strips(label, programs)
    }

    /// Strip-sharded program submission through the job queue:
    /// `programs[i]` (one lowered macro-op program per array, see
    /// [`crate::lower()`]) is submitted as a [`crate::Job`] pinned to
    /// array `i`, and the queue is drained — a single wave, so
    /// wall-cycle, barrier and telemetry accounting are identical to
    /// [`PimArrayPool::run_phase_labeled`] over the same programs.
    /// Returns each program's reduce results in array order.
    ///
    /// # Panics
    ///
    /// Panics when `programs.len()` differs from the pool size.
    ///
    /// # Errors
    ///
    /// The first [`PimError`] any job's executor reports, in array
    /// order (jobs that already ran stay charged, like any partially
    /// executed phase).
    pub fn submit_strips(
        &mut self,
        label: &str,
        programs: &[LoweredProgram],
    ) -> Result<Vec<Vec<i64>>, PimError> {
        assert_eq!(
            programs.len(),
            self.arrays.len(),
            "one lowered program per array"
        );
        let mut ex = PoolExecutor::new(self);
        let handles: Vec<JobHandle> = programs
            .iter()
            .enumerate()
            .map(|(i, p)| ex.submit(Job::strip(label, p.clone()).pin(i)))
            .collect();
        ex.drain()?;
        handles
            .into_iter()
            .map(|h| {
                ex.take(h)
                    .expect("drained executor holds every result")
                    .map(|r| r.outputs)
            })
            .collect()
    }

    /// [`PimArrayPool::submit_strips`] over already-shared programs
    /// (e.g. handed out by the pool's [`LoweredCache`]) — identical
    /// accounting, no instruction-stream clones.
    ///
    /// # Panics
    ///
    /// Panics when `programs.len()` differs from the pool size.
    ///
    /// # Errors
    ///
    /// As [`PimArrayPool::submit_strips`].
    pub fn submit_strips_shared(
        &mut self,
        label: &str,
        programs: &[std::sync::Arc<LoweredProgram>],
    ) -> Result<Vec<Vec<i64>>, PimError> {
        assert_eq!(
            programs.len(),
            self.arrays.len(),
            "one lowered program per array"
        );
        let mut ex = PoolExecutor::new(self);
        let handles: Vec<JobHandle> = programs
            .iter()
            .enumerate()
            .map(|(i, p)| ex.submit(Job::strip_shared(label, std::sync::Arc::clone(p)).pin(i)))
            .collect();
        ex.drain()?;
        handles
            .into_iter()
            .map(|h| {
                ex.take(h)
                    .expect("drained executor holds every result")
                    .map(|r| r.outputs)
            })
            .collect()
    }

    /// Records the cycle-domain spans of one completed phase: the pool
    /// span (`wall_start..wall_cycles`, including sync and any serial
    /// recovery) and one span per participating array, all starting at
    /// the barrier entry so the viewer shows the slowest shard gating
    /// the phase. Called from the main thread after the barrier.
    fn record_phase_spans(&self, label: &str, wall_start: u64, participants: &[(usize, u64)]) {
        self.telemetry.record_span(
            TimeDomain::Cycles,
            "pool",
            label,
            wall_start,
            self.wall_cycles - wall_start,
            &[("arrays", participants.len().to_string())],
        );
        for &(i, delta) in participants {
            if delta > 0 {
                self.telemetry.record_span(
                    TimeDomain::Cycles,
                    &format!("array {i}"),
                    label,
                    wall_start,
                    delta,
                    &[],
                );
            }
        }
    }

    /// Current retry/quarantine policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Replaces the retry/quarantine policy.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Quarantines array `i`: [`PimArrayPool::run_phase_resilient`]
    /// stops dispatching shards to it. Contents and statistics are
    /// kept; any probation state and rehabilitation mark are cleared
    /// (this is a *new* defect verdict, not the old one resurfacing).
    ///
    /// # Errors
    ///
    /// [`PimError::ArrayOutOfRange`] for a bad array index, so
    /// host-driven callers (checkpoint restore, chaos harnesses) can
    /// recover instead of panicking.
    pub fn try_quarantine(&mut self, i: usize) -> Result<(), PimError> {
        if i >= self.arrays.len() {
            return Err(PimError::ArrayOutOfRange {
                index: i,
                arrays: self.arrays.len(),
            });
        }
        self.mark_quarantined(i);
        Ok(())
    }

    /// Quarantine with the bookkeeping every quarantine path shares:
    /// a fresh defect verdict voids probation and the rehabilitation
    /// mark.
    fn mark_quarantined(&mut self, i: usize) {
        self.quarantined[i] = true;
        self.probation[i] = 0;
        self.rehabilitated[i] = false;
    }

    /// Lifts the quarantine on array `i`, returning it to the dispatch
    /// set. The scrub pass ([`PimArrayPool::scrub_now`]) is the
    /// automated driver; manual callers model an external repair
    /// action or a chaos harness ending a quarantine storm. Fault
    /// counters are kept.
    pub fn unquarantine(&mut self, i: usize) -> Result<(), PimError> {
        match self.quarantined.get_mut(i) {
            Some(q) => {
                *q = false;
                Ok(())
            }
            None => Err(PimError::ArrayOutOfRange {
                index: i,
                arrays: self.arrays.len(),
            }),
        }
    }

    /// True if array `i` is quarantined.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_quarantined(&self, i: usize) -> bool {
        self.quarantined[i]
    }

    /// Applies a previously exported health snapshot: the quarantine
    /// flags and pool-level recovery counters of
    /// [`PimArrayPool::health`]. Per-array [`FaultStatus`] counters,
    /// probation state and remap tables describe the *physical*
    /// arrays' past and are deliberately not imported. Used by
    /// checkpoint restore so a resumed run keeps avoiding arrays
    /// quarantined before the snapshot.
    ///
    /// An array that a scrub pass rehabilitated *after* the snapshot
    /// was taken keeps its healthy state: the snapshot's stale
    /// quarantine flag records the defect the scrub already repaired,
    /// so re-applying it would silently undo the repair. A quarantine
    /// that post-dates the rehabilitation clears the mark
    /// ([`PimArrayPool::try_quarantine`]) and imports normally again.
    ///
    /// # Errors
    ///
    /// [`PimError::PoolSizeMismatch`] if the snapshot's quarantine
    /// vector does not match this pool's array count; the pool is left
    /// unchanged.
    pub fn import_health(&mut self, health: &PoolHealth) -> Result<(), PimError> {
        if health.quarantined.len() != self.arrays.len() {
            return Err(PimError::PoolSizeMismatch {
                got: health.quarantined.len(),
                expected: self.arrays.len(),
            });
        }
        for (i, &q) in health.quarantined.iter().enumerate() {
            if q && self.rehabilitated[i] && !self.quarantined[i] {
                continue; // rehabilitated since the snapshot: stays healthy
            }
            self.quarantined[i] = q;
            if q {
                self.probation[i] = 0;
                self.rehabilitated[i] = false;
            }
        }
        self.retries = health.retries;
        self.redispatches = health.redispatches;
        self.dirty_accepted = health.dirty_accepted;
        Ok(())
    }

    /// Indices of the arrays still accepting work, in array order.
    pub fn healthy_arrays(&self) -> Vec<usize> {
        (0..self.arrays.len())
            .filter(|&i| !self.quarantined[i])
            .collect()
    }

    /// Number of arrays still accepting work.
    pub fn healthy_len(&self) -> usize {
        self.quarantined.iter().filter(|&&q| !q).count()
    }

    /// Arrays currently available for dispatch — healthy arrays,
    /// including probation members (they serve, just with verify-on-read
    /// overhead). The capacity figure the fleet chaos soak tracks.
    pub fn available(&self) -> usize {
        self.healthy_len()
    }

    /// Snapshot of the pool's fault/recovery state.
    pub fn health(&self) -> PoolHealth {
        PoolHealth {
            arrays: self.arrays.iter().map(|m| m.fault_status()).collect(),
            quarantined: self.quarantined.clone(),
            retries: self.retries,
            redispatches: self.redispatches,
            dirty_accepted: self.dirty_accepted,
            probation: self.probation.clone(),
            remapped_rows: self
                .arrays
                .iter()
                .map(|m| m.remapped_rows() as u64)
                .collect(),
            scrubs: self.scrubs,
            rehabilitated: self.rehabilitations,
        }
    }

    /// Current scrub/probation configuration.
    pub fn scrub_config(&self) -> ScrubConfig {
        self.scrub
    }

    /// Replaces the scrub/probation configuration. A non-zero
    /// [`ScrubConfig::interval_phases`] arms the automatic trigger in
    /// [`PimArrayPool::run_phase_resilient`].
    pub fn set_scrub(&mut self, scrub: ScrubConfig) {
        self.scrub = scrub;
    }

    /// Remaining probation phases of array `i` (`0` = full member).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn probation(&self, i: usize) -> u64 {
        self.probation[i]
    }

    /// Compute cycles spent in scrub passes so far (maintenance-port
    /// work on quarantined arrays; runs concurrently with foreground
    /// phases, so it is charged to the per-array [`ExecStats`] — and
    /// through them to energy — but not to the wall clock).
    pub fn scrub_cycles(&self) -> u64 {
        self.scrub_cycles
    }

    /// Runs one scrub pass now over every quarantined array: march-test
    /// each row with the scrub test patterns, remap rows that fail to
    /// spares, and re-admit arrays that end up fully clean into
    /// probation (fault counters and syndrome log reset, contents
    /// zeroed). Arrays whose defects exhaust the spare region stay
    /// quarantined. Returns the number of arrays re-admitted.
    pub fn scrub_now(&mut self) -> usize {
        if self.quarantined.iter().all(|&q| !q) {
            return 0;
        }
        self.scrubs += 1;
        let mut readmitted = 0;
        for i in 0..self.arrays.len() {
            if !self.quarantined[i] {
                continue;
            }
            let cyc0 = self.arrays[i].stats().cycles;
            let t0 = self.arrays[i].timeline();
            let clean = self.scrub_array(i);
            self.scrub_cycles += self.arrays[i].stats().cycles - cyc0;
            // maintenance-port work runs concurrently with foreground
            // phases: bump the watermark by exactly the scrub's own
            // timeline delta so it never reaches the wall clock (host
            // I/O pending from before the scrub stays chargeable)
            self.seen[i] += self.arrays[i].timeline() - t0;
            if clean {
                self.arrays[i].reset_fault_status();
                self.quarantined[i] = false;
                self.probation[i] = self.scrub.probation_phases;
                self.rehabilitated[i] = true;
                self.rehabilitations += 1;
                readmitted += 1;
                self.event_rehabilitated(i);
            } else {
                self.event_scrub_failed(i);
            }
        }
        readmitted
    }

    /// March-tests every logical row of array `i`, remapping failing
    /// rows to spares (re-testing the spare each time). True when the
    /// whole array verifies clean; false as soon as a defective row
    /// cannot be remapped (spares exhausted).
    fn scrub_array(&mut self, i: usize) -> bool {
        let rows = self.arrays[i].config().rows;
        for row in 0..rows {
            loop {
                let clean = SCRUB_PATTERNS.iter().all(|&p| {
                    self.arrays[i]
                        .scrub_row(row, p)
                        .expect("scrub row index in range")
                });
                if clean {
                    break;
                }
                if self.arrays[i].remap_row(row).is_err() {
                    return false;
                }
            }
        }
        true
    }

    /// Runs one parallel phase over the *healthy* arrays with fault
    /// detection and recovery. `f(shard, machine)` receives the shard
    /// index `shard` (position among the healthy arrays, `0..healthy_len()`),
    /// and must be **self-contained**: it writes every input it reads, so
    /// re-running it — on the same or on a different array — reproduces
    /// the shard from scratch. Returns per-shard results in shard order.
    ///
    /// Recovery, per shard whose array reported newly *detected*
    /// (uncorrected) errors during the phase:
    ///
    /// 1. retry on the same array, up to [`RetryPolicy::max_retries`]
    ///    times, accepting the first clean run;
    /// 2. if still dirty, consult the per-row syndrome log: a row with
    ///    ≥ [`RetryPolicy::stuck_row_threshold`] detections within this
    ///    phase marks a persistent defect — the array is quarantined and
    ///    the shard re-dispatched to another healthy array (which gets
    ///    its own retry budget);
    /// 3. a still-dirty shard on a *non*-persistent (transient-storm)
    ///    array is accepted as degraded output and counted in
    ///    [`PoolHealth::dirty_accepted`] — retrying a memoryless upset
    ///    process forever has no expected benefit.
    ///
    /// Accounting matches [`PimArrayPool::run_phase`] exactly when no
    /// recovery triggers (max healthy-shard delta + sync when more than
    /// one healthy array); retries and re-dispatches are serial and add
    /// their full cycle delta to the wall clock.
    ///
    /// # Errors
    ///
    /// [`PimError::AllArraysQuarantined`] when no healthy array remains,
    /// on entry or after quarantines during recovery.
    pub fn run_phase_resilient<R, F>(&mut self, f: F) -> Result<Vec<R>, PimError>
    where
        R: Send,
        F: Fn(usize, &mut PimMachine) -> R + Sync,
    {
        self.run_phase_resilient_labeled("phase", f)
    }

    /// [`PimArrayPool::run_phase_resilient`] with a phase label for
    /// telemetry. Besides the spans of [`PimArrayPool::run_phase_labeled`],
    /// recovery activity records warning/error events (shard retries,
    /// quarantines, re-dispatches, degraded accepts) and bumps the
    /// matching `pimvo_pool_*_total` counters.
    pub fn run_phase_resilient_labeled<R, F>(
        &mut self,
        label: &str,
        f: F,
    ) -> Result<Vec<R>, PimError>
    where
        R: Send,
        F: Fn(usize, &mut PimMachine) -> R + Sync,
    {
        let _wall = self.telemetry.span("pool", label);
        let wall_start = self.wall_cycles;
        // automatic rehabilitation: the scrub pass runs *before* the
        // healthy check, so it can rescue an all-quarantined pool
        if self.scrub.interval_phases > 0 {
            self.phases_since_scrub += 1;
            if self.phases_since_scrub >= self.scrub.interval_phases {
                self.phases_since_scrub = 0;
                self.scrub_now();
            }
        }
        let healthy = self.healthy_arrays();
        if healthy.is_empty() {
            return Err(PimError::AllArraysQuarantined {
                arrays: self.arrays.len(),
            });
        }
        let det_before: Vec<u64> = healthy
            .iter()
            .map(|&i| self.arrays[i].fault_status().detected)
            .collect();
        let log_before: Vec<BTreeMap<usize, u64>> = healthy
            .iter()
            .map(|&i| self.arrays[i].fault_row_log().clone())
            .collect();
        let mut results: Vec<R> = if healthy.len() == 1 {
            vec![f(0, &mut self.arrays[healthy[0]])]
        } else {
            let quarantined = &self.quarantined;
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .arrays
                    .iter_mut()
                    .enumerate()
                    .filter(|(i, _)| !quarantined[*i])
                    .enumerate()
                    .map(|(shard, (_i, m))| {
                        let f = &f;
                        s.spawn(move || f(shard, m))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("pool shard thread panicked"))
                    .collect()
            })
        };
        let wave_deltas: Vec<u64> = healthy.iter().map(|&i| self.take_timeline(i)).collect();
        let max_delta = wave_deltas.iter().copied().max().unwrap_or(0);
        self.wall_cycles += max_delta;
        if healthy.len() > 1 {
            self.wall_cycles += self.sync_cycles;
            self.barriers += 1;
        }
        let sync = if healthy.len() > 1 {
            self.sync_cycles
        } else {
            0
        };
        self.op_sync_point(sync, &healthy);

        // serial recovery pass, in shard order (deterministic)
        for shard in 0..healthy.len() {
            let i = healthy[shard];
            if self.arrays[i].fault_status().detected == det_before[shard] {
                continue;
            }
            let mut clean = false;
            for _ in 0..self.policy.max_retries {
                self.retries += 1;
                self.event_retry(label, shard, i);
                let (r, ok) = self.rerun_shard(&f, shard, i);
                results[shard] = r;
                if ok {
                    clean = true;
                    break;
                }
            }
            if clean {
                continue;
            }
            if !self.is_persistent(i, &log_before[shard]) {
                // transient storm: accept the last run as degraded output
                self.dirty_accepted += 1;
                self.event_dirty_accepted(label, shard, i);
                continue;
            }
            // persistent defect: quarantine and re-dispatch
            self.mark_quarantined(i);
            self.event_quarantine(label, i);
            let mut placed = false;
            for j in 0..self.arrays.len() {
                if self.quarantined[j] {
                    continue;
                }
                self.redispatches += 1;
                self.event_redispatch(label, shard, i, j);
                let log_j = self.arrays[j].fault_row_log().clone();
                let mut ok = false;
                for attempt in 0..=self.policy.max_retries {
                    if attempt > 0 {
                        self.retries += 1;
                        self.event_retry(label, shard, j);
                    }
                    let (r, c) = self.rerun_shard(&f, shard, j);
                    results[shard] = r;
                    if c {
                        ok = true;
                        break;
                    }
                }
                if ok {
                    placed = true;
                    break;
                }
                if self.is_persistent(j, &log_j) {
                    self.mark_quarantined(j);
                    self.event_quarantine(label, j);
                } else {
                    self.dirty_accepted += 1;
                    self.event_dirty_accepted(label, shard, j);
                    placed = true;
                    break;
                }
            }
            if !placed {
                return Err(PimError::AllArraysQuarantined {
                    arrays: self.arrays.len(),
                });
            }
        }
        // probation bookkeeping, in shard order: each probation member
        // is charged a serial verify-on-read patrol over its rows; a
        // phase with any new detected error restarts the countdown, a
        // clean phase counts toward full membership
        for shard in 0..healthy.len() {
            let i = healthy[shard];
            if self.probation[i] == 0 || self.quarantined[i] {
                continue;
            }
            let rows = self.arrays[i].config().rows as u64;
            self.arrays[i].charge_verify_patrol(rows);
            self.wall_cycles += self.take_timeline(i);
            self.op_sync_point(0, &[i]);
            if self.arrays[i].fault_status().detected > det_before[shard] {
                self.probation[i] = self.scrub.probation_phases.max(1);
                self.event_probation_reset(label, i);
            } else {
                self.probation[i] -= 1;
                if self.probation[i] == 0 {
                    self.event_probation_cleared(label, i);
                }
            }
        }
        if self.telemetry.is_enabled() {
            let participants: Vec<(usize, u64)> = healthy
                .iter()
                .copied()
                .zip(wave_deltas.iter().copied())
                .collect();
            self.record_phase_spans(label, wall_start, &participants);
        }
        Ok(results)
    }

    fn event_retry(&self, label: &str, shard: usize, array: usize) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.counter_add("pimvo_pool_retries_total", 1.0);
        self.telemetry.log(
            Severity::Warn,
            "pool shard retry",
            &[
                ("phase", label.to_string()),
                ("shard", shard.to_string()),
                ("array", array.to_string()),
            ],
        );
    }

    fn event_quarantine(&self, label: &str, array: usize) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry
            .counter_add("pimvo_pool_quarantines_total", 1.0);
        self.telemetry.log(
            Severity::Error,
            "pool array quarantined",
            &[("phase", label.to_string()), ("array", array.to_string())],
        );
    }

    fn event_redispatch(&self, label: &str, shard: usize, from: usize, to: usize) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry
            .counter_add("pimvo_pool_redispatches_total", 1.0);
        self.telemetry.log(
            Severity::Warn,
            "pool shard re-dispatched",
            &[
                ("phase", label.to_string()),
                ("shard", shard.to_string()),
                ("from_array", from.to_string()),
                ("to_array", to.to_string()),
            ],
        );
    }

    fn event_dirty_accepted(&self, label: &str, shard: usize, array: usize) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry
            .counter_add("pimvo_pool_dirty_accepted_total", 1.0);
        self.telemetry.log(
            Severity::Warn,
            "pool shard accepted with uncorrected errors",
            &[
                ("phase", label.to_string()),
                ("shard", shard.to_string()),
                ("array", array.to_string()),
            ],
        );
    }

    fn event_rehabilitated(&self, array: usize) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry
            .counter_add("pimvo_pool_rehabilitated_total", 1.0);
        self.telemetry.log(
            Severity::Info,
            "pool array rehabilitated (scrub clean, entering probation)",
            &[
                ("array", array.to_string()),
                (
                    "remapped_rows",
                    self.arrays[array].remapped_rows().to_string(),
                ),
            ],
        );
    }

    fn event_scrub_failed(&self, array: usize) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry
            .counter_add("pimvo_pool_scrub_failures_total", 1.0);
        self.telemetry.log(
            Severity::Warn,
            "pool array failed scrub (spares exhausted), stays quarantined",
            &[
                ("array", array.to_string()),
                ("spares", self.arrays[array].spares_available().to_string()),
            ],
        );
    }

    fn event_probation_reset(&self, label: &str, array: usize) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry
            .counter_add("pimvo_pool_probation_resets_total", 1.0);
        self.telemetry.log(
            Severity::Warn,
            "probation array detected errors, countdown restarted",
            &[("phase", label.to_string()), ("array", array.to_string())],
        );
    }

    fn event_probation_cleared(&self, label: &str, array: usize) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry
            .counter_add("pimvo_pool_probation_cleared_total", 1.0);
        self.telemetry.log(
            Severity::Info,
            "probation array regained full membership",
            &[("phase", label.to_string()), ("array", array.to_string())],
        );
    }

    /// Publishes the pool's health and clock state as telemetry gauges
    /// (`pimvo_pool_*`): healthy/quarantined array counts, detected and
    /// corrected error totals, recovery activity and wall cycles. A
    /// no-op without an attached handle.
    pub fn export_health_telemetry(&self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let h = self.health();
        let t = &self.telemetry;
        t.gauge_set("pimvo_pool_arrays", self.arrays.len() as f64);
        t.gauge_set("pimvo_pool_healthy_arrays", h.healthy_count() as f64);
        t.gauge_set(
            "pimvo_pool_quarantined_arrays",
            h.quarantined_count() as f64,
        );
        t.gauge_set("pimvo_pool_faults_detected", h.total_detected() as f64);
        t.gauge_set("pimvo_pool_faults_corrected", h.total_corrected() as f64);
        t.gauge_set("pimvo_pool_retries", h.retries as f64);
        t.gauge_set("pimvo_pool_redispatches", h.redispatches as f64);
        t.gauge_set("pimvo_pool_dirty_accepted", h.dirty_accepted as f64);
        t.gauge_set("pimvo_pool_probation_arrays", h.probation_count() as f64);
        t.gauge_set("pimvo_pool_remapped_rows", h.total_remapped_rows() as f64);
        t.gauge_set("pimvo_pool_scrubs", h.scrubs as f64);
        t.gauge_set("pimvo_pool_rehabilitated", h.rehabilitated as f64);
        t.gauge_set("pimvo_pool_wall_cycles", self.wall_cycles as f64);
        t.gauge_set("pimvo_pool_barriers", self.barriers as f64);
    }

    /// Restores the wall-cycle clock from a fleet checkpoint during
    /// crash recovery, so the virtual time base resumes where the fleet
    /// left off. Outside recovery the clock only ever advances.
    pub fn restore_wall_cycles(&mut self, cycles: u64) {
        self.wall_cycles = cycles;
        // re-anchor the timeline watermarks: whatever the arrays have
        // already spent is covered by the restored wall value
        for i in 0..self.arrays.len() {
            self.seen[i] = self.arrays[i].timeline();
        }
    }

    /// Restores per-array probation countdowns from a fleet checkpoint
    /// during crash recovery.
    ///
    /// # Errors
    ///
    /// [`PimError::PoolSizeMismatch`] when `probation` does not match
    /// the pool's array count; the pool is left unchanged.
    pub fn restore_probation(&mut self, probation: &[u64]) -> Result<(), PimError> {
        if probation.len() != self.arrays.len() {
            return Err(PimError::PoolSizeMismatch {
                got: probation.len(),
                expected: self.arrays.len(),
            });
        }
        self.probation.copy_from_slice(probation);
        Ok(())
    }

    /// Re-runs shard `shard` on array `i` serially, charging its full
    /// cycle delta to the wall clock. Returns the result and whether the
    /// run finished without newly detected errors.
    fn rerun_shard<R>(
        &mut self,
        f: &(impl Fn(usize, &mut PimMachine) -> R + Sync),
        shard: usize,
        i: usize,
    ) -> (R, bool) {
        let det0 = self.arrays[i].fault_status().detected;
        let r = f(shard, &mut self.arrays[i]);
        self.wall_cycles += self.take_timeline(i);
        self.op_sync_point(0, &[i]);
        (r, self.arrays[i].fault_status().detected == det0)
    }

    /// True if some row of array `i` accumulated at least
    /// [`RetryPolicy::stuck_row_threshold`] detections since `log_before`
    /// was snapshotted — the signature of a stuck-at defect rather than
    /// independent transient upsets.
    fn is_persistent(&self, i: usize, log_before: &BTreeMap<usize, u64>) -> bool {
        self.arrays[i].fault_row_log().iter().any(|(row, &count)| {
            let before = log_before.get(row).copied().unwrap_or(0);
            count.saturating_sub(before) >= self.policy.stuck_row_threshold
        })
    }
}

impl PimMachineBuilder {
    /// Builds a [`PimArrayPool`] of `n` arrays with this configuration.
    pub fn build_pool(&self, n: usize) -> PimArrayPool {
        PimArrayPool::from_builder(self, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArrayConfig;
    use crate::isa::Operand;

    fn pool(n: usize) -> PimArrayPool {
        PimMachineBuilder::new(ArrayConfig::qvga()).build_pool(n)
    }

    #[test]
    fn op_trace_critical_path_matches_wall_clock() {
        let mut p = pool(3);
        p.arm_op_recorders(4096);
        for i in 0..3 {
            p.array_mut(i).host_write_lanes(0, &[1, 2, 3]).unwrap();
        }
        // two phases with skewed shard lengths: the critical path must
        // thread the slowest shard of each phase plus both barriers
        p.run_phase(|i, m| {
            for _ in 0..=i {
                m.add(Operand::Row(0), Operand::Row(0));
            }
        });
        p.run_phase(|_, m| {
            m.add(Operand::Row(0), Operand::Row(0));
        });
        let trace = p.drain_op_trace().expect("armed pool drains a trace");
        assert_eq!(trace.dropped, 0);
        let prof = pimvo_telemetry::optrace::profile(&trace);
        assert_eq!(prof.critical_path_cycles, p.wall_cycles());
    }

    #[test]
    fn armed_op_recorders_do_not_perturb_results_or_accounting() {
        let run = |armed: bool| {
            let mut p = pool(2);
            if armed {
                p.arm_op_recorders(64);
            }
            for i in 0..2 {
                p.array_mut(i).host_write_lanes(0, &[5, 6]).unwrap();
            }
            let out = p.run_phase(|_, m| {
                m.add(Operand::Row(0), Operand::Row(0));
                m.tmp_lanes()[0]
            });
            (out, p.wall_cycles(), p.merged_stats())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn wall_cycles_are_max_plus_sync() {
        let mut p = pool(3);
        for i in 0..3 {
            p.array_mut(i).host_write_lanes(0, &[1, 2, 3]).unwrap();
        }
        // shard i performs i+1 single-cycle adds: deltas 1, 2, 3 — on
        // top of the (equal) host-transfer cost of the strip loads,
        // absorbed at this first barrier via the timeline watermarks
        let io = p.array(0).cost_model().transfer_cycles(3);
        p.run_phase(|i, m| {
            for _ in 0..=i {
                m.add(Operand::Row(0), Operand::Row(0));
            }
        });
        assert_eq!(p.wall_cycles(), io + 3 + p.sync_cycles());
        assert_eq!(p.barriers(), 1);
        // compute work is conserved: 1 + 2 + 3 summed cycles
        assert_eq!(p.merged_stats().cycles, 6);
    }

    #[test]
    fn single_array_pool_matches_bare_machine() {
        let mut p = pool(1);
        p.array_mut(0).host_write_lanes(0, &[5, 6]).unwrap();
        p.run_phase(|_, m| {
            m.add(Operand::Row(0), Operand::Row(0));
            m.writeback(1);
        });
        let mut m = PimMachine::new(ArrayConfig::qvga());
        m.host_write_lanes(0, &[5, 6]).unwrap();
        m.add(Operand::Row(0), Operand::Row(0));
        m.writeback(1);
        // no sync overhead, identical timeline (compute + host I/O)
        assert_eq!(p.wall_cycles(), m.timeline());
        assert_eq!(p.barriers(), 0);
        assert_eq!(p.merged_stats(), *m.stats());
    }

    #[test]
    fn phase_results_in_array_order() {
        let mut p = pool(4);
        let ids = p.run_phase(|i, _| i);
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_quarantine_rejects_out_of_range() {
        let mut p = pool(2);
        assert!(p.try_quarantine(1).is_ok());
        assert!(p.is_quarantined(1));
        match p.try_quarantine(5) {
            Err(PimError::ArrayOutOfRange {
                index: 5,
                arrays: 2,
            }) => {}
            other => panic!("expected ArrayOutOfRange, got {other:?}"),
        }
        p.unquarantine(1).unwrap();
        assert!(!p.is_quarantined(1));
        assert!(matches!(
            p.unquarantine(9),
            Err(PimError::ArrayOutOfRange { .. })
        ));
    }

    #[test]
    fn import_health_round_trips_and_checks_size() {
        let mut p = pool(3);
        p.try_quarantine(2).unwrap();
        let mut h = p.health();
        h.retries = 7;
        h.redispatches = 2;
        h.dirty_accepted = 1;

        let mut q = pool(3);
        q.import_health(&h).unwrap();
        assert!(q.is_quarantined(2));
        assert!(!q.is_quarantined(0));
        let hq = q.health();
        assert_eq!(hq.retries, 7);
        assert_eq!(hq.redispatches, 2);
        assert_eq!(hq.dirty_accepted, 1);

        let mut small = pool(2);
        assert!(matches!(
            small.import_health(&h),
            Err(PimError::PoolSizeMismatch {
                got: 3,
                expected: 2
            })
        ));
        // rejected import leaves the pool untouched
        assert_eq!(small.health().quarantined, vec![false, false]);
    }

    #[test]
    fn reset_clears_wall_clock() {
        let mut p = pool(2);
        p.run_phase(|_, m| {
            m.host_broadcast(0, 7).unwrap();
            m.load(Operand::Row(0));
        });
        assert!(p.wall_cycles() > 0);
        p.reset_stats();
        assert_eq!(p.wall_cycles(), 0);
        assert_eq!(p.merged_stats().cycles, 0);
        // array contents survive the reset
        assert_eq!(p.array_mut(0).host_read_lanes(0)[0], 7);
    }

    #[test]
    #[should_panic(expected = "at least one array")]
    fn empty_pool_rejected() {
        pool(0);
    }

    #[test]
    fn labeled_phase_records_pool_and_shard_spans() {
        let tele = Telemetry::with_clock(Box::new(pimvo_telemetry::ManualClock::with_step(10)));
        let mut p = pool(2);
        p.set_telemetry(tele.clone());
        for i in 0..2 {
            p.array_mut(i).host_write_lanes(0, &[1, 2]).unwrap();
        }
        p.run_phase_labeled("lpf_pass1", |i, m| {
            for _ in 0..=i {
                m.add(Operand::Row(0), Operand::Row(0));
            }
        });
        let snap = tele.snapshot();
        let pool_span = snap
            .spans
            .iter()
            .find(|s| s.track == "pool" && s.domain == TimeDomain::Cycles)
            .expect("pool cycle span");
        assert_eq!(pool_span.name, "lpf_pass1");
        assert_eq!(pool_span.start, 0);
        // shard spans cover everything since the arrays' last barrier:
        // the host strip load plus the compute delta
        let io = p.array(0).cost_model().transfer_cycles(2);
        assert_eq!(pool_span.dur, io + 2 + p.sync_cycles());
        let a0 = snap.spans.iter().find(|s| s.track == "array 0").unwrap();
        let a1 = snap.spans.iter().find(|s| s.track == "array 1").unwrap();
        assert_eq!(a0.dur, io + 1);
        assert_eq!(a1.dur, io + 2);
        // a wall-domain span is recorded too (RAII guard)
        assert!(snap
            .spans
            .iter()
            .any(|s| s.track == "pool" && s.domain == TimeDomain::Wall && s.name == "lpf_pass1"));
    }

    #[test]
    fn telemetry_does_not_perturb_accounting() {
        let shard = |i: usize, m: &mut PimMachine| {
            m.host_write_lanes(0, &[i as i64 + 1, 2]).unwrap();
            m.add(Operand::Row(0), Operand::Row(0));
            m.writeback(1);
            m.host_read_lanes(1)[0]
        };
        let mut off = pool(3);
        let r_off = off.run_phase_labeled("s", shard);
        let mut on = pool(3);
        on.set_telemetry(Telemetry::with_clock(Box::new(
            pimvo_telemetry::ManualClock::with_step(1),
        )));
        let r_on = on.run_phase_labeled("s", shard);
        assert_eq!(r_off, r_on);
        assert_eq!(off.wall_cycles(), on.wall_cycles());
        assert_eq!(off.merged_stats(), on.merged_stats());
    }

    #[test]
    fn health_exports_as_gauges() {
        let tele = Telemetry::with_clock(Box::new(pimvo_telemetry::ManualClock::with_step(1)));
        let mut p = pool(3);
        p.set_telemetry(tele.clone());
        p.try_quarantine(1).unwrap();
        p.run_phase_labeled("s", |_, m| {
            m.host_broadcast(0, 1).unwrap();
            m.load(Operand::Row(0));
        });
        p.export_health_telemetry();
        let text = tele.metrics_text();
        assert!(text.contains("pimvo_pool_arrays 3"));
        assert!(text.contains("pimvo_pool_healthy_arrays 2"));
        assert!(text.contains("pimvo_pool_quarantined_arrays 1"));
        assert!(text.contains("pimvo_pool_wall_cycles"));
    }

    #[test]
    fn resilient_phase_matches_run_phase_when_inert() {
        let mut a = pool(3);
        let mut b = pool(3);
        let shard = |i: usize, m: &mut PimMachine| {
            m.host_write_lanes(0, &[i as i64 + 1, 2]).unwrap();
            m.add(Operand::Row(0), Operand::Row(0));
            m.writeback(1);
            m.host_read_lanes(1)[0]
        };
        let ra = a.run_phase(shard);
        let rb = b.run_phase_resilient(shard).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.wall_cycles(), b.wall_cycles());
        assert_eq!(a.barriers(), b.barriers());
        assert_eq!(a.merged_stats(), b.merged_stats());
        let h = b.health();
        assert_eq!(h.retries, 0);
        assert_eq!(h.redispatches, 0);
        assert_eq!(h.dirty_accepted, 0);
        assert_eq!(h.quarantined_count(), 0);
    }

    #[test]
    fn quarantined_arrays_are_skipped() {
        let mut p = pool(3);
        p.try_quarantine(1).unwrap();
        assert!(p.is_quarantined(1));
        assert_eq!(p.healthy_arrays(), vec![0, 2]);
        assert_eq!(p.healthy_len(), 2);
        // shard indices are dense over the healthy subset
        let ids = p.run_phase_resilient(|shard, _| shard).unwrap();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(p.health().healthy_count(), 2);
    }

    #[test]
    fn single_healthy_array_charges_no_sync() {
        let mut p = pool(2);
        p.try_quarantine(0).unwrap();
        p.run_phase_resilient(|_, m| {
            m.host_write_lanes(0, &[1]).unwrap();
            m.add(Operand::Row(0), Operand::Row(0));
        })
        .unwrap();
        let io = p.array(0).cost_model().transfer_cycles(1);
        assert_eq!(p.wall_cycles(), io + 1);
        assert_eq!(p.barriers(), 0);
    }

    #[test]
    fn all_quarantined_is_an_error() {
        let mut p = pool(2);
        p.try_quarantine(0).unwrap();
        p.try_quarantine(1).unwrap();
        let err = p.run_phase_resilient(|_, _| ()).unwrap_err();
        assert!(matches!(err, PimError::AllArraysQuarantined { arrays: 2 }));
        assert!(err.to_string().contains("quarantined"));
    }

    #[test]
    fn scrub_rehabilitates_clean_array_through_probation() {
        let mut p = pool(2);
        p.try_quarantine(0).unwrap();
        assert_eq!(p.available(), 1);

        let readmitted = p.scrub_now();
        assert_eq!(readmitted, 1);
        assert_eq!(p.available(), 2);
        assert_eq!(p.probation(0), ScrubConfig::default().probation_phases);
        let h = p.health();
        assert_eq!(h.scrubs, 1);
        assert_eq!(h.rehabilitated, 1);
        assert_eq!(h.probation_count(), 1);
        assert_eq!(h.total_remapped_rows(), 0);
        // the march test charged every row × every pattern
        let rows = p.array(0).config().rows as u64;
        assert_eq!(
            p.merged_stats().scrub_rows,
            rows * SCRUB_PATTERNS.len() as u64
        );
        assert!(p.scrub_cycles() > 0);

        // clean phases count the probation down to full membership,
        // each charging a verify-on-read patrol
        let ecc0 = p.merged_stats().ecc_checks;
        for _ in 0..ScrubConfig::default().probation_phases {
            p.run_phase_resilient(|_, m| {
                m.host_broadcast(0, 1).unwrap();
                m.load(Operand::Row(0));
            })
            .unwrap();
        }
        assert_eq!(p.probation(0), 0);
        assert_eq!(p.health().probation_count(), 0);
        assert_eq!(p.merged_stats().ecc_checks - ecc0, rows * 3);
    }

    #[test]
    fn scrub_with_nothing_quarantined_is_free() {
        let mut p = pool(2);
        assert_eq!(p.scrub_now(), 0);
        assert_eq!(p.health().scrubs, 0);
        assert_eq!(p.merged_stats().scrub_rows, 0);
    }

    #[test]
    fn auto_scrub_rescues_all_quarantined_pool() {
        let mut p = pool(2);
        p.set_scrub(ScrubConfig {
            interval_phases: 1,
            probation_phases: 0,
        });
        p.try_quarantine(0).unwrap();
        p.try_quarantine(1).unwrap();
        // the automatic scrub runs before the healthy check, so the
        // phase succeeds instead of AllArraysQuarantined
        let ids = p.run_phase_resilient(|shard, _| shard).unwrap();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(p.health().rehabilitated, 2);
    }

    /// Satellite regression: restoring a health snapshot taken while an
    /// array was quarantined must not re-quarantine it after a scrub
    /// pass rehabilitated it — but a *new* quarantine verdict clears
    /// the protection.
    #[test]
    fn import_health_does_not_requarantine_rehabilitated_array() {
        let mut p = pool(2);
        p.try_quarantine(1).unwrap();
        let stale = p.health();

        assert_eq!(p.scrub_now(), 1);
        assert!(!p.is_quarantined(1));
        p.import_health(&stale).unwrap();
        assert!(
            !p.is_quarantined(1),
            "stale snapshot must not undo a rehabilitation"
        );
        // counters still import
        assert_eq!(p.health().retries, stale.retries);

        // a fresh quarantine clears the rehabilitation mark: the stale
        // snapshot applies normally again afterwards
        p.try_quarantine(1).unwrap();
        p.unquarantine(1).unwrap();
        p.import_health(&stale).unwrap();
        assert!(p.is_quarantined(1));
    }

    #[test]
    fn restore_probation_checks_size() {
        let mut p = pool(2);
        p.restore_probation(&[2, 0]).unwrap();
        assert_eq!(p.probation(0), 2);
        assert!(matches!(
            p.restore_probation(&[1, 2, 3]),
            Err(PimError::PoolSizeMismatch {
                got: 3,
                expected: 2
            })
        ));
        p.restore_wall_cycles(777);
        assert_eq!(p.wall_cycles(), 777);
    }

    #[cfg(feature = "fault")]
    mod injected {
        use super::*;
        use crate::fault::{FaultModel, Protection};

        /// A stuck-at pair in one 32-bit word is uncorrectable under ECC:
        /// every read of the row detects it, so retries fail, the syndrome
        /// log marks the row persistent, and the pool quarantines the
        /// array and re-dispatches the shard to a clean one.
        #[test]
        fn stuck_word_quarantines_and_redispatches() {
            let builder = PimMachineBuilder::new(ArrayConfig::qvga())
                .fault(
                    FaultModel::none()
                        .with_stuck_bit(0, 0, true)
                        .with_stuck_bit(0, 1, true),
                )
                .protection(Protection::Ecc);
            let mut p = builder.build_pool(2);
            // array 1's copy of the model is equally stuck, so clear its
            // defect to model a single bad macro
            assert!(!p.array(0).fault_model().is_none());
            p.array_mut(1).set_fault_model(FaultModel::none());
            let out = p
                .run_phase_resilient(|shard, m| {
                    // self-contained: write rows 0/1 (zeros, so the stuck
                    // bits differ from the stored data), then compute
                    m.host_write_lanes(0, &[0, 0]).unwrap();
                    m.host_write_lanes(1, &[3, 4]).unwrap();
                    m.add(Operand::Row(0), Operand::Row(1));
                    m.writeback(2);
                    (shard, m.host_read_lanes(2)[0])
                })
                .unwrap();
            // shard 0 was re-dispatched to array 1 and computed cleanly
            assert_eq!(out, vec![(0, 3), (1, 3)]);
            let h = p.health();
            assert!(p.is_quarantined(0));
            assert!(!p.is_quarantined(1));
            assert!(h.retries > 0, "bounded retry must run before quarantine");
            assert_eq!(h.redispatches, 1);
            assert!(h.total_detected() > 0);
            // further phases keep running on the surviving array
            let again = p.run_phase_resilient(|shard, _| shard).unwrap();
            assert_eq!(again, vec![0]);
        }

        /// The scrub pass finds a stuck row, remaps it to a spare, and
        /// restores full pool capacity; an array with more defective
        /// rows than spares fails its scrub and stays quarantined.
        #[test]
        fn scrub_remaps_stuck_rows_and_restores_capacity() {
            let builder = PimMachineBuilder::new(ArrayConfig::qvga()).spare_rows(2);
            let mut p = builder.build_pool(2);
            p.array_mut(0).inject_stuck_bit(3, 0, true);
            p.try_quarantine(0).unwrap();
            assert_eq!(p.available(), 1);

            assert_eq!(p.scrub_now(), 1);
            assert_eq!(p.available(), 2);
            let h = p.health();
            assert_eq!(h.remapped_rows, vec![1, 0]);
            assert_eq!(h.total_remapped_rows(), 1);
            // the repaired array reads the remapped row cleanly
            let lanes = p
                .run_phase_resilient(|_, m| {
                    m.host_write_lanes(3, &[0, 0]).unwrap();
                    m.host_read_lanes(3)[0]
                })
                .unwrap();
            assert_eq!(lanes, vec![0, 0], "stuck bit must be remapped away");

            // three stuck rows overwhelm the one remaining spare
            p.array_mut(0).inject_stuck_bit(7, 0, true);
            p.array_mut(0).inject_stuck_bit(9, 0, true);
            p.try_quarantine(0).unwrap();
            assert_eq!(p.scrub_now(), 0);
            assert!(p.is_quarantined(0));
            assert_eq!(p.available(), 1);
        }

        /// Arrays get forked fault streams: the same seed must not
        /// produce the same upset sequence on every pool member.
        #[test]
        fn pool_members_see_forked_fault_streams() {
            let builder = PimMachineBuilder::new(ArrayConfig::qvga())
                .fault(FaultModel::transient(7, 0.02))
                .protection(Protection::Parity);
            let mut p = builder.build_pool(2);
            let lanes = p.run_phase(|_, m| {
                m.host_write_lanes(0, &[11, 22, 33, 44]).unwrap();
                m.load(Operand::Row(0));
                m.tmp_lanes()[..4].to_vec()
            });
            assert_ne!(
                lanes[0], lanes[1],
                "independent arrays must not replay identical upsets"
            );
        }
    }
}
