//! Macro-op program IR: kernels written once over virtual registers.
//!
//! A [`PimProgram`] is a straight-line sequence of typed macro-ops
//! ([`MacroOp`]) over SSA-style virtual registers ([`VReg`]): each
//! value-producing macro-op defines a fresh virtual register, and
//! operands name either an SRAM row (inputs, broadcast constants,
//! rows written by earlier [`MacroOp::Store`]s) or an earlier virtual
//! register. The program says *what* to compute; *where* each
//! intermediate lives — the Tmp Reg, an extra temporary register, or
//! an SRAM scratch row — is decided by the lowering pass in
//! [`crate::lower()`], which turns the same program into the naive,
//! optimized, or multi-register machine-op sequence.
//!
//! Host-side operations (row I/O, broadcasts, gathers) are *not* part
//! of the IR: they stay explicit [`crate::PimMachine`] calls between
//! program submissions, mirroring the paper's split between the I/O
//! port and the in-array compute path.

use crate::config::{LaneWidth, Signedness};
use crate::isa::{AluOp, LogicFunc};
use std::fmt;

/// An SSA virtual register: the whole-row vector value produced by one
/// macro-op of a [`PimProgram`]. Purely symbolic — the lowering pass
/// assigns each one a physical home (Tmp Reg, extra register, or SRAM
/// scratch row).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(u32);

impl VReg {
    /// Dense index of the register (definition order within its
    /// program).
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Constructs a register from a raw index (lowering passes that
    /// introduce fresh temporaries).
    pub(crate) fn from_raw(index: u32) -> VReg {
        VReg(index)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A macro-op operand: an SRAM row or an earlier virtual register.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Val {
    /// An SRAM row — kernel input, broadcast constant, or a row
    /// written by an earlier [`MacroOp::Store`].
    Row(usize),
    /// The value of an earlier macro-op.
    V(VReg),
}

impl From<VReg> for Val {
    fn from(v: VReg) -> Self {
        Val::V(v)
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Row(r) => write!(f, "r{r}"),
            Val::V(v) => write!(f, "{v}"),
        }
    }
}

/// One typed macro-op of a [`PimProgram`].
///
/// Every value-producing variant names its destination register
/// explicitly; [`MacroOp::SetLanes`], [`MacroOp::Store`] and
/// [`MacroOp::Reduce`] produce no register value.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum MacroOp {
    /// Reconfigure the SIMD lane width and signedness (free — a
    /// datapath strobe, no cycles charged).
    SetLanes {
        /// New lane width.
        width: LaneWidth,
        /// New signedness.
        sign: Signedness,
    },
    /// Shift-capable binary ALU op `dst = op(a, b << shift)`, covering
    /// logic, add/sub, saturating add/sub, average, abs-diff, min/max
    /// and compare — everything [`crate::PimMachine::alu`] accepts.
    Alu {
        /// The operation.
        op: AluOp,
        /// Left operand.
        a: Val,
        /// Right operand (the shiftable one).
        b: Val,
        /// Lane pre-shift applied to `b` (`0` = none); lane `i + shift`
        /// feeds lane `i`, zeros at the border.
        shift: i32,
        /// Result register.
        dst: VReg,
    },
    /// Stand-alone lane shift `dst = a << shift` (in pixels).
    ShiftPix {
        /// Operand.
        a: Val,
        /// Lane shift amount.
        pix: i32,
        /// Result register.
        dst: VReg,
    },
    /// Per-lane right shift by `k` bits (arithmetic when signed).
    ShrBits {
        /// Operand.
        a: Val,
        /// Bit count.
        k: u32,
        /// Result register.
        dst: VReg,
    },
    /// Per-lane left shift by `k` bits, wrapping.
    ShlBits {
        /// Operand.
        a: Val,
        /// Bit count.
        k: u32,
        /// Result register.
        dst: VReg,
    },
    /// Per-lane arithmetic negation.
    Neg {
        /// Operand.
        a: Val,
        /// Result register.
        dst: VReg,
    },
    /// Saturating narrowing to `bits`-wide signed values.
    SatNarrow {
        /// Operand.
        a: Val,
        /// Target width in bits.
        bits: u32,
        /// Result register.
        dst: VReg,
    },
    /// Bit-serial multiplication (unsigned core, optional signed
    /// pre/post inversion), leaving a double-width product.
    Mul {
        /// Multiplicand.
        a: Val,
        /// Multiplier.
        b: Val,
        /// Signed multiplication (5 extra inversion cycles).
        signed: bool,
        /// Result register.
        dst: VReg,
    },
    /// Fractional-quotient division `(a << frac) / b`.
    DivFrac {
        /// Dividend.
        a: Val,
        /// Divisor.
        b: Val,
        /// Fractional quotient bits.
        frac: u32,
        /// Signed division (5 extra inversion cycles).
        signed: bool,
        /// Result register.
        dst: VReg,
    },
    /// Copy a value into a fresh register (a 1-cycle `OR a, a`).
    Load {
        /// Operand.
        a: Val,
        /// Result register.
        dst: VReg,
    },
    /// Write a register's value to an SRAM row. The row must not be
    /// read between the defining op and the store — lowering levels
    /// that write results eagerly rely on this.
    Store {
        /// Value to write.
        src: VReg,
        /// Destination row.
        row: usize,
    },
    /// Reduce the lanes of `a` to their sum. Each reduction's result is
    /// returned, in program order, by
    /// [`crate::PimMachine::run_program`].
    Reduce {
        /// Operand.
        a: Val,
    },
}

impl MacroOp {
    /// The register this op defines, if any.
    #[must_use]
    pub fn dst(&self) -> Option<VReg> {
        match *self {
            MacroOp::Alu { dst, .. }
            | MacroOp::ShiftPix { dst, .. }
            | MacroOp::ShrBits { dst, .. }
            | MacroOp::ShlBits { dst, .. }
            | MacroOp::Neg { dst, .. }
            | MacroOp::SatNarrow { dst, .. }
            | MacroOp::Mul { dst, .. }
            | MacroOp::DivFrac { dst, .. }
            | MacroOp::Load { dst, .. } => Some(dst),
            MacroOp::SetLanes { .. } | MacroOp::Store { .. } | MacroOp::Reduce { .. } => None,
        }
    }

    /// The values this op reads (registers and rows alike).
    #[must_use]
    pub fn sources(&self) -> Vec<Val> {
        match *self {
            MacroOp::SetLanes { .. } => Vec::new(),
            MacroOp::Alu { a, b, .. }
            | MacroOp::Mul { a, b, .. }
            | MacroOp::DivFrac { a, b, .. } => vec![a, b],
            MacroOp::ShiftPix { a, .. }
            | MacroOp::ShrBits { a, .. }
            | MacroOp::ShlBits { a, .. }
            | MacroOp::Neg { a, .. }
            | MacroOp::SatNarrow { a, .. }
            | MacroOp::Load { a, .. }
            | MacroOp::Reduce { a } => vec![a],
            MacroOp::Store { src, .. } => vec![Val::V(src)],
        }
    }

    /// Whether this op reads the given SRAM row.
    #[must_use]
    pub fn reads_row(&self, row: usize) -> bool {
        self.sources().contains(&Val::Row(row))
    }
}

impl fmt::Display for MacroOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn sh(shift: i32) -> String {
            if shift == 0 {
                String::new()
            } else {
                format!(" sh({shift})")
            }
        }
        match self {
            MacroOp::SetLanes { width, sign } => {
                write!(f, "set_lanes {width:?} {sign:?}")
            }
            MacroOp::Alu {
                op,
                a,
                b,
                shift,
                dst,
            } => write!(f, "{dst} = {} {a}, {b}{}", alu_name(*op), sh(*shift)),
            MacroOp::ShiftPix { a, pix, dst } => write!(f, "{dst} = shift_pix {a}, {pix}"),
            MacroOp::ShrBits { a, k, dst } => write!(f, "{dst} = shr_bits {a}, {k}"),
            MacroOp::ShlBits { a, k, dst } => write!(f, "{dst} = shl_bits {a}, {k}"),
            MacroOp::Neg { a, dst } => write!(f, "{dst} = neg {a}"),
            MacroOp::SatNarrow { a, bits, dst } => write!(f, "{dst} = sat_narrow {a}, {bits}"),
            MacroOp::Mul { a, b, signed, dst } => {
                write!(f, "{dst} = mul{} {a}, {b}", if *signed { "_s" } else { "" })
            }
            MacroOp::DivFrac {
                a,
                b,
                frac,
                signed,
                dst,
            } => write!(
                f,
                "{dst} = div_frac{} {a}, {b}, {frac}",
                if *signed { "_s" } else { "" }
            ),
            MacroOp::Load { a, dst } => write!(f, "{dst} = load {a}"),
            MacroOp::Store { src, row } => write!(f, "store {src} -> r{row}"),
            MacroOp::Reduce { a } => write!(f, "reduce {a}"),
        }
    }
}

/// Mnemonic stem of an [`AluOp`] for program listings.
fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Logic(LogicFunc::And) => "and",
        AluOp::Logic(LogicFunc::Or) => "or",
        AluOp::Logic(LogicFunc::Xor) => "xor",
        AluOp::Logic(LogicFunc::Nor) => "nor",
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::SatAdd => "sat_add",
        AluOp::SatSub => "sat_sub",
        AluOp::Avg => "avg",
        AluOp::AbsDiff => "abs_diff",
        AluOp::Max => "max",
        AluOp::Min => "min",
        AluOp::CmpGt => "cmp_gt",
    }
}

/// A straight-line macro-op program over virtual registers.
///
/// Built through the fluent methods below (each value-producing method
/// returns the fresh [`VReg`] holding its result), then lowered with
/// [`crate::lower::lower`] and executed with
/// [`crate::PimMachine::run_program`].
///
/// ```
/// use pimvo_pim::ir::{PimProgram, Val};
///
/// let mut p = PimProgram::new("smooth");
/// let d = p.avg(Val::Row(0), Val::Row(1));
/// let e = p.avg_sh(d.into(), d.into(), 1);
/// p.store(e, 2);
/// assert_eq!(p.ops().len(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PimProgram {
    name: String,
    ops: Vec<MacroOp>,
    next_vreg: u32,
}

impl PimProgram {
    /// Creates an empty program. The name labels trace events and
    /// golden-program listings.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        PimProgram {
            name: name.into(),
            ops: Vec::new(),
            next_vreg: 0,
        }
    }

    /// The program's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The macro-op sequence.
    #[must_use]
    pub fn ops(&self) -> &[MacroOp] {
        &self.ops
    }

    /// Number of virtual registers defined so far.
    #[must_use]
    pub fn vreg_count(&self) -> u32 {
        self.next_vreg
    }

    /// Number of [`MacroOp::Reduce`] ops (= length of the result vector
    /// [`crate::PimMachine::run_program`] returns).
    #[must_use]
    pub fn reduce_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, MacroOp::Reduce { .. }))
            .count()
    }

    fn fresh(&mut self) -> VReg {
        let v = VReg(self.next_vreg);
        self.next_vreg += 1;
        v
    }

    /// Appends a lane reconfiguration.
    pub fn set_lanes(&mut self, width: LaneWidth, sign: Signedness) {
        self.ops.push(MacroOp::SetLanes { width, sign });
    }

    /// Appends a generic shift-capable ALU op; returns its result.
    pub fn alu_sh(&mut self, op: AluOp, a: Val, b: Val, shift: i32) -> VReg {
        let dst = self.fresh();
        self.ops.push(MacroOp::Alu {
            op,
            a,
            b,
            shift,
            dst,
        });
        dst
    }

    /// Appends an unshifted ALU op; returns its result.
    pub fn alu(&mut self, op: AluOp, a: Val, b: Val) -> VReg {
        self.alu_sh(op, a, b, 0)
    }

    /// Bit-wise AND.
    pub fn and(&mut self, a: Val, b: Val) -> VReg {
        self.alu(AluOp::Logic(LogicFunc::And), a, b)
    }

    /// Bit-wise OR.
    pub fn or(&mut self, a: Val, b: Val) -> VReg {
        self.alu(AluOp::Logic(LogicFunc::Or), a, b)
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: Val, b: Val) -> VReg {
        self.alu(AluOp::Add, a, b)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: Val, b: Val) -> VReg {
        self.alu(AluOp::Sub, a, b)
    }

    /// Saturating subtraction.
    pub fn sat_sub(&mut self, a: Val, b: Val) -> VReg {
        self.alu(AluOp::SatSub, a, b)
    }

    /// Average `(a + b) >> 1`.
    pub fn avg(&mut self, a: Val, b: Val) -> VReg {
        self.alu(AluOp::Avg, a, b)
    }

    /// Average with `b` pre-shifted by `pix` lanes.
    pub fn avg_sh(&mut self, a: Val, b: Val, pix: i32) -> VReg {
        self.alu_sh(AluOp::Avg, a, b, pix)
    }

    /// Absolute difference.
    pub fn abs_diff(&mut self, a: Val, b: Val) -> VReg {
        self.alu(AluOp::AbsDiff, a, b)
    }

    /// Absolute difference with `b` pre-shifted.
    pub fn abs_diff_sh(&mut self, a: Val, b: Val, pix: i32) -> VReg {
        self.alu_sh(AluOp::AbsDiff, a, b, pix)
    }

    /// Branch-free maximum.
    pub fn max(&mut self, a: Val, b: Val) -> VReg {
        self.alu(AluOp::Max, a, b)
    }

    /// Maximum with `b` pre-shifted.
    pub fn max_sh(&mut self, a: Val, b: Val, pix: i32) -> VReg {
        self.alu_sh(AluOp::Max, a, b, pix)
    }

    /// Branch-free minimum.
    pub fn min(&mut self, a: Val, b: Val) -> VReg {
        self.alu(AluOp::Min, a, b)
    }

    /// Minimum with `b` pre-shifted.
    pub fn min_sh(&mut self, a: Val, b: Val, pix: i32) -> VReg {
        self.alu_sh(AluOp::Min, a, b, pix)
    }

    /// Per-lane comparison `a > b` producing an all-ones/zero mask.
    pub fn cmp_gt(&mut self, a: Val, b: Val) -> VReg {
        self.alu(AluOp::CmpGt, a, b)
    }

    /// Stand-alone lane shift.
    pub fn shift_pix(&mut self, a: Val, pix: i32) -> VReg {
        let dst = self.fresh();
        self.ops.push(MacroOp::ShiftPix { a, pix, dst });
        dst
    }

    /// Per-lane right shift by `k` bits.
    pub fn shr_bits(&mut self, a: Val, k: u32) -> VReg {
        let dst = self.fresh();
        self.ops.push(MacroOp::ShrBits { a, k, dst });
        dst
    }

    /// Per-lane left shift by `k` bits.
    pub fn shl_bits(&mut self, a: Val, k: u32) -> VReg {
        let dst = self.fresh();
        self.ops.push(MacroOp::ShlBits { a, k, dst });
        dst
    }

    /// Per-lane negation.
    pub fn neg(&mut self, a: Val) -> VReg {
        let dst = self.fresh();
        self.ops.push(MacroOp::Neg { a, dst });
        dst
    }

    /// Saturating narrowing to `bits`-wide signed values.
    pub fn sat_narrow(&mut self, a: Val, bits: u32) -> VReg {
        let dst = self.fresh();
        self.ops.push(MacroOp::SatNarrow { a, bits, dst });
        dst
    }

    /// Unsigned multiplication.
    pub fn mul(&mut self, a: Val, b: Val) -> VReg {
        let dst = self.fresh();
        self.ops.push(MacroOp::Mul {
            a,
            b,
            signed: false,
            dst,
        });
        dst
    }

    /// Signed multiplication.
    pub fn mul_signed(&mut self, a: Val, b: Val) -> VReg {
        let dst = self.fresh();
        self.ops.push(MacroOp::Mul {
            a,
            b,
            signed: true,
            dst,
        });
        dst
    }

    /// Unsigned fractional-quotient division `(a << frac) / b`.
    pub fn div_frac(&mut self, a: Val, b: Val, frac: u32) -> VReg {
        let dst = self.fresh();
        self.ops.push(MacroOp::DivFrac {
            a,
            b,
            frac,
            signed: false,
            dst,
        });
        dst
    }

    /// Signed fractional-quotient division.
    pub fn div_frac_signed(&mut self, a: Val, b: Val, frac: u32) -> VReg {
        let dst = self.fresh();
        self.ops.push(MacroOp::DivFrac {
            a,
            b,
            frac,
            signed: true,
            dst,
        });
        dst
    }

    /// Explicit copy of a value into a fresh register.
    pub fn load(&mut self, a: Val) -> VReg {
        let dst = self.fresh();
        self.ops.push(MacroOp::Load { a, dst });
        dst
    }

    /// Writes a register's value to an SRAM row.
    pub fn store(&mut self, src: VReg, row: usize) {
        self.ops.push(MacroOp::Store { src, row });
    }

    /// Reduces the lanes of `a` to their sum (result returned by the
    /// executor, in program order).
    pub fn reduce(&mut self, a: Val) {
        self.ops.push(MacroOp::Reduce { a });
    }

    /// Replaces this program's op list (used by lowering passes).
    pub(crate) fn with_ops(&self, ops: Vec<MacroOp>, next_vreg: u32) -> PimProgram {
        PimProgram {
            name: self.name.clone(),
            ops,
            next_vreg,
        }
    }
}

impl fmt::Display for PimProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {}:", self.name)?;
        for (i, op) in self.ops.iter().enumerate() {
            writeln!(f, "  {i:3}: {op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_vregs_in_order() {
        let mut p = PimProgram::new("t");
        let a = p.avg(Val::Row(0), Val::Row(1));
        let b = p.avg_sh(a.into(), a.into(), 1);
        p.store(b, 7);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(p.vreg_count(), 2);
        assert_eq!(p.ops()[2], MacroOp::Store { src: b, row: 7 });
    }

    #[test]
    fn sources_and_dst_cover_every_variant() {
        let mut p = PimProgram::new("t");
        let a = p.abs_diff_sh(Val::Row(3), Val::Row(4), 2);
        let b = p.shift_pix(a.into(), -1);
        let c = p.mul(a.into(), b.into());
        p.reduce(c.into());
        p.store(c, 9);
        let ops = p.ops();
        assert_eq!(ops[0].dst(), Some(a));
        assert_eq!(ops[0].sources(), vec![Val::Row(3), Val::Row(4)]);
        assert!(ops[0].reads_row(4));
        assert!(!ops[0].reads_row(5));
        assert_eq!(ops[3].dst(), None);
        assert_eq!(ops[4].sources(), vec![Val::V(c)]);
    }

    #[test]
    fn display_lists_ops_with_indices() {
        let mut p = PimProgram::new("smooth");
        let d = p.avg(Val::Row(0), Val::Row(1));
        let e = p.avg_sh(d.into(), d.into(), 1);
        p.store(e, 2);
        let text = p.to_string();
        assert!(text.starts_with("program smooth:\n"));
        assert!(text.contains("%0 = avg r0, r1"));
        assert!(text.contains("%1 = avg %0, %0 sh(1)"));
        assert!(text.contains("store %1 -> r2"));
    }
}
