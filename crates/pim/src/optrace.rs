//! Machine-side op-trace recorder: the producer half of the
//! [`pimvo_telemetry::optrace`] flight-recorder format.
//!
//! An [`OpRecorder`] is a fixed-capacity ring of
//! [`OpRecord`]s with a drop counter. It is **off by default** — the
//! machine holds an `Option` and every hook is one `is_some` branch, so
//! an unarmed machine is bit- and cycle-identical to a build without
//! the recorder (the same contract `pimvo-telemetry` makes, and a test
//! asserts it).
//!
//! # Dependency edges
//!
//! Each record carries up to three explicit dependency ids:
//!
//! 1. **serial** — the previous record in the same stream. A machine
//!    executes macro-ops one at a time on one accumulator, so this
//!    chain subsumes intra-machine ordering. After a pool sync point
//!    the chain restarts from the barrier record
//!    ([`OpRecorder::set_pending_dep`]), which is how job ordering
//!    across waves enters the graph.
//! 2. **RAW** — the most recent record that *wrote* any row this
//!    record reads (host upload → compute, compute → compute).
//! 3. **WAR/WAW** — the most recent record that read or wrote the row
//!    this record writes (compute → host readout ordering and row
//!    reuse).
//!
//! Ids are namespaced per stream (`(stream + 1) << 40 | seq`), so the
//! per-array streams of a pool can be recorded lock-free under the
//! wave scheduler's scoped threads and merged afterwards without
//! renumbering. Draining ([`OpRecorder::drain`]) hands the buffer off
//! but keeps sequence counters and row maps, so ids stay unique across
//! frames and cross-frame edges simply dangle (the profiler treats a
//! missing dependency as already finished).

use pimvo_telemetry::optrace::{OpKind, OpRecord, OpTrace, NO_LABEL, NO_ROW, NO_SESSION};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Default ring capacity for a recorder armed without an explicit
/// bound: large enough to hold several VGA tracker frames per array,
/// small enough (a few MiB) to stay allocation-bounded.
pub const DEFAULT_OP_RING_CAPACITY: usize = 1 << 18;

/// Fixed-capacity op-record ring with dependency tracking. See the
/// module docs for the edge rules.
#[derive(Debug, Clone)]
pub struct OpRecorder {
    buf: VecDeque<OpRecord>,
    capacity: usize,
    dropped: u64,
    /// High id bits: `(stream + 1) << 40`.
    base: u64,
    /// Low id bits: next sequence number (never reset by drain).
    seq: u64,
    /// `array` field stamped on records (may be
    /// [`pimvo_telemetry::optrace::POOL_STREAM`] for the pool stream).
    array: u16,
    session: u32,
    label: u32,
    labels: Vec<String>,
    /// Tail of the serial chain (0 = none yet).
    last_id: u64,
    /// Barrier id injected as the next record's serial dep.
    pending_dep: u64,
    /// Row → id of its most recent writer.
    row_writer: BTreeMap<u32, u64>,
    /// Row → id of its most recent reader.
    row_reader: BTreeMap<u32, u64>,
}

impl OpRecorder {
    /// A recorder for stream `stream` (the id namespace *and* the
    /// record `array` field), holding at most `capacity` records.
    pub fn new(stream: u16, capacity: usize) -> Self {
        Self::with_stream(stream, stream, capacity)
    }

    /// A recorder whose id namespace (`stream`) differs from the
    /// stamped `array` field — used for the pool sync stream, which
    /// needs a namespace index but renders as
    /// [`pimvo_telemetry::optrace::POOL_STREAM`].
    pub fn with_stream(stream: u16, array: u16, capacity: usize) -> Self {
        OpRecorder {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            base: (stream as u64 + 1) << 40,
            seq: 0,
            array,
            session: NO_SESSION,
            label: NO_LABEL,
            labels: Vec::new(),
            last_id: 0,
            pending_dep: 0,
            row_writer: BTreeMap::new(),
            row_reader: BTreeMap::new(),
        }
    }

    /// Stamps subsequent records with a session id (serving layer).
    pub fn set_session(&mut self, session: u32) {
        self.session = session;
    }

    /// Sets (or clears) the kernel label stamped on subsequent
    /// records. Labels are interned per recorder and remapped on
    /// merge.
    pub fn set_label(&mut self, label: Option<&str>) {
        self.label = match label {
            None => NO_LABEL,
            Some(l) => match self.labels.iter().position(|x| x == l) {
                Some(i) => i as u32,
                None => {
                    self.labels.push(l.to_string());
                    (self.labels.len() - 1) as u32
                }
            },
        };
    }

    /// Id of the last record emitted in this stream (0 = none).
    pub fn tail(&self) -> u64 {
        self.last_id
    }

    /// Injects `id` (a pool barrier) as the serial dependency of the
    /// next record, restarting the chain from the sync point.
    pub fn set_pending_dep(&mut self, id: u64) {
        self.pending_dep = id;
    }

    /// Records the ring has dropped so far (capacity overflow).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring currently holds no records.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one record, computing its dependency edges from the
    /// serial chain and the row maps. `reads`/`writes` list the SRAM
    /// rows touched; `start` is the stream clock at op start. Returns
    /// the record id.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        kind: OpKind,
        reads: &[u32],
        writes: &[u32],
        start: u64,
        cycles: u64,
        sram: u32,
        size: u32,
    ) -> u64 {
        self.seq += 1;
        let id = self.base | self.seq;

        let serial = if self.pending_dep != 0 {
            std::mem::take(&mut self.pending_dep)
        } else {
            self.last_id
        };
        let mut raw = 0u64;
        for r in reads {
            if let Some(&w) = self.row_writer.get(r) {
                raw = raw.max(w);
            }
        }
        let mut war = 0u64;
        for w in writes {
            if let Some(&x) = self.row_writer.get(w) {
                war = war.max(x);
            }
            if let Some(&x) = self.row_reader.get(w) {
                war = war.max(x);
            }
        }
        if raw == serial {
            raw = 0;
        }
        if war == serial || war == raw {
            war = 0;
        }

        for &r in reads {
            self.row_reader.insert(r, id);
        }
        for &w in writes {
            self.row_writer.insert(w, id);
        }
        self.last_id = id;

        if self.buf.len() >= self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(OpRecord {
            id,
            deps: [serial, raw, war],
            start,
            cycles,
            sram,
            size,
            rows: [
                reads.first().copied().unwrap_or(NO_ROW),
                reads.get(1).copied().unwrap_or(NO_ROW),
            ],
            dst: writes.first().copied().unwrap_or(NO_ROW),
            session: self.session,
            label: self.label,
            kind,
            array: self.array,
        });
        id
    }

    /// Appends a barrier record with explicit dependency ids (the pool
    /// sync stream bypasses the row maps). Returns the record id.
    pub fn record_barrier(&mut self, deps: [u64; 3], start: u64, cycles: u64, size: u32) -> u64 {
        self.record_explicit(
            OpKind::Barrier,
            deps,
            start,
            cycles,
            [NO_ROW, NO_ROW],
            NO_ROW,
            size,
        )
    }

    /// Appends a record of `kind` with explicit dependency ids, row
    /// operands and destination, bypassing the row maps — the DMA
    /// channel lanes use this: their cross-stream edges (issuing
    /// machine record, channel serial chain) are known to the caller,
    /// not derivable from this stream's row history. Returns the
    /// record id.
    #[allow(clippy::too_many_arguments)]
    pub fn record_explicit(
        &mut self,
        kind: OpKind,
        deps: [u64; 3],
        start: u64,
        cycles: u64,
        rows: [u32; 2],
        dst: u32,
        size: u32,
    ) -> u64 {
        self.seq += 1;
        let id = self.base | self.seq;
        self.last_id = id;
        if self.buf.len() >= self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(OpRecord {
            id,
            deps,
            start,
            cycles,
            sram: 0,
            size,
            rows,
            dst,
            session: self.session,
            label: self.label,
            kind,
            array: self.array,
        });
        id
    }

    /// Marks `row` as last written by a record of *another* stream
    /// (an inbound DMA descriptor): the next record reading the row
    /// picks up a cross-stream RAW edge onto the channel lane.
    pub fn note_external_write(&mut self, row: u32, id: u64) {
        self.row_writer.insert(row, id);
    }

    /// Folds extra cycles/SRAM traffic of a multi-step macro-op into
    /// the most recent record (protection checks, mul/div steps).
    pub fn extend_last(&mut self, cycles: u64, sram: u32) {
        if let Some(last) = self.buf.back_mut() {
            last.cycles += cycles;
            last.sram += sram;
        }
    }

    /// Hands the buffered records off as an [`OpTrace`] and clears the
    /// ring and the drop counter. Sequence counters, row maps and the
    /// serial tail survive, so ids stay unique across drains and
    /// cross-drain dependencies dangle instead of colliding.
    pub fn drain(&mut self) -> OpTrace {
        let active = if self.label == NO_LABEL {
            None
        } else {
            self.labels.get(self.label as usize).cloned()
        };
        let trace = OpTrace {
            records: std::mem::take(&mut self.buf).into(),
            labels: std::mem::take(&mut self.labels),
            dropped: std::mem::take(&mut self.dropped),
        };
        // a label active across the drain is re-interned into the
        // fresh table so later records don't index the drained one
        self.label = NO_LABEL;
        self.set_label(active.as_deref());
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_chain_and_row_edges() {
        let mut r = OpRecorder::new(0, 16);
        let a = r.record(OpKind::HostWrite, &[], &[3], 0, 0, 0, 40); // write r3
        let b = r.record(OpKind::AddSub, &[3, 4], &[], 0, 1, 1, 40); // read r3
        let c = r.record(OpKind::WriteBack, &[], &[3], 1, 1, 1, 40); // overwrite r3
        let t = r.drain();
        assert_eq!(t.records[1].deps, [a, 0, 0], "RAW folds into serial dep");
        let rec_c = &t.records[2];
        assert_eq!(rec_c.deps[0], b);
        assert_eq!(rec_c.deps[2], 0, "WAR vs the serial dep deduplicates");
        assert_eq!(rec_c.id, c);
    }

    #[test]
    fn pending_dep_restarts_the_chain() {
        let mut r = OpRecorder::new(2, 16);
        r.record(OpKind::AddSub, &[], &[], 0, 1, 0, 8);
        r.set_pending_dep(0xBEEF);
        let id = r.record(OpKind::AddSub, &[], &[], 1, 1, 0, 8);
        let t = r.drain();
        assert_eq!(t.records[1].deps[0], 0xBEEF);
        assert_eq!(t.records[1].id, id);
        assert_eq!(id >> 40, 3, "ids are namespaced by stream + 1");
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = OpRecorder::new(0, 2);
        for i in 0..5 {
            r.record(OpKind::Logic, &[], &[], i, 1, 0, 1);
        }
        assert_eq!(r.dropped(), 3);
        let t = r.drain();
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped, 3);
        assert_eq!(t.records[0].id & 0xFF, 4, "oldest records were dropped");
    }

    #[test]
    fn drain_keeps_ids_unique_and_labels_fresh() {
        let mut r = OpRecorder::new(1, 8);
        r.set_label(Some("lpf"));
        let a = r.record(OpKind::Mul, &[], &[], 0, 3, 0, 1);
        let t1 = r.drain();
        assert_eq!(t1.label(t1.records[0].label), Some("lpf"));
        r.set_label(Some("hpf"));
        let b = r.record(OpKind::Mul, &[], &[], 3, 3, 0, 1);
        let t2 = r.drain();
        assert_ne!(a, b);
        assert_eq!(t2.records[0].deps[0], a, "serial tail survives the drain");
        assert_eq!(t2.label(t2.records[0].label), Some("hpf"));
    }
}
