//! Fleet-wide memoization of lowered programs.
//!
//! Lowering is pure: the machine instructions depend only on the IR
//! program, the [`LowerLevel`], the scratch pool, and the array
//! geometry. A serving fleet re-lowers the same five kernel programs
//! and five pose programs for every one of N sessions — identical
//! inputs, identical outputs, wasted host work. [`LoweredCache`]
//! memoizes by `(program hash, level, config hash)` so each distinct
//! triple is lowered exactly once per process, however many sessions,
//! trackers or pool rebuilds share it. Caching is host-side only:
//! simulated cycles and energy are untouched, and every consumer stays
//! bit-identical to the uncached path.

use crate::config::ArrayConfig;
use crate::ir::PimProgram;
use crate::lower::{lower, LowerError, LowerLevel, LoweredProgram, ScratchRows};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Hit/miss/size counters of a [`LoweredCache`], taken atomically with
/// [`LoweredCache::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoweredCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to lower (one per distinct triple).
    pub misses: u64,
    /// Distinct `(program, level, config)` triples resident.
    pub entries: u64,
    /// Approximate resident size of the cached programs in bytes.
    pub bytes: u64,
}

struct Inner {
    map: HashMap<(u64, LowerLevel, u64), Arc<LoweredProgram>>,
    hits: u64,
    misses: u64,
    bytes: u64,
}

/// A process-wide memo table of lowered programs, keyed by
/// `(program hash, level, machine-config hash)`.
///
/// The program hash covers the IR ops **and** the scratch pool (spill
/// placement depends on it); the config hash covers the
/// [`ArrayConfig`] geometry, so changing the machine invalidates every
/// entry by construction — stale entries are unreachable, never
/// served. Cloning the handle shares the underlying table; a fresh
/// independent table comes from [`LoweredCache::new`], and
/// [`LoweredCache::global`] hands out the per-process default used by
/// the kernel and pose entry points.
#[derive(Clone, Debug)]
pub struct LoweredCache {
    inner: Arc<Mutex<Inner>>,
}

impl fmt::Debug for Inner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Inner")
            .field("entries", &self.map.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

impl Default for LoweredCache {
    fn default() -> Self {
        Self::new()
    }
}

impl LoweredCache {
    /// An empty cache with its own table (not shared with
    /// [`LoweredCache::global`]).
    #[must_use]
    pub fn new() -> Self {
        LoweredCache {
            inner: Arc::new(Mutex::new(Inner {
                map: HashMap::new(),
                hits: 0,
                misses: 0,
                bytes: 0,
            })),
        }
    }

    /// The process-wide default cache.
    pub fn global() -> &'static LoweredCache {
        static GLOBAL: OnceLock<LoweredCache> = OnceLock::new();
        GLOBAL.get_or_init(LoweredCache::new)
    }

    /// Lowers `prog` at `level` for a machine with geometry `config`,
    /// or returns the memoized result of an earlier identical call.
    ///
    /// The lowering runs under the table lock, so concurrent callers
    /// racing on the same triple still produce exactly one miss —
    /// the counters are the "lowered exactly once per distinct triple"
    /// evidence the fleet tests assert on.
    ///
    /// # Errors
    ///
    /// Propagates [`LowerError`] from [`lower`]. Failures are not
    /// cached.
    pub fn get_or_lower(
        &self,
        prog: &PimProgram,
        level: LowerLevel,
        scratch: &ScratchRows,
        config: &ArrayConfig,
    ) -> Result<Arc<LoweredProgram>, LowerError> {
        let key = (program_key(prog, scratch), level, config_key(config));
        let mut inner = self.lock();
        if let Some(hit) = inner.map.get(&key).map(Arc::clone) {
            inner.hits += 1;
            return Ok(hit);
        }
        let lowered = Arc::new(lower(prog, level, scratch)?);
        inner.misses += 1;
        inner.bytes += approx_bytes(&lowered);
        inner.map.insert(key, Arc::clone(&lowered));
        Ok(lowered)
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> LoweredCacheStats {
        let inner = self.lock();
        LoweredCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len() as u64,
            bytes: inner.bytes,
        }
    }

    /// Drops every entry and resets the counters (the handle stays
    /// shared).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.hits = 0;
        inner.misses = 0;
        inner.bytes = 0;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

fn program_key(prog: &PimProgram, scratch: &ScratchRows) -> u64 {
    let mut h = DefaultHasher::new();
    prog.hash(&mut h);
    scratch.rows().hash(&mut h);
    h.finish()
}

fn config_key(config: &ArrayConfig) -> u64 {
    let mut h = DefaultHasher::new();
    config.hash(&mut h);
    h.finish()
}

fn approx_bytes(p: &LoweredProgram) -> u64 {
    let ops: u64 = p
        .ops()
        .iter()
        .map(|o| (std::mem::size_of_val(o) + o.label.len()) as u64)
        .sum();
    ops + p.name().len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Val;

    fn prog(name: &str) -> PimProgram {
        let mut p = PimProgram::new(name);
        let d = p.avg(Val::Row(0), Val::Row(1));
        let e = p.avg_sh(d.into(), d.into(), 1);
        p.store(e, 2);
        p
    }

    #[test]
    fn identical_triples_lower_once() {
        let cache = LoweredCache::new();
        let cfg = ArrayConfig::qvga();
        let scratch = ScratchRows::contiguous(100, 4);
        let p = prog("a");
        let first = cache
            .get_or_lower(&p, LowerLevel::Opt, &scratch, &cfg)
            .unwrap();
        for _ in 0..5 {
            let again = cache
                .get_or_lower(&p, LowerLevel::Opt, &scratch, &cfg)
                .unwrap();
            assert!(Arc::ptr_eq(&first, &again));
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (5, 1, 1));
        assert!(s.bytes > 0);
    }

    #[test]
    fn level_config_and_scratch_are_part_of_the_key() {
        let cache = LoweredCache::new();
        let p = prog("a");
        let cfg = ArrayConfig::qvga();
        let scratch = ScratchRows::contiguous(100, 4);
        cache
            .get_or_lower(&p, LowerLevel::Opt, &scratch, &cfg)
            .unwrap();
        cache
            .get_or_lower(&p, LowerLevel::Naive, &scratch, &cfg)
            .unwrap();
        cache
            .get_or_lower(&p, LowerLevel::Opt, &ScratchRows::contiguous(110, 4), &cfg)
            .unwrap();
        cache
            .get_or_lower(&p, LowerLevel::Opt, &scratch, &ArrayConfig::qvga_banks(2))
            .unwrap();
        // a different program with the same shape also misses
        cache
            .get_or_lower(&prog("b"), LowerLevel::Opt, &scratch, &cfg)
            .unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 5, 5));
    }

    #[test]
    fn cached_program_is_bit_identical_to_direct_lowering() {
        let cache = LoweredCache::new();
        let p = prog("a");
        let cfg = ArrayConfig::qvga();
        let scratch = ScratchRows::contiguous(100, 4);
        let direct = lower(&p, LowerLevel::Opt, &scratch).unwrap();
        let cached = cache
            .get_or_lower(&p, LowerLevel::Opt, &scratch, &cfg)
            .unwrap();
        assert_eq!(*cached, direct);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = LoweredCache::new();
        let p = prog("a");
        let cfg = ArrayConfig::qvga();
        let scratch = ScratchRows::contiguous(100, 4);
        for _ in 0..2 {
            assert!(cache
                .get_or_lower(&p, LowerLevel::MultiReg(0), &scratch, &cfg)
                .is_err());
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn clear_resets_table_and_counters() {
        let cache = LoweredCache::new();
        let cfg = ArrayConfig::qvga();
        let scratch = ScratchRows::contiguous(100, 4);
        cache
            .get_or_lower(&prog("a"), LowerLevel::Opt, &scratch, &cfg)
            .unwrap();
        cache.clear();
        assert_eq!(cache.stats(), LoweredCacheStats::default());
    }
}
