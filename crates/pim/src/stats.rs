use crate::cost::CostModel;
use crate::isa::OpClass;
use std::collections::BTreeMap;

/// Execution statistics accumulated by [`crate::PimMachine`].
///
/// Cycles follow the paper's timing model (single-cycle micro steps,
/// extra cycle per SRAM write-back); energy is accumulated per hardware
/// component at every micro step so that Fig. 10-a/b can be regenerated
/// from any workload trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Total clock cycles.
    pub cycles: u64,
    /// SRAM row activations during compute (reads through the SAs).
    pub sram_reads: u64,
    /// SRAM row write-backs.
    pub sram_writes: u64,
    /// Tmp Reg accesses (each compute step reading or writing it).
    pub tmp_accesses: u64,
    /// Shifter/adder activations (one per compute cycle).
    pub acc_ops: u64,
    /// Host I/O row transfers (loading images / reading results); kept
    /// separate because the paper excludes I/O from the per-frame energy.
    pub host_io_rows: u64,
    /// Modeled host↔array transfer cycles (synchronous PIO and the
    /// committed cost of DMA descriptors). Kept out of `cycles` so the
    /// compute budget stays comparable to the paper; the machine's
    /// timeline (and the pool wall clock) is `cycles + host_io_cycles +
    /// dma_stall_cycles`.
    pub host_io_cycles: u64,
    /// Lanes/bytes moved over the host port (transfer sizing).
    pub host_io_words: u64,
    /// Cycles the compute stream stalled waiting on DMA completions
    /// (queue backpressure, retries, backoff, timeout detection).
    pub dma_stall_cycles: u64,
    /// DMA descriptors retransmitted after a CRC reject or a dropped /
    /// timed-out completion.
    pub dma_retries: u64,
    /// DMA payload corruptions caught by the descriptor CRC.
    pub dma_crc_errors: u64,
    /// DMA descriptors that hit the cycle-domain completion timeout
    /// (stalled channel or dropped completion).
    pub dma_timeouts: u64,
    /// Per-word parity checks on protected compute accesses
    /// ([`crate::Protection::Parity`]); zero without protection.
    pub parity_checks: u64,
    /// Per-access ECC syndrome checks on protected compute accesses
    /// ([`crate::Protection::Ecc`]); zero without protection.
    pub ecc_checks: u64,
    /// ECC single-bit corrections performed on the compute path.
    pub ecc_corrections: u64,
    /// Scrub test-pattern row passes on the maintenance port (array
    /// rehabilitation after quarantine); zero outside scrub passes.
    pub scrub_rows: u64,
    /// Macro-op histogram.
    pub op_histogram: BTreeMap<OpClass, u64>,
}

impl ExecStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a macro op in the histogram.
    pub(crate) fn record_op(&mut self, class: OpClass) {
        *self.op_histogram.entry(class).or_insert(0) += 1;
    }

    /// Difference `self - earlier`, for scoped measurements.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not a prefix of `self` (counters must be
    /// monotone) — use [`ExecStats::try_since`] when `earlier` may come
    /// from a different measurement scope (e.g. after a
    /// [`ExecStats::retract`] or a stats reset in between).
    pub fn since(&self, earlier: &ExecStats) -> ExecStats {
        self.try_since(earlier).unwrap_or_else(|| {
            panic!(
                "ExecStats::since: counters went backwards — `earlier` is not a \
                 prefix of `self` (was reset_stats/retract_stats called between \
                 the two snapshots?)\n  earlier: {earlier:?}\n  self: {self:?}"
            )
        })
    }

    /// Difference `self - earlier` with every subtraction checked;
    /// returns `None` if any counter (including the op histogram) went
    /// backwards instead of wrapping around.
    pub fn try_since(&self, earlier: &ExecStats) -> Option<ExecStats> {
        let mut hist = BTreeMap::new();
        for (k, v) in &earlier.op_histogram {
            let now = self.op_histogram.get(k).copied().unwrap_or(0);
            now.checked_sub(*v)?;
        }
        for (k, v) in &self.op_histogram {
            let prev = earlier.op_histogram.get(k).copied().unwrap_or(0);
            let d = v.checked_sub(prev)?;
            if d > 0 {
                hist.insert(*k, d);
            }
        }
        Some(ExecStats {
            cycles: self.cycles.checked_sub(earlier.cycles)?,
            sram_reads: self.sram_reads.checked_sub(earlier.sram_reads)?,
            sram_writes: self.sram_writes.checked_sub(earlier.sram_writes)?,
            tmp_accesses: self.tmp_accesses.checked_sub(earlier.tmp_accesses)?,
            acc_ops: self.acc_ops.checked_sub(earlier.acc_ops)?,
            host_io_rows: self.host_io_rows.checked_sub(earlier.host_io_rows)?,
            host_io_cycles: self.host_io_cycles.checked_sub(earlier.host_io_cycles)?,
            host_io_words: self.host_io_words.checked_sub(earlier.host_io_words)?,
            dma_stall_cycles: self
                .dma_stall_cycles
                .checked_sub(earlier.dma_stall_cycles)?,
            dma_retries: self.dma_retries.checked_sub(earlier.dma_retries)?,
            dma_crc_errors: self.dma_crc_errors.checked_sub(earlier.dma_crc_errors)?,
            dma_timeouts: self.dma_timeouts.checked_sub(earlier.dma_timeouts)?,
            parity_checks: self.parity_checks.checked_sub(earlier.parity_checks)?,
            ecc_checks: self.ecc_checks.checked_sub(earlier.ecc_checks)?,
            ecc_corrections: self.ecc_corrections.checked_sub(earlier.ecc_corrections)?,
            scrub_rows: self.scrub_rows.checked_sub(earlier.scrub_rows)?,
            op_histogram: hist,
        })
    }

    /// Adds another stats block (for aggregating independent traces).
    pub fn merge(&mut self, other: &ExecStats) {
        self.cycles += other.cycles;
        self.sram_reads += other.sram_reads;
        self.sram_writes += other.sram_writes;
        self.tmp_accesses += other.tmp_accesses;
        self.acc_ops += other.acc_ops;
        self.host_io_rows += other.host_io_rows;
        self.host_io_cycles += other.host_io_cycles;
        self.host_io_words += other.host_io_words;
        self.dma_stall_cycles += other.dma_stall_cycles;
        self.dma_retries += other.dma_retries;
        self.dma_crc_errors += other.dma_crc_errors;
        self.dma_timeouts += other.dma_timeouts;
        self.parity_checks += other.parity_checks;
        self.ecc_checks += other.ecc_checks;
        self.ecc_corrections += other.ecc_corrections;
        self.scrub_rows += other.scrub_rows;
        for (k, v) in &other.op_histogram {
            *self.op_histogram.entry(*k).or_insert(0) += v;
        }
    }

    /// Scales every counter by an integer factor (used to extrapolate a
    /// measured per-batch trace to a full feature set; valid because the
    /// PIM op sequences are data-independent).
    pub fn scaled(&self, factor: u64) -> ExecStats {
        let mut hist = BTreeMap::new();
        for (k, v) in &self.op_histogram {
            hist.insert(*k, v * factor);
        }
        ExecStats {
            cycles: self.cycles * factor,
            sram_reads: self.sram_reads * factor,
            sram_writes: self.sram_writes * factor,
            tmp_accesses: self.tmp_accesses * factor,
            acc_ops: self.acc_ops * factor,
            host_io_rows: self.host_io_rows * factor,
            host_io_cycles: self.host_io_cycles * factor,
            host_io_words: self.host_io_words * factor,
            dma_stall_cycles: self.dma_stall_cycles * factor,
            dma_retries: self.dma_retries * factor,
            dma_crc_errors: self.dma_crc_errors * factor,
            dma_timeouts: self.dma_timeouts * factor,
            parity_checks: self.parity_checks * factor,
            ecc_checks: self.ecc_checks * factor,
            ecc_corrections: self.ecc_corrections * factor,
            scrub_rows: self.scrub_rows * factor,
            op_histogram: hist,
        }
    }

    /// Divides every counter by an integer factor (integer division;
    /// used to split a traced stage across logical batches that share
    /// it, e.g. two half-batches packed into one word line).
    pub fn scaled_div(&self, den: u64) -> ExecStats {
        assert!(den > 0, "division by zero");
        let mut hist = BTreeMap::new();
        for (k, v) in &self.op_histogram {
            hist.insert(*k, v / den);
        }
        ExecStats {
            cycles: self.cycles / den,
            sram_reads: self.sram_reads / den,
            sram_writes: self.sram_writes / den,
            tmp_accesses: self.tmp_accesses / den,
            acc_ops: self.acc_ops / den,
            host_io_rows: self.host_io_rows / den,
            host_io_cycles: self.host_io_cycles / den,
            host_io_words: self.host_io_words / den,
            dma_stall_cycles: self.dma_stall_cycles / den,
            dma_retries: self.dma_retries / den,
            dma_crc_errors: self.dma_crc_errors / den,
            dma_timeouts: self.dma_timeouts / den,
            parity_checks: self.parity_checks / den,
            ecc_checks: self.ecc_checks / den,
            ecc_corrections: self.ecc_corrections / den,
            scrub_rows: self.scrub_rows / den,
            op_histogram: hist,
        }
    }

    /// Subtracts another stats block, saturating at zero (used to
    /// retract a shared-stage charge).
    pub fn retract(&mut self, other: &ExecStats) {
        self.cycles = self.cycles.saturating_sub(other.cycles);
        self.sram_reads = self.sram_reads.saturating_sub(other.sram_reads);
        self.sram_writes = self.sram_writes.saturating_sub(other.sram_writes);
        self.tmp_accesses = self.tmp_accesses.saturating_sub(other.tmp_accesses);
        self.acc_ops = self.acc_ops.saturating_sub(other.acc_ops);
        self.host_io_rows = self.host_io_rows.saturating_sub(other.host_io_rows);
        self.host_io_cycles = self.host_io_cycles.saturating_sub(other.host_io_cycles);
        self.host_io_words = self.host_io_words.saturating_sub(other.host_io_words);
        self.dma_stall_cycles = self.dma_stall_cycles.saturating_sub(other.dma_stall_cycles);
        self.dma_retries = self.dma_retries.saturating_sub(other.dma_retries);
        self.dma_crc_errors = self.dma_crc_errors.saturating_sub(other.dma_crc_errors);
        self.dma_timeouts = self.dma_timeouts.saturating_sub(other.dma_timeouts);
        self.parity_checks = self.parity_checks.saturating_sub(other.parity_checks);
        self.ecc_checks = self.ecc_checks.saturating_sub(other.ecc_checks);
        self.ecc_corrections = self.ecc_corrections.saturating_sub(other.ecc_corrections);
        self.scrub_rows = self.scrub_rows.saturating_sub(other.scrub_rows);
        for (k, v) in &other.op_histogram {
            if let Some(mine) = self.op_histogram.get_mut(k) {
                *mine = mine.saturating_sub(*v);
            }
        }
    }

    /// Energy decomposition per component (Fig. 10-a).
    pub fn energy(&self, cost: &CostModel) -> EnergyBreakdown {
        let sram = (self.sram_reads as f64) * cost.sram_read_pj
            + (self.sram_writes as f64) * cost.sram_write_pj
            + (self.scrub_rows as f64) * cost.scrub_row_pj;
        let shifter_adder = (self.acc_ops as f64) * cost.shifter_adder_pj;
        let tmp_reg = (self.tmp_accesses as f64) * cost.tmp_reg_pj;
        let ecc = (self.parity_checks as f64) * cost.parity_check_pj
            + (self.ecc_checks as f64) * cost.ecc_check_pj
            + (self.ecc_corrections as f64) * cost.ecc_correct_pj;
        EnergyBreakdown {
            sram_pj: sram,
            shifter_adder_pj: shifter_adder,
            tmp_reg_pj: tmp_reg,
            ecc_pj: ecc,
        }
    }

    /// Memory-access decomposition (Fig. 10-b).
    pub fn mem_accesses(&self) -> MemAccessBreakdown {
        MemAccessBreakdown {
            sram_reads: self.sram_reads,
            sram_writes: self.sram_writes,
            tmp_accesses: self.tmp_accesses,
        }
    }

    /// Wall-clock time at the cost model's clock, in seconds.
    pub fn seconds(&self, cost: &CostModel) -> f64 {
        self.cycles as f64 / cost.clock_hz
    }
}

/// Per-component energy (Fig. 10-a).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Energy consumed in the SRAM array, pJ.
    pub sram_pj: f64,
    /// Energy consumed in the shifter/adder datapath, pJ.
    pub shifter_adder_pj: f64,
    /// Energy consumed in the Tmp Reg, pJ.
    pub tmp_reg_pj: f64,
    /// Energy consumed by word protection (parity/ECC checks and
    /// corrections), pJ. Zero without [`crate::Protection`].
    pub ecc_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.sram_pj + self.shifter_adder_pj + self.tmp_reg_pj + self.ecc_pj
    }

    /// Total energy in mJ.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() * 1e-9
    }

    /// Fraction of the total consumed by the SRAM array (paper: ≈86 %).
    pub fn sram_share(&self) -> f64 {
        let t = self.total_pj();
        if t == 0.0 {
            0.0
        } else {
            self.sram_pj / t
        }
    }
}

/// Memory-access decomposition (Fig. 10-b).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemAccessBreakdown {
    /// SRAM row reads.
    pub sram_reads: u64,
    /// SRAM row writes (paper: ≈7 % of accesses after Tmp-Reg
    /// optimization).
    pub sram_writes: u64,
    /// Tmp Reg accesses.
    pub tmp_accesses: u64,
}

impl MemAccessBreakdown {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.sram_reads + self.sram_writes + self.tmp_accesses
    }

    /// Write share of all accesses.
    pub fn write_share(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.sram_writes as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let mut a = ExecStats::new();
        a.cycles = 10;
        a.sram_reads = 4;
        a.record_op(OpClass::Mul);
        let mut b = a.clone();
        b.cycles = 25;
        b.sram_reads = 6;
        b.record_op(OpClass::Mul);
        b.record_op(OpClass::Div);
        let d = b.since(&a);
        assert_eq!(d.cycles, 15);
        assert_eq!(d.sram_reads, 2);
        assert_eq!(d.op_histogram[&OpClass::Mul], 1);
        assert_eq!(d.op_histogram[&OpClass::Div], 1);
    }

    #[test]
    fn try_since_catches_underflow() {
        let mut a = ExecStats::new();
        a.cycles = 30;
        a.record_op(OpClass::Mul);
        let mut b = ExecStats::new();
        b.cycles = 10; // went backwards (e.g. reset in between)
        assert_eq!(b.try_since(&a), None);

        // histogram-only regression is caught too, even with equal cycles
        let mut c = ExecStats::new();
        c.cycles = 30;
        assert_eq!(c.try_since(&a), None);
        c.record_op(OpClass::Mul);
        assert_eq!(c.try_since(&a), Some(ExecStats::new()));
    }

    #[test]
    #[should_panic(expected = "counters went backwards")]
    fn since_panics_with_clear_message_on_underflow() {
        let mut a = ExecStats::new();
        a.sram_reads = 5;
        let b = ExecStats::new();
        let _ = b.since(&a);
    }

    #[test]
    fn energy_breakdown_sums() {
        let mut s = ExecStats::new();
        s.sram_reads = 10;
        s.sram_writes = 2;
        s.acc_ops = 30;
        s.tmp_accesses = 40;
        let cost = CostModel::default();
        let e = s.energy(&cost);
        assert!(e.total_pj() > 0.0);
        assert!(e.sram_share() > 0.5);
        assert!(
            (e.total_pj() - (12.0 * 944.8 + 30.0 * cost.shifter_adder_pj + 40.0 * cost.tmp_reg_pj))
                .abs()
                < 1e-6
        );
    }

    #[test]
    fn scaled_multiplies_everything() {
        let mut s = ExecStats::new();
        s.cycles = 7;
        s.tmp_accesses = 3;
        s.record_op(OpClass::Avg);
        let t = s.scaled(4);
        assert_eq!(t.cycles, 28);
        assert_eq!(t.tmp_accesses, 12);
        assert_eq!(t.op_histogram[&OpClass::Avg], 4);
    }

    #[test]
    fn mem_access_write_share() {
        let m = MemAccessBreakdown {
            sram_reads: 80,
            sram_writes: 10,
            tmp_accesses: 60,
        };
        assert_eq!(m.total(), 150);
        assert!((m.write_share() - 10.0 / 150.0).abs() < 1e-12);
    }
}
