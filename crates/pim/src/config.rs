/// SIMD lane width configured on the accumulator via carry control.
///
/// The 8-bit accumulator slices are chained at run time: cutting every
/// carry gives 320 independent 8-bit lanes per 2560-bit word line,
/// chaining pairs gives 160 16-bit lanes, and so on (Fig. 6-c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaneWidth {
    /// 8-bit lanes — 320 per word line. Used for pixel processing.
    W8,
    /// 16-bit lanes — 160 per word line. Features/Jacobian entries.
    W16,
    /// 32-bit lanes — 80 per word line. Hessian accumulation, warping.
    W32,
    /// 64-bit lanes — 40 per word line. Available in hardware; unused by
    /// the EBVO pipeline but exposed for completeness.
    W64,
}

impl LaneWidth {
    /// Lane width in bits.
    #[inline]
    pub fn bits(self) -> u32 {
        match self {
            LaneWidth::W8 => 8,
            LaneWidth::W16 => 16,
            LaneWidth::W32 => 32,
            LaneWidth::W64 => 64,
        }
    }

    /// Lane width in bytes.
    #[inline]
    pub fn bytes(self) -> usize {
        (self.bits() / 8) as usize
    }
}

/// Whether lane values are interpreted as two's-complement or unsigned.
///
/// The hardware datapath itself is sign-agnostic; the interpretation
/// matters for saturation bounds, comparisons, averages and for the
/// pre/post inversion steps of signed multiplication/division.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signedness {
    /// Unsigned lanes (image pixels).
    Unsigned,
    /// Signed two's-complement lanes (pose-estimation quantities).
    Signed,
}

/// Geometry of the SRAM-PIM array.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayConfig {
    /// Number of word lines (rows).
    pub rows: usize,
    /// Word-line width in bits. Must be a multiple of 64.
    pub row_bits: usize,
}

impl ArrayConfig {
    /// The paper's configuration: `(320 * 8) x 256` bits — 256 word
    /// lines of 2560 bits, sized for one 8-bit QVGA image (320x240 uses
    /// 240 of the 256 rows) or 20480 32-bit coefficients.
    pub fn qvga() -> Self {
        ArrayConfig {
            rows: 256,
            row_bits: 320 * 8,
        }
    }

    /// A multi-bank configuration: `banks` QVGA arrays stacked row-wise.
    ///
    /// The EBVO pipeline needs the input frame, the low-pass/high-pass
    /// intermediates, the keyframe distance-transform and its gradient
    /// maps resident simultaneously; a real deployment banks several
    /// identical arrays (the per-row datapath is replicated per bank, so
    /// cycles are unchanged and energy/area scale linearly).
    pub fn qvga_banks(banks: usize) -> Self {
        ArrayConfig {
            rows: 256 * banks,
            row_bits: 320 * 8,
        }
    }

    /// Word-line width in bytes.
    #[inline]
    pub fn row_bytes(&self) -> usize {
        self.row_bits / 8
    }

    /// Number of SIMD lanes available at the given width.
    #[inline]
    pub fn lanes(&self, width: LaneWidth) -> usize {
        self.row_bits / width.bits() as usize
    }
}

impl Default for ArrayConfig {
    fn default() -> Self {
        Self::qvga()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qvga_geometry_matches_paper() {
        let c = ArrayConfig::qvga();
        assert_eq!(c.rows, 256);
        assert_eq!(c.row_bits, 2560);
        assert_eq!(c.lanes(LaneWidth::W8), 320);
        assert_eq!(c.lanes(LaneWidth::W16), 160);
        assert_eq!(c.lanes(LaneWidth::W32), 80);
        assert_eq!(c.row_bytes(), 320);
    }

    #[test]
    fn banked_geometry_scales_rows_only() {
        let c = ArrayConfig::qvga_banks(4);
        assert_eq!(c.rows, 1024);
        assert_eq!(c.lanes(LaneWidth::W8), 320);
    }
}
