use crate::config::{ArrayConfig, LaneWidth, Signedness};
use crate::cost::CostModel;
use crate::dma::{DmaChannel, DmaConfig, DmaFaultModel, DmaHealth, TransferKind};
use crate::fault::{FaultModel, FaultStatus, FaultUnit, Protection};
use crate::isa::{AluOp, LogicFunc, OpClass, Operand, Shift};
use crate::lower::{LoweredProgram, MachineInstr};
use crate::optrace::OpRecorder;
use crate::stats::ExecStats;
use crate::trace::{Trace, TraceEvent};
use pimvo_fixed::sat;
use pimvo_telemetry::optrace::{OpKind, OpTrace};
use std::collections::BTreeMap;
use std::fmt;

/// Error returned by the fallible API of [`PimMachine`] and
/// [`crate::PimArrayPool`].
///
/// Every compute macro-op has a `try_*` variant returning
/// `Result<_, PimError>`; the historical infallible methods remain as
/// thin wrappers that panic with the error's `Display` message, so
/// kernel code with static row layouts keeps its simple spelling while
/// runtime-reachable paths (host-fed geometry, pool dispatch) can
/// propagate errors instead of crashing the tracker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PimError {
    /// A row index exceeds the array geometry.
    RowOutOfRange {
        /// Offending row index.
        row: usize,
        /// Number of rows in the array.
        rows: usize,
    },
    /// More lane values were supplied than fit in a word line.
    TooManyLanes {
        /// Number of values supplied.
        got: usize,
        /// Lanes available at the current width.
        lanes: usize,
    },
    /// The Tmp Reg was consumed before any compute op wrote it.
    TmpEmpty,
    /// `Operand::Reg(0)` / `save_tmp(0)` — register 0 is the implicit
    /// result register, addressed as [`Operand::Tmp`].
    RegisterZero,
    /// An extra register index beyond the enabled count was addressed.
    RegisterNotEnabled {
        /// Offending register index.
        idx: u8,
        /// Registers currently enabled (including the implicit Tmp).
        enabled: u8,
    },
    /// An extra register was read before being written.
    RegisterEmpty {
        /// Offending register index.
        idx: u8,
    },
    /// Every array of a pool has been quarantined; no healthy array is
    /// left to dispatch a shard to.
    AllArraysQuarantined {
        /// Total arrays in the pool.
        arrays: usize,
    },
    /// An array index exceeds the pool size (host-driven quarantine /
    /// health import addressed a non-existent array).
    ArrayOutOfRange {
        /// Offending array index.
        index: usize,
        /// Arrays in the pool.
        arrays: usize,
    },
    /// An imported pool-health snapshot describes a different pool
    /// geometry than the one it is applied to.
    PoolSizeMismatch {
        /// Arrays described by the snapshot.
        got: usize,
        /// Arrays in this pool.
        expected: usize,
    },
    /// A row remap was requested but every reserved spare row is
    /// already consumed — the array cannot be rehabilitated further.
    SpareRowsExhausted {
        /// Spare rows reserved at construction.
        spares: usize,
    },
}

impl fmt::Display for PimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PimError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range (array has {rows} rows)")
            }
            PimError::TooManyLanes { got, lanes } => {
                write!(
                    f,
                    "{got} lane values supplied but only {lanes} lanes available"
                )
            }
            PimError::TmpEmpty => {
                write!(f, "Tmp Reg used before being written")
            }
            PimError::RegisterZero => {
                write!(
                    f,
                    "register 0 is the implicit result register (Operand::Tmp)"
                )
            }
            PimError::RegisterNotEnabled { idx, enabled } => {
                write!(
                    f,
                    "register {idx} not enabled (call set_tmp_regs; {enabled} enabled)"
                )
            }
            PimError::RegisterEmpty { idx } => {
                write!(f, "register {idx} read before being written")
            }
            PimError::AllArraysQuarantined { arrays } => {
                write!(f, "all {arrays} pool arrays are quarantined")
            }
            PimError::ArrayOutOfRange { index, arrays } => {
                write!(f, "array {index} out of range (pool has {arrays} arrays)")
            }
            PimError::PoolSizeMismatch { got, expected } => {
                write!(
                    f,
                    "health snapshot describes {got} arrays but the pool has {expected}"
                )
            }
            PimError::SpareRowsExhausted { spares } => {
                write!(f, "all {spares} spare rows are already remapped")
            }
        }
    }
}

impl std::error::Error for PimError {}

/// The bit-parallel SRAM-PIM machine: array storage, Tmp Reg, lane
/// configuration and cycle/energy bookkeeping.
///
/// All compute methods place their result in the Tmp Reg; use
/// [`PimMachine::writeback`] to persist it to an SRAM row (costing the
/// extra cycle the paper's timing model prescribes). Host-side methods
/// (`host_*`) model the I/O port and are tracked separately from compute
/// statistics.
///
/// # Panics
///
/// Compute methods panic when given an out-of-range row index or when
/// reading an empty Tmp Reg — both are programming errors in kernel
/// code, not runtime conditions.
#[derive(Debug, Clone)]
pub struct PimMachine {
    config: ArrayConfig,
    cost: CostModel,
    /// Physical row storage: `config.rows` logical rows followed by
    /// `spare_rows` reserved spares for defect remapping.
    rows: Vec<Vec<u8>>,
    /// Spare physical rows reserved beyond the logical geometry.
    spare_rows: usize,
    /// Spares consumed by remaps so far.
    spares_used: usize,
    /// Logical → physical row remap table; empty (identity) until a
    /// persistent defect is remapped to a spare.
    remap: BTreeMap<usize, usize>,
    tmp: Vec<i64>,
    /// Logical bit width of the Tmp Reg contents (doubles after `mul`).
    tmp_bits: u32,
    /// Additional temporary registers (index 1..): `(lanes, bits)`.
    /// Empty in the paper's baseline single-register configuration.
    extra_regs: Vec<(Vec<i64>, u32)>,
    width: LaneWidth,
    sign: Signedness,
    stats: ExecStats,
    trace: Option<Trace>,
    /// Retention limit applied to the trace when tracing is enabled
    /// (`None` = unbounded). See [`Trace::set_capacity`].
    trace_capacity: Option<usize>,
    /// IR provenance label prefixed to trace mnemonics while
    /// [`PimMachine::run_program`] executes (set only when tracing).
    trace_label: Option<String>,
    /// Dependency-tracked op-record ring (flight-recorder producer).
    /// `None` (the default) keeps every hook to a single branch; see
    /// [`PimMachine::arm_op_recorder`].
    op_recorder: Option<Box<OpRecorder>>,
    fault: FaultUnit,
    /// Optional host↔array DMA channel engine; `None` (the default)
    /// keeps every host transfer on the synchronous port. See
    /// [`PimMachine::set_dma`] and [`crate::dma`].
    dma: Option<Box<DmaChannel>>,
    /// [`TransferKind`] stamped on subsequent *inbound* host transfers
    /// (outbound reads are always [`TransferKind::StripOut`]). See
    /// [`PimMachine::set_transfer_kind`].
    transfer_kind: TransferKind,
}

/// Fluent constructor for [`PimMachine`], replacing the historical
/// `new`/`with_cost` + post-hoc `set_lanes`/`set_tmp_regs`/`set_tracing`
/// dance with one declarative description of the array:
///
/// ```
/// use pimvo_pim::{ArrayConfig, LaneWidth, PimMachineBuilder, Signedness};
///
/// let m = PimMachineBuilder::new(ArrayConfig::qvga())
///     .lanes(LaneWidth::W16, Signedness::Signed)
///     .tmp_regs(2)
///     .build();
/// assert_eq!(m.tmp_reg_count(), 2);
/// ```
///
/// [`crate::PimArrayPool`] construction reuses the same builder, so a
/// pool's member arrays are guaranteed to be configured identically.
#[derive(Debug, Clone)]
pub struct PimMachineBuilder {
    config: ArrayConfig,
    cost: CostModel,
    width: LaneWidth,
    sign: Signedness,
    tmp_regs: u8,
    tracing: bool,
    fault: FaultModel,
    protection: Protection,
    spare_rows: usize,
    dma: Option<DmaConfig>,
}

impl PimMachineBuilder {
    /// Starts a builder with the paper's defaults: 90 nm cost model,
    /// 8-bit unsigned lanes, one Tmp register, tracing off.
    pub fn new(config: ArrayConfig) -> Self {
        PimMachineBuilder {
            config,
            cost: CostModel::default(),
            width: LaneWidth::W8,
            sign: Signedness::Unsigned,
            tmp_regs: 1,
            tracing: false,
            fault: FaultModel::none(),
            protection: Protection::None,
            spare_rows: 0,
            dma: None,
        }
    }

    /// Uses an explicit cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the initial lane width and signedness.
    pub fn lanes(mut self, width: LaneWidth, sign: Signedness) -> Self {
        self.width = width;
        self.sign = sign;
        self
    }

    /// Enables `n` temporary registers (1..=8; see
    /// [`PimMachine::set_tmp_regs`]).
    pub fn tmp_regs(mut self, n: u8) -> Self {
        assert!((1..=8).contains(&n), "1..=8 temporary registers");
        self.tmp_regs = n;
        self
    }

    /// Enables instruction tracing from the first operation.
    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Plugs in a [`FaultModel`]. The default is [`FaultModel::none`];
    /// active models require the `fault` cargo feature to construct.
    /// Pool member arrays stamped from this builder fork the model's
    /// fault stream per array index (see [`PimMachine::reseed_faults`]).
    pub fn fault(mut self, model: FaultModel) -> Self {
        self.fault = model;
        self
    }

    /// Selects a word [`Protection`] mode (parity / ECC). Protected
    /// compute accesses charge check/correction overhead through the
    /// cost model; the default [`Protection::None`] is free.
    pub fn protection(mut self, p: Protection) -> Self {
        self.protection = p;
        self
    }

    /// Reserves `n` spare physical rows beyond the logical geometry for
    /// defect remapping (see [`PimMachine::remap_row`]). The default is
    /// zero: no spares, no remap table, the historical behaviour.
    pub fn spare_rows(mut self, n: usize) -> Self {
        self.spare_rows = n;
        self
    }

    /// Installs a host↔array DMA channel (see [`crate::dma`]). The
    /// default is no channel: synchronous host I/O, the historical
    /// behaviour.
    pub fn dma(mut self, cfg: DmaConfig) -> Self {
        self.dma = Some(cfg);
        self
    }

    /// Constructs the machine. The builder is reusable (`&self`), which
    /// is what lets a pool stamp out N identical arrays.
    pub fn build(&self) -> PimMachine {
        let mut m = PimMachine::with_cost(self.config.clone(), self.cost.clone());
        m.set_lanes(self.width, self.sign);
        m.set_tmp_regs(self.tmp_regs);
        m.set_tracing(self.tracing);
        m.fault = FaultUnit::new(self.fault.clone(), self.protection);
        m.spare_rows = self.spare_rows;
        let row_bytes = self.config.row_bytes();
        m.rows
            .extend(std::iter::repeat_with(|| vec![0u8; row_bytes]).take(self.spare_rows));
        m.set_dma(self.dma);
        m
    }
}

impl PimMachine {
    /// Creates a machine with the default 90 nm cost model.
    pub fn new(config: ArrayConfig) -> Self {
        Self::with_cost(config, CostModel::default())
    }

    /// Starts a [`PimMachineBuilder`] for this geometry.
    pub fn builder(config: ArrayConfig) -> PimMachineBuilder {
        PimMachineBuilder::new(config)
    }

    /// Creates a machine with an explicit cost model.
    pub fn with_cost(config: ArrayConfig, cost: CostModel) -> Self {
        let row_bytes = config.row_bytes();
        let rows = vec![vec![0u8; row_bytes]; config.rows];
        PimMachine {
            config,
            cost,
            rows,
            spare_rows: 0,
            spares_used: 0,
            remap: BTreeMap::new(),
            tmp: Vec::new(),
            tmp_bits: 8,
            extra_regs: Vec::new(),
            width: LaneWidth::W8,
            sign: Signedness::Unsigned,
            stats: ExecStats::new(),
            trace: None,
            trace_capacity: None,
            trace_label: None,
            op_recorder: None,
            fault: FaultUnit::inert(),
            dma: None,
            transfer_kind: TransferKind::StripIn,
        }
    }

    /// Array geometry.
    pub fn config(&self) -> &ArrayConfig {
        &self.config
    }

    /// Cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// The machine-local end-to-end clock: compute cycles plus host-I/O
    /// and DMA-stall cycles. [`ExecStats::cycles`] stays compute-only so
    /// the paper's per-kernel metrics are untouched; the timeline is
    /// what host transfers, DMA channels and the op-trace streams
    /// advance on, and what pool wall-clock accounting watermarks.
    pub fn timeline(&self) -> u64 {
        self.stats.cycles + self.stats.host_io_cycles + self.stats.dma_stall_cycles
    }

    /// Resets the statistics (array contents are preserved). Any DMA
    /// channel's clocks rebase to the new (zeroed) timeline epoch; its
    /// health counters, quarantine state and fault stream persist.
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::new();
        if let Some(ch) = &mut self.dma {
            ch.reset_clocks();
        }
    }

    /// Retracts previously recorded statistics. Used when a traced
    /// stage is physically shared by multiple logical batches (e.g.
    /// two 80-feature half-batches packing one 160-lane word line pay
    /// the Hessian stage once): the shared fraction is credited back.
    pub fn retract_stats(&mut self, delta: &ExecStats) {
        self.stats.retract(delta);
    }

    /// Enables or disables instruction tracing (disabling discards the
    /// recorded trace). See [`crate::Trace`].
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = on.then(|| match self.trace_capacity {
            Some(cap) => Trace::with_capacity(cap),
            None => Trace::new(),
        });
    }

    /// Bounds the instruction trace to at most `capacity` events
    /// (drop-oldest ring buffer; `None` restores the unbounded
    /// default). Applies immediately to a live trace and to any trace
    /// started by a later [`PimMachine::set_tracing`].
    pub fn set_trace_capacity(&mut self, capacity: Option<usize>) {
        self.trace_capacity = capacity;
        if let Some(trace) = &mut self.trace {
            trace.set_capacity(capacity);
        }
    }

    /// The recorded instruction trace, when tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    // ------------------------------------------------------------------
    // Op-record ring (flight-recorder producer)
    // ------------------------------------------------------------------

    /// Arms the dependency-tracked op-record ring: subsequent macro-ops,
    /// host transfers and maintenance steps each emit one
    /// [`pimvo_telemetry::optrace::OpRecord`] into a bounded ring
    /// (`capacity` records, oldest dropped and counted). `stream` is
    /// the array index used to namespace record ids and stamped on each
    /// record. Off by default; recording never changes simulated
    /// results, cycles or energy.
    pub fn arm_op_recorder(&mut self, stream: u16, capacity: usize) {
        self.op_recorder = Some(Box::new(OpRecorder::new(stream, capacity)));
    }

    /// Disarms the op-record ring, discarding buffered records.
    pub fn disarm_op_recorder(&mut self) {
        self.op_recorder = None;
    }

    /// The armed op recorder, if any.
    pub fn op_recorder(&self) -> Option<&OpRecorder> {
        self.op_recorder.as_deref()
    }

    /// Mutable access to the armed op recorder (session/label stamping
    /// and pool sync-point plumbing).
    pub fn op_recorder_mut(&mut self) -> Option<&mut OpRecorder> {
        self.op_recorder.as_deref_mut()
    }

    /// Hands off the buffered op records (the recorder stays armed;
    /// ids remain unique across drains). `None` when not armed.
    pub fn drain_op_trace(&mut self) -> Option<OpTrace> {
        self.op_recorder.as_deref_mut().map(OpRecorder::drain)
    }

    /// Emission hook shared by every cycle-charging site: one branch
    /// when unarmed. `start` is the pre-charge *compute* cycle counter,
    /// so the record's cycles are exactly the site's `ExecStats` delta;
    /// the stored start stamp is shifted into the timeline domain
    /// (compute + host I/O + stalls) so machine-stream records share a
    /// clock with the DMA lanes. Sites must not charge host-I/O or
    /// stall cycles between capturing `start` and calling this (host
    /// transfers have their own emission paths). Multi-step follow-ups
    /// fold in via [`PimMachine::extend_trace`].
    #[inline]
    fn record_op(
        &mut self,
        kind: OpKind,
        reads: &[u32],
        writes: &[u32],
        start: u64,
        sram: u32,
        size: u32,
    ) {
        if let Some(rec) = &mut self.op_recorder {
            let cycles = self.stats.cycles - start;
            let io = self.stats.host_io_cycles + self.stats.dma_stall_cycles;
            rec.record(kind, reads, writes, start + io, cycles, sram, size);
        }
    }

    /// Merges externally modeled statistics into the machine's
    /// counters (e.g. the extra staging cost of a deliberately naive
    /// schedule, derived analytically from the op sequence).
    pub fn merge_extra_stats(&mut self, delta: &ExecStats) {
        self.stats.merge(delta);
    }

    // ------------------------------------------------------------------
    // Fault model & word protection
    // ------------------------------------------------------------------

    /// The word [`Protection`] mode in effect.
    pub fn protection(&self) -> Protection {
        self.fault.protection()
    }

    /// Switches the word protection mode (parity / ECC) at run time.
    pub fn set_protection(&mut self, p: Protection) {
        self.fault.set_protection(p);
    }

    /// The configured [`FaultModel`].
    pub fn fault_model(&self) -> &FaultModel {
        self.fault.model()
    }

    /// Replaces the fault model, restarting its deterministic stream.
    /// Counters ([`PimMachine::fault_status`]) are preserved.
    pub fn set_fault_model(&mut self, model: FaultModel) {
        self.fault.set_model(model);
    }

    /// Cumulative fault counters: flips observed by the datapath,
    /// ECC-corrected words, and detected-but-uncorrected words.
    pub fn fault_status(&self) -> FaultStatus {
        self.fault.status()
    }

    /// Clears the fault counters and the per-row syndrome log.
    pub fn reset_fault_status(&mut self) {
        self.fault.reset_status();
    }

    /// Detected (uncorrected) error events per row — the syndrome log a
    /// memory controller keeps. Repeated detections on one row are the
    /// pool's evidence of a persistent stuck-at defect (vs. a transient
    /// upset storm), and drive its quarantine decision.
    pub fn fault_row_log(&self) -> &BTreeMap<usize, u64> {
        self.fault.row_log()
    }

    /// Forks the transient-fault stream with `salt`, so pool member
    /// arrays stamped from one builder observe independent fault
    /// patterns. Deterministic: the same salt reproduces the same
    /// stream. A no-op for the inert default model.
    pub fn reseed_faults(&mut self, salt: u64) {
        self.fault.reseed(salt);
    }

    /// Injects a persistent stuck-at cell fault at (`row`, `bit`).
    #[cfg(feature = "fault")]
    pub fn inject_stuck_bit(&mut self, row: usize, bit: usize, value: bool) {
        self.fault.add_stuck_bit(row, bit, value);
    }

    // ------------------------------------------------------------------
    // Spare rows, remapping & scrub (self-healing maintenance port)
    // ------------------------------------------------------------------

    /// Spare physical rows reserved at construction
    /// ([`PimMachineBuilder::spare_rows`]).
    pub fn spare_rows(&self) -> usize {
        self.spare_rows
    }

    /// Spare rows not yet consumed by a remap.
    pub fn spares_available(&self) -> usize {
        self.spare_rows - self.spares_used
    }

    /// Number of logical rows currently remapped to spares.
    pub fn remapped_rows(&self) -> usize {
        self.remap.len()
    }

    /// The logical → physical row remap table. Logical rows absent from
    /// the table map to themselves; the table stays empty (and the row
    /// decode pays nothing) until [`PimMachine::remap_row`] is called.
    pub fn remap_table(&self) -> &BTreeMap<usize, usize> {
        &self.remap
    }

    /// Remaps logical `row` to the next free spare physical row,
    /// migrating the current raw cell contents (one read + one write
    /// cycle on the maintenance port). Faults are physical: stuck bits
    /// stay with the defective row, so the remapped logical row escapes
    /// them. Remapping an already-remapped row allocates a fresh spare
    /// and abandons the defective one. Returns the physical spare index.
    ///
    /// # Errors
    ///
    /// [`PimError::RowOutOfRange`] for a bad logical row,
    /// [`PimError::SpareRowsExhausted`] when every spare is consumed.
    pub fn remap_row(&mut self, row: usize) -> Result<usize, PimError> {
        self.check_row(row)?;
        if self.spares_used >= self.spare_rows {
            return Err(PimError::SpareRowsExhausted {
                spares: self.spare_rows,
            });
        }
        let spare = self.config.rows + self.spares_used;
        self.spares_used += 1;
        let old = self.phys_row(row);
        let data = self.rows[old].clone();
        self.rows[spare] = data;
        self.remap.insert(row, spare);
        self.stats.cycles += 2;
        self.stats.sram_reads += 1;
        self.stats.sram_writes += 1;
        // maintenance-port work runs concurrently with foreground
        // phases and is never charged to the pool wall clock, so the
        // record carries zero DAG weight (true cost: ExecStats)
        let start = self.stats.cycles;
        let r = row as u32;
        self.record_op(OpKind::Remap, &[r], &[r], start, 2, 1);
        Ok(spare)
    }

    /// One scrub (march-test) step: writes `pattern` into every byte of
    /// logical `row` and reads it back through the *persistent* (DC)
    /// component of the fault model, reporting whether the readback
    /// matched. Transient upsets, protection and the syndrome log are
    /// deliberately untouched — a scrub pass never perturbs the
    /// deterministic transient fault stream. Destroys the row contents.
    /// Charged at [`CostModel::scrub_row_cycles`] /
    /// [`CostModel::scrub_row_pj`] via [`ExecStats::scrub_rows`].
    ///
    /// # Errors
    ///
    /// [`PimError::RowOutOfRange`] for a bad logical row.
    pub fn scrub_row(&mut self, row: usize, pattern: u8) -> Result<bool, PimError> {
        self.check_row(row)?;
        let phys = self.phys_row(row);
        self.rows[phys].fill(pattern);
        let mut data = self.rows[phys].clone();
        self.fault.apply_stuck_raw(phys, &mut data);
        self.stats.scrub_rows += 1;
        self.stats.cycles += self.cost.scrub_row_cycles;
        // like remap: concurrent maintenance, zero DAG weight so the
        // critical path keeps matching the pool wall clock
        let start = self.stats.cycles;
        self.record_op(OpKind::Scrub, &[], &[row as u32], start, 0, 1);
        Ok(data.iter().all(|&b| b == pattern))
    }

    /// Charges a verify-on-read patrol over `rows` rows: one
    /// ECC-strength syndrome re-check per row, the probation mode of
    /// the pool's rehabilitation pass ([`crate::ScrubConfig`]). Pure
    /// accounting — array contents are not touched.
    pub fn charge_verify_patrol(&mut self, rows: u64) {
        self.stats.ecc_checks += rows;
        let cycle_start = self.stats.cycles;
        self.stats.cycles += self.cost.ecc_check_cycles * rows;
        self.record_op(OpKind::Patrol, &[], &[], cycle_start, 0, rows as u32);
    }

    /// Configures lane width and signedness for subsequent operations
    /// (run-time carry control, Fig. 6-c). Free: the carry masks are set
    /// by the instruction word.
    pub fn set_lanes(&mut self, width: LaneWidth, sign: Signedness) {
        self.width = width;
        self.sign = sign;
    }

    /// Enables `n` temporary registers (the paper's §5.4 scaling knob;
    /// the baseline design has one). Register 0 is the implicit result
    /// register ([`Operand::Tmp`]); registers 1..n are addressed with
    /// [`Operand::Reg`] after being filled by [`PimMachine::save_tmp`].
    ///
    /// # Panics
    ///
    /// Panics for `n == 0` or `n > 8` (the datapath mux width bounds a
    /// realistic register count).
    pub fn set_tmp_regs(&mut self, n: u8) {
        assert!((1..=8).contains(&n), "1..=8 temporary registers");
        self.extra_regs.resize((n - 1) as usize, (Vec::new(), 8));
    }

    /// Number of temporary registers (≥ 1).
    pub fn tmp_reg_count(&self) -> u8 {
        1 + self.extra_regs.len() as u8
    }

    /// Copies the primary Tmp Reg into extra register `idx` (1-based
    /// among the extra registers: `Operand::Reg(idx)`). One cycle,
    /// register-file traffic only — this is exactly the write-back a
    /// second register elides.
    ///
    /// # Panics
    ///
    /// Panics if register `idx` is not enabled or `idx == 0`; see
    /// [`PimMachine::try_save_tmp`] for the fallible variant.
    pub fn save_tmp(&mut self, idx: u8) {
        self.try_save_tmp(idx).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PimMachine::save_tmp`].
    ///
    /// # Errors
    ///
    /// [`PimError::RegisterZero`] for `idx == 0`,
    /// [`PimError::RegisterNotEnabled`] beyond the enabled count, or
    /// [`PimError::TmpEmpty`] when the Tmp Reg holds no value.
    pub fn try_save_tmp(&mut self, idx: u8) -> Result<(), PimError> {
        if idx == 0 {
            return Err(PimError::RegisterZero);
        }
        let slot = (idx - 1) as usize;
        if slot >= self.extra_regs.len() {
            return Err(PimError::RegisterNotEnabled {
                idx,
                enabled: self.tmp_reg_count(),
            });
        }
        if self.tmp.is_empty() {
            return Err(PimError::TmpEmpty);
        }
        self.extra_regs[slot] = (self.tmp.clone(), self.tmp_bits);
        let cycle_start = self.stats.cycles;
        self.stats.cycles += 1;
        self.stats.acc_ops += 1;
        self.stats.tmp_accesses += 2;
        self.record_trace(
            OpClass::Select,
            format!("save_tmp reg{idx}"),
            cycle_start,
            1,
            0,
            0,
        );
        self.record_op(OpKind::Select, &[], &[], cycle_start, 0, 0);
        Ok(())
    }

    /// Current lane width.
    pub fn lane_width(&self) -> LaneWidth {
        self.width
    }

    /// Current signedness.
    pub fn signedness(&self) -> Signedness {
        self.sign
    }

    /// Number of lanes at the current width.
    pub fn lanes(&self) -> usize {
        self.config.lanes(self.width)
    }

    // ------------------------------------------------------------------
    // Host I/O (host↔array burst port; costed on the timeline, never on
    // the compute cycle/energy budget)
    // ------------------------------------------------------------------

    /// Routes one host transfer: over the DMA channel when one is
    /// installed and healthy, else the synchronous port. All transfer
    /// accounting (row/byte counters, stall or PIO cycles, op records)
    /// happens here. `payload` is the wire image of the moved bytes —
    /// the CRC a channel seals into its descriptor is computed over it;
    /// `size` keeps each op kind's historical record-size semantics
    /// (bytes for byte writes, lanes for lane writes/reads).
    fn host_transfer(&mut self, kind: TransferKind, row: u32, payload: &[u8], size: u32) {
        self.stats.host_io_rows += 1;
        self.stats.host_io_words += payload.len() as u64;
        // take() the channel so it can borrow the cost model while the
        // stats/recorder stay reachable
        if let Some(mut ch) = self.dma.take() {
            let now = self.timeline();
            let tail = self.op_recorder.as_deref().map_or(0, OpRecorder::tail);
            let out = ch.issue(now, tail, kind, row, payload, &self.cost);
            if out.backpressure_stall > 0 {
                self.stats.dma_stall_cycles += out.backpressure_stall;
                ch.add_stall(out.backpressure_stall);
                if let Some(rec) = &mut self.op_recorder {
                    // the stall serializes into the machine stream only
                    // (depping the channel record too would double-count
                    // the wait on the critical path)
                    rec.record(
                        OpKind::DmaStall,
                        &[],
                        &[],
                        now,
                        out.backpressure_stall,
                        0,
                        0,
                    );
                }
            }
            match out.channel_record {
                Some(id) => {
                    if kind.is_inbound() && id != 0 {
                        if let Some(rec) = &mut self.op_recorder {
                            // next compute read of this row picks up a
                            // cross-stream RAW edge onto the DmaIn record
                            rec.note_external_write(row, id);
                        }
                    }
                }
                // quarantined: graceful degradation to the synchronous
                // port (the channel already counted the fallback)
                None => self.host_transfer_sync(kind, row, payload.len() as u64, size),
            }
            self.dma = Some(ch);
        } else {
            self.host_transfer_sync(kind, row, payload.len() as u64, size);
        }
    }

    /// The synchronous (PIO) host port: blocks the timeline for the
    /// full modeled transfer. Same wires and same
    /// [`CostModel::transfer_cycles`] formula as the DMA channels —
    /// overlap, not a faster bus, is what a channel buys.
    fn host_transfer_sync(&mut self, kind: TransferKind, row: u32, bytes: u64, size: u32) {
        let start = self.timeline();
        let w = self.cost.transfer_cycles(bytes);
        self.stats.host_io_cycles += w;
        if let Some(rec) = &mut self.op_recorder {
            if kind.is_inbound() {
                rec.record(OpKind::HostWrite, &[], &[row], start, w, 0, size);
            } else {
                rec.record(OpKind::HostRead, &[row], &[], start, w, 0, size);
            }
        }
    }

    /// Writes raw bytes into a row through the host port.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::RowOutOfRange`] for a bad row index or
    /// [`PimError::TooManyLanes`] when `bytes` exceeds the row width.
    pub fn host_write_bytes(&mut self, row: usize, bytes: &[u8]) -> Result<(), PimError> {
        self.check_row(row)?;
        let rb = self.config.row_bytes();
        if bytes.len() > rb {
            return Err(PimError::TooManyLanes {
                got: bytes.len(),
                lanes: rb,
            });
        }
        let phys = self.phys_row(row);
        self.rows[phys][..bytes.len()].copy_from_slice(bytes);
        self.rows[phys][bytes.len()..].fill(0);
        // data lands eagerly (above); the transfer model charges the
        // timing and seals the descriptor CRC over the wire image
        self.host_transfer(self.transfer_kind, row as u32, bytes, bytes.len() as u32);
        Ok(())
    }

    /// Writes lane values into a row at the current lane configuration.
    ///
    /// Values are wrapped to the lane width. Unfilled lanes become zero.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::RowOutOfRange`] for a bad row index or
    /// [`PimError::TooManyLanes`] when `values` exceeds the lane count —
    /// the same contract as [`PimMachine::host_write_bytes`].
    pub fn host_write_lanes(&mut self, row: usize, values: &[i64]) -> Result<(), PimError> {
        let lanes = self.lanes();
        if values.len() > lanes {
            return Err(PimError::TooManyLanes {
                got: values.len(),
                lanes,
            });
        }
        self.check_row(row)?;
        let bits = self.width.bits();
        let bytes = self.width.bytes();
        let phys = self.phys_row(row);
        // encode into a scratch wire image first: the transfer model
        // needs the payload after the row borrow ends
        let mut buf = vec![0u8; self.config.row_bytes()];
        for (i, &v) in values.iter().enumerate() {
            let raw = sat::wrap_unsigned(v, bits);
            buf[i * bytes..(i + 1) * bytes].copy_from_slice(&raw.to_le_bytes()[..bytes]);
        }
        self.rows[phys].copy_from_slice(&buf);
        // the wire moves only the valid lanes; the zero tail is a row
        // clear strobe, not burst traffic
        let moved = values.len() * bytes;
        self.host_transfer(
            self.transfer_kind,
            row as u32,
            &buf[..moved],
            values.len() as u32,
        );
        Ok(())
    }

    /// Fills every lane of a row with a constant (threshold rows etc.).
    ///
    /// # Errors
    ///
    /// Returns [`PimError::RowOutOfRange`] for a bad row index.
    pub fn host_broadcast(&mut self, row: usize, value: i64) -> Result<(), PimError> {
        let lanes = self.lanes();
        let vals = vec![value; lanes];
        self.host_write_lanes(row, &vals)
    }

    /// Reads a row's lane values at the current configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::RowOutOfRange`] for a bad row index.
    pub fn try_host_read_lanes(&mut self, row: usize) -> Result<Vec<i64>, PimError> {
        self.check_row(row)?;
        let lanes = self.lanes() as u32;
        let vals = self.read_row(row, true);
        // snapshot the row's wire image for the outbound descriptor
        // (the channel reads the burst buffer at issue; the host sees
        // the values now, the port pays for them on its own clock)
        let phys = self.phys_row(row);
        let payload = self.rows[phys].clone();
        self.host_transfer(TransferKind::StripOut, row as u32, &payload, lanes);
        Ok(vals)
    }

    /// Reads a row's lane values at the current configuration.
    ///
    /// # Panics
    ///
    /// Panics for a bad row index; see
    /// [`PimMachine::try_host_read_lanes`] for the fallible variant.
    pub fn host_read_lanes(&mut self, row: usize) -> Vec<i64> {
        self.try_host_read_lanes(row)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Inspects the Tmp Reg lane values (no cost: debugging/verification
    /// aid, the hardware result would be consumed via write-back).
    pub fn tmp_lanes(&self) -> &[i64] {
        &self.tmp
    }

    /// Logical bit width of the Tmp Reg contents.
    pub fn tmp_bits(&self) -> u32 {
        self.tmp_bits
    }

    // ------------------------------------------------------------------
    // DMA channel control (see `crate::dma` for the model)
    // ------------------------------------------------------------------

    /// Installs (or removes, with `None`) the host↔array DMA channel.
    /// Installing replaces any previous channel — clocks, health and
    /// fault stream start fresh. With no channel every host transfer is
    /// synchronous.
    pub fn set_dma(&mut self, cfg: Option<DmaConfig>) {
        self.dma = cfg.map(|c| Box::new(DmaChannel::new(c)));
    }

    /// Whether a DMA channel is installed.
    pub fn dma_enabled(&self) -> bool {
        self.dma.is_some()
    }

    /// Runs `f` with the DMA channel *and* the op recorder detached:
    /// host transfers inside go through the synchronous port, the
    /// channel's engine clock, queue and health counters see nothing,
    /// and no op records are emitted. Calibration probes use this — a
    /// probe's synchronous stats can be retracted exactly afterwards,
    /// while residue on a channel's engine clock or in a trace lane
    /// (records whose cycles the retracted wall never pays) could not
    /// be.
    pub fn with_probe_isolation<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let ch = self.dma.take();
        let rec = self.op_recorder.take();
        let r = f(self);
        self.op_recorder = rec;
        self.dma = ch;
        r
    }

    /// Plugs a seeded [`DmaFaultModel`] into the installed channel.
    /// No effect without a channel (install with
    /// [`PimMachine::set_dma`] first).
    pub fn set_dma_fault(&mut self, model: DmaFaultModel) {
        if let Some(ch) = &mut self.dma {
            ch.set_fault(model);
        }
    }

    /// Forks the channel's fault stream with `salt` (pool members
    /// derive independent streams from one shared model).
    pub fn dma_reseed(&mut self, salt: u64) {
        if let Some(ch) = &mut self.dma {
            ch.reseed(salt);
        }
    }

    /// The installed channel's health counters, when one is installed.
    pub fn dma_health(&self) -> Option<DmaHealth> {
        self.dma.as_ref().map(|ch| ch.health())
    }

    /// Whether the installed channel is quarantined (all transfers
    /// degraded to the synchronous port). `false` without a channel.
    pub fn dma_quarantined(&self) -> bool {
        self.dma.as_ref().is_some_and(|ch| ch.is_quarantined())
    }

    /// Lifts a channel quarantine after operator/scrub action; no
    /// effect without a channel.
    pub fn dma_rehabilitate(&mut self) {
        if let Some(ch) = &mut self.dma {
            ch.rehabilitate();
        }
    }

    /// Sets the [`TransferKind`] stamped on subsequent inbound host
    /// transfers. [`TransferKind::PyramidPrefetch`] marks next-frame
    /// double-buffer traffic: it is *not* waited on at
    /// [`PimMachine::run_program`] entry, only at
    /// [`PimMachine::dma_settle`] — that window is the overlap.
    /// Sticky until changed; outbound reads always record as
    /// [`TransferKind::StripOut`].
    pub fn set_transfer_kind(&mut self, kind: TransferKind) {
        self.transfer_kind = kind;
    }

    /// The kind currently stamped on inbound host transfers.
    pub fn transfer_kind(&self) -> TransferKind {
        self.transfer_kind
    }

    /// Arms a dedicated op-trace lane for the DMA channel: descriptor
    /// records land in stream `stream` stamped with `array` (use
    /// [`pimvo_telemetry::optrace::DMA_LANE_BASE`]` | index` so the
    /// profiler renders a `dma N` lane). No effect without a channel.
    pub fn arm_dma_recorder(&mut self, stream: u16, array: u16, capacity: usize) {
        if let Some(ch) = &mut self.dma {
            ch.arm_recorder(stream, array, capacity);
        }
    }

    /// Mutable access to the channel's op recorder (session stamping by
    /// the wave scheduler).
    pub fn dma_recorder_mut(&mut self) -> Option<&mut OpRecorder> {
        self.dma.as_mut().and_then(|ch| ch.recorder_mut())
    }

    /// Hands off the channel lane's buffered records, when a channel
    /// recorder is armed.
    pub fn drain_dma_trace(&mut self) -> Option<OpTrace> {
        self.dma.as_mut().and_then(|ch| ch.drain_trace())
    }

    /// Stalls the compute stream to timeline `target`: charges
    /// [`ExecStats::dma_stall_cycles`] and emits a
    /// [`OpKind::DmaStall`] record serialized into the machine stream.
    fn dma_stall_until(&mut self, target: u64) {
        let now = self.timeline();
        if target > now {
            let stall = target - now;
            self.stats.dma_stall_cycles += stall;
            if let Some(ch) = &mut self.dma {
                ch.add_stall(stall);
            }
            if let Some(rec) = &mut self.op_recorder {
                rec.record(OpKind::DmaStall, &[], &[], now, stall, 0, 0);
            }
        }
        let now = self.timeline();
        if let Some(ch) = &mut self.dma {
            ch.observe(now);
        }
    }

    /// Waits for every outstanding *strip-in* descriptor (compute
    /// inputs); prefetch and outbound traffic keeps flying. Called at
    /// [`PimMachine::run_program`] entry, so program-based execution can
    /// never read a row whose inbound burst is still on the wire. Free
    /// without a channel or when inputs already landed.
    pub fn dma_sync_inbound(&mut self) {
        if let Some(ch) = &self.dma {
            let t = ch.in_done();
            self.dma_stall_until(t);
        }
    }

    /// Waits for the channel engine to go fully idle (strip-in,
    /// prefetch *and* outbound descriptors): the frame/measurement
    /// boundary. Charged as stall cycles like any other wait.
    pub fn dma_settle(&mut self) {
        if let Some(ch) = &self.dma {
            let t = ch.busy_until();
            self.dma_stall_until(t);
        }
    }

    // ------------------------------------------------------------------
    // Compute macro-ops
    // ------------------------------------------------------------------

    /// Unified submission point for every shift-capable binary ALU
    /// macro-op: one call selects the operation ([`AluOp`]), the two
    /// operands, and the lane pre-shift applied to `b` ([`Shift`]).
    ///
    /// Cycle/energy accounting is identical to the historical per-op
    /// methods (which remain as `#[inline]` wrappers): single-cycle ops
    /// stay single-cycle, abs-diff charges its two Tmp-resident fixup
    /// steps, min/max their one.
    ///
    /// # Panics
    ///
    /// Panics on operand misuse (bad row, empty Tmp/register); see
    /// [`PimMachine::try_alu`] for the fallible variant.
    pub fn alu(&mut self, op: AluOp, a: Operand, b: Operand, shift: Shift) {
        self.try_alu(op, a, b, shift)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PimMachine::alu`].
    ///
    /// # Errors
    ///
    /// [`PimError::RowOutOfRange`] for a bad row operand,
    /// [`PimError::TmpEmpty`] / [`PimError::RegisterEmpty`] for a
    /// register consumed before being written, or
    /// [`PimError::RegisterZero`] / [`PimError::RegisterNotEnabled`]
    /// for a bad register index.
    pub fn try_alu(
        &mut self,
        op: AluOp,
        a: Operand,
        b: Operand,
        shift: Shift,
    ) -> Result<(), PimError> {
        let b_pix = shift.pix();
        let bits = self.op_bits(a, b);
        let sign = self.sign;
        match op {
            AluOp::Logic(f) => {
                let mask = width_mask(bits);
                self.binop(OpClass::Logic, a, b, b_pix, bits, move |x, y, _| {
                    let r = f.apply(x as u64 & mask, y as u64 & mask) & mask;
                    r as i64
                })?;
            }
            AluOp::Add => {
                self.binop(OpClass::AddSub, a, b, b_pix, bits, move |x, y, _| {
                    wrap(x + y, bits, sign)
                })?;
            }
            AluOp::Sub => {
                self.binop(OpClass::AddSub, a, b, b_pix, bits, move |x, y, _| {
                    wrap(x - y, bits, sign)
                })?;
            }
            AluOp::SatAdd => {
                self.binop(OpClass::SatAddSub, a, b, b_pix, bits, move |x, y, _| {
                    clamp(x + y, bits, sign)
                })?;
            }
            AluOp::SatSub => {
                self.binop(OpClass::SatAddSub, a, b, b_pix, bits, move |x, y, _| {
                    clamp(x - y, bits, sign)
                })?;
            }
            AluOp::Avg => {
                self.binop(OpClass::Avg, a, b, b_pix, bits, |x, y, _| (x + y) >> 1)?;
            }
            AluOp::AbsDiff => {
                // Step 1: M = a - b (+ carry extension), SRAM-touching.
                // Steps 2-3: Tmp-resident single-cycle fixups (Fig. 7-a).
                self.binop(OpClass::AbsDiff, a, b, b_pix, bits, move |x, y, _| {
                    clamp((x - y).abs(), bits, sign)
                })?;
                self.charge_tmp_steps(2);
            }
            AluOp::Max => {
                // max(a, b) = sat(a - b) + b (Fig. 7-b)
                self.binop(OpClass::MinMax, a, b, b_pix, bits, |x, y, _| x.max(y))?;
                self.charge_tmp_steps(1);
            }
            AluOp::Min => {
                // min(a, b) = a - sat(a - b)
                self.binop(OpClass::MinMax, a, b, b_pix, bits, |x, y, _| x.min(y))?;
                self.charge_tmp_steps(1);
            }
            AluOp::CmpGt => {
                let mask = width_mask(bits) as i64;
                self.binop(OpClass::Cmp, a, b, b_pix, bits, move |x, y, _| {
                    if x > y {
                        mask
                    } else {
                        0
                    }
                })?;
            }
        }
        Ok(())
    }

    /// Bit-wise logic of two operands (1 cycle).
    #[inline]
    pub fn logic(&mut self, f: LogicFunc, a: Operand, b: Operand) {
        self.alu(AluOp::Logic(f), a, b, Shift::None)
    }

    /// Bit-wise logic with operand `b` pre-shifted by `b_pix` lanes.
    #[inline]
    pub fn logic_sh(&mut self, f: LogicFunc, a: Operand, b: Operand, b_pix: i32) {
        self.alu(AluOp::Logic(f), a, b, Shift::Pix(b_pix))
    }

    /// Loads an operand into the Tmp Reg (1 cycle; an `OR` with itself).
    pub fn load(&mut self, a: Operand) {
        self.logic(LogicFunc::Or, a, a);
    }

    /// Wrapping addition (1 cycle).
    #[inline]
    pub fn add(&mut self, a: Operand, b: Operand) {
        self.alu(AluOp::Add, a, b, Shift::None)
    }

    /// Wrapping addition with `b` pre-shifted by `b_pix` lanes
    /// (shift-and-accumulate is the architecture's native single-cycle
    /// operation).
    #[inline]
    pub fn add_sh(&mut self, a: Operand, b: Operand, b_pix: i32) {
        self.alu(AluOp::Add, a, b, Shift::Pix(b_pix))
    }

    /// Wrapping subtraction `a - b` (1 cycle).
    #[inline]
    pub fn sub(&mut self, a: Operand, b: Operand) {
        self.alu(AluOp::Sub, a, b, Shift::None)
    }

    /// Wrapping subtraction with `b` pre-shifted.
    #[inline]
    pub fn sub_sh(&mut self, a: Operand, b: Operand, b_pix: i32) {
        self.alu(AluOp::Sub, a, b, Shift::Pix(b_pix))
    }

    /// Saturating addition (1 cycle; the carry extension applies the
    /// clamp in the same cycle).
    #[inline]
    pub fn sat_add(&mut self, a: Operand, b: Operand) {
        self.alu(AluOp::SatAdd, a, b, Shift::None)
    }

    /// Saturating addition with `b` pre-shifted.
    #[inline]
    pub fn sat_add_sh(&mut self, a: Operand, b: Operand, b_pix: i32) {
        self.alu(AluOp::SatAdd, a, b, Shift::Pix(b_pix))
    }

    /// Saturating subtraction `sat(a - b)` (1 cycle).
    #[inline]
    pub fn sat_sub(&mut self, a: Operand, b: Operand) {
        self.alu(AluOp::SatSub, a, b, Shift::None)
    }

    /// Saturating subtraction with `b` pre-shifted.
    #[inline]
    pub fn sat_sub_sh(&mut self, a: Operand, b: Operand, b_pix: i32) {
        self.alu(AluOp::SatSub, a, b, Shift::Pix(b_pix))
    }

    /// Average `(a + b) >> 1` (1 cycle: add with the result shifter
    /// dropping the LSB; the carry extension supplies bit n).
    #[inline]
    pub fn avg(&mut self, a: Operand, b: Operand) {
        self.alu(AluOp::Avg, a, b, Shift::None)
    }

    /// Average with `b` pre-shifted by `b_pix` lanes.
    #[inline]
    pub fn avg_sh(&mut self, a: Operand, b: Operand, b_pix: i32) {
        self.alu(AluOp::Avg, a, b, Shift::Pix(b_pix))
    }

    /// Absolute difference `|a - b|` — the 3-step sequence of Fig. 7-a:
    /// `M = a - b` with carry extension `N`, `M += N`, `M ^= N`.
    #[inline]
    pub fn abs_diff(&mut self, a: Operand, b: Operand) {
        self.alu(AluOp::AbsDiff, a, b, Shift::None)
    }

    /// Absolute difference with `b` pre-shifted.
    #[inline]
    pub fn abs_diff_sh(&mut self, a: Operand, b: Operand, b_pix: i32) {
        self.alu(AluOp::AbsDiff, a, b, Shift::Pix(b_pix))
    }

    /// Branch-free maximum `max(a, b) = sat(a - b) + b` (2 cycles,
    /// Fig. 7-b).
    #[inline]
    pub fn max(&mut self, a: Operand, b: Operand) {
        self.alu(AluOp::Max, a, b, Shift::None)
    }

    /// Maximum with `b` pre-shifted.
    #[inline]
    pub fn max_sh(&mut self, a: Operand, b: Operand, b_pix: i32) {
        self.alu(AluOp::Max, a, b, Shift::Pix(b_pix))
    }

    /// Branch-free minimum `min(a, b) = a - sat(a - b)` (2 cycles).
    #[inline]
    pub fn min(&mut self, a: Operand, b: Operand) {
        self.alu(AluOp::Min, a, b, Shift::None)
    }

    /// Minimum with `b` pre-shifted.
    #[inline]
    pub fn min_sh(&mut self, a: Operand, b: Operand, b_pix: i32) {
        self.alu(AluOp::Min, a, b, Shift::Pix(b_pix))
    }

    /// Stand-alone lane shift by `pix` positions (1 cycle). Positive
    /// `pix` moves lane `i+pix` into lane `i` (the `<< 1pix` of Fig. 2);
    /// zeros shift in at the border.
    pub fn shift_pix(&mut self, a: Operand, pix: i32) {
        self.try_shift_pix(a, pix).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PimMachine::shift_pix`].
    ///
    /// # Errors
    ///
    /// Propagates operand errors (see [`PimMachine::try_alu`]).
    pub fn try_shift_pix(&mut self, a: Operand, pix: i32) -> Result<(), PimError> {
        let bits = self.op_bits(a, a);
        self.unop(OpClass::Shift, a, bits, move |vals| shift_lanes(vals, pix))
    }

    /// Arithmetic/logical right shift of every lane by `k` bits
    /// (1 cycle; used to rescale products between Q-formats).
    pub fn shr_bits(&mut self, a: Operand, k: u32) {
        self.try_shr_bits(a, k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PimMachine::shr_bits`].
    ///
    /// # Errors
    ///
    /// Propagates operand errors (see [`PimMachine::try_alu`]).
    pub fn try_shr_bits(&mut self, a: Operand, k: u32) -> Result<(), PimError> {
        let bits = self.op_bits(a, a);
        let sign = self.sign;
        self.unop(OpClass::Shift, a, bits, move |vals| {
            vals.iter()
                .map(|&v| match sign {
                    Signedness::Signed => v >> k,
                    Signedness::Unsigned => ((v as u64) >> k) as i64,
                })
                .collect()
        })
    }

    /// Left shift of every lane by `k` bits, wrapping (1 cycle).
    pub fn shl_bits(&mut self, a: Operand, k: u32) {
        self.try_shl_bits(a, k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PimMachine::shl_bits`].
    ///
    /// # Errors
    ///
    /// Propagates operand errors (see [`PimMachine::try_alu`]).
    pub fn try_shl_bits(&mut self, a: Operand, k: u32) -> Result<(), PimError> {
        let bits = self.op_bits(a, a);
        let sign = self.sign;
        self.unop(OpClass::Shift, a, bits, move |vals| {
            vals.iter().map(|&v| wrap(v << k, bits, sign)).collect()
        })
    }

    /// Per-lane comparison `a > b`, leaving an all-ones/zero mask in the
    /// Tmp Reg (1 cycle: subtraction + carry-extension mask).
    #[inline]
    pub fn cmp_gt(&mut self, a: Operand, b: Operand) {
        self.alu(AluOp::CmpGt, a, b, Shift::None)
    }

    /// Comparison with `b` pre-shifted.
    #[inline]
    pub fn cmp_gt_sh(&mut self, a: Operand, b: Operand, b_pix: i32) {
        self.alu(AluOp::CmpGt, a, b, Shift::Pix(b_pix))
    }

    /// Unsigned multiplication (Fig. 7-c): `n + 1` compute cycles for
    /// `n`-bit lanes (operand read + `n` shift-accumulate steps holding
    /// the partial product and multiplier concatenated in the Tmp Reg);
    /// the optional write-back adds the final cycle, giving the paper's
    /// `n + 2` total.
    ///
    /// The product is left in the Tmp Reg at double width
    /// ([`PimMachine::tmp_bits`] becomes `2n`).
    pub fn mul(&mut self, a: Operand, b: Operand) {
        self.try_mul(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PimMachine::mul`].
    ///
    /// # Errors
    ///
    /// Propagates operand errors (see [`PimMachine::try_alu`]).
    pub fn try_mul(&mut self, a: Operand, b: Operand) -> Result<(), PimError> {
        let n = self.width.bits();
        let mask = width_mask(n);
        let bits = n; // operands at lane width
        self.binop(OpClass::Mul, a, b, 0, bits, move |x, y, _| {
            let p = (x as u64 & mask).wrapping_mul(y as u64 & mask);
            p as i64 // 2n <= 64 bits
        })?;
        self.tmp_bits = (2 * n).min(64);
        // n-1 further shift-accumulate steps + final correction
        self.charge_muldiv_steps((n - 1) as u64 + 1, a.touches_sram() || b.touches_sram());
        Ok(())
    }

    /// Signed multiplication: sign extraction and conditional inversion
    /// around the unsigned core, as the paper prescribes ("the negative
    /// values can be easily inverted before and after the computation").
    /// Costs 5 extra cycles over [`PimMachine::mul`], independent of the
    /// data (the inversions are mask-applied on all lanes).
    pub fn mul_signed(&mut self, a: Operand, b: Operand) {
        self.try_mul_signed(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PimMachine::mul_signed`].
    ///
    /// # Errors
    ///
    /// Propagates operand errors (see [`PimMachine::try_alu`]).
    pub fn try_mul_signed(&mut self, a: Operand, b: Operand) -> Result<(), PimError> {
        let n = self.width.bits();
        self.binop(OpClass::Mul, a, b, 0, n, move |x, y, _| {
            (x as i128 * y as i128) as i64 // 2n <= 64 bits exact
        })?;
        self.tmp_bits = (2 * n).min(64);
        // unsigned core steps (re-reading the row operand) + 5 cycles
        // of Tmp-resident sign pre/post processing
        self.charge_muldiv_steps((n - 1) as u64 + 1, a.touches_sram() || b.touches_sram());
        self.charge_tmp_steps(5);
        Ok(())
    }

    /// Unsigned restoring division `a / b` (Fig. 7-d): `n + 1` compute
    /// cycles (read + `n` subtract-restore steps with the partial
    /// remainder in the Tmp Reg and quotient bits stacked in the LSBs);
    /// write-back adds the `n + 2`nd cycle. Quotient is left in the Tmp
    /// Reg; lanes dividing by zero produce the all-ones pattern.
    pub fn div(&mut self, a: Operand, b: Operand) {
        self.try_div(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PimMachine::div`].
    ///
    /// # Errors
    ///
    /// Propagates operand errors (see [`PimMachine::try_alu`]).
    #[allow(clippy::manual_checked_ops)] // divide-by-zero yields the divider's all-ones pattern, not None
    pub fn try_div(&mut self, a: Operand, b: Operand) -> Result<(), PimError> {
        let n = self.width.bits();
        let mask = width_mask(n);
        self.binop(OpClass::Div, a, b, 0, n, move |x, y, _| {
            let (x, y) = (x as u64 & mask, y as u64 & mask);
            if y == 0 {
                mask as i64
            } else {
                (x / y) as i64
            }
        })?;
        self.tmp_bits = n;
        self.charge_muldiv_steps((n - 1) as u64 + 1, a.touches_sram() || b.touches_sram());
        Ok(())
    }

    /// Unsigned division remainder `a % b` — same restoring sequence as
    /// [`PimMachine::div`], keeping the partial remainder instead.
    pub fn rem(&mut self, a: Operand, b: Operand) {
        self.try_rem(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PimMachine::rem`].
    ///
    /// # Errors
    ///
    /// Propagates operand errors (see [`PimMachine::try_alu`]).
    pub fn try_rem(&mut self, a: Operand, b: Operand) -> Result<(), PimError> {
        let n = self.width.bits();
        let mask = width_mask(n);
        self.binop(OpClass::Div, a, b, 0, n, move |x, y, _| {
            let (x, y) = (x as u64 & mask, y as u64 & mask);
            if y == 0 {
                x as i64
            } else {
                (x % y) as i64
            }
        })?;
        self.tmp_bits = n;
        self.charge_muldiv_steps((n - 1) as u64 + 1, a.touches_sram() || b.touches_sram());
        Ok(())
    }

    /// Signed division (truncating toward zero), with the same 5-cycle
    /// sign pre/post processing as [`PimMachine::mul_signed`]. Lanes
    /// dividing by zero yield the saturated maximum with the dividend's
    /// sign.
    pub fn div_signed(&mut self, a: Operand, b: Operand) {
        self.try_div_signed(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PimMachine::div_signed`].
    ///
    /// # Errors
    ///
    /// Propagates operand errors (see [`PimMachine::try_alu`]).
    pub fn try_div_signed(&mut self, a: Operand, b: Operand) -> Result<(), PimError> {
        let n = self.width.bits();
        self.binop(OpClass::Div, a, b, 0, n, move |x, y, _| {
            if y == 0 {
                if x >= 0 {
                    (1i64 << (n - 1)) - 1
                } else {
                    -(1i64 << (n - 1))
                }
            } else {
                wrap(x / y, n, Signedness::Signed)
            }
        })?;
        self.tmp_bits = n;
        self.charge_tmp_steps((n - 1) as u64 + 1 + 5);
        Ok(())
    }

    /// Fractional-quotient unsigned division: `(a << frac) / b`, i.e.
    /// the restoring divider of Fig. 7-d continued for `frac` extra
    /// steps to produce fractional quotient bits (the dividend extends
    /// into the double-width Tmp Reg exactly as the multiplier's
    /// partial products do). Costs `n + frac + 1` compute cycles.
    pub fn div_frac(&mut self, a: Operand, b: Operand, frac: u32) {
        self.try_div_frac(a, b, frac)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PimMachine::div_frac`].
    ///
    /// # Errors
    ///
    /// Propagates operand errors (see [`PimMachine::try_alu`]).
    #[allow(clippy::manual_checked_ops)] // divide-by-zero yields the divider's all-ones pattern, not None
    pub fn try_div_frac(&mut self, a: Operand, b: Operand, frac: u32) -> Result<(), PimError> {
        let n = self.width.bits();
        let mask = width_mask(n);
        self.binop(OpClass::Div, a, b, 0, n + frac, move |x, y, _| {
            let (x, y) = ((x as u64 & mask) as u128, (y as u64 & mask) as u128);
            if y == 0 {
                width_mask(n + frac) as i64
            } else {
                ((x << frac) / y) as i64
            }
        })?;
        self.tmp_bits = (n + frac).min(64);
        self.charge_muldiv_steps(
            (n + frac - 1) as u64 + 1,
            a.touches_sram() || b.touches_sram(),
        );
        Ok(())
    }

    /// Signed fractional-quotient division `(a << frac) / b`, truncating
    /// toward zero, with the 5-cycle sign pre/post-processing.
    /// Division by zero yields the saturated extreme of the dividend's
    /// sign.
    pub fn div_frac_signed(&mut self, a: Operand, b: Operand, frac: u32) {
        self.try_div_frac_signed(a, b, frac)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PimMachine::div_frac_signed`].
    ///
    /// # Errors
    ///
    /// Propagates operand errors (see [`PimMachine::try_alu`]).
    pub fn try_div_frac_signed(
        &mut self,
        a: Operand,
        b: Operand,
        frac: u32,
    ) -> Result<(), PimError> {
        let n = self.width.bits();
        let out_bits = (n + frac).min(64);
        self.binop(OpClass::Div, a, b, 0, out_bits, move |x, y, _| {
            if y == 0 {
                let max = (1i64 << (out_bits - 1)) - 1;
                if x >= 0 {
                    max
                } else {
                    -max - 1
                }
            } else {
                (((x as i128) << frac) / y as i128) as i64
            }
        })?;
        self.tmp_bits = out_bits;
        self.charge_muldiv_steps(
            (n + frac - 1) as u64 + 1,
            a.touches_sram() || b.touches_sram(),
        );
        self.charge_tmp_steps(5);
        Ok(())
    }

    /// Arithmetic negation of every lane (1 cycle: invert + carry-in).
    pub fn neg(&mut self, a: Operand) {
        self.try_neg(a).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PimMachine::neg`].
    ///
    /// # Errors
    ///
    /// Propagates operand errors (see [`PimMachine::try_alu`]).
    pub fn try_neg(&mut self, a: Operand) -> Result<(), PimError> {
        let bits = self.op_bits(a, a);
        let sign = self.sign;
        self.unop(OpClass::AddSub, a, bits, move |vals| {
            vals.iter().map(|&v| wrap(-v, bits, sign)).collect()
        })
    }

    /// Saturating narrowing of the Tmp/row contents to `bits` wide
    /// signed values (1 cycle: the carry-extension clamp at a narrower
    /// carry-control setting).
    pub fn sat_narrow(&mut self, a: Operand, bits: u32) {
        self.try_sat_narrow(a, bits)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PimMachine::sat_narrow`].
    ///
    /// # Errors
    ///
    /// Propagates operand errors (see [`PimMachine::try_alu`]).
    pub fn try_sat_narrow(&mut self, a: Operand, bits: u32) -> Result<(), PimError> {
        self.unop(OpClass::SatAddSub, a, bits, move |vals| {
            vals.iter().map(|&v| sat::clamp_signed(v, bits)).collect()
        })
    }

    /// Writes the Tmp Reg back to an SRAM row (1 cycle + write energy).
    /// Contents are wrapped to the lane width.
    ///
    /// # Panics
    ///
    /// Panics for a bad row or an empty Tmp Reg; see
    /// [`PimMachine::try_writeback`] for the fallible variant.
    pub fn writeback(&mut self, dst: usize) {
        self.try_writeback(dst).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PimMachine::writeback`].
    ///
    /// # Errors
    ///
    /// [`PimError::RowOutOfRange`] for a bad destination row or
    /// [`PimError::TmpEmpty`] when the Tmp Reg holds no value.
    pub fn try_writeback(&mut self, dst: usize) -> Result<(), PimError> {
        self.check_row(dst)?;
        let bits = self.width.bits();
        let bytes = self.width.bytes();
        if self.tmp.is_empty() {
            return Err(PimError::TmpEmpty);
        }
        let lanes = self.lanes();
        let mut data = vec![0u8; self.config.row_bytes()];
        for (i, &v) in self.tmp.iter().take(lanes).enumerate() {
            let raw = sat::wrap_unsigned(v, bits);
            data[i * bytes..(i + 1) * bytes].copy_from_slice(&raw.to_le_bytes()[..bytes]);
        }
        let phys = self.phys_row(dst);
        self.rows[phys] = data;
        let cycle_start = self.stats.cycles;
        self.stats.cycles += 1;
        self.stats.sram_writes += 1;
        self.stats.tmp_accesses += 1;
        self.stats.record_op(OpClass::WriteBack);
        self.record_trace(
            OpClass::WriteBack,
            format!("writeback r{dst}"),
            cycle_start,
            1,
            0,
            1,
        );
        self.record_op(
            OpKind::WriteBack,
            &[],
            &[dst as u32],
            cycle_start,
            1,
            lanes as u32,
        );
        // protected writes re-encode the check bits on the way in
        self.charge_protection(1);
        Ok(())
    }

    /// Reduces the Tmp Reg lanes to their sum by `ceil(log2(lanes))`
    /// shift-accumulate steps (each single-cycle, Tmp-resident). The sum
    /// (wrapped at the Tmp width) is returned and left in lane 0.
    ///
    /// # Panics
    ///
    /// Panics on an empty Tmp Reg; see [`PimMachine::try_reduce_sum`]
    /// for the fallible variant.
    pub fn reduce_sum(&mut self) -> i64 {
        self.try_reduce_sum().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PimMachine::reduce_sum`].
    ///
    /// # Errors
    ///
    /// [`PimError::TmpEmpty`] when the Tmp Reg holds no value.
    pub fn try_reduce_sum(&mut self) -> Result<i64, PimError> {
        if self.tmp.is_empty() {
            return Err(PimError::TmpEmpty);
        }
        let lanes = self.tmp.len();
        let steps = (usize::BITS - (lanes - 1).leading_zeros()) as u64;
        let bits = self.tmp_bits;
        let sign = self.sign;
        let mut stride = 1usize;
        while stride < lanes {
            for i in (0..lanes).step_by(stride * 2) {
                let other = if i + stride < lanes {
                    self.tmp[i + stride]
                } else {
                    0
                };
                self.tmp[i] = wrap(self.tmp[i] + other, bits, sign);
            }
            stride *= 2;
        }
        let cycle_start = self.stats.cycles;
        self.stats.cycles += steps;
        self.stats.acc_ops += steps;
        self.stats.tmp_accesses += 2 * steps;
        self.stats.record_op(OpClass::Reduce);
        self.record_trace(
            OpClass::Reduce,
            format!("reduce_sum x{lanes}"),
            cycle_start,
            steps,
            0,
            0,
        );
        self.record_op(OpKind::Reduce, &[], &[], cycle_start, 0, lanes as u32);
        Ok(self.tmp[0])
    }

    /// Gathers `addresses.len()` lane values at arbitrary
    /// (row, lane) addresses — the distance-transform / gradient-map
    /// lookups of the pose-estimation step. Random access cannot use the
    /// SIMD datapath, so each element costs one serialized read cycle
    /// and one SRAM activation.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range row; see [`PimMachine::try_gather`]
    /// for the fallible variant.
    pub fn gather(&mut self, addresses: &[(usize, usize)]) -> Vec<i64> {
        self.try_gather(addresses).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PimMachine::gather`].
    ///
    /// # Errors
    ///
    /// [`PimError::RowOutOfRange`] for a bad address row (checked
    /// before any cost is charged).
    pub fn try_gather(&mut self, addresses: &[(usize, usize)]) -> Result<Vec<i64>, PimError> {
        for &(row, _) in addresses {
            self.check_row(row)?;
        }
        let mut out = Vec::with_capacity(addresses.len());
        for &(row, lane) in addresses {
            let vals = self.read_row(row, false);
            let v = vals.get(lane).copied().unwrap_or(0);
            out.push(v);
        }
        let n = addresses.len() as u64;
        let cycle_start = self.stats.cycles;
        self.stats.cycles += n;
        self.stats.sram_reads += n;
        self.stats.tmp_accesses += n;
        self.stats.record_op(OpClass::Gather);
        self.record_trace(
            OpClass::Gather,
            format!("gather x{n}"),
            cycle_start,
            n,
            n,
            0,
        );
        if self.op_recorder.is_some() {
            // first two addressed rows as representative read rows (the
            // serial chain orders the rest within the machine stream)
            let mut reads = [0u32; 2];
            let mut m = 0;
            for &(row, _) in addresses.iter().take(2) {
                reads[m] = row as u32;
                m += 1;
            }
            self.record_op(
                OpKind::Gather,
                &reads[..m],
                &[],
                cycle_start,
                n as u32,
                n as u32,
            );
        }
        self.charge_protection(n);
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Program execution
    // ------------------------------------------------------------------

    /// Executes a lowered macro-op program (see [`crate::ir`] and
    /// [`crate::lower()`]), charging the normal [`CostModel`] through
    /// the same compute methods hand-written kernels call. Returns the
    /// [`MachineInstr::Reduce`] results in program order. When tracing
    /// is enabled, every emitted trace event is prefixed with the op's
    /// IR provenance label (`"program[ir_index]"`); with tracing off
    /// the labels cost nothing.
    ///
    /// # Errors
    ///
    /// Propagates the first [`PimError`] from the underlying compute
    /// method (bad rows, empty registers). Ops before the failure have
    /// already been charged, exactly as hand-written sequences behave.
    pub fn run_program(&mut self, prog: &LoweredProgram) -> Result<Vec<i64>, PimError> {
        let mut sums = Vec::with_capacity(prog.reduce_count());
        let tracing = self.trace.is_some();
        if let Some(rec) = &mut self.op_recorder {
            // kernel-level attribution: every record of this program
            // carries the program name
            rec.set_label(Some(prog.name()));
        }
        // compute may not outrun its inputs: wait for outstanding
        // strip-in DMA (prefetch traffic keeps overlapping)
        self.dma_sync_inbound();
        for op in prog.ops() {
            if tracing {
                self.trace_label = Some(op.label.clone());
            }
            let step = self.exec_instr(&op.instr, &mut sums);
            if let Err(e) = step {
                self.trace_label = None;
                if let Some(rec) = &mut self.op_recorder {
                    rec.set_label(None);
                }
                return Err(e);
            }
        }
        self.trace_label = None;
        if let Some(rec) = &mut self.op_recorder {
            rec.set_label(None);
        }
        Ok(sums)
    }

    /// Dispatches one lowered instruction to its compute method.
    fn exec_instr(&mut self, instr: &MachineInstr, sums: &mut Vec<i64>) -> Result<(), PimError> {
        match *instr {
            MachineInstr::SetLanes { width, sign } => self.set_lanes(width, sign),
            MachineInstr::Alu { op, a, b, shift } => self.try_alu(op, a, b, shift)?,
            MachineInstr::ShiftPix { a, pix } => self.try_shift_pix(a, pix)?,
            MachineInstr::ShrBits { a, k } => self.try_shr_bits(a, k)?,
            MachineInstr::ShlBits { a, k } => self.try_shl_bits(a, k)?,
            MachineInstr::Neg { a } => self.try_neg(a)?,
            MachineInstr::SatNarrow { a, bits } => self.try_sat_narrow(a, bits)?,
            MachineInstr::Mul { a, b, signed } => {
                if signed {
                    self.try_mul_signed(a, b)?;
                } else {
                    self.try_mul(a, b)?;
                }
            }
            MachineInstr::DivFrac { a, b, frac, signed } => {
                if signed {
                    self.try_div_frac_signed(a, b, frac)?;
                } else {
                    self.try_div_frac(a, b, frac)?;
                }
            }
            MachineInstr::Writeback { row } => self.try_writeback(row)?,
            MachineInstr::SaveTmp { idx } => self.try_save_tmp(idx)?,
            MachineInstr::Reduce => sums.push(self.try_reduce_sum()?),
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn check_row(&self, row: usize) -> Result<(), PimError> {
        if row >= self.config.rows {
            Err(PimError::RowOutOfRange {
                row,
                rows: self.config.rows,
            })
        } else {
            Ok(())
        }
    }

    fn decode_bytes(&self, data: &[u8]) -> Vec<i64> {
        let bits = self.width.bits();
        let bytes = self.width.bytes();
        let lanes = self.lanes();
        let mut out = Vec::with_capacity(lanes);
        for i in 0..lanes {
            let mut buf = [0u8; 8];
            buf[..bytes].copy_from_slice(&data[i * bytes..(i + 1) * bytes]);
            let raw = u64::from_le_bytes(buf);
            let v = match self.sign {
                Signedness::Unsigned => raw as i64,
                Signedness::Signed => sat::wrap_signed(raw as i64, bits),
            };
            out.push(v);
        }
        out
    }

    fn decode_row(&self, row: usize) -> Vec<i64> {
        self.decode_bytes(&self.rows[self.phys_row(row)])
    }

    /// Resolves a logical row to its physical storage row through the
    /// remap table. Identity (and branch-predictable) while the table
    /// is empty, so un-remapped machines pay nothing.
    #[inline]
    fn phys_row(&self, row: usize) -> usize {
        if self.remap.is_empty() {
            row
        } else {
            self.remap.get(&row).copied().unwrap_or(row)
        }
    }

    /// Reads a row through the sense amplifiers, applying the fault
    /// model and word protection when configured. The default (inert
    /// fault unit) takes the historical fast path untouched — bit- and
    /// cycle-identical to a build without the fault layer. Transient
    /// upsets corrupt the *sensed copy* only; cell contents stay intact.
    fn read_row(&mut self, row: usize, host: bool) -> Vec<i64> {
        debug_assert!(row < self.config.rows, "read_row caller must check_row");
        if self.fault.is_inert() {
            return self.decode_row(row);
        }
        // faults live with the *physical* cells: a logical row remapped
        // to a spare escapes the defective row's stuck bits
        let phys = self.phys_row(row);
        let mut data = self.rows[phys].clone();
        self.fault.apply_to_read(phys, &mut data, host);
        self.decode_bytes(&data)
    }

    /// Charges the word-protection overhead of `accesses` protected
    /// SRAM accesses on the compute path (check cycles/energy per
    /// access, plus any ECC corrections performed since the last
    /// charge), extending the current trace event so cycle spans stay
    /// contiguous. Free under [`Protection::None`].
    fn charge_protection(&mut self, accesses: u64) {
        match self.fault.protection() {
            Protection::None => {}
            Protection::Parity => {
                self.stats.parity_checks += accesses;
                let c = self.cost.parity_check_cycles * accesses;
                self.stats.cycles += c;
                self.extend_trace(c, 0);
            }
            Protection::Ecc => {
                self.stats.ecc_checks += accesses;
                let c = self.cost.ecc_check_cycles * accesses;
                self.stats.cycles += c;
                self.extend_trace(c, 0);
            }
        }
        let corrections = self.fault.take_pending_corrections();
        if corrections > 0 {
            self.stats.ecc_corrections += corrections;
            let c = self.cost.ecc_correct_cycles * corrections;
            self.stats.cycles += c;
            self.extend_trace(c, 0);
        }
    }

    fn operand_values(&mut self, op: Operand) -> Result<Vec<i64>, PimError> {
        match op {
            Operand::Row(r) => {
                self.check_row(r)?;
                Ok(self.read_row(r, false))
            }
            Operand::Tmp => {
                if self.tmp.is_empty() {
                    return Err(PimError::TmpEmpty);
                }
                Ok(self.tmp.clone())
            }
            Operand::Reg(i) => {
                if i == 0 {
                    return Err(PimError::RegisterZero);
                }
                let slot = (i - 1) as usize;
                if slot >= self.extra_regs.len() {
                    return Err(PimError::RegisterNotEnabled {
                        idx: i,
                        enabled: self.tmp_reg_count(),
                    });
                }
                if self.extra_regs[slot].0.is_empty() {
                    return Err(PimError::RegisterEmpty { idx: i });
                }
                Ok(self.extra_regs[slot].0.clone())
            }
        }
    }

    /// Logical bit width of a register operand's contents.
    fn reg_bits(&self, op: Operand) -> u32 {
        match op {
            Operand::Tmp => self.tmp_bits,
            Operand::Reg(i) => self
                .extra_regs
                .get((i - 1) as usize)
                .map(|(_, b)| *b)
                .unwrap_or(self.width.bits()),
            Operand::Row(_) => self.width.bits(),
        }
    }

    /// Width of an operation's operands: lane width, except that Tmp may
    /// carry double-width contents after a multiplication.
    fn op_bits(&self, a: Operand, b: Operand) -> u32 {
        let mut bits = self.width.bits();
        if a.is_reg() {
            bits = bits.max(self.reg_bits(a));
        }
        if b.is_reg() {
            bits = bits.max(self.reg_bits(b));
        }
        bits
    }

    /// Executes one single-cycle binary micro step and leaves the result
    /// in the Tmp Reg.
    fn binop(
        &mut self,
        class: OpClass,
        a: Operand,
        b: Operand,
        b_pix: i32,
        out_bits: u32,
        f: impl Fn(i64, i64, usize) -> i64,
    ) -> Result<(), PimError> {
        let av = self.operand_values(a)?;
        let bv_raw = self.operand_values(b)?;
        let bv = if b_pix != 0 {
            shift_lanes(&bv_raw, b_pix)
        } else {
            bv_raw
        };
        let lanes = av.len().min(bv.len());
        let mut out = Vec::with_capacity(lanes);
        for i in 0..lanes {
            out.push(f(av[i], bv[i], i));
        }
        self.tmp = out;
        self.tmp_bits = out_bits;
        // cycle/energy accounting
        let cycle_start = self.stats.cycles;
        self.stats.cycles += 1;
        self.stats.acc_ops += 1;
        let sram = u64::from(a.touches_sram() || b.touches_sram());
        // dual word-line activation is a single array access
        self.stats.sram_reads += sram;
        let tmp_reads = a.is_reg() as u64 + b.is_reg() as u64;
        self.stats.tmp_accesses += tmp_reads + 1; // + result write
        self.stats.record_op(class);
        self.record_trace(
            class,
            format!("{} {}, {}", op_name(class), fmt_op(a), fmt_op(b)),
            cycle_start,
            1,
            sram,
            0,
        );
        if self.op_recorder.is_some() {
            let mut reads = [0u32; 2];
            let mut m = 0;
            for op in [a, b] {
                if let Operand::Row(r) = op {
                    reads[m] = r as u32;
                    m += 1;
                }
            }
            self.record_op(
                kind_of(class),
                &reads[..m],
                &[],
                cycle_start,
                sram as u32,
                lanes as u32,
            );
        }
        self.charge_protection(sram);
        Ok(())
    }

    /// Executes one single-cycle unary micro step.
    fn unop(
        &mut self,
        class: OpClass,
        a: Operand,
        out_bits: u32,
        f: impl Fn(&[i64]) -> Vec<i64>,
    ) -> Result<(), PimError> {
        let av = self.operand_values(a)?;
        self.tmp = f(&av);
        self.tmp_bits = out_bits;
        let cycle_start = self.stats.cycles;
        self.stats.cycles += 1;
        self.stats.acc_ops += 1;
        let sram = u64::from(a.touches_sram());
        self.stats.sram_reads += sram;
        self.stats.tmp_accesses += a.is_reg() as u64 + 1;
        self.stats.record_op(class);
        self.record_trace(
            class,
            format!("{} {}", op_name(class), fmt_op(a)),
            cycle_start,
            1,
            sram,
            0,
        );
        if self.op_recorder.is_some() {
            let mut reads = [0u32; 1];
            let mut m = 0;
            if let Operand::Row(r) = a {
                reads[m] = r as u32;
                m += 1;
            }
            let lanes = self.tmp.len() as u32;
            self.record_op(
                kind_of(class),
                &reads[..m],
                &[],
                cycle_start,
                sram as u32,
                lanes,
            );
        }
        self.charge_protection(sram);
        Ok(())
    }

    /// Charges extra Tmp-resident cycles of a multi-step macro op (the
    /// values were already computed by the first step's closure).
    fn charge_tmp_steps(&mut self, steps: u64) {
        self.stats.cycles += steps;
        self.stats.acc_ops += steps;
        self.stats.tmp_accesses += 2 * steps;
        self.extend_trace(steps, 0);
    }

    /// Charges the shift-accumulate / subtract-restore steps of a
    /// multiplication or division. The partial result lives in the Tmp
    /// Reg, but the *row* operand (multiplicand / divisor) is re-read
    /// through the sense amplifiers on every step — the accumulator's
    /// input multiplexer only selects between the SA outputs and the
    /// Tmp Reg (Fig. 6-c), there is no operand latch.
    fn charge_muldiv_steps(&mut self, steps: u64, rereads_sram: bool) {
        self.stats.cycles += steps;
        self.stats.acc_ops += steps;
        self.stats.tmp_accesses += 2 * steps;
        let sram = if rereads_sram { steps } else { 0 };
        self.stats.sram_reads += sram;
        self.extend_trace(steps, sram);
        // every re-read of the row operand passes the word checker too
        // (faults on re-reads themselves are not modeled: the product
        // was computed from the first sensed copy)
        self.charge_protection(sram);
    }

    /// Appends a trace event when tracing is enabled.
    fn record_trace(
        &mut self,
        class: OpClass,
        mnemonic: String,
        cycle_start: u64,
        cycles: u64,
        sram_reads: u64,
        sram_writes: u64,
    ) {
        if let Some(trace) = &mut self.trace {
            let mnemonic = match &self.trace_label {
                Some(label) => format!("{label} {mnemonic}"),
                None => mnemonic,
            };
            let seq = trace.next_seq();
            trace.push(TraceEvent {
                seq,
                class,
                mnemonic,
                cycle_start,
                cycles,
                sram_reads,
                sram_writes,
            });
        }
    }

    /// Extends the last traced event (multi-step macro ops). Also folds
    /// the extra cycles into the armed op recorder's last record, so
    /// per-record cycles keep summing to the exact `ExecStats` delta.
    fn extend_trace(&mut self, cycles: u64, sram_reads: u64) {
        if let Some(rec) = &mut self.op_recorder {
            rec.extend_last(cycles, sram_reads as u32);
        }
        if let Some(trace) = &mut self.trace {
            if let Some(last) = trace.last_mut() {
                last.cycles += cycles;
                last.sram_reads += sram_reads;
            }
        }
    }
}

/// Op-trace kind of a machine op class (the codec's first fourteen
/// kinds mirror [`OpClass`] one-to-one).
fn kind_of(class: OpClass) -> OpKind {
    match class {
        OpClass::Logic => OpKind::Logic,
        OpClass::AddSub => OpKind::AddSub,
        OpClass::SatAddSub => OpKind::SatAddSub,
        OpClass::Avg => OpKind::Avg,
        OpClass::AbsDiff => OpKind::AbsDiff,
        OpClass::MinMax => OpKind::MinMax,
        OpClass::Shift => OpKind::Shift,
        OpClass::Cmp => OpKind::Cmp,
        OpClass::Select => OpKind::Select,
        OpClass::Mul => OpKind::Mul,
        OpClass::Div => OpKind::Div,
        OpClass::WriteBack => OpKind::WriteBack,
        OpClass::Reduce => OpKind::Reduce,
        OpClass::Gather => OpKind::Gather,
    }
}

/// Mnemonic stem of an op class.
fn op_name(class: OpClass) -> &'static str {
    match class {
        OpClass::Logic => "logic",
        OpClass::AddSub => "addsub",
        OpClass::SatAddSub => "sat",
        OpClass::Avg => "avg",
        OpClass::AbsDiff => "absdiff",
        OpClass::MinMax => "minmax",
        OpClass::Shift => "shift",
        OpClass::Cmp => "cmp",
        OpClass::Select => "select",
        OpClass::Mul => "mul",
        OpClass::Div => "div",
        OpClass::WriteBack => "writeback",
        OpClass::Reduce => "reduce",
        OpClass::Gather => "gather",
    }
}

/// Operand formatter for trace mnemonics.
fn fmt_op(op: Operand) -> String {
    match op {
        Operand::Row(r) => format!("r{r}"),
        Operand::Tmp => "tmp".into(),
        Operand::Reg(i) => format!("reg{i}"),
    }
}

/// Shift lane values: positive `pix` moves lane `i + pix` into lane `i`.
fn shift_lanes(vals: &[i64], pix: i32) -> Vec<i64> {
    let n = vals.len() as i64;
    (0..n)
        .map(|i| {
            let src = i + pix as i64;
            if src >= 0 && src < n {
                vals[src as usize]
            } else {
                0
            }
        })
        .collect()
}

#[inline]
fn width_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[inline]
fn wrap(v: i64, bits: u32, sign: Signedness) -> i64 {
    match sign {
        Signedness::Signed => sat::wrap_signed(v, bits),
        Signedness::Unsigned => sat::wrap_unsigned(v, bits) as i64,
    }
}

#[inline]
fn clamp(v: i64, bits: u32, sign: Signedness) -> i64 {
    match sign {
        Signedness::Signed => sat::clamp_signed(v, bits),
        Signedness::Unsigned => sat::clamp_unsigned(v, bits) as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArrayConfig;

    fn machine() -> PimMachine {
        PimMachine::new(ArrayConfig::qvga())
    }

    #[test]
    fn spare_rows_default_zero_and_remap_exhausts() {
        let mut m = machine();
        assert_eq!(m.spare_rows(), 0);
        assert_eq!(
            m.remap_row(3),
            Err(PimError::SpareRowsExhausted { spares: 0 })
        );

        let mut m = PimMachineBuilder::new(ArrayConfig::qvga())
            .spare_rows(2)
            .build();
        assert_eq!(m.spares_available(), 2);
        m.host_write_lanes(7, &[1, 2, 3]).unwrap();
        let spare = m.remap_row(7).unwrap();
        assert_eq!(spare, 256);
        // contents migrate with the remap
        assert_eq!(&m.host_read_lanes(7)[..3], &[1, 2, 3]);
        assert_eq!(m.remapped_rows(), 1);
        m.remap_row(9).unwrap();
        assert_eq!(
            m.remap_row(11),
            Err(PimError::SpareRowsExhausted { spares: 2 })
        );
        assert_eq!(
            m.remap_row(999).unwrap_err(),
            PimError::RowOutOfRange {
                row: 999,
                rows: 256
            }
        );
    }

    #[test]
    fn scrub_row_clean_without_defects_and_charges_cost() {
        let mut m = machine();
        let c0 = m.stats().cycles;
        assert!(m.scrub_row(5, 0x55).unwrap());
        assert!(m.scrub_row(5, 0xAA).unwrap());
        assert_eq!(m.stats().scrub_rows, 2);
        assert_eq!(m.stats().cycles - c0, 2 * m.cost_model().scrub_row_cycles);
        let e = m.stats().energy(m.cost_model());
        assert!(e.sram_pj >= 2.0 * m.cost_model().scrub_row_pj);
    }

    #[cfg(feature = "fault")]
    #[test]
    fn remap_escapes_stuck_bit_and_scrub_detects_it() {
        let mut m = PimMachineBuilder::new(ArrayConfig::qvga())
            .spare_rows(4)
            .build();
        m.inject_stuck_bit(3, 0, true); // LSB of lane 0 stuck at 1
                                        // scrub sees the defect under the all-zeros pattern only when
                                        // the stored value differs from the stuck value
        assert!(!m.scrub_row(3, 0x00).unwrap());
        assert!(m.scrub_row(3, 0xFF).unwrap());
        m.host_write_lanes(3, &[0, 0]).unwrap();
        assert_eq!(m.host_read_lanes(3)[0], 1, "stuck bit visible pre-remap");
        m.remap_row(3).unwrap();
        m.host_write_lanes(3, &[0, 0]).unwrap();
        assert_eq!(m.host_read_lanes(3)[0], 0, "spare row escapes the defect");
        assert!(m.scrub_row(3, 0x00).unwrap(), "remapped row scrubs clean");
    }

    #[test]
    fn add_and_cycle_count() {
        let mut m = machine();
        m.host_write_lanes(0, &[1, 2, 250]).unwrap();
        m.host_write_lanes(1, &[10, 20, 30]).unwrap();
        m.add(Operand::Row(0), Operand::Row(1));
        assert_eq!(&m.tmp_lanes()[..3], &[11, 22, 24]); // 280 wraps to 24
        assert_eq!(m.stats().cycles, 1);
        assert_eq!(m.stats().sram_reads, 1);
    }

    #[test]
    fn sat_add_clamps_unsigned() {
        let mut m = machine();
        m.host_write_lanes(0, &[250, 5]).unwrap();
        m.host_write_lanes(1, &[10, 10]).unwrap();
        m.sat_add(Operand::Row(0), Operand::Row(1));
        assert_eq!(&m.tmp_lanes()[..2], &[255, 15]);
    }

    #[test]
    fn signed_lanes() {
        let mut m = machine();
        m.set_lanes(LaneWidth::W16, Signedness::Signed);
        m.host_write_lanes(0, &[-100, 30000]).unwrap();
        m.host_write_lanes(1, &[50, 10000]).unwrap();
        m.sat_add(Operand::Row(0), Operand::Row(1));
        assert_eq!(&m.tmp_lanes()[..2], &[-50, 32767]);
        m.sub(Operand::Row(0), Operand::Row(1));
        assert_eq!(&m.tmp_lanes()[..2], &[-150, 20000]);
    }

    #[test]
    fn avg_matches_paper_lpf_step() {
        let mut m = machine();
        m.host_write_lanes(0, &[10, 20, 30, 40]).unwrap();
        m.host_write_lanes(1, &[20, 40, 10, 0]).unwrap();
        m.avg(Operand::Row(0), Operand::Row(1));
        assert_eq!(&m.tmp_lanes()[..4], &[15, 30, 20, 20]);
        // fused shifted average: (C[i] + C[i+1]) / 2
        m.writeback(2);
        m.avg_sh(Operand::Row(2), Operand::Row(2), 1);
        assert_eq!(&m.tmp_lanes()[..3], &[22, 25, 20]);
    }

    #[test]
    fn abs_diff_and_multi_cycle_cost() {
        let mut m = machine();
        m.host_write_lanes(0, &[10, 200]).unwrap();
        m.host_write_lanes(1, &[30, 50]).unwrap();
        let before = m.stats().cycles;
        m.abs_diff(Operand::Row(0), Operand::Row(1));
        assert_eq!(&m.tmp_lanes()[..2], &[20, 150]);
        assert_eq!(m.stats().cycles - before, 3);
    }

    #[test]
    fn min_max_two_cycles() {
        let mut m = machine();
        m.host_write_lanes(0, &[10, 200]).unwrap();
        m.host_write_lanes(1, &[30, 50]).unwrap();
        let c0 = m.stats().cycles;
        m.max(Operand::Row(0), Operand::Row(1));
        assert_eq!(&m.tmp_lanes()[..2], &[30, 200]);
        assert_eq!(m.stats().cycles - c0, 2);
        m.min(Operand::Row(0), Operand::Row(1));
        assert_eq!(&m.tmp_lanes()[..2], &[10, 50]);
    }

    #[test]
    fn mul_cost_is_n_plus_one_before_writeback() {
        let mut m = machine();
        m.host_write_lanes(0, &[13, 7]).unwrap();
        m.host_write_lanes(1, &[11, 9]).unwrap();
        let c0 = m.stats().cycles;
        m.mul(Operand::Row(0), Operand::Row(1));
        assert_eq!(&m.tmp_lanes()[..2], &[143, 63]);
        assert_eq!(m.stats().cycles - c0, 9); // 8-bit: n+1 = 9
        assert_eq!(m.tmp_bits(), 16);
        m.writeback(5);
        assert_eq!(m.stats().cycles - c0, 10); // n+2 with write-back
    }

    #[test]
    fn mul_signed_values() {
        let mut m = machine();
        m.set_lanes(LaneWidth::W16, Signedness::Signed);
        m.host_write_lanes(0, &[-300, 250]).unwrap();
        m.host_write_lanes(1, &[40, -40]).unwrap();
        m.mul_signed(Operand::Row(0), Operand::Row(1));
        assert_eq!(&m.tmp_lanes()[..2], &[-12000, -10000]);
        assert_eq!(m.tmp_bits(), 32);
    }

    #[test]
    fn div_matches_fig7d() {
        let mut m = machine();
        m.host_write_lanes(0, &[15, 143]).unwrap();
        m.host_write_lanes(1, &[6, 11]).unwrap();
        m.div(Operand::Row(0), Operand::Row(1));
        assert_eq!(&m.tmp_lanes()[..2], &[2, 13]);
        m.rem(Operand::Row(0), Operand::Row(1));
        assert_eq!(&m.tmp_lanes()[..2], &[3, 0]);
    }

    #[test]
    fn div_by_zero_saturates() {
        let mut m = machine();
        m.host_write_lanes(0, &[15]).unwrap();
        m.host_write_lanes(1, &[0]).unwrap();
        m.div(Operand::Row(0), Operand::Row(1));
        assert_eq!(m.tmp_lanes()[0], 255);
    }

    #[test]
    fn shift_pix_semantics() {
        let mut m = machine();
        m.host_write_lanes(0, &[1, 2, 3, 4]).unwrap();
        m.shift_pix(Operand::Row(0), 1);
        assert_eq!(&m.tmp_lanes()[..4], &[2, 3, 4, 5 - 5]);
        m.shift_pix(Operand::Row(0), -1);
        assert_eq!(&m.tmp_lanes()[..4], &[0, 1, 2, 3]);
    }

    #[test]
    fn cmp_produces_mask() {
        let mut m = machine();
        m.host_write_lanes(0, &[10, 50]).unwrap();
        m.host_write_lanes(1, &[30, 20]).unwrap();
        m.cmp_gt(Operand::Row(0), Operand::Row(1));
        assert_eq!(&m.tmp_lanes()[..2], &[0, 255]);
    }

    #[test]
    fn tmp_chaining_avoids_sram_reads() {
        let mut m = machine();
        m.host_write_lanes(0, &[1, 2]).unwrap();
        m.load(Operand::Row(0));
        let r0 = m.stats().sram_reads;
        m.add(Operand::Tmp, Operand::Tmp);
        assert_eq!(m.stats().sram_reads, r0); // register-resident
        assert_eq!(&m.tmp_lanes()[..2], &[2, 4]);
    }

    #[test]
    fn writeback_persists_and_costs() {
        let mut m = machine();
        m.host_write_lanes(0, &[7, 8]).unwrap();
        m.load(Operand::Row(0));
        m.writeback(3);
        assert_eq!(m.stats().sram_writes, 1);
        assert_eq!(&m.host_read_lanes(3)[..2], &[7, 8]);
    }

    #[test]
    fn reduce_sums_lanes() {
        let mut m = machine();
        m.set_lanes(LaneWidth::W32, Signedness::Signed);
        let vals: Vec<i64> = (1..=80).collect();
        m.host_write_lanes(0, &vals).unwrap();
        m.load(Operand::Row(0));
        let s = m.reduce_sum();
        assert_eq!(s, 80 * 81 / 2);
        // ceil(log2(80)) = 7 steps
        let red_cycles = 7;
        assert!(m.stats().cycles >= red_cycles);
    }

    #[test]
    fn gather_costs_one_cycle_per_element() {
        let mut m = machine();
        m.host_write_lanes(4, &[9, 8, 7]).unwrap();
        let c0 = m.stats().cycles;
        let vals = m.gather(&[(4, 0), (4, 2)]);
        assert_eq!(vals, vec![9, 7]);
        assert_eq!(m.stats().cycles - c0, 2);
        assert_eq!(m.stats().sram_reads, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_row_panics() {
        let mut m = machine();
        m.load(Operand::Row(9999));
    }

    #[test]
    fn host_write_bytes_validates() {
        let mut m = machine();
        assert!(m.host_write_bytes(300, &[0]).is_err());
        assert!(m.host_write_bytes(0, &vec![0u8; 400]).is_err());
        assert!(m.host_write_bytes(0, &[1, 2, 3]).is_ok());
    }
}

#[cfg(test)]
mod multireg_tests {
    use super::*;
    use crate::config::ArrayConfig;

    #[test]
    fn second_register_holds_values() {
        let mut m = PimMachine::new(ArrayConfig::qvga());
        m.set_tmp_regs(2);
        assert_eq!(m.tmp_reg_count(), 2);
        m.host_write_lanes(0, &[5, 9]).unwrap();
        m.host_write_lanes(1, &[2, 3]).unwrap();
        m.add(Operand::Row(0), Operand::Row(1)); // tmp = [7, 12]
        m.save_tmp(1);
        m.sub(Operand::Row(0), Operand::Row(1)); // tmp = [3, 6]
        m.add(Operand::Tmp, Operand::Reg(1)); // [10, 18]
        assert_eq!(&m.tmp_lanes()[..2], &[10, 18]);
    }

    #[test]
    fn save_tmp_costs_one_register_cycle_no_sram() {
        let mut m = PimMachine::new(ArrayConfig::qvga());
        m.set_tmp_regs(3);
        m.host_write_lanes(0, &[1]).unwrap();
        m.load(Operand::Row(0));
        let (c0, r0, w0) = (
            m.stats().cycles,
            m.stats().sram_reads,
            m.stats().sram_writes,
        );
        m.save_tmp(2);
        assert_eq!(m.stats().cycles - c0, 1);
        assert_eq!(m.stats().sram_reads, r0);
        assert_eq!(m.stats().sram_writes, w0);
    }

    #[test]
    fn register_elides_writeback_roundtrip() {
        // the point of the §5.4 extension: reg save+use is cheaper than
        // writeback + re-read
        let mut with_reg = PimMachine::new(ArrayConfig::qvga());
        with_reg.set_tmp_regs(2);
        with_reg.host_write_lanes(0, &[10, 20]).unwrap();
        with_reg.host_write_lanes(1, &[1, 2]).unwrap();
        with_reg.add(Operand::Row(0), Operand::Row(1));
        with_reg.save_tmp(1);
        with_reg.sub(Operand::Row(0), Operand::Row(1));
        with_reg.add(Operand::Tmp, Operand::Reg(1));
        let a = with_reg.tmp_lanes()[..2].to_vec();

        let mut with_wb = PimMachine::new(ArrayConfig::qvga());
        with_wb.host_write_lanes(0, &[10, 20]).unwrap();
        with_wb.host_write_lanes(1, &[1, 2]).unwrap();
        with_wb.add(Operand::Row(0), Operand::Row(1));
        with_wb.writeback(5);
        with_wb.sub(Operand::Row(0), Operand::Row(1));
        with_wb.add(Operand::Tmp, Operand::Row(5));
        assert_eq!(a, with_wb.tmp_lanes()[..2]);

        let er = with_reg.stats().energy(&crate::CostModel::default());
        let ew = with_wb.stats().energy(&crate::CostModel::default());
        assert!(
            er.total_pj() < ew.total_pj(),
            "{} vs {}",
            er.total_pj(),
            ew.total_pj()
        );
        assert!(with_reg.stats().sram_writes < with_wb.stats().sram_writes);
    }

    #[test]
    #[should_panic(expected = "not enabled")]
    fn unenabled_register_panics() {
        let mut m = PimMachine::new(ArrayConfig::qvga());
        m.host_write_lanes(0, &[1]).unwrap();
        m.load(Operand::Row(0));
        m.save_tmp(1);
    }

    #[test]
    #[should_panic(expected = "before being written")]
    fn reading_empty_register_panics() {
        let mut m = PimMachine::new(ArrayConfig::qvga());
        m.set_tmp_regs(2);
        m.host_write_lanes(0, &[1]).unwrap();
        m.add(Operand::Row(0), Operand::Reg(1));
    }
}
