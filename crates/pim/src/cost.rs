/// Per-event energy and area constants of the PIM design.
///
/// The defaults reproduce the paper's 90 nm characterization (§5.1):
/// the SRAM model is taken from the Neural Cache SPICE study scaled to
/// 90 nm (array 3.48e6 µm², sense amplifiers 5.60e4 µm², 944.8 pJ per
/// row access) and the shifter/accumulator/register datapath from a
/// Synopsys DC synthesis at 1.0 V / 216 MHz (1.80e5 µm², 44.6 pJ per
/// operation).
///
/// The 44.6 pJ datapath figure is split between the shifter/adder and
/// the Tmp Reg so that the component-level decomposition of Fig. 10-a
/// can be reported; the split (roughly 6:1) follows the relative cell
/// area of the accumulator slices versus the register file in the RTL.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Energy of one SRAM row activation during compute (dual word-line
    /// read through the sense amplifiers), in pJ.
    pub sram_read_pj: f64,
    /// Energy of one SRAM row write-back, in pJ.
    pub sram_write_pj: f64,
    /// Energy of one shifter/adder (accumulator) operation, in pJ.
    pub shifter_adder_pj: f64,
    /// Energy of one Tmp Reg access (read or write), in pJ.
    pub tmp_reg_pj: f64,
    /// SRAM cell-array area, µm².
    pub area_array_um2: f64,
    /// Sense-amplifier area, µm².
    pub area_sa_um2: f64,
    /// Computing-logic (shifter + accumulator + register) area, µm².
    pub area_logic_um2: f64,
    /// Nominal clock frequency, Hz (216 MHz, matching the STM32F7
    /// baseline so cycle counts compare directly).
    pub clock_hz: f64,
    /// Cycles charged per inter-array synchronisation barrier when a
    /// kernel phase is sharded across a [`crate::PimArrayPool`]: the
    /// wall-clock cost of draining the per-array command queues and
    /// merging results before the next phase may start. Charged once per
    /// parallel phase, only when the pool has more than one array.
    pub pool_sync_cycles: u64,
    /// Energy of one per-word parity check across a row read/write
    /// under [`crate::Protection::Parity`], in pJ. Estimated at ~1 % of
    /// a row activation (XOR trees beside the sense amplifiers).
    pub parity_check_pj: f64,
    /// Cycles charged per parity-checked compute access. Zero: the
    /// parity tree fits in the sense-amplifier timing slack.
    pub parity_check_cycles: u64,
    /// Energy of one per-word ECC syndrome computation across a row
    /// access under [`crate::Protection::Ecc`], in pJ. Estimated at
    /// ~2.5 % of a row activation (SECDED Hsiao code over 32-bit
    /// words; check-bit storage overhead is not modeled).
    pub ecc_check_pj: f64,
    /// Cycles charged per ECC-checked compute access (syndrome
    /// generation pipelines one extra cycle onto every protected
    /// activation).
    pub ecc_check_cycles: u64,
    /// Energy of one ECC single-bit correction (syndrome decode +
    /// flip), in pJ.
    pub ecc_correct_pj: f64,
    /// Cycles per ECC single-bit correction on the compute path.
    pub ecc_correct_cycles: u64,
    /// Energy of one scrub test-pattern row pass (pattern write, raw
    /// readback, compare) on the maintenance port, in pJ. Two row
    /// activations plus one datapath-wide compare.
    pub scrub_row_pj: f64,
    /// Cycles per scrub test-pattern row pass.
    pub scrub_row_cycles: u64,
    /// Cycles to set up one DMA descriptor on the host↔array burst
    /// port: descriptor fetch, CRC seed, channel arbitration.
    pub dma_setup_cycles: u64,
    /// Cycles per 32-byte burst beat on the DMA port (also the
    /// synchronous host-port transfer rate — same wires, no channel
    /// engine in front).
    pub dma_beat_cycles: u64,
    /// Bytes moved per DMA burst beat.
    pub dma_beat_bytes: u64,
    /// Cycles to retire one DMA descriptor: CRC check over
    /// payload + header and the completion interrupt.
    pub dma_completion_cycles: u64,
}

impl CostModel {
    /// The paper's 90 nm numbers.
    pub fn dac22_90nm() -> Self {
        CostModel {
            sram_read_pj: 944.8,
            sram_write_pj: 944.8,
            shifter_adder_pj: 38.2,
            tmp_reg_pj: 6.4,
            area_array_um2: 3.48e6,
            area_sa_um2: 5.60e4,
            area_logic_um2: 1.80e5,
            clock_hz: 216.0e6,
            // one row-transfer round trip through the host port at the
            // 216 MHz domain: conservative for an on-die H-tree, cheap
            // enough that sharding QVGA strips stays profitable
            pool_sync_cycles: 32,
            // protection overheads are estimates relative to the row
            // activation energy (the paper does not characterize ECC);
            // see DESIGN.md §9 for the derivation
            parity_check_pj: 9.4,
            parity_check_cycles: 0,
            ecc_check_pj: 23.6,
            ecc_check_cycles: 1,
            ecc_correct_pj: 47.2,
            ecc_correct_cycles: 2,
            // write + readback row activations plus the compare in the
            // shifter/adder: the march-test step of the scrub pass
            scrub_row_pj: 944.8 * 2.0 + 38.2,
            scrub_row_cycles: 3,
            // host↔array burst port in the same 216 MHz domain: one
            // 32-byte beat per cycle (a 256-bit on-die bus), 8 cycles
            // of descriptor setup and 4 to CRC-check and retire — a
            // QVGA row (320 B) costs 8 + 10 + 4 = 22 cycles; see
            // DESIGN.md §15 for the derivation
            dma_setup_cycles: 8,
            dma_beat_cycles: 1,
            dma_beat_bytes: 32,
            dma_completion_cycles: 4,
        }
    }

    /// Modeled cycles to move `bytes` over the host↔array port as one
    /// descriptor: setup + per-beat burst + CRC-checked completion.
    /// The synchronous (PIO) path and the DMA channels charge the same
    /// formula — overlap, not a faster bus, is where DMA wins.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        let beats = bytes.div_ceil(self.dma_beat_bytes.max(1));
        self.dma_setup_cycles + beats * self.dma_beat_cycles + self.dma_completion_cycles
    }

    /// Area report used by experiment E11.
    pub fn area_report(&self) -> AreaReport {
        AreaReport {
            array_um2: self.area_array_um2,
            sa_um2: self.area_sa_um2,
            logic_um2: self.area_logic_um2,
            logic_over_array: self.area_logic_um2 / self.area_array_um2,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::dac22_90nm()
    }
}

/// Silicon area summary (experiment E11 / §5.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// SRAM cell-array area, µm².
    pub array_um2: f64,
    /// Sense-amplifier area, µm².
    pub sa_um2: f64,
    /// Computing-logic area, µm².
    pub logic_um2: f64,
    /// Logic area as a fraction of the array (paper: 5.1 %).
    pub logic_over_array: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CostModel::default();
        assert_eq!(c.sram_read_pj, 944.8);
        assert!((c.shifter_adder_pj + c.tmp_reg_pj - 44.6).abs() < 1e-9);
        let area = c.area_report();
        assert!((area.logic_over_array - 0.051).abs() < 0.002);
    }

    #[test]
    fn transfer_cycles_round_up_to_beats() {
        let c = CostModel::default();
        // QVGA row: 320 B = 10 beats of 32 B
        assert_eq!(c.transfer_cycles(320), 8 + 10 + 4);
        // a single lane still pays a full beat
        assert_eq!(c.transfer_cycles(1), 8 + 1 + 4);
        assert_eq!(c.transfer_cycles(0), 8 + 4);
    }
}
