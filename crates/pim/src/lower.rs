//! Optimizing lowering from the macro-op IR to machine-op sequences.
//!
//! [`lower()`] turns one [`PimProgram`] into a [`LoweredProgram`] — a
//! flat list of [`MachineInstr`]s ready for
//! [`crate::PimMachine::run_program`] — at one of three
//! [`LowerLevel`]s:
//!
//! * **Naive** reproduces the paper's unoptimized mapping: fused lane
//!   shifts are expanded into stand-alone shift + write-back pairs,
//!   and every intermediate is written back to an SRAM row and re-read
//!   by its consumers.
//! * **Opt** chains intermediates through the Tmp Reg: a value is only
//!   written back ("spilled") to a scratch row right before another op
//!   would clobber the Tmp Reg while the value is still live.
//!   Stand-alone shifts feeding a single shift-capable ALU op are
//!   fused into the op's lane pre-shift, and dead row writes are
//!   eliminated.
//! * **MultiReg(n)** is Opt on a machine with `n` temporary registers:
//!   spills prefer a free extra register ([`MachineInstr::SaveTmp`],
//!   no SRAM write) and fall back to scratch rows when all registers
//!   hold live values.
//!
//! The register-allocation rule is a greedy forward walk with exact
//! liveness (the program is straight-line SSA, so every use index is
//! known): the most recent definition lives in the Tmp Reg; scratch
//! rows and extra registers are recycled lowest-first as soon as their
//! owner's last use has passed. Two hazards of the eager mapping are
//! handled explicitly: a write-back about to clobber a row that still
//! caches another live value first *rescues* that value through the
//! Tmp Reg into a register or scratch row, and a reduce whose operand
//! sits in the Tmp Reg spills it first when it has later uses
//! (`reduce_sum` destroys the Tmp Reg).

use crate::config::{LaneWidth, Signedness};
use crate::ir::{MacroOp, PimProgram, VReg, Val};
use crate::isa::{AluOp, LogicFunc, Operand, Shift};
use std::fmt;

/// How aggressively [`lower()`] maps virtual registers onto the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LowerLevel {
    /// Every intermediate written back to SRAM and re-read; fused
    /// shifts expanded (the paper's unoptimized mapping).
    Naive,
    /// Tmp-Reg chaining, shift fusion, dead-write elimination.
    Opt,
    /// Opt plus spilling to `n` temporary registers (the machine must
    /// have been configured with
    /// [`crate::PimMachine::set_tmp_regs`]`(n)` or more).
    MultiReg(u8),
}

impl fmt::Display for LowerLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerLevel::Naive => write!(f, "naive"),
            LowerLevel::Opt => write!(f, "opt"),
            LowerLevel::MultiReg(n) => write!(f, "multireg({n})"),
        }
    }
}

/// The SRAM rows a lowering may use for spilled intermediates. Must
/// not overlap rows the program reads or stores to — [`lower()`]
/// validates this and rejects overlapping pools with
/// [`LowerError::ScratchOverlap`] (a spill into a program row would
/// silently corrupt results).
#[derive(Clone, Debug)]
pub struct ScratchRows {
    rows: Vec<usize>,
}

impl ScratchRows {
    /// A scratch pool from an explicit row list (allocated
    /// lowest-index-first in list order).
    #[must_use]
    pub fn new(rows: Vec<usize>) -> Self {
        ScratchRows { rows }
    }

    /// A contiguous scratch pool `base..base + len`.
    #[must_use]
    pub fn contiguous(base: usize, len: usize) -> Self {
        ScratchRows {
            rows: (base..base + len).collect(),
        }
    }

    /// The pool's rows.
    #[must_use]
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }
}

/// Why a program could not be lowered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LowerError {
    /// Every scratch row already holds a live value at op `op`.
    OutOfScratch {
        /// IR op index needing a scratch row.
        op: usize,
    },
    /// Op `op` reads a virtual register with no prior definition.
    UseBeforeDef {
        /// IR op index with the undefined operand.
        op: usize,
    },
    /// Row `row` is read between a value's definition and its
    /// [`MacroOp::Store`] to that row — illegal at every level (eager
    /// lowerings write results at the defining op).
    StoreHazard {
        /// IR index of the offending store.
        op: usize,
        /// The row stored to and read in between.
        row: usize,
    },
    /// A [`ScratchRows`] row collides with a row the program reads or
    /// stores to — spills into it would corrupt program data.
    ScratchOverlap {
        /// The offending scratch row.
        row: usize,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::OutOfScratch { op } => {
                write!(f, "no free scratch row at IR op {op}")
            }
            LowerError::UseBeforeDef { op } => {
                write!(f, "IR op {op} reads an undefined virtual register")
            }
            LowerError::StoreHazard { op, row } => write!(
                f,
                "IR store {op}: row {row} is read between definition and store"
            ),
            LowerError::ScratchOverlap { row } => write!(
                f,
                "scratch row {row} overlaps a row the program reads or stores to"
            ),
        }
    }
}

impl std::error::Error for LowerError {}

/// One machine-level instruction of a [`LoweredProgram`] — a direct
/// transliteration of the [`crate::PimMachine`] compute methods.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineInstr {
    /// [`crate::PimMachine::set_lanes`].
    SetLanes {
        /// Lane width.
        width: LaneWidth,
        /// Signedness.
        sign: Signedness,
    },
    /// [`crate::PimMachine::alu`].
    Alu {
        /// Operation.
        op: AluOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Lane pre-shift on `b`.
        shift: Shift,
    },
    /// [`crate::PimMachine::shift_pix`].
    ShiftPix {
        /// Operand.
        a: Operand,
        /// Lane shift.
        pix: i32,
    },
    /// [`crate::PimMachine::shr_bits`].
    ShrBits {
        /// Operand.
        a: Operand,
        /// Bit count.
        k: u32,
    },
    /// [`crate::PimMachine::shl_bits`].
    ShlBits {
        /// Operand.
        a: Operand,
        /// Bit count.
        k: u32,
    },
    /// [`crate::PimMachine::neg`].
    Neg {
        /// Operand.
        a: Operand,
    },
    /// [`crate::PimMachine::sat_narrow`].
    SatNarrow {
        /// Operand.
        a: Operand,
        /// Target width.
        bits: u32,
    },
    /// [`crate::PimMachine::mul`] / [`crate::PimMachine::mul_signed`].
    Mul {
        /// Multiplicand.
        a: Operand,
        /// Multiplier.
        b: Operand,
        /// Signed variant.
        signed: bool,
    },
    /// [`crate::PimMachine::div_frac`] /
    /// [`crate::PimMachine::div_frac_signed`].
    DivFrac {
        /// Dividend.
        a: Operand,
        /// Divisor.
        b: Operand,
        /// Fractional bits.
        frac: u32,
        /// Signed variant.
        signed: bool,
    },
    /// [`crate::PimMachine::writeback`].
    Writeback {
        /// Destination row.
        row: usize,
    },
    /// [`crate::PimMachine::save_tmp`].
    SaveTmp {
        /// Extra-register index (1-based).
        idx: u8,
    },
    /// [`crate::PimMachine::reduce_sum`].
    Reduce,
}

/// A machine instruction tagged with the IR op it was lowered from
/// (`"{program}[{ir_index}]"`), threaded into trace mnemonics by the
/// executor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoweredOp {
    /// The instruction.
    pub instr: MachineInstr,
    /// IR provenance label.
    pub label: String,
}

/// The result of [`lower()`]: a machine-op sequence plus bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoweredProgram {
    name: String,
    level: LowerLevel,
    ops: Vec<LoweredOp>,
    reduce_count: usize,
}

impl LoweredProgram {
    /// Name of the source program.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The level this program was lowered at.
    #[must_use]
    pub fn level(&self) -> LowerLevel {
        self.level
    }

    /// The machine instructions, in execution order.
    #[must_use]
    pub fn ops(&self) -> &[LoweredOp] {
        &self.ops
    }

    /// Number of [`MachineInstr::Reduce`] results the executor returns.
    #[must_use]
    pub fn reduce_count(&self) -> usize {
        self.reduce_count
    }
}

fn fmt_operand(o: Operand) -> String {
    match o {
        Operand::Row(r) => format!("r{r}"),
        Operand::Tmp => "tmp".to_string(),
        Operand::Reg(i) => format!("reg{i}"),
    }
}

impl fmt::Display for MachineInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineInstr::SetLanes { width, sign } => {
                write!(f, "set_lanes {width:?} {sign:?}")
            }
            MachineInstr::Alu { op, a, b, shift } => {
                let sh = match shift {
                    Shift::None => String::new(),
                    Shift::Pix(p) => format!(" sh({p})"),
                };
                write!(f, "{op:?} {}, {}{sh}", fmt_operand(*a), fmt_operand(*b))
            }
            MachineInstr::ShiftPix { a, pix } => {
                write!(f, "shift_pix {}, {pix}", fmt_operand(*a))
            }
            MachineInstr::ShrBits { a, k } => write!(f, "shr_bits {}, {k}", fmt_operand(*a)),
            MachineInstr::ShlBits { a, k } => write!(f, "shl_bits {}, {k}", fmt_operand(*a)),
            MachineInstr::Neg { a } => write!(f, "neg {}", fmt_operand(*a)),
            MachineInstr::SatNarrow { a, bits } => {
                write!(f, "sat_narrow {}, {bits}", fmt_operand(*a))
            }
            MachineInstr::Mul { a, b, signed } => write!(
                f,
                "mul{} {}, {}",
                if *signed { "_s" } else { "" },
                fmt_operand(*a),
                fmt_operand(*b)
            ),
            MachineInstr::DivFrac { a, b, frac, signed } => write!(
                f,
                "div_frac{} {}, {}, {frac}",
                if *signed { "_s" } else { "" },
                fmt_operand(*a),
                fmt_operand(*b)
            ),
            MachineInstr::Writeback { row } => write!(f, "writeback r{row}"),
            MachineInstr::SaveTmp { idx } => write!(f, "save_tmp {idx}"),
            MachineInstr::Reduce => write!(f, "reduce_sum"),
        }
    }
}

impl fmt::Display for LoweredProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "lowered {} ({}):", self.name, self.level)?;
        for op in &self.ops {
            writeln!(f, "  {:<36} ; {}", op.instr.to_string(), op.label)?;
        }
        Ok(())
    }
}

/// Lowers `prog` to machine instructions at `level`, spilling into
/// `scratch`.
///
/// # Errors
///
/// [`LowerError::OutOfScratch`] when the scratch pool cannot hold the
/// live intermediates, [`LowerError::ScratchOverlap`] when the pool
/// collides with rows the program reads or stores to,
/// [`LowerError::UseBeforeDef`] / [`LowerError::StoreHazard`] for
/// malformed programs.
pub fn lower(
    prog: &PimProgram,
    level: LowerLevel,
    scratch: &ScratchRows,
) -> Result<LoweredProgram, LowerError> {
    check_store_hazards(prog)?;
    check_scratch_overlap(prog, scratch)?;
    let processed = match level {
        LowerLevel::Naive => expand_shifts(prog),
        LowerLevel::Opt | LowerLevel::MultiReg(_) => eliminate_dead_stores(&fuse_shifts(prog)),
    };
    let reg_slots = match level {
        LowerLevel::MultiReg(n) => n.saturating_sub(1) as usize,
        _ => 0,
    };
    let nv = processed.vreg_count() as usize;
    let mut store_row = vec![None; nv];
    for op in processed.ops() {
        if let MacroOp::Store { src, row } = *op {
            let s = src.index() as usize;
            if store_row[s].is_none() {
                store_row[s] = Some(row);
            }
        }
    }
    let mut uses = vec![Vec::new(); nv];
    for (i, op) in processed.ops().iter().enumerate() {
        for s in op.sources() {
            if let Val::V(v) = s {
                uses[v.index() as usize].push(i);
            }
        }
    }
    let walker = Walker {
        naive: level == LowerLevel::Naive,
        name: prog.name().to_string(),
        uses,
        store_row,
        scratch: scratch.rows().iter().map(|&r| (r, None)).collect(),
        regs: vec![None; reg_slots],
        tmp: None,
        in_reg: vec![None; nv],
        in_row: vec![None; nv],
        home: vec![None; nv],
        out: Vec::new(),
    };
    let ops = walker.run(processed.ops())?;
    Ok(LoweredProgram {
        name: prog.name().to_string(),
        level,
        ops,
        reduce_count: prog.reduce_count(),
    })
}

/// Rejects programs where a store's target row is read between the
/// stored value's definition and the store itself: eager levels write
/// results to their home row at the defining op, so such a read would
/// observe different contents per level.
fn check_store_hazards(prog: &PimProgram) -> Result<(), LowerError> {
    let ops = prog.ops();
    let mut def_at = vec![None; prog.vreg_count() as usize];
    for (i, op) in ops.iter().enumerate() {
        if let Some(d) = op.dst() {
            def_at[d.index() as usize] = Some(i);
        }
        if let MacroOp::Store { src, row } = *op {
            let Some(d) = def_at[src.index() as usize] else {
                return Err(LowerError::UseBeforeDef { op: i });
            };
            if ops[d + 1..i].iter().any(|o| o.reads_row(row)) {
                return Err(LowerError::StoreHazard { op: i, row });
            }
        }
    }
    Ok(())
}

/// Rejects scratch pools that overlap any row the program reads or
/// stores to — the [`ScratchRows`] contract; a spill into such a row
/// would silently corrupt program data at allocation time.
fn check_scratch_overlap(prog: &PimProgram, scratch: &ScratchRows) -> Result<(), LowerError> {
    let mut touched = Vec::new();
    for op in prog.ops() {
        for s in op.sources() {
            if let Val::Row(r) = s {
                touched.push(r);
            }
        }
        if let MacroOp::Store { row, .. } = *op {
            touched.push(row);
        }
    }
    for &row in scratch.rows() {
        if touched.contains(&row) {
            return Err(LowerError::ScratchOverlap { row });
        }
    }
    Ok(())
}

/// Naive-level pre-pass: fused ALU lane shifts become stand-alone
/// shift ops on a fresh register (each costing a shift cycle plus a
/// write-back once allocated).
fn expand_shifts(prog: &PimProgram) -> PimProgram {
    let mut ops = Vec::with_capacity(prog.ops().len());
    let mut next = prog.vreg_count();
    for op in prog.ops() {
        match *op {
            MacroOp::Alu {
                op: o,
                a,
                b,
                shift,
                dst,
            } if shift != 0 => {
                let t = VReg::from_raw(next);
                next += 1;
                ops.push(MacroOp::ShiftPix {
                    a: b,
                    pix: shift,
                    dst: t,
                });
                ops.push(MacroOp::Alu {
                    op: o,
                    a,
                    b: Val::V(t),
                    shift: 0,
                    dst,
                });
            }
            ref other => ops.push(other.clone()),
        }
    }
    prog.with_ops(ops, next)
}

fn commutative(op: AluOp) -> bool {
    matches!(
        op,
        AluOp::Logic(_)
            | AluOp::Add
            | AluOp::SatAdd
            | AluOp::Avg
            | AluOp::AbsDiff
            | AluOp::Max
            | AluOp::Min
    )
}

/// Opt-level pass: a stand-alone lane shift whose single consumer is
/// an unshifted ALU op folds into that op's lane pre-shift (swapping
/// operands when the shifted value sits on the non-shiftable side of a
/// commutative op), saving the shift cycle.
fn fuse_shifts(prog: &PimProgram) -> PimProgram {
    let src_ops = prog.ops();
    let mut ops: Vec<Option<MacroOp>> = src_ops.iter().cloned().map(Some).collect();
    let mut uses = vec![Vec::new(); prog.vreg_count() as usize];
    for (i, op) in src_ops.iter().enumerate() {
        for s in op.sources() {
            if let Val::V(v) = s {
                uses[v.index() as usize].push(i);
            }
        }
    }
    for i in 0..ops.len() {
        let Some(MacroOp::ShiftPix { a, pix, dst }) = ops[i].clone() else {
            continue;
        };
        let u = &uses[dst.index() as usize];
        if u.len() != 1 {
            continue;
        }
        let j = u[0];
        let Some(MacroOp::Alu {
            op: aop,
            a: aa,
            b: bb,
            shift,
            dst: d2,
        }) = ops[j].clone()
        else {
            continue;
        };
        if shift != 0 {
            continue;
        }
        // The shift's source must be unchanged between the shift and
        // the consumer (vreg sources are SSA; row sources must not be
        // stored over in between).
        if let Val::Row(r) = a {
            let overwritten = ops[i + 1..j]
                .iter()
                .any(|o| matches!(o, Some(MacroOp::Store { row, .. }) if *row == r));
            if overwritten {
                continue;
            }
        }
        let fused = if bb == Val::V(dst) && aa != Val::V(dst) {
            Some(MacroOp::Alu {
                op: aop,
                a: aa,
                b: a,
                shift: pix,
                dst: d2,
            })
        } else if aa == Val::V(dst) && bb != Val::V(dst) && commutative(aop) {
            Some(MacroOp::Alu {
                op: aop,
                a: bb,
                b: a,
                shift: pix,
                dst: d2,
            })
        } else {
            None
        };
        if let Some(fop) = fused {
            ops[j] = Some(fop);
            ops[i] = None;
        }
    }
    let fused: Vec<MacroOp> = ops.into_iter().flatten().collect();
    prog.with_ops(fused, prog.vreg_count())
}

/// Opt-level pass: a store to a row that is stored to again with no
/// intervening read of that row is dead and dropped.
fn eliminate_dead_stores(prog: &PimProgram) -> PimProgram {
    let ops = prog.ops();
    let mut keep = vec![true; ops.len()];
    for (i, op) in ops.iter().enumerate() {
        let MacroOp::Store { row, .. } = *op else {
            continue;
        };
        for later in &ops[i + 1..] {
            if later.reads_row(row) {
                break;
            }
            if matches!(later, MacroOp::Store { row: r2, .. } if *r2 == row) {
                keep[i] = false;
                break;
            }
        }
    }
    let kept: Vec<MacroOp> = ops
        .iter()
        .zip(&keep)
        .filter(|&(_, &k)| k)
        .map(|(op, _)| op.clone())
        .collect();
    prog.with_ops(kept, prog.vreg_count())
}

/// Greedy forward allocation walk shared by all levels.
struct Walker {
    naive: bool,
    name: String,
    /// Use sites (op indices) per virtual register.
    uses: Vec<Vec<usize>>,
    /// First store target per virtual register (naive homes).
    store_row: Vec<Option<usize>>,
    /// Scratch pool: `(row, owner)`.
    scratch: Vec<(usize, Option<u32>)>,
    /// Extra-register slots (slot `k` is machine `Reg(k + 1)`).
    regs: Vec<Option<u32>>,
    /// Which register currently sits in the Tmp Reg.
    tmp: Option<u32>,
    in_reg: Vec<Option<u8>>,
    in_row: Vec<Option<usize>>,
    /// Naive home rows, assigned at the defining op.
    home: Vec<Option<usize>>,
    out: Vec<LoweredOp>,
}

impl Walker {
    fn run(mut self, ops: &[MacroOp]) -> Result<Vec<LoweredOp>, LowerError> {
        for (i, op) in ops.iter().enumerate() {
            match *op {
                MacroOp::SetLanes { width, sign } => {
                    self.emit(MachineInstr::SetLanes { width, sign }, i);
                }
                MacroOp::Store { src, row } => self.lower_store(i, src, row)?,
                MacroOp::Reduce { a } => self.lower_reduce(i, a)?,
                _ => self.lower_def(i, op)?,
            }
        }
        Ok(self.out)
    }

    fn emit(&mut self, instr: MachineInstr, ir_idx: usize) {
        self.out.push(LoweredOp {
            instr,
            label: format!("{}[{ir_idx}]", self.name),
        });
    }

    fn live_from(&self, v: u32, i: usize) -> bool {
        self.uses[v as usize].iter().any(|&u| u >= i)
    }

    /// Resolves a value to a machine operand. Naive reads home rows
    /// exclusively; Opt prefers the Tmp Reg, then extra registers,
    /// then rows.
    fn resolve(&self, val: Val, i: usize) -> Result<Operand, LowerError> {
        match val {
            Val::Row(r) => Ok(Operand::Row(r)),
            Val::V(v) => {
                let x = v.index() as usize;
                if self.naive {
                    return self.home[x]
                        .map(Operand::Row)
                        .ok_or(LowerError::UseBeforeDef { op: i });
                }
                if self.tmp == Some(v.index()) {
                    Ok(Operand::Tmp)
                } else if let Some(idx) = self.in_reg[x] {
                    Ok(Operand::Reg(idx))
                } else if let Some(r) = self.in_row[x] {
                    Ok(Operand::Row(r))
                } else {
                    Err(LowerError::UseBeforeDef { op: i })
                }
            }
        }
    }

    /// First scratch row whose owner is dead (or unset) at op `i`.
    fn alloc_scratch(&mut self, i: usize, new_owner: u32) -> Result<usize, LowerError> {
        for k in 0..self.scratch.len() {
            let (row, owner) = self.scratch[k];
            let free = match owner {
                None => true,
                Some(o) => !self.live_from(o, i),
            };
            if free {
                if let Some(o) = owner {
                    if self.in_row[o as usize] == Some(row) {
                        self.in_row[o as usize] = None;
                    }
                    if self.home[o as usize] == Some(row) {
                        self.home[o as usize] = None;
                    }
                }
                self.scratch[k].1 = Some(new_owner);
                return Ok(row);
            }
        }
        Err(LowerError::OutOfScratch { op: i })
    }

    /// First extra register whose owner is dead at op `i` (MultiReg
    /// only — the slot list is empty at other levels).
    fn alloc_reg(&mut self, i: usize, new_owner: u32) -> Option<u8> {
        for k in 0..self.regs.len() {
            let free = match self.regs[k] {
                None => true,
                Some(o) => !self.live_from(o, i),
            };
            if free {
                if let Some(o) = self.regs[k] {
                    self.in_reg[o as usize] = None;
                }
                self.regs[k] = Some(new_owner);
                return Some((k + 1) as u8);
            }
        }
        None
    }

    /// Spills the Tmp Reg's current value before an op clobbers it, if
    /// the value is used at or after op `from` and has no other
    /// location. MultiReg prefers a free extra register (one register
    /// cycle, no SRAM write) over a scratch-row write-back.
    fn spill_tmp_from(&mut self, i: usize, from: usize) -> Result<(), LowerError> {
        let Some(v) = self.tmp else {
            return Ok(());
        };
        let x = v as usize;
        let needed = self.uses[x].iter().any(|&u| u >= from);
        if !needed || self.in_reg[x].is_some() || self.in_row[x].is_some() {
            return Ok(());
        }
        if let Some(idx) = self.alloc_reg(i, v) {
            self.emit(MachineInstr::SaveTmp { idx }, i);
            self.in_reg[x] = Some(idx);
        } else {
            let row = self.alloc_scratch(i, v)?;
            self.emit(MachineInstr::Writeback { row }, i);
            self.in_row[x] = Some(row);
        }
        Ok(())
    }

    /// [`Walker::spill_tmp_from`] for the common case: the Tmp value
    /// only matters if used strictly after op `i`.
    fn spill_tmp(&mut self, i: usize) -> Result<(), LowerError> {
        self.spill_tmp_from(i, i + 1)
    }

    /// Drops a virtual register's claim on `row` (both the Opt location
    /// cache and the naive home).
    fn forget_row(&mut self, x: usize, row: usize) {
        if self.in_row[x] == Some(row) {
            self.in_row[x] = None;
        }
        if self.home[x] == Some(row) {
            self.home[x] = None;
        }
    }

    /// Relocates every virtual register other than `keep` whose cached
    /// location is `row` before an imminent [`MachineInstr::Writeback`]
    /// clobbers that row. Dead values and values with another location
    /// just forget the row; a live, row-only value is copied out
    /// through the Tmp Reg into an extra register or a scratch row
    /// (spilling a still-needed Tmp occupant first), so storing to an
    /// already-cached row can never silently corrupt an earlier
    /// still-live result.
    fn rescue_row(&mut self, i: usize, row: usize, keep: u32) -> Result<(), LowerError> {
        for v in 0..self.in_row.len() as u32 {
            let x = v as usize;
            if v == keep || (self.in_row[x] != Some(row) && self.home[x] != Some(row)) {
                continue;
            }
            if !self.live_from(v, i + 1) {
                // dead after this op; keep the mapping only while the
                // current op still reads it (the clobbering write-back
                // lands after the op's operands are consumed)
                if !self.uses[x].contains(&i) {
                    self.forget_row(x, row);
                }
                continue;
            }
            if self.tmp == Some(v) || self.in_reg[x].is_some() {
                self.forget_row(x, row);
                continue;
            }
            // the row holds the value's only copy: route it through
            // the Tmp Reg (preserving a Tmp value still used at `i`)
            self.spill_tmp_from(i, i)?;
            self.emit(
                MachineInstr::Alu {
                    op: AluOp::Logic(LogicFunc::Or),
                    a: Operand::Row(row),
                    b: Operand::Row(row),
                    shift: Shift::None,
                },
                i,
            );
            self.forget_row(x, row);
            self.tmp = Some(v);
            if let Some(idx) = self.alloc_reg(i, v) {
                self.emit(MachineInstr::SaveTmp { idx }, i);
                self.in_reg[x] = Some(idx);
            } else {
                let r2 = self.alloc_scratch(i, v)?;
                self.emit(MachineInstr::Writeback { row: r2 }, i);
                self.in_row[x] = Some(r2);
                if self.naive {
                    self.home[x] = Some(r2);
                }
            }
        }
        Ok(())
    }

    fn build_instr(&self, op: &MacroOp, i: usize) -> Result<MachineInstr, LowerError> {
        Ok(match *op {
            MacroOp::Alu {
                op: o, a, b, shift, ..
            } => {
                debug_assert!(!self.naive || shift == 0, "naive shifts pre-expanded");
                MachineInstr::Alu {
                    op: o,
                    a: self.resolve(a, i)?,
                    b: self.resolve(b, i)?,
                    shift: if shift == 0 {
                        Shift::None
                    } else {
                        Shift::Pix(shift)
                    },
                }
            }
            MacroOp::ShiftPix { a, pix, .. } => MachineInstr::ShiftPix {
                a: self.resolve(a, i)?,
                pix,
            },
            MacroOp::ShrBits { a, k, .. } => MachineInstr::ShrBits {
                a: self.resolve(a, i)?,
                k,
            },
            MacroOp::ShlBits { a, k, .. } => MachineInstr::ShlBits {
                a: self.resolve(a, i)?,
                k,
            },
            MacroOp::Neg { a, .. } => MachineInstr::Neg {
                a: self.resolve(a, i)?,
            },
            MacroOp::SatNarrow { a, bits, .. } => MachineInstr::SatNarrow {
                a: self.resolve(a, i)?,
                bits,
            },
            MacroOp::Mul { a, b, signed, .. } => MachineInstr::Mul {
                a: self.resolve(a, i)?,
                b: self.resolve(b, i)?,
                signed,
            },
            MacroOp::DivFrac {
                a, b, frac, signed, ..
            } => MachineInstr::DivFrac {
                a: self.resolve(a, i)?,
                b: self.resolve(b, i)?,
                frac,
                signed,
            },
            MacroOp::Load { a, .. } => {
                let x = self.resolve(a, i)?;
                MachineInstr::Alu {
                    op: AluOp::Logic(LogicFunc::Or),
                    a: x,
                    b: x,
                    shift: Shift::None,
                }
            }
            MacroOp::SetLanes { .. } | MacroOp::Store { .. } | MacroOp::Reduce { .. } => {
                unreachable!("handled by the walk")
            }
        })
    }

    fn lower_def(&mut self, i: usize, op: &MacroOp) -> Result<(), LowerError> {
        let dst = op.dst().expect("def op has a destination");
        let d = dst.index() as usize;
        if self.naive {
            let home = match self.store_row[d] {
                Some(r) => r,
                None => self.alloc_scratch(i, dst.index())?,
            };
            // rescue uses the Tmp Reg, so it must precede the op that
            // leaves this def's result there
            self.rescue_row(i, home, dst.index())?;
            let instr = self.build_instr(op, i)?;
            self.emit(instr, i);
            self.emit(MachineInstr::Writeback { row: home }, i);
            self.home[d] = Some(home);
            self.in_row[d] = Some(home);
        } else {
            self.spill_tmp(i)?;
            let instr = self.build_instr(op, i)?;
            self.emit(instr, i);
            self.tmp = Some(dst.index());
        }
        Ok(())
    }

    fn lower_store(&mut self, i: usize, src: VReg, row: usize) -> Result<(), LowerError> {
        let s = src.index() as usize;
        if self.naive {
            // The defining op already wrote its home row; only a store
            // to a *different* row needs a copy.
            if self.home[s] == Some(row) {
                return Ok(());
            }
            self.rescue_row(i, row, src.index())?;
            let a = self.resolve(Val::V(src), i)?;
            self.emit(
                MachineInstr::Alu {
                    op: AluOp::Logic(LogicFunc::Or),
                    a,
                    b: a,
                    shift: Shift::None,
                },
                i,
            );
            self.emit(MachineInstr::Writeback { row }, i);
            return Ok(());
        }
        if self.tmp == Some(src.index()) {
            self.rescue_row(i, row, src.index())?;
            if self.tmp == Some(src.index()) {
                self.emit(MachineInstr::Writeback { row }, i);
                self.in_row[s] = Some(row);
                return Ok(());
            }
            // the rescue displaced src from the Tmp Reg (spilling it to
            // a register or scratch row first); re-materialize below
        } else if self.in_row[s] == Some(row) {
            return Ok(());
        } else {
            self.rescue_row(i, row, src.index())?;
        }
        self.spill_tmp(i)?;
        let a = self.resolve(Val::V(src), i)?;
        self.emit(
            MachineInstr::Alu {
                op: AluOp::Logic(LogicFunc::Or),
                a,
                b: a,
                shift: Shift::None,
            },
            i,
        );
        self.tmp = Some(src.index());
        self.emit(MachineInstr::Writeback { row }, i);
        self.in_row[s] = Some(row);
        Ok(())
    }

    fn lower_reduce(&mut self, i: usize, a: Val) -> Result<(), LowerError> {
        let already_in_tmp = !self.naive && matches!(a, Val::V(v) if self.tmp == Some(v.index()));
        if already_in_tmp {
            // reduce_sum destroys the Tmp Reg; give the operand a
            // surviving location first when it has later uses
            self.spill_tmp(i)?;
        } else {
            if !self.naive {
                self.spill_tmp(i)?;
            }
            let x = self.resolve(a, i)?;
            self.emit(
                MachineInstr::Alu {
                    op: AluOp::Logic(LogicFunc::Or),
                    a: x,
                    b: x,
                    shift: Shift::None,
                },
                i,
            );
        }
        self.emit(MachineInstr::Reduce, i);
        // reduce_sum leaves the lane sum, not the operand, in Tmp
        self.tmp = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArrayConfig;
    use crate::machine::PimMachine;

    fn smooth() -> PimProgram {
        let mut p = PimProgram::new("smooth");
        let d = p.avg(Val::Row(0), Val::Row(1));
        let e = p.avg_sh(d.into(), d.into(), 1);
        p.store(e, 2);
        p
    }

    fn scratch() -> ScratchRows {
        ScratchRows::contiguous(100, 8)
    }

    #[test]
    fn opt_chains_through_tmp() {
        let l = lower(&smooth(), LowerLevel::Opt, &scratch()).unwrap();
        let instrs: Vec<&MachineInstr> = l.ops().iter().map(|o| &o.instr).collect();
        assert_eq!(instrs.len(), 3);
        assert!(matches!(
            instrs[1],
            MachineInstr::Alu {
                op: AluOp::Avg,
                a: Operand::Tmp,
                b: Operand::Tmp,
                shift: Shift::Pix(1),
            }
        ));
        assert_eq!(*instrs[2], MachineInstr::Writeback { row: 2 });
    }

    #[test]
    fn naive_expands_shifts_and_writes_everything_back() {
        let l = lower(&smooth(), LowerLevel::Naive, &scratch()).unwrap();
        // avg, wb, shift_pix, wb, avg, wb
        assert_eq!(l.ops().len(), 6);
        assert!(matches!(l.ops()[2].instr, MachineInstr::ShiftPix { .. }));
        assert_eq!(l.ops()[5].instr, MachineInstr::Writeback { row: 2 });
        // no Tmp operands anywhere at the naive level
        for op in l.ops() {
            if let MachineInstr::Alu { a, b, .. } = op.instr {
                assert!(!matches!(a, Operand::Tmp) && !matches!(b, Operand::Tmp));
            }
        }
    }

    #[test]
    fn all_levels_compute_identical_rows() {
        let mut build = PimProgram::new("mix");
        let d = build.abs_diff_sh(Val::Row(0), Val::Row(1), 2);
        let e = build.max(Val::Row(0), Val::Row(1));
        let f = build.min_sh(d.into(), e.into(), 1);
        let g = build.shift_pix(f.into(), -1);
        let h = build.cmp_gt(Val::Row(1), g.into());
        build.store(h, 3);

        let mut rows = Vec::new();
        for level in [LowerLevel::Naive, LowerLevel::Opt, LowerLevel::MultiReg(4)] {
            let mut m = PimMachine::new(ArrayConfig::default());
            if let LowerLevel::MultiReg(n) = level {
                m.set_tmp_regs(n);
            }
            m.host_write_lanes(0, &[9, 3, 200, 17, 4, 250, 0, 77])
                .unwrap();
            m.host_write_lanes(1, &[5, 100, 2, 90, 30, 1, 60, 8])
                .unwrap();
            let l = lower(&build, level, &scratch()).unwrap();
            m.run_program(&l).unwrap();
            rows.push(m.host_read_lanes(3)[..8].to_vec());
        }
        assert_eq!(rows[0], rows[1], "naive vs opt");
        assert_eq!(rows[1], rows[2], "opt vs multireg");
    }

    #[test]
    fn opt_is_cheaper_than_naive_and_multireg_writes_less() {
        let mut build = PimProgram::new("mix");
        let a = build.abs_diff_sh(Val::Row(0), Val::Row(1), 2);
        let b = build.abs_diff(Val::Row(0), Val::Row(1));
        let c = build.abs_diff_sh(Val::Row(1), Val::Row(0), -1);
        let d = build.avg(a.into(), b.into());
        let e = build.avg(d.into(), c.into());
        build.store(e, 3);

        let mut cycles = Vec::new();
        let mut writes = Vec::new();
        for level in [LowerLevel::Naive, LowerLevel::Opt, LowerLevel::MultiReg(4)] {
            let mut m = PimMachine::new(ArrayConfig::default());
            if let LowerLevel::MultiReg(n) = level {
                m.set_tmp_regs(n);
            }
            m.host_write_lanes(0, &[9, 3, 200, 17]).unwrap();
            m.host_write_lanes(1, &[5, 100, 2, 90]).unwrap();
            let l = lower(&build, level, &scratch()).unwrap();
            m.run_program(&l).unwrap();
            cycles.push(m.stats().cycles);
            writes.push(m.stats().sram_writes);
        }
        assert!(
            cycles[1] < cycles[0],
            "opt {} naive {}",
            cycles[1],
            cycles[0]
        );
        assert!(cycles[2] <= cycles[1], "multireg vs opt");
        assert!(writes[2] < writes[1], "multireg spills to registers");
    }

    #[test]
    fn adjacent_shift_fuses_into_consumer() {
        let mut build = PimProgram::new("f");
        let s = build.shift_pix(Val::Row(0), -1);
        let c = build.cmp_gt(Val::Row(1), s.into());
        build.store(c, 2);
        let l = lower(&build, LowerLevel::Opt, &scratch()).unwrap();
        // shift folded into cmp_gt's pre-shift: 2 instrs, not 3
        assert_eq!(l.ops().len(), 2);
        assert!(matches!(
            l.ops()[0].instr,
            MachineInstr::Alu {
                op: AluOp::CmpGt,
                shift: Shift::Pix(-1),
                ..
            }
        ));
    }

    #[test]
    fn commutative_fusion_swaps_operands() {
        let mut build = PimProgram::new("f");
        let s = build.shift_pix(Val::Row(0), 2);
        let c = build.and(s.into(), Val::Row(1));
        build.store(c, 2);
        let l = lower(&build, LowerLevel::Opt, &scratch()).unwrap();
        assert_eq!(l.ops().len(), 2);
        assert!(matches!(
            l.ops()[0].instr,
            MachineInstr::Alu {
                op: AluOp::Logic(LogicFunc::And),
                a: Operand::Row(1),
                b: Operand::Row(0),
                shift: Shift::Pix(2),
            }
        ));
    }

    #[test]
    fn fusion_blocked_by_intervening_store_to_source_row() {
        let mut build = PimProgram::new("f");
        let s = build.shift_pix(Val::Row(0), 1);
        let x = build.avg(Val::Row(1), Val::Row(2));
        build.store(x, 0); // overwrites the shift's source row
        let c = build.cmp_gt(Val::Row(1), s.into());
        build.store(c, 3);
        let l = lower(&build, LowerLevel::Opt, &scratch()).unwrap();
        assert!(
            l.ops()
                .iter()
                .any(|o| matches!(o.instr, MachineInstr::ShiftPix { .. })),
            "shift must stay stand-alone:\n{l}"
        );
    }

    #[test]
    fn dead_store_is_eliminated_at_opt_and_kept_at_naive() {
        let mut build = PimProgram::new("d");
        let a = build.avg(Val::Row(0), Val::Row(1));
        build.store(a, 5);
        let b = build.max(Val::Row(0), Val::Row(1));
        build.store(b, 5); // overwrites row 5 with no read in between
        let opt = lower(&build, LowerLevel::Opt, &scratch()).unwrap();
        let wb5 = opt
            .ops()
            .iter()
            .filter(|o| matches!(o.instr, MachineInstr::Writeback { row: 5 }))
            .count();
        assert_eq!(wb5, 1, "dead store dropped:\n{opt}");
        let naive = lower(&build, LowerLevel::Naive, &scratch()).unwrap();
        let wb5n = naive
            .ops()
            .iter()
            .filter(|o| matches!(o.instr, MachineInstr::Writeback { row: 5 }))
            .count();
        assert_eq!(wb5n, 2, "naive keeps every write:\n{naive}");
    }

    #[test]
    fn out_of_scratch_is_reported() {
        let mut build = PimProgram::new("s");
        let a = build.avg(Val::Row(0), Val::Row(1));
        let b = build.avg(Val::Row(0), Val::Row(2));
        let c = build.avg(Val::Row(0), Val::Row(3));
        let d = build.avg(a.into(), b.into());
        let e = build.avg(d.into(), c.into());
        build.store(e, 5);
        let none = ScratchRows::new(Vec::new());
        assert!(matches!(
            lower(&build, LowerLevel::Opt, &none),
            Err(LowerError::OutOfScratch { .. })
        ));
    }

    #[test]
    fn store_hazard_is_rejected() {
        let mut build = PimProgram::new("h");
        let a = build.avg(Val::Row(0), Val::Row(1));
        let _b = build.avg(Val::Row(5), Val::Row(1)); // reads row 5 pre-store
        build.store(a, 5);
        assert_eq!(
            lower(&build, LowerLevel::Opt, &scratch()),
            Err(LowerError::StoreHazard { op: 2, row: 5 })
        );
    }

    #[test]
    fn store_over_cached_row_rescues_live_value() {
        // REVIEW repro: `a` is stored to row 5 and still live when `b`
        // overwrites row 5 (the intervening row-5 read keeps the first
        // store alive at Opt); `a`'s later use must not resolve to the
        // clobbered row at any level.
        let mut build = PimProgram::new("clobber");
        let a = build.add(Val::Row(0), Val::Row(1));
        build.store(a, 5);
        let x = build.add(Val::Row(5), Val::Row(1)); // keeps store a->5 alive
        build.store(x, 7);
        let b = build.max(Val::Row(0), Val::Row(1));
        build.store(b, 5);
        let d = build.add(a.into(), Val::Row(2));
        build.store(d, 6);

        for level in [LowerLevel::Naive, LowerLevel::Opt, LowerLevel::MultiReg(4)] {
            let mut m = PimMachine::new(ArrayConfig::default());
            if let LowerLevel::MultiReg(n) = level {
                m.set_tmp_regs(n);
            }
            m.host_write_lanes(0, &[9, 3]).unwrap();
            m.host_write_lanes(1, &[5, 100]).unwrap();
            m.host_write_lanes(2, &[7, 7]).unwrap();
            let l = lower(&build, level, &scratch()).unwrap();
            m.run_program(&l).unwrap();
            assert_eq!(&m.host_read_lanes(5)[..2], &[9, 100], "{level} row 5");
            assert_eq!(&m.host_read_lanes(6)[..2], &[21, 110], "{level} row 6");
            assert_eq!(&m.host_read_lanes(7)[..2], &[19, 203], "{level} row 7");
        }
    }

    #[test]
    fn reduce_preserves_live_tmp_operand() {
        // REVIEW repro: the reduce operand sits in the Tmp Reg, which
        // reduce_sum destroys; a later use must still see the value
        // (previously failed with a misleading UseBeforeDef).
        let mut build = PimProgram::new("red_live");
        let a = build.add(Val::Row(0), Val::Row(1));
        build.reduce(a.into());
        build.store(a, 5);
        for level in [LowerLevel::Naive, LowerLevel::Opt, LowerLevel::MultiReg(2)] {
            let mut m = PimMachine::new(ArrayConfig::default());
            if let LowerLevel::MultiReg(n) = level {
                m.set_tmp_regs(n);
            }
            m.host_write_lanes(0, &[10, 20]).unwrap();
            m.host_write_lanes(1, &[1, 2]).unwrap();
            let l = lower(&build, level, &scratch()).unwrap();
            let sums = m.run_program(&l).unwrap();
            assert_eq!(sums, vec![33], "{level}");
            assert_eq!(&m.host_read_lanes(5)[..2], &[11, 22], "{level}");
        }
    }

    #[test]
    fn scratch_overlap_is_rejected() {
        let mut build = PimProgram::new("o");
        let a = build.avg(Val::Row(0), Val::Row(1));
        build.store(a, 5);
        // overlap with a read row
        let read_overlap = ScratchRows::new(vec![100, 1]);
        assert_eq!(
            lower(&build, LowerLevel::Opt, &read_overlap),
            Err(LowerError::ScratchOverlap { row: 1 })
        );
        // overlap with a store target
        let store_overlap = ScratchRows::new(vec![5]);
        assert_eq!(
            lower(&build, LowerLevel::Naive, &store_overlap),
            Err(LowerError::ScratchOverlap { row: 5 })
        );
    }

    #[test]
    fn scratch_rows_are_recycled_after_last_use() {
        let mut build = PimProgram::new("r");
        // two sequential rounds each needing one spill
        for _ in 0..2 {
            let a = build.avg(Val::Row(0), Val::Row(1));
            let b = build.avg(Val::Row(0), Val::Row(2));
            let c = build.avg(a.into(), b.into());
            build.store(c, 5);
        }
        let one = ScratchRows::new(vec![100]);
        let l = lower(&build, LowerLevel::Opt, &one).unwrap();
        let spills = l
            .ops()
            .iter()
            .filter(|o| matches!(o.instr, MachineInstr::Writeback { row: 100 }))
            .count();
        assert_eq!(spills, 2, "one scratch row serves both rounds:\n{l}");
    }

    #[test]
    fn reduce_results_come_back_in_program_order() {
        let mut build = PimProgram::new("red");
        let a = build.add(Val::Row(0), Val::Row(1));
        build.reduce(a.into());
        let b = build.sub(Val::Row(0), Val::Row(1));
        build.reduce(b.into());
        for level in [LowerLevel::Naive, LowerLevel::Opt] {
            let mut m = PimMachine::new(ArrayConfig::default());
            m.host_write_lanes(0, &[10, 20, 30]).unwrap();
            m.host_write_lanes(1, &[1, 2, 3]).unwrap();
            let l = lower(&build, level, &scratch()).unwrap();
            assert_eq!(l.reduce_count(), 2);
            let sums = m.run_program(&l).unwrap();
            // unwritten lanes are zero-filled: 0 ± 0 contributes nothing
            assert_eq!(sums, vec![66, 54], "{level}");
        }
    }
}
