//! Optimizing lowering from the macro-op IR to machine-op sequences.
//!
//! [`lower()`] turns one [`PimProgram`] into a [`LoweredProgram`] — a
//! flat list of [`MachineInstr`]s ready for
//! [`crate::PimMachine::run_program`] — at one of three
//! [`LowerLevel`]s:
//!
//! * **Naive** reproduces the paper's unoptimized mapping: fused lane
//!   shifts are expanded into stand-alone shift + write-back pairs,
//!   and every intermediate is written back to an SRAM row and re-read
//!   by its consumers.
//! * **Opt** chains intermediates through the Tmp Reg: a value is only
//!   written back ("spilled") to a scratch row right before another op
//!   would clobber the Tmp Reg while the value is still live.
//!   Stand-alone shifts feeding a single shift-capable ALU op are
//!   fused into the op's lane pre-shift, and dead row writes are
//!   eliminated.
//! * **MultiReg(n)** is Opt on a machine with `n` temporary registers:
//!   spills prefer a free extra register ([`MachineInstr::SaveTmp`],
//!   no SRAM write) and fall back to scratch rows when all registers
//!   hold live values.
//!
//! The register-allocation rule is a greedy forward walk with exact
//! liveness (the program is straight-line SSA, so every use index is
//! known): the most recent definition lives in the Tmp Reg; scratch
//! rows and extra registers are recycled lowest-first as soon as their
//! owner's last use has passed. Two hazards of the eager mapping are
//! handled explicitly: a write-back about to clobber a row that still
//! caches another live value first *rescues* that value through the
//! Tmp Reg into a register or scratch row, and a reduce whose operand
//! sits in the Tmp Reg spills it first when it has later uses
//! (`reduce_sum` destroys the Tmp Reg).

use crate::config::{LaneWidth, Signedness};
use crate::ir::{MacroOp, PimProgram, VReg, Val};
use crate::isa::{AluOp, LogicFunc, Operand, Shift};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// How aggressively [`lower()`] maps virtual registers onto the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LowerLevel {
    /// Every intermediate written back to SRAM and re-read; fused
    /// shifts expanded (the paper's unoptimized mapping).
    Naive,
    /// Tmp-Reg chaining, shift fusion, dead-write elimination, peephole
    /// rewrites and list scheduling.
    Opt,
    /// Opt plus spilling to `n` temporary registers (the machine must
    /// have been configured with
    /// [`crate::PimMachine::set_tmp_regs`]`(n)` or more). `n` must be
    /// in `1..=`[`MAX_TMP_REGS`]; [`lower()`] rejects other depths with
    /// [`LowerError::RegisterDepth`].
    MultiReg(u8),
}

/// The deepest Tmp-Reg file any machine supports
/// ([`crate::PimMachine::set_tmp_regs`] accepts `1..=8`).
/// [`LowerLevel::MultiReg`] requests outside `1..=MAX_TMP_REGS` are
/// rejected with [`LowerError::RegisterDepth`] instead of silently
/// emitting register saves no machine can execute.
pub const MAX_TMP_REGS: u8 = 8;

impl fmt::Display for LowerLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerLevel::Naive => write!(f, "naive"),
            LowerLevel::Opt => write!(f, "opt"),
            LowerLevel::MultiReg(n) => write!(f, "multireg({n})"),
        }
    }
}

/// The SRAM rows a lowering may use for spilled intermediates. Must
/// not overlap rows the program reads or stores to — [`lower()`]
/// validates this and rejects overlapping pools with
/// [`LowerError::ScratchOverlap`] (a spill into a program row would
/// silently corrupt results).
#[derive(Clone, Debug)]
pub struct ScratchRows {
    rows: Vec<usize>,
}

impl ScratchRows {
    /// A scratch pool from an explicit row list (allocated
    /// lowest-index-first in list order).
    #[must_use]
    pub fn new(rows: Vec<usize>) -> Self {
        ScratchRows { rows }
    }

    /// A contiguous scratch pool `base..base + len`.
    #[must_use]
    pub fn contiguous(base: usize, len: usize) -> Self {
        ScratchRows {
            rows: (base..base + len).collect(),
        }
    }

    /// The pool's rows.
    #[must_use]
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }
}

/// Why a program could not be lowered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LowerError {
    /// Every scratch row already holds a live value at op `op`.
    OutOfScratch {
        /// IR op index needing a scratch row.
        op: usize,
    },
    /// Op `op` reads a virtual register with no prior definition.
    UseBeforeDef {
        /// IR op index with the undefined operand.
        op: usize,
    },
    /// Row `row` is read between a value's definition and its
    /// [`MacroOp::Store`] to that row — illegal at every level (eager
    /// lowerings write results at the defining op).
    StoreHazard {
        /// IR index of the offending store.
        op: usize,
        /// The row stored to and read in between.
        row: usize,
    },
    /// A [`ScratchRows`] row collides with a row the program reads or
    /// stores to — spills into it would corrupt program data.
    ScratchOverlap {
        /// The offending scratch row.
        row: usize,
    },
    /// [`LowerLevel::MultiReg`] requested a register depth outside the
    /// machine's representable range (`1..=`[`MAX_TMP_REGS`]). Before
    /// this check, `MultiReg(0)` silently degraded to `Opt` and depths
    /// above [`MAX_TMP_REGS`] emitted [`MachineInstr::SaveTmp`] indices
    /// no machine accepts.
    RegisterDepth {
        /// The requested Tmp-Reg depth.
        requested: u8,
        /// The deepest supported depth ([`MAX_TMP_REGS`]).
        max: u8,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::OutOfScratch { op } => {
                write!(f, "no free scratch row at IR op {op}")
            }
            LowerError::UseBeforeDef { op } => {
                write!(f, "IR op {op} reads an undefined virtual register")
            }
            LowerError::StoreHazard { op, row } => write!(
                f,
                "IR store {op}: row {row} is read between definition and store"
            ),
            LowerError::ScratchOverlap { row } => write!(
                f,
                "scratch row {row} overlaps a row the program reads or stores to"
            ),
            LowerError::RegisterDepth { requested, max } => write!(
                f,
                "multireg depth {requested} is outside the machine range 1..={max}"
            ),
        }
    }
}

impl std::error::Error for LowerError {}

/// One machine-level instruction of a [`LoweredProgram`] — a direct
/// transliteration of the [`crate::PimMachine`] compute methods.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineInstr {
    /// [`crate::PimMachine::set_lanes`].
    SetLanes {
        /// Lane width.
        width: LaneWidth,
        /// Signedness.
        sign: Signedness,
    },
    /// [`crate::PimMachine::alu`].
    Alu {
        /// Operation.
        op: AluOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Lane pre-shift on `b`.
        shift: Shift,
    },
    /// [`crate::PimMachine::shift_pix`].
    ShiftPix {
        /// Operand.
        a: Operand,
        /// Lane shift.
        pix: i32,
    },
    /// [`crate::PimMachine::shr_bits`].
    ShrBits {
        /// Operand.
        a: Operand,
        /// Bit count.
        k: u32,
    },
    /// [`crate::PimMachine::shl_bits`].
    ShlBits {
        /// Operand.
        a: Operand,
        /// Bit count.
        k: u32,
    },
    /// [`crate::PimMachine::neg`].
    Neg {
        /// Operand.
        a: Operand,
    },
    /// [`crate::PimMachine::sat_narrow`].
    SatNarrow {
        /// Operand.
        a: Operand,
        /// Target width.
        bits: u32,
    },
    /// [`crate::PimMachine::mul`] / [`crate::PimMachine::mul_signed`].
    Mul {
        /// Multiplicand.
        a: Operand,
        /// Multiplier.
        b: Operand,
        /// Signed variant.
        signed: bool,
    },
    /// [`crate::PimMachine::div_frac`] /
    /// [`crate::PimMachine::div_frac_signed`].
    DivFrac {
        /// Dividend.
        a: Operand,
        /// Divisor.
        b: Operand,
        /// Fractional bits.
        frac: u32,
        /// Signed variant.
        signed: bool,
    },
    /// [`crate::PimMachine::writeback`].
    Writeback {
        /// Destination row.
        row: usize,
    },
    /// [`crate::PimMachine::save_tmp`].
    SaveTmp {
        /// Extra-register index (1-based).
        idx: u8,
    },
    /// [`crate::PimMachine::reduce_sum`].
    Reduce,
}

/// A machine instruction tagged with the IR op it was lowered from
/// (`"{program}[{ir_index}]"`), threaded into trace mnemonics by the
/// executor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoweredOp {
    /// The instruction.
    pub instr: MachineInstr,
    /// IR provenance label.
    pub label: String,
}

/// The result of [`lower()`]: a machine-op sequence plus bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoweredProgram {
    name: String,
    level: LowerLevel,
    ops: Vec<LoweredOp>,
    reduce_count: usize,
}

impl LoweredProgram {
    /// Name of the source program.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The level this program was lowered at.
    #[must_use]
    pub fn level(&self) -> LowerLevel {
        self.level
    }

    /// The machine instructions, in execution order.
    #[must_use]
    pub fn ops(&self) -> &[LoweredOp] {
        &self.ops
    }

    /// Number of [`MachineInstr::Reduce`] results the executor returns.
    #[must_use]
    pub fn reduce_count(&self) -> usize {
        self.reduce_count
    }
}

fn fmt_operand(o: Operand) -> String {
    match o {
        Operand::Row(r) => format!("r{r}"),
        Operand::Tmp => "tmp".to_string(),
        Operand::Reg(i) => format!("reg{i}"),
    }
}

impl fmt::Display for MachineInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineInstr::SetLanes { width, sign } => {
                write!(f, "set_lanes {width:?} {sign:?}")
            }
            MachineInstr::Alu { op, a, b, shift } => {
                let sh = match shift {
                    Shift::None => String::new(),
                    Shift::Pix(p) => format!(" sh({p})"),
                };
                write!(f, "{op:?} {}, {}{sh}", fmt_operand(*a), fmt_operand(*b))
            }
            MachineInstr::ShiftPix { a, pix } => {
                write!(f, "shift_pix {}, {pix}", fmt_operand(*a))
            }
            MachineInstr::ShrBits { a, k } => write!(f, "shr_bits {}, {k}", fmt_operand(*a)),
            MachineInstr::ShlBits { a, k } => write!(f, "shl_bits {}, {k}", fmt_operand(*a)),
            MachineInstr::Neg { a } => write!(f, "neg {}", fmt_operand(*a)),
            MachineInstr::SatNarrow { a, bits } => {
                write!(f, "sat_narrow {}, {bits}", fmt_operand(*a))
            }
            MachineInstr::Mul { a, b, signed } => write!(
                f,
                "mul{} {}, {}",
                if *signed { "_s" } else { "" },
                fmt_operand(*a),
                fmt_operand(*b)
            ),
            MachineInstr::DivFrac { a, b, frac, signed } => write!(
                f,
                "div_frac{} {}, {}, {frac}",
                if *signed { "_s" } else { "" },
                fmt_operand(*a),
                fmt_operand(*b)
            ),
            MachineInstr::Writeback { row } => write!(f, "writeback r{row}"),
            MachineInstr::SaveTmp { idx } => write!(f, "save_tmp {idx}"),
            MachineInstr::Reduce => write!(f, "reduce_sum"),
        }
    }
}

impl fmt::Display for LoweredProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "lowered {} ({}):", self.name, self.level)?;
        for op in &self.ops {
            writeln!(f, "  {:<36} ; {}", op.instr.to_string(), op.label)?;
        }
        Ok(())
    }
}

/// One stage of the lowering pipeline. [`pass_pipeline`] names the
/// stages [`lower()`] runs per level; [`lower_with_passes`] accepts any
/// subset (every prefix is independently value-preserving — property
/// tested against the scalar reference).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Naive pre-pass: fused ALU lane shifts become stand-alone shift
    /// ops (the paper's unoptimized mapping charges them separately).
    ExpandShifts,
    /// Rewrite rules on the typed IR: shift-of-shift composition,
    /// zero-shift and same-operand ALU identities to [`MacroOp::Load`],
    /// register-to-register load copy-propagation and dead-definition
    /// removal.
    Peephole,
    /// A stand-alone lane shift whose single consumer is an unshifted
    /// ALU op folds into that op's lane pre-shift.
    FuseShifts,
    /// A store overwritten by a later store to the same row with no
    /// intervening read is dropped.
    EliminateDeadStores,
    /// Cost-guided list scheduling: macro-ops are reordered (within
    /// SSA, row, reduce-order and lane-config dependencies) so each
    /// value's consumer follows its producer and reads it from the Tmp
    /// Reg instead of a spill row.
    Schedule,
    /// Home-row layout analysis consumed by the allocation walk: a
    /// store whose target row is clobbered by a later store while the
    /// value is still live keeps a register/scratch copy at store time
    /// (one instruction, value already in the Tmp Reg) instead of
    /// rescuing it through an extra row read when the clobber lands —
    /// the clobber-rescue path becomes a cold fallback.
    Layout,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Pass::ExpandShifts => "expand_shifts",
            Pass::Peephole => "peephole",
            Pass::FuseShifts => "fuse_shifts",
            Pass::EliminateDeadStores => "dse",
            Pass::Schedule => "schedule",
            Pass::Layout => "layout",
        };
        f.write_str(name)
    }
}

/// The pass list [`lower()`] runs at `level`, in execution order.
///
/// `Naive` runs only [`Pass::ExpandShifts`] — it is the paper's
/// unoptimized baseline and must stay cycle-identical to it. `Opt` and
/// `MultiReg` run the full rewrite + schedule + layout pipeline.
#[must_use]
pub fn pass_pipeline(level: LowerLevel) -> &'static [Pass] {
    const NAIVE: &[Pass] = &[Pass::ExpandShifts];
    const OPT: &[Pass] = &[
        Pass::Peephole,
        Pass::FuseShifts,
        Pass::EliminateDeadStores,
        Pass::Schedule,
        Pass::Layout,
    ];
    match level {
        LowerLevel::Naive => NAIVE,
        LowerLevel::Opt | LowerLevel::MultiReg(_) => OPT,
    }
}

/// Before/after measurements of one pipeline stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassStats {
    /// The stage.
    pub pass: Pass,
    /// Macro-ops entering the stage.
    pub ops_in: usize,
    /// Macro-ops leaving the stage.
    pub ops_out: usize,
    /// Total lane-shift distance (Σ |pix| over stand-alone and fused
    /// shifts) entering the stage.
    pub shift_distance_in: u64,
    /// Total lane-shift distance leaving the stage.
    pub shift_distance_out: u64,
}

/// Per-pass attribution of one lowering, returned by
/// [`lower_with_report`] so cycle regressions are attributable to a
/// single stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LowerReport {
    /// The level lowered at.
    pub level: LowerLevel,
    /// One entry per executed pipeline stage, in execution order.
    pub passes: Vec<PassStats>,
    /// Machine instructions emitted.
    pub instrs: usize,
    /// Spill write-backs to scratch rows (SRAM writes).
    pub spill_writebacks: usize,
    /// Spills into extra Tmp registers ([`MachineInstr::SaveTmp`]).
    pub reg_saves: usize,
    /// Times the cold clobber-rescue path copied a live value out of a
    /// row about to be overwritten (with [`Pass::Layout`] in the
    /// pipeline this should be zero for well-laid-out programs).
    pub rescues: usize,
    /// Layout-planned copies made at store time instead of rescue time.
    pub planned_spills: usize,
}

impl fmt::Display for LowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "lower report ({}):", self.level)?;
        for p in &self.passes {
            writeln!(
                f,
                "  {:<14} ops {:>3} -> {:<3} shift-dist {:>3} -> {}",
                p.pass.to_string(),
                p.ops_in,
                p.ops_out,
                p.shift_distance_in,
                p.shift_distance_out
            )?;
        }
        writeln!(
            f,
            "  emit           {} instrs, {} spill wb, {} reg saves, {} rescues, {} planned spills",
            self.instrs, self.spill_writebacks, self.reg_saves, self.rescues, self.planned_spills
        )
    }
}

/// Total lane-shift distance of a program: Σ |pix| over stand-alone
/// [`MacroOp::ShiftPix`] ops and fused [`MacroOp::Alu`] lane
/// pre-shifts.
fn shift_distance(prog: &PimProgram) -> u64 {
    prog.ops()
        .iter()
        .map(|op| match *op {
            MacroOp::ShiftPix { pix, .. } => pix.unsigned_abs() as u64,
            MacroOp::Alu { shift, .. } => shift.unsigned_abs() as u64,
            _ => 0,
        })
        .sum()
}

/// Lowers `prog` to machine instructions at `level`, spilling into
/// `scratch`. Runs the standard [`pass_pipeline`] for the level.
///
/// # Errors
///
/// [`LowerError::OutOfScratch`] when the scratch pool cannot hold the
/// live intermediates, [`LowerError::ScratchOverlap`] when the pool
/// collides with rows the program reads or stores to,
/// [`LowerError::RegisterDepth`] for a [`LowerLevel::MultiReg`] depth
/// outside `1..=`[`MAX_TMP_REGS`],
/// [`LowerError::UseBeforeDef`] / [`LowerError::StoreHazard`] for
/// malformed programs.
pub fn lower(
    prog: &PimProgram,
    level: LowerLevel,
    scratch: &ScratchRows,
) -> Result<LoweredProgram, LowerError> {
    Ok(lower_impl(prog, level, scratch, pass_pipeline(level))?.0)
}

/// [`lower`] plus the per-pass [`LowerReport`].
///
/// # Errors
///
/// Same conditions as [`lower`].
pub fn lower_with_report(
    prog: &PimProgram,
    level: LowerLevel,
    scratch: &ScratchRows,
) -> Result<(LoweredProgram, LowerReport), LowerError> {
    lower_impl(prog, level, scratch, pass_pipeline(level))
}

/// Lowers with an explicit pass list instead of the standard
/// [`pass_pipeline`] — the prefix-testing entry point: every prefix of
/// the pipeline must produce a program bit-identical to the scalar
/// reference. Passes run in the order given.
///
/// # Errors
///
/// Same conditions as [`lower`].
pub fn lower_with_passes(
    prog: &PimProgram,
    level: LowerLevel,
    scratch: &ScratchRows,
    passes: &[Pass],
) -> Result<LoweredProgram, LowerError> {
    Ok(lower_impl(prog, level, scratch, passes)?.0)
}

fn lower_impl(
    prog: &PimProgram,
    level: LowerLevel,
    scratch: &ScratchRows,
    passes: &[Pass],
) -> Result<(LoweredProgram, LowerReport), LowerError> {
    if let LowerLevel::MultiReg(n) = level {
        if n == 0 || n > MAX_TMP_REGS {
            return Err(LowerError::RegisterDepth {
                requested: n,
                max: MAX_TMP_REGS,
            });
        }
    }
    check_store_hazards(prog)?;
    check_scratch_overlap(prog, scratch)?;
    let mut processed = prog.clone();
    let mut pass_stats = Vec::with_capacity(passes.len());
    let mut layout = false;
    for &p in passes {
        let (ops_in, sd_in) = (processed.ops().len(), shift_distance(&processed));
        processed = match p {
            Pass::ExpandShifts => expand_shifts(&processed),
            Pass::Peephole => peephole(&processed),
            Pass::FuseShifts => fuse_shifts(&processed),
            Pass::EliminateDeadStores => eliminate_dead_stores(&processed),
            Pass::Schedule => schedule(&processed),
            // analysis only; consumed by the allocation walk below
            Pass::Layout => {
                layout = true;
                processed
            }
        };
        pass_stats.push(PassStats {
            pass: p,
            ops_in,
            ops_out: processed.ops().len(),
            shift_distance_in: sd_in,
            shift_distance_out: shift_distance(&processed),
        });
    }
    let reg_slots = match level {
        LowerLevel::MultiReg(n) => n.saturating_sub(1) as usize,
        _ => 0,
    };
    let nv = processed.vreg_count() as usize;
    let mut store_row = vec![None; nv];
    for op in processed.ops() {
        if let MacroOp::Store { src, row } = *op {
            let s = src.index() as usize;
            if store_row[s].is_none() {
                store_row[s] = Some(row);
            }
        }
    }
    let mut uses = vec![Vec::new(); nv];
    for (i, op) in processed.ops().iter().enumerate() {
        for s in op.sources() {
            if let Val::V(v) = s {
                uses[v.index() as usize].push(i);
            }
        }
    }
    // the paper's naive baseline is left untouched by layout planning
    let plan = if layout && level != LowerLevel::Naive {
        layout_plan(processed.ops(), &uses)
    } else {
        vec![false; processed.ops().len()]
    };
    let walker = Walker {
        naive: level == LowerLevel::Naive,
        name: prog.name().to_string(),
        uses,
        store_row,
        scratch: scratch.rows().iter().map(|&r| (r, None)).collect(),
        regs: vec![None; reg_slots],
        tmp: None,
        in_reg: vec![None; nv],
        in_row: vec![None; nv],
        home: vec![None; nv],
        plan,
        stats: WalkStats::default(),
        out: Vec::new(),
    };
    let (ops, wstats) = walker.run(processed.ops())?;
    let report = LowerReport {
        level,
        passes: pass_stats,
        instrs: ops.len(),
        spill_writebacks: wstats.spills,
        reg_saves: wstats.reg_saves,
        rescues: wstats.rescues,
        planned_spills: wstats.planned,
    };
    Ok((
        LoweredProgram {
            name: prog.name().to_string(),
            level,
            ops,
            reduce_count: prog.reduce_count(),
        },
        report,
    ))
}

/// Rejects programs where a store's target row is read between the
/// stored value's definition and the store itself: eager levels write
/// results to their home row at the defining op, so such a read would
/// observe different contents per level.
fn check_store_hazards(prog: &PimProgram) -> Result<(), LowerError> {
    let ops = prog.ops();
    let mut def_at = vec![None; prog.vreg_count() as usize];
    for (i, op) in ops.iter().enumerate() {
        if let Some(d) = op.dst() {
            def_at[d.index() as usize] = Some(i);
        }
        if let MacroOp::Store { src, row } = *op {
            let Some(d) = def_at[src.index() as usize] else {
                return Err(LowerError::UseBeforeDef { op: i });
            };
            if ops[d + 1..i].iter().any(|o| o.reads_row(row)) {
                return Err(LowerError::StoreHazard { op: i, row });
            }
        }
    }
    Ok(())
}

/// Rejects scratch pools that overlap any row the program reads or
/// stores to — the [`ScratchRows`] contract; a spill into such a row
/// would silently corrupt program data at allocation time.
fn check_scratch_overlap(prog: &PimProgram, scratch: &ScratchRows) -> Result<(), LowerError> {
    let mut touched = Vec::new();
    for op in prog.ops() {
        for s in op.sources() {
            if let Val::Row(r) = s {
                touched.push(r);
            }
        }
        if let MacroOp::Store { row, .. } = *op {
            touched.push(row);
        }
    }
    for &row in scratch.rows() {
        if touched.contains(&row) {
            return Err(LowerError::ScratchOverlap { row });
        }
    }
    Ok(())
}

/// Naive-level pre-pass: fused ALU lane shifts become stand-alone
/// shift ops on a fresh register (each costing a shift cycle plus a
/// write-back once allocated).
fn expand_shifts(prog: &PimProgram) -> PimProgram {
    let mut ops = Vec::with_capacity(prog.ops().len());
    let mut next = prog.vreg_count();
    for op in prog.ops() {
        match *op {
            MacroOp::Alu {
                op: o,
                a,
                b,
                shift,
                dst,
            } if shift != 0 => {
                let t = VReg::from_raw(next);
                next += 1;
                ops.push(MacroOp::ShiftPix {
                    a: b,
                    pix: shift,
                    dst: t,
                });
                ops.push(MacroOp::Alu {
                    op: o,
                    a,
                    b: Val::V(t),
                    shift: 0,
                    dst,
                });
            }
            ref other => ops.push(other.clone()),
        }
    }
    prog.with_ops(ops, next)
}

fn commutative(op: AluOp) -> bool {
    matches!(
        op,
        AluOp::Logic(_)
            | AluOp::Add
            | AluOp::SatAdd
            | AluOp::Avg
            | AluOp::AbsDiff
            | AluOp::Max
            | AluOp::Min
    )
}

/// Opt-level pass: a stand-alone lane shift whose single consumer is
/// an unshifted ALU op folds into that op's lane pre-shift (swapping
/// operands when the shifted value sits on the non-shiftable side of a
/// commutative op), saving the shift cycle.
fn fuse_shifts(prog: &PimProgram) -> PimProgram {
    let src_ops = prog.ops();
    let mut ops: Vec<Option<MacroOp>> = src_ops.iter().cloned().map(Some).collect();
    let mut uses = vec![Vec::new(); prog.vreg_count() as usize];
    for (i, op) in src_ops.iter().enumerate() {
        for s in op.sources() {
            if let Val::V(v) = s {
                uses[v.index() as usize].push(i);
            }
        }
    }
    for i in 0..ops.len() {
        let Some(MacroOp::ShiftPix { a, pix, dst }) = ops[i].clone() else {
            continue;
        };
        let u = &uses[dst.index() as usize];
        if u.len() != 1 {
            continue;
        }
        let j = u[0];
        let Some(MacroOp::Alu {
            op: aop,
            a: aa,
            b: bb,
            shift,
            dst: d2,
        }) = ops[j].clone()
        else {
            continue;
        };
        if shift != 0 {
            continue;
        }
        // The shift's source must be unchanged between the shift and
        // the consumer (vreg sources are SSA; row sources must not be
        // stored over in between).
        if let Val::Row(r) = a {
            let overwritten = ops[i + 1..j]
                .iter()
                .any(|o| matches!(o, Some(MacroOp::Store { row, .. }) if *row == r));
            if overwritten {
                continue;
            }
        }
        let fused = if bb == Val::V(dst) && aa != Val::V(dst) {
            Some(MacroOp::Alu {
                op: aop,
                a: aa,
                b: a,
                shift: pix,
                dst: d2,
            })
        } else if aa == Val::V(dst) && bb != Val::V(dst) && commutative(aop) {
            Some(MacroOp::Alu {
                op: aop,
                a: bb,
                b: a,
                shift: pix,
                dst: d2,
            })
        } else {
            None
        };
        if let Some(fop) = fused {
            ops[j] = Some(fop);
            ops[i] = None;
        }
    }
    let fused: Vec<MacroOp> = ops.into_iter().flatten().collect();
    prog.with_ops(fused, prog.vreg_count())
}

/// Opt-level pass: a store to a row that is stored to again with no
/// intervening read of that row is dead and dropped.
fn eliminate_dead_stores(prog: &PimProgram) -> PimProgram {
    let ops = prog.ops();
    let mut keep = vec![true; ops.len()];
    for (i, op) in ops.iter().enumerate() {
        let MacroOp::Store { row, .. } = *op else {
            continue;
        };
        for later in &ops[i + 1..] {
            if later.reads_row(row) {
                break;
            }
            if matches!(later, MacroOp::Store { row: r2, .. } if *r2 == row) {
                keep[i] = false;
                break;
            }
        }
    }
    let kept: Vec<MacroOp> = ops
        .iter()
        .zip(&keep)
        .filter(|&(_, &k)| k)
        .map(|(op, _)| op.clone())
        .collect();
    prog.with_ops(kept, prog.vreg_count())
}

/// ALU ops for which `f(x, x) == x` (idempotent on equal operands).
fn alu_identity(op: AluOp) -> bool {
    matches!(
        op,
        AluOp::Logic(LogicFunc::Or)
            | AluOp::Logic(LogicFunc::And)
            | AluOp::Max
            | AluOp::Min
            | AluOp::Avg
    )
}

/// Replaces reads of virtual register `from` with `to` in one op.
fn subst_vreg(op: &mut MacroOp, from: VReg, to: VReg) {
    let fix = |v: &mut Val| {
        if *v == Val::V(from) {
            *v = Val::V(to);
        }
    };
    match op {
        MacroOp::Alu { a, b, .. } | MacroOp::Mul { a, b, .. } | MacroOp::DivFrac { a, b, .. } => {
            fix(a);
            fix(b);
        }
        MacroOp::ShiftPix { a, .. }
        | MacroOp::ShrBits { a, .. }
        | MacroOp::ShlBits { a, .. }
        | MacroOp::Neg { a, .. }
        | MacroOp::SatNarrow { a, .. }
        | MacroOp::Load { a, .. }
        | MacroOp::Reduce { a } => fix(a),
        MacroOp::Store { src, .. } => {
            if *src == from {
                *src = to;
            }
        }
        MacroOp::SetLanes { .. } => {}
    }
}

/// [`Pass::Peephole`]: rewrite rules over the typed IR, swept to
/// fixpoint (each rule strictly simplifies, so a handful of sweeps
/// converges; the bound is a safety net).
fn peephole(prog: &PimProgram) -> PimProgram {
    let mut cur = prog.clone();
    for _ in 0..8 {
        let (next, changed) = peephole_once(&cur);
        cur = next;
        if !changed {
            break;
        }
    }
    cur
}

fn peephole_once(prog: &PimProgram) -> (PimProgram, bool) {
    let src_ops = prog.ops();
    let nv = prog.vreg_count() as usize;
    let mut ops: Vec<Option<MacroOp>> = src_ops.iter().cloned().map(Some).collect();
    let mut changed = false;
    let mut uses: Vec<Vec<usize>> = vec![Vec::new(); nv];
    let mut def_at: Vec<Option<usize>> = vec![None; nv];
    for (i, op) in src_ops.iter().enumerate() {
        for s in op.sources() {
            if let Val::V(v) = s {
                uses[v.index() as usize].push(i);
            }
        }
        if let Some(d) = op.dst() {
            def_at[d.index() as usize] = Some(i);
        }
    }
    // no-op shifts and same-operand idempotent ALU ops become copies
    for slot in ops.iter_mut() {
        let rewritten = match slot {
            Some(MacroOp::ShiftPix { a, pix: 0, dst })
            | Some(MacroOp::ShrBits { a, k: 0, dst })
            | Some(MacroOp::ShlBits { a, k: 0, dst }) => Some(MacroOp::Load { a: *a, dst: *dst }),
            Some(MacroOp::Alu {
                op,
                a,
                b,
                shift: 0,
                dst,
            }) if a == b && alu_identity(*op) => Some(MacroOp::Load { a: *a, dst: *dst }),
            _ => None,
        };
        if let Some(r) = rewritten {
            *slot = Some(r);
            changed = true;
        }
    }
    // shift-of-shift composition: a single-use shift feeding another
    // shift of the same kind folds into one. The source must be
    // unchanged in between: no lane reconfiguration (shift semantics
    // are lane-relative) and, for a row source, no store to that row.
    let path_clear = |ops: &[Option<MacroOp>], k: usize, i: usize, src: Val| -> bool {
        ops[k + 1..i].iter().flatten().all(|o| {
            if matches!(o, MacroOp::SetLanes { .. }) {
                return false;
            }
            match src {
                Val::Row(r) => !matches!(o, MacroOp::Store { row, .. } if *row == r),
                Val::V(_) => true,
            }
        })
    };
    let single_use_def = |v: VReg| -> Option<usize> {
        let x = v.index() as usize;
        if uses[x].len() != 1 {
            return None;
        }
        def_at[x]
    };
    for i in 0..ops.len() {
        let Some(op_i) = ops[i].clone() else { continue };
        match op_i {
            MacroOp::ShiftPix {
                a: Val::V(v),
                pix: p2,
                dst,
            } => {
                let Some(k) = single_use_def(v) else { continue };
                let Some(MacroOp::ShiftPix {
                    a: src, pix: p1, ..
                }) = ops[k].clone()
                else {
                    continue;
                };
                // pixel shifts fill vacated edge lanes with zeros, so
                // they compose only when both move the same direction
                if !(p1 == 0 || p2 == 0 || (p1 < 0) == (p2 < 0)) {
                    continue;
                }
                if !path_clear(&ops, k, i, src) {
                    continue;
                }
                let sum = p1 + p2;
                ops[i] = Some(if sum == 0 {
                    MacroOp::Load { a: src, dst }
                } else {
                    MacroOp::ShiftPix {
                        a: src,
                        pix: sum,
                        dst,
                    }
                });
                ops[k] = None;
                changed = true;
            }
            MacroOp::ShrBits {
                a: Val::V(v),
                k: k2,
                dst,
            } => {
                let Some(kidx) = single_use_def(v) else {
                    continue;
                };
                let Some(MacroOp::ShrBits { a: src, k: k1, .. }) = ops[kidx].clone() else {
                    continue;
                };
                if k1 + k2 >= 64 || !path_clear(&ops, kidx, i, src) {
                    continue;
                }
                ops[i] = Some(MacroOp::ShrBits {
                    a: src,
                    k: k1 + k2,
                    dst,
                });
                ops[kidx] = None;
                changed = true;
            }
            MacroOp::ShlBits {
                a: Val::V(v),
                k: k2,
                dst,
            } => {
                let Some(kidx) = single_use_def(v) else {
                    continue;
                };
                let Some(MacroOp::ShlBits { a: src, k: k1, .. }) = ops[kidx].clone() else {
                    continue;
                };
                if k1 + k2 >= 64 || !path_clear(&ops, kidx, i, src) {
                    continue;
                }
                ops[i] = Some(MacroOp::ShlBits {
                    a: src,
                    k: k1 + k2,
                    dst,
                });
                ops[kidx] = None;
                changed = true;
            }
            _ => {}
        }
    }
    // register-to-register copy propagation (row loads stay: moving a
    // row read across stores would change the value observed)
    for i in 0..ops.len() {
        let Some(MacroOp::Load { a: Val::V(v), dst }) = ops[i].clone() else {
            continue;
        };
        for later in ops[i + 1..].iter_mut().flatten() {
            subst_vreg(later, dst, v);
        }
        ops[i] = None;
        changed = true;
    }
    // dead definitions disappear (cascading chains converge across
    // the outer fixpoint sweeps)
    let mut used = vec![false; nv];
    for op in ops.iter().flatten() {
        for s in op.sources() {
            if let Val::V(v) = s {
                used[v.index() as usize] = true;
            }
        }
    }
    for slot in ops.iter_mut() {
        let dead = matches!(slot, Some(op) if op.dst().is_some_and(|d| !used[d.index() as usize]));
        if dead {
            *slot = None;
            changed = true;
        }
    }
    let kept: Vec<MacroOp> = ops.into_iter().flatten().collect();
    (prog.with_ops(kept, prog.vreg_count()), changed)
}

/// [`Pass::Schedule`]: cost-guided list scheduling. Macro-ops are
/// reordered — within SSA, row, reduce-order and lane-configuration
/// dependencies — so each value's producer sits as close as possible
/// before its consumer, letting the allocation walk read it from the
/// Tmp Reg instead of spilling it to a scratch row.
///
/// Priorities come from a DFS post-order over operand chains rooted at
/// the side-effecting ops: an op's operand subtrees are visited
/// most-remaining-uses-first, so the operand cheapest to keep live (a
/// single-use value) is computed last and rides the Tmp Reg into its
/// consumer. A Kahn walk then emits ready ops by minimum priority,
/// tie-broken by original index — fully deterministic.
fn schedule(prog: &PimProgram) -> PimProgram {
    let src = prog.ops();
    let nv = prog.vreg_count() as usize;
    let mut store_row = vec![None; nv];
    for op in src {
        if let MacroOp::Store { src: s, row } = *op {
            let x = s.index() as usize;
            if store_row[x].is_none() {
                store_row[x] = Some(row);
            }
        }
    }
    let mut use_count = vec![0usize; nv];
    for op in src {
        for s in op.sources() {
            if let Val::V(v) = s {
                use_count[v.index() as usize] += 1;
            }
        }
    }
    let mut out = Vec::with_capacity(src.len());
    let mut seg_start = 0;
    // SetLanes ops are barriers: every op's semantics depend on the
    // current lane configuration, so segments never cross one
    for i in 0..=src.len() {
        let barrier = i == src.len() || matches!(src[i], MacroOp::SetLanes { .. });
        if !barrier {
            continue;
        }
        schedule_segment(&src[seg_start..i], &store_row, &use_count, &mut out);
        if i < src.len() {
            out.push(src[i].clone());
        }
        seg_start = i + 1;
    }
    prog.with_ops(out, prog.vreg_count())
}

fn schedule_segment(
    seg: &[MacroOp],
    store_row: &[Option<usize>],
    use_count: &[usize],
    out: &mut Vec<MacroOp>,
) {
    let n = seg.len();
    if n <= 1 {
        out.extend(seg.iter().cloned());
        return;
    }
    let mut def_at: HashMap<u32, usize> = HashMap::new();
    for (j, op) in seg.iter().enumerate() {
        if let Some(d) = op.dst() {
            def_at.insert(d.index(), j);
        }
    }
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    fn add_edge(succ: &mut [Vec<usize>], indeg: &mut [usize], a: usize, b: usize) {
        if a != b && !succ[a].contains(&b) {
            succ[a].push(b);
            indeg[b] += 1;
        }
    }
    // SSA def -> use
    for (j, op) in seg.iter().enumerate() {
        for s in op.sources() {
            if let Val::V(v) = s {
                if let Some(&d) = def_at.get(&v.index()) {
                    add_edge(&mut succ, &mut indeg, d, j);
                }
            }
        }
    }
    // row RAW/WAR/WAW. Writers are stores — and defs whose destination
    // has a home row, because a naive-level walk writes the home row at
    // the defining op (conservative but required for the pass to be
    // sound under arbitrary pass lists, and nearly free at Opt where
    // intermediates have no home).
    let mut row_events: BTreeMap<usize, Vec<(usize, bool)>> = BTreeMap::new();
    for (j, op) in seg.iter().enumerate() {
        for s in op.sources() {
            if let Val::Row(r) = s {
                row_events.entry(r).or_default().push((j, false));
            }
        }
        let written = match *op {
            MacroOp::Store { row, .. } => Some(row),
            _ => op.dst().and_then(|d| store_row[d.index() as usize]),
        };
        if let Some(r) = written {
            row_events.entry(r).or_default().push((j, true));
        }
    }
    for events in row_events.values() {
        for (x, &(j1, w1)) in events.iter().enumerate() {
            for &(j2, w2) in &events[x + 1..] {
                if w1 || w2 {
                    add_edge(&mut succ, &mut indeg, j1, j2);
                }
            }
        }
    }
    // reduce results come back in program order
    let mut last_reduce: Option<usize> = None;
    for (j, op) in seg.iter().enumerate() {
        if matches!(op, MacroOp::Reduce { .. }) {
            if let Some(p) = last_reduce {
                add_edge(&mut succ, &mut indeg, p, j);
            }
            last_reduce = Some(j);
        }
    }
    // DFS post-order priorities over operand chains
    let children: Vec<Vec<usize>> = seg
        .iter()
        .map(|op| {
            let mut c: Vec<(usize, usize)> = op
                .sources()
                .iter()
                .filter_map(|s| match s {
                    Val::V(v) => def_at
                        .get(&v.index())
                        .map(|&d| (d, use_count[v.index() as usize])),
                    _ => None,
                })
                .collect();
            // stable sort: ties keep operand order (`a` first, `b` last)
            c.sort_by_key(|&(_, uses)| std::cmp::Reverse(uses));
            c.into_iter().map(|(d, _)| d).collect()
        })
        .collect();
    let mut prio = vec![usize::MAX; n];
    let mut counter = 0usize;
    let mut visited = vec![false; n];
    let mut roots: Vec<usize> = (0..n)
        .filter(|&j| matches!(seg[j], MacroOp::Store { .. } | MacroOp::Reduce { .. }))
        .collect();
    roots.extend(0..n);
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for root in roots {
        if visited[root] {
            continue;
        }
        visited[root] = true;
        stack.push((root, 0));
        while let Some(top) = stack.last_mut() {
            let (node, cursor) = (top.0, top.1);
            if cursor < children[node].len() {
                top.1 += 1;
                let c = children[node][cursor];
                if !visited[c] {
                    visited[c] = true;
                    stack.push((c, 0));
                }
            } else {
                stack.pop();
                prio[node] = counter;
                counter += 1;
            }
        }
    }
    // Kahn list scheduling: emit the ready op with minimum priority
    let mut ready: Vec<usize> = (0..n).filter(|&j| indeg[j] == 0).collect();
    for _ in 0..n {
        let (pos, &best) = ready
            .iter()
            .enumerate()
            .min_by_key(|&(_, &j)| (prio[j], j))
            .expect("dependency graph is acyclic");
        ready.swap_remove(pos);
        out.push(seg[best].clone());
        for &s in &succ[best] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
}

/// [`Pass::Layout`] analysis: for each store, whether the stored value
/// outlives a later store that clobbers the same row. Such values keep
/// a register/scratch copy at store time (one instruction — the value
/// is already in the Tmp Reg) so the clobber never triggers the
/// two-instruction rescue path.
fn layout_plan(ops: &[MacroOp], uses: &[Vec<usize>]) -> Vec<bool> {
    let mut plan = vec![false; ops.len()];
    for (i, op) in ops.iter().enumerate() {
        let MacroOp::Store { src, row } = *op else {
            continue;
        };
        let x = src.index() as usize;
        plan[i] = ops[i + 1..].iter().enumerate().any(|(d, later)| {
            let j = i + 1 + d;
            matches!(later, MacroOp::Store { row: r2, .. } if *r2 == row)
                && uses[x].iter().any(|&u| u > j)
        });
    }
    plan
}

/// Greedy forward allocation walk shared by all levels.
struct Walker {
    naive: bool,
    name: String,
    /// Use sites (op indices) per virtual register.
    uses: Vec<Vec<usize>>,
    /// First store target per virtual register (naive homes).
    store_row: Vec<Option<usize>>,
    /// Scratch pool: `(row, owner)`.
    scratch: Vec<(usize, Option<u32>)>,
    /// Extra-register slots (slot `k` is machine `Reg(k + 1)`).
    regs: Vec<Option<u32>>,
    /// Which register currently sits in the Tmp Reg.
    tmp: Option<u32>,
    in_reg: Vec<Option<u8>>,
    in_row: Vec<Option<usize>>,
    /// Naive home rows, assigned at the defining op.
    home: Vec<Option<usize>>,
    /// Per-op layout decisions from [`layout_plan`]: `plan[i]` on a
    /// store means "keep a surviving copy now, the row gets clobbered
    /// while the value is still live".
    plan: Vec<bool>,
    stats: WalkStats,
    out: Vec<LoweredOp>,
}

/// Spill/rescue counters accumulated by one allocation walk.
#[derive(Clone, Copy, Debug, Default)]
struct WalkStats {
    spills: usize,
    reg_saves: usize,
    rescues: usize,
    planned: usize,
}

impl Walker {
    fn run(mut self, ops: &[MacroOp]) -> Result<(Vec<LoweredOp>, WalkStats), LowerError> {
        for (i, op) in ops.iter().enumerate() {
            match *op {
                MacroOp::SetLanes { width, sign } => {
                    self.emit(MachineInstr::SetLanes { width, sign }, i);
                }
                MacroOp::Store { src, row } => self.lower_store(i, src, row)?,
                MacroOp::Reduce { a } => self.lower_reduce(i, a)?,
                _ => self.lower_def(i, op)?,
            }
        }
        Ok((self.out, self.stats))
    }

    fn emit(&mut self, instr: MachineInstr, ir_idx: usize) {
        self.out.push(LoweredOp {
            instr,
            label: format!("{}[{ir_idx}]", self.name),
        });
    }

    fn live_from(&self, v: u32, i: usize) -> bool {
        self.uses[v as usize].iter().any(|&u| u >= i)
    }

    /// Resolves a value to a machine operand. Naive reads home rows
    /// exclusively; Opt prefers the Tmp Reg, then extra registers,
    /// then rows.
    fn resolve(&self, val: Val, i: usize) -> Result<Operand, LowerError> {
        match val {
            Val::Row(r) => Ok(Operand::Row(r)),
            Val::V(v) => {
                let x = v.index() as usize;
                if self.naive {
                    return self.home[x]
                        .map(Operand::Row)
                        .ok_or(LowerError::UseBeforeDef { op: i });
                }
                if self.tmp == Some(v.index()) {
                    Ok(Operand::Tmp)
                } else if let Some(idx) = self.in_reg[x] {
                    Ok(Operand::Reg(idx))
                } else if let Some(r) = self.in_row[x] {
                    Ok(Operand::Row(r))
                } else {
                    Err(LowerError::UseBeforeDef { op: i })
                }
            }
        }
    }

    /// First scratch row whose owner is dead (or unset) at op `i`.
    fn alloc_scratch(&mut self, i: usize, new_owner: u32) -> Result<usize, LowerError> {
        for k in 0..self.scratch.len() {
            let (row, owner) = self.scratch[k];
            let free = match owner {
                None => true,
                Some(o) => !self.live_from(o, i),
            };
            if free {
                if let Some(o) = owner {
                    if self.in_row[o as usize] == Some(row) {
                        self.in_row[o as usize] = None;
                    }
                    if self.home[o as usize] == Some(row) {
                        self.home[o as usize] = None;
                    }
                }
                self.scratch[k].1 = Some(new_owner);
                return Ok(row);
            }
        }
        Err(LowerError::OutOfScratch { op: i })
    }

    /// First extra register whose owner is dead at op `i` (MultiReg
    /// only — the slot list is empty at other levels).
    fn alloc_reg(&mut self, i: usize, new_owner: u32) -> Option<u8> {
        for k in 0..self.regs.len() {
            let free = match self.regs[k] {
                None => true,
                Some(o) => !self.live_from(o, i),
            };
            if free {
                if let Some(o) = self.regs[k] {
                    self.in_reg[o as usize] = None;
                }
                self.regs[k] = Some(new_owner);
                return Some((k + 1) as u8);
            }
        }
        None
    }

    /// Spills the Tmp Reg's current value before an op clobbers it, if
    /// the value is used at or after op `from` and has no other
    /// location. MultiReg prefers a free extra register (one register
    /// cycle, no SRAM write) over a scratch-row write-back.
    fn spill_tmp_from(&mut self, i: usize, from: usize) -> Result<(), LowerError> {
        let Some(v) = self.tmp else {
            return Ok(());
        };
        let x = v as usize;
        let needed = self.uses[x].iter().any(|&u| u >= from);
        if !needed || self.in_reg[x].is_some() || self.in_row[x].is_some() {
            return Ok(());
        }
        if let Some(idx) = self.alloc_reg(i, v) {
            self.emit(MachineInstr::SaveTmp { idx }, i);
            self.in_reg[x] = Some(idx);
            self.stats.reg_saves += 1;
        } else {
            let row = self.alloc_scratch(i, v)?;
            self.emit(MachineInstr::Writeback { row }, i);
            self.in_row[x] = Some(row);
            self.stats.spills += 1;
        }
        Ok(())
    }

    /// [`Walker::spill_tmp_from`] for the common case: the Tmp value
    /// only matters if used strictly after op `i`.
    fn spill_tmp(&mut self, i: usize) -> Result<(), LowerError> {
        self.spill_tmp_from(i, i + 1)
    }

    /// Drops a virtual register's claim on `row` (both the Opt location
    /// cache and the naive home).
    fn forget_row(&mut self, x: usize, row: usize) {
        if self.in_row[x] == Some(row) {
            self.in_row[x] = None;
        }
        if self.home[x] == Some(row) {
            self.home[x] = None;
        }
    }

    /// Relocates every virtual register other than `keep` whose cached
    /// location is `row` before an imminent [`MachineInstr::Writeback`]
    /// clobbers that row. Dead values and values with another location
    /// just forget the row; a live, row-only value is copied out
    /// through the Tmp Reg into an extra register or a scratch row
    /// (spilling a still-needed Tmp occupant first), so storing to an
    /// already-cached row can never silently corrupt an earlier
    /// still-live result.
    fn rescue_row(&mut self, i: usize, row: usize, keep: u32) -> Result<(), LowerError> {
        for v in 0..self.in_row.len() as u32 {
            let x = v as usize;
            if v == keep || (self.in_row[x] != Some(row) && self.home[x] != Some(row)) {
                continue;
            }
            if !self.live_from(v, i + 1) {
                // dead after this op; keep the mapping only while the
                // current op still reads it (the clobbering write-back
                // lands after the op's operands are consumed)
                if !self.uses[x].contains(&i) {
                    self.forget_row(x, row);
                }
                continue;
            }
            if self.tmp == Some(v) || self.in_reg[x].is_some() {
                self.forget_row(x, row);
                continue;
            }
            // the row holds the value's only copy: route it through
            // the Tmp Reg (preserving a Tmp value still used at `i`)
            self.stats.rescues += 1;
            self.spill_tmp_from(i, i)?;
            self.emit(
                MachineInstr::Alu {
                    op: AluOp::Logic(LogicFunc::Or),
                    a: Operand::Row(row),
                    b: Operand::Row(row),
                    shift: Shift::None,
                },
                i,
            );
            self.forget_row(x, row);
            self.tmp = Some(v);
            if let Some(idx) = self.alloc_reg(i, v) {
                self.emit(MachineInstr::SaveTmp { idx }, i);
                self.in_reg[x] = Some(idx);
                self.stats.reg_saves += 1;
            } else {
                let r2 = self.alloc_scratch(i, v)?;
                self.emit(MachineInstr::Writeback { row: r2 }, i);
                self.in_row[x] = Some(r2);
                self.stats.spills += 1;
                if self.naive {
                    self.home[x] = Some(r2);
                }
            }
        }
        Ok(())
    }

    fn build_instr(&self, op: &MacroOp, i: usize) -> Result<MachineInstr, LowerError> {
        Ok(match *op {
            MacroOp::Alu {
                op: o, a, b, shift, ..
            } => MachineInstr::Alu {
                op: o,
                a: self.resolve(a, i)?,
                b: self.resolve(b, i)?,
                shift: if shift == 0 {
                    Shift::None
                } else {
                    Shift::Pix(shift)
                },
            },
            MacroOp::ShiftPix { a, pix, .. } => MachineInstr::ShiftPix {
                a: self.resolve(a, i)?,
                pix,
            },
            MacroOp::ShrBits { a, k, .. } => MachineInstr::ShrBits {
                a: self.resolve(a, i)?,
                k,
            },
            MacroOp::ShlBits { a, k, .. } => MachineInstr::ShlBits {
                a: self.resolve(a, i)?,
                k,
            },
            MacroOp::Neg { a, .. } => MachineInstr::Neg {
                a: self.resolve(a, i)?,
            },
            MacroOp::SatNarrow { a, bits, .. } => MachineInstr::SatNarrow {
                a: self.resolve(a, i)?,
                bits,
            },
            MacroOp::Mul { a, b, signed, .. } => MachineInstr::Mul {
                a: self.resolve(a, i)?,
                b: self.resolve(b, i)?,
                signed,
            },
            MacroOp::DivFrac {
                a, b, frac, signed, ..
            } => MachineInstr::DivFrac {
                a: self.resolve(a, i)?,
                b: self.resolve(b, i)?,
                frac,
                signed,
            },
            MacroOp::Load { a, .. } => {
                let x = self.resolve(a, i)?;
                MachineInstr::Alu {
                    op: AluOp::Logic(LogicFunc::Or),
                    a: x,
                    b: x,
                    shift: Shift::None,
                }
            }
            MacroOp::SetLanes { .. } | MacroOp::Store { .. } | MacroOp::Reduce { .. } => {
                unreachable!("handled by the walk")
            }
        })
    }

    fn lower_def(&mut self, i: usize, op: &MacroOp) -> Result<(), LowerError> {
        let dst = op.dst().expect("def op has a destination");
        let d = dst.index() as usize;
        if self.naive {
            let home = match self.store_row[d] {
                Some(r) => r,
                None => self.alloc_scratch(i, dst.index())?,
            };
            // rescue uses the Tmp Reg, so it must precede the op that
            // leaves this def's result there
            self.rescue_row(i, home, dst.index())?;
            let instr = self.build_instr(op, i)?;
            self.emit(instr, i);
            self.emit(MachineInstr::Writeback { row: home }, i);
            self.home[d] = Some(home);
            self.in_row[d] = Some(home);
        } else {
            self.spill_tmp(i)?;
            let instr = self.build_instr(op, i)?;
            self.emit(instr, i);
            self.tmp = Some(dst.index());
        }
        Ok(())
    }

    fn lower_store(&mut self, i: usize, src: VReg, row: usize) -> Result<(), LowerError> {
        let s = src.index() as usize;
        if self.naive {
            // The defining op already wrote its home row; only a store
            // to a *different* row needs a copy.
            if self.home[s] == Some(row) {
                return Ok(());
            }
            self.rescue_row(i, row, src.index())?;
            let a = self.resolve(Val::V(src), i)?;
            self.emit(
                MachineInstr::Alu {
                    op: AluOp::Logic(LogicFunc::Or),
                    a,
                    b: a,
                    shift: Shift::None,
                },
                i,
            );
            self.emit(MachineInstr::Writeback { row }, i);
            return Ok(());
        }
        if self.tmp == Some(src.index()) {
            self.rescue_row(i, row, src.index())?;
            if self.tmp == Some(src.index()) {
                self.emit(MachineInstr::Writeback { row }, i);
                self.finish_store(i, s, row)?;
                return Ok(());
            }
            // the rescue displaced src from the Tmp Reg (spilling it to
            // a register or scratch row first); re-materialize below
        } else if self.in_row[s] == Some(row) {
            return Ok(());
        } else {
            self.rescue_row(i, row, src.index())?;
        }
        self.spill_tmp(i)?;
        let a = self.resolve(Val::V(src), i)?;
        self.emit(
            MachineInstr::Alu {
                op: AluOp::Logic(LogicFunc::Or),
                a,
                b: a,
                shift: Shift::None,
            },
            i,
        );
        self.tmp = Some(src.index());
        self.emit(MachineInstr::Writeback { row }, i);
        self.finish_store(i, s, row)?;
        Ok(())
    }

    /// Records where a just-stored value lives. Normally the target
    /// row is cached as the value's location; when [`layout_plan`]
    /// flagged this store (the row gets clobbered while the value is
    /// still live) the value instead keeps a register/scratch copy now
    /// — it is sitting in the Tmp Reg, so the copy is one instruction
    /// versus the two-instruction rescue at clobber time.
    fn finish_store(&mut self, i: usize, s: usize, row: usize) -> Result<(), LowerError> {
        if self.plan.get(i).copied().unwrap_or(false) {
            self.stats.planned += 1;
            self.spill_tmp(i)?;
        } else {
            self.in_row[s] = Some(row);
        }
        Ok(())
    }

    fn lower_reduce(&mut self, i: usize, a: Val) -> Result<(), LowerError> {
        let already_in_tmp = !self.naive && matches!(a, Val::V(v) if self.tmp == Some(v.index()));
        if already_in_tmp {
            // reduce_sum destroys the Tmp Reg; give the operand a
            // surviving location first when it has later uses
            self.spill_tmp(i)?;
        } else {
            if !self.naive {
                self.spill_tmp(i)?;
            }
            let x = self.resolve(a, i)?;
            self.emit(
                MachineInstr::Alu {
                    op: AluOp::Logic(LogicFunc::Or),
                    a: x,
                    b: x,
                    shift: Shift::None,
                },
                i,
            );
        }
        self.emit(MachineInstr::Reduce, i);
        // reduce_sum leaves the lane sum, not the operand, in Tmp
        self.tmp = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArrayConfig;
    use crate::machine::PimMachine;

    fn smooth() -> PimProgram {
        let mut p = PimProgram::new("smooth");
        let d = p.avg(Val::Row(0), Val::Row(1));
        let e = p.avg_sh(d.into(), d.into(), 1);
        p.store(e, 2);
        p
    }

    fn scratch() -> ScratchRows {
        ScratchRows::contiguous(100, 8)
    }

    #[test]
    fn opt_chains_through_tmp() {
        let l = lower(&smooth(), LowerLevel::Opt, &scratch()).unwrap();
        let instrs: Vec<&MachineInstr> = l.ops().iter().map(|o| &o.instr).collect();
        assert_eq!(instrs.len(), 3);
        assert!(matches!(
            instrs[1],
            MachineInstr::Alu {
                op: AluOp::Avg,
                a: Operand::Tmp,
                b: Operand::Tmp,
                shift: Shift::Pix(1),
            }
        ));
        assert_eq!(*instrs[2], MachineInstr::Writeback { row: 2 });
    }

    #[test]
    fn naive_expands_shifts_and_writes_everything_back() {
        let l = lower(&smooth(), LowerLevel::Naive, &scratch()).unwrap();
        // avg, wb, shift_pix, wb, avg, wb
        assert_eq!(l.ops().len(), 6);
        assert!(matches!(l.ops()[2].instr, MachineInstr::ShiftPix { .. }));
        assert_eq!(l.ops()[5].instr, MachineInstr::Writeback { row: 2 });
        // no Tmp operands anywhere at the naive level
        for op in l.ops() {
            if let MachineInstr::Alu { a, b, .. } = op.instr {
                assert!(!matches!(a, Operand::Tmp) && !matches!(b, Operand::Tmp));
            }
        }
    }

    #[test]
    fn all_levels_compute_identical_rows() {
        let mut build = PimProgram::new("mix");
        let d = build.abs_diff_sh(Val::Row(0), Val::Row(1), 2);
        let e = build.max(Val::Row(0), Val::Row(1));
        let f = build.min_sh(d.into(), e.into(), 1);
        let g = build.shift_pix(f.into(), -1);
        let h = build.cmp_gt(Val::Row(1), g.into());
        build.store(h, 3);

        let mut rows = Vec::new();
        for level in [LowerLevel::Naive, LowerLevel::Opt, LowerLevel::MultiReg(4)] {
            let mut m = PimMachine::new(ArrayConfig::default());
            if let LowerLevel::MultiReg(n) = level {
                m.set_tmp_regs(n);
            }
            m.host_write_lanes(0, &[9, 3, 200, 17, 4, 250, 0, 77])
                .unwrap();
            m.host_write_lanes(1, &[5, 100, 2, 90, 30, 1, 60, 8])
                .unwrap();
            let l = lower(&build, level, &scratch()).unwrap();
            m.run_program(&l).unwrap();
            rows.push(m.host_read_lanes(3)[..8].to_vec());
        }
        assert_eq!(rows[0], rows[1], "naive vs opt");
        assert_eq!(rows[1], rows[2], "opt vs multireg");
    }

    #[test]
    fn opt_is_cheaper_than_naive_and_multireg_writes_less() {
        let mut build = PimProgram::new("mix");
        let a = build.abs_diff_sh(Val::Row(0), Val::Row(1), 2);
        let b = build.abs_diff(Val::Row(0), Val::Row(1));
        let c = build.abs_diff_sh(Val::Row(1), Val::Row(0), -1);
        let d = build.avg(a.into(), b.into());
        let e = build.avg(d.into(), c.into());
        build.store(e, 3);

        let mut cycles = Vec::new();
        let mut writes = Vec::new();
        for level in [LowerLevel::Naive, LowerLevel::Opt, LowerLevel::MultiReg(4)] {
            let mut m = PimMachine::new(ArrayConfig::default());
            if let LowerLevel::MultiReg(n) = level {
                m.set_tmp_regs(n);
            }
            m.host_write_lanes(0, &[9, 3, 200, 17]).unwrap();
            m.host_write_lanes(1, &[5, 100, 2, 90]).unwrap();
            let l = lower(&build, level, &scratch()).unwrap();
            m.run_program(&l).unwrap();
            cycles.push(m.stats().cycles);
            writes.push(m.stats().sram_writes);
        }
        assert!(
            cycles[1] < cycles[0],
            "opt {} naive {}",
            cycles[1],
            cycles[0]
        );
        assert!(cycles[2] <= cycles[1], "multireg vs opt");
        assert!(writes[2] < writes[1], "multireg spills to registers");
    }

    #[test]
    fn adjacent_shift_fuses_into_consumer() {
        let mut build = PimProgram::new("f");
        let s = build.shift_pix(Val::Row(0), -1);
        let c = build.cmp_gt(Val::Row(1), s.into());
        build.store(c, 2);
        let l = lower(&build, LowerLevel::Opt, &scratch()).unwrap();
        // shift folded into cmp_gt's pre-shift: 2 instrs, not 3
        assert_eq!(l.ops().len(), 2);
        assert!(matches!(
            l.ops()[0].instr,
            MachineInstr::Alu {
                op: AluOp::CmpGt,
                shift: Shift::Pix(-1),
                ..
            }
        ));
    }

    #[test]
    fn commutative_fusion_swaps_operands() {
        let mut build = PimProgram::new("f");
        let s = build.shift_pix(Val::Row(0), 2);
        let c = build.and(s.into(), Val::Row(1));
        build.store(c, 2);
        let l = lower(&build, LowerLevel::Opt, &scratch()).unwrap();
        assert_eq!(l.ops().len(), 2);
        assert!(matches!(
            l.ops()[0].instr,
            MachineInstr::Alu {
                op: AluOp::Logic(LogicFunc::And),
                a: Operand::Row(1),
                b: Operand::Row(0),
                shift: Shift::Pix(2),
            }
        ));
    }

    #[test]
    fn fusion_blocked_by_intervening_store_to_source_row() {
        let mut build = PimProgram::new("f");
        let s = build.shift_pix(Val::Row(0), 1);
        let x = build.avg(Val::Row(1), Val::Row(2));
        build.store(x, 0); // overwrites the shift's source row
        let c = build.cmp_gt(Val::Row(1), s.into());
        build.store(c, 3);
        let l = lower(&build, LowerLevel::Opt, &scratch()).unwrap();
        assert!(
            l.ops()
                .iter()
                .any(|o| matches!(o.instr, MachineInstr::ShiftPix { .. })),
            "shift must stay stand-alone:\n{l}"
        );
    }

    #[test]
    fn dead_store_is_eliminated_at_opt_and_kept_at_naive() {
        let mut build = PimProgram::new("d");
        let a = build.avg(Val::Row(0), Val::Row(1));
        build.store(a, 5);
        let b = build.max(Val::Row(0), Val::Row(1));
        build.store(b, 5); // overwrites row 5 with no read in between
        let opt = lower(&build, LowerLevel::Opt, &scratch()).unwrap();
        let wb5 = opt
            .ops()
            .iter()
            .filter(|o| matches!(o.instr, MachineInstr::Writeback { row: 5 }))
            .count();
        assert_eq!(wb5, 1, "dead store dropped:\n{opt}");
        let naive = lower(&build, LowerLevel::Naive, &scratch()).unwrap();
        let wb5n = naive
            .ops()
            .iter()
            .filter(|o| matches!(o.instr, MachineInstr::Writeback { row: 5 }))
            .count();
        assert_eq!(wb5n, 2, "naive keeps every write:\n{naive}");
    }

    #[test]
    fn out_of_scratch_is_reported() {
        let mut build = PimProgram::new("s");
        let a = build.avg(Val::Row(0), Val::Row(1));
        let b = build.avg(Val::Row(0), Val::Row(2));
        let c = build.avg(Val::Row(0), Val::Row(3));
        let d = build.avg(a.into(), b.into());
        let e = build.avg(d.into(), c.into());
        build.store(e, 5);
        let none = ScratchRows::new(Vec::new());
        assert!(matches!(
            lower(&build, LowerLevel::Opt, &none),
            Err(LowerError::OutOfScratch { .. })
        ));
    }

    #[test]
    fn store_hazard_is_rejected() {
        let mut build = PimProgram::new("h");
        let a = build.avg(Val::Row(0), Val::Row(1));
        let _b = build.avg(Val::Row(5), Val::Row(1)); // reads row 5 pre-store
        build.store(a, 5);
        assert_eq!(
            lower(&build, LowerLevel::Opt, &scratch()),
            Err(LowerError::StoreHazard { op: 2, row: 5 })
        );
    }

    #[test]
    fn store_over_cached_row_rescues_live_value() {
        // REVIEW repro: `a` is stored to row 5 and still live when `b`
        // overwrites row 5 (the intervening row-5 read keeps the first
        // store alive at Opt); `a`'s later use must not resolve to the
        // clobbered row at any level.
        let mut build = PimProgram::new("clobber");
        let a = build.add(Val::Row(0), Val::Row(1));
        build.store(a, 5);
        let x = build.add(Val::Row(5), Val::Row(1)); // keeps store a->5 alive
        build.store(x, 7);
        let b = build.max(Val::Row(0), Val::Row(1));
        build.store(b, 5);
        let d = build.add(a.into(), Val::Row(2));
        build.store(d, 6);

        for level in [LowerLevel::Naive, LowerLevel::Opt, LowerLevel::MultiReg(4)] {
            let mut m = PimMachine::new(ArrayConfig::default());
            if let LowerLevel::MultiReg(n) = level {
                m.set_tmp_regs(n);
            }
            m.host_write_lanes(0, &[9, 3]).unwrap();
            m.host_write_lanes(1, &[5, 100]).unwrap();
            m.host_write_lanes(2, &[7, 7]).unwrap();
            let l = lower(&build, level, &scratch()).unwrap();
            m.run_program(&l).unwrap();
            assert_eq!(&m.host_read_lanes(5)[..2], &[9, 100], "{level} row 5");
            assert_eq!(&m.host_read_lanes(6)[..2], &[21, 110], "{level} row 6");
            assert_eq!(&m.host_read_lanes(7)[..2], &[19, 203], "{level} row 7");
        }
    }

    #[test]
    fn reduce_preserves_live_tmp_operand() {
        // REVIEW repro: the reduce operand sits in the Tmp Reg, which
        // reduce_sum destroys; a later use must still see the value
        // (previously failed with a misleading UseBeforeDef).
        let mut build = PimProgram::new("red_live");
        let a = build.add(Val::Row(0), Val::Row(1));
        build.reduce(a.into());
        build.store(a, 5);
        for level in [LowerLevel::Naive, LowerLevel::Opt, LowerLevel::MultiReg(2)] {
            let mut m = PimMachine::new(ArrayConfig::default());
            if let LowerLevel::MultiReg(n) = level {
                m.set_tmp_regs(n);
            }
            m.host_write_lanes(0, &[10, 20]).unwrap();
            m.host_write_lanes(1, &[1, 2]).unwrap();
            let l = lower(&build, level, &scratch()).unwrap();
            let sums = m.run_program(&l).unwrap();
            assert_eq!(sums, vec![33], "{level}");
            assert_eq!(&m.host_read_lanes(5)[..2], &[11, 22], "{level}");
        }
    }

    #[test]
    fn scratch_overlap_is_rejected() {
        let mut build = PimProgram::new("o");
        let a = build.avg(Val::Row(0), Val::Row(1));
        build.store(a, 5);
        // overlap with a read row
        let read_overlap = ScratchRows::new(vec![100, 1]);
        assert_eq!(
            lower(&build, LowerLevel::Opt, &read_overlap),
            Err(LowerError::ScratchOverlap { row: 1 })
        );
        // overlap with a store target
        let store_overlap = ScratchRows::new(vec![5]);
        assert_eq!(
            lower(&build, LowerLevel::Naive, &store_overlap),
            Err(LowerError::ScratchOverlap { row: 5 })
        );
    }

    #[test]
    fn scratch_rows_are_recycled_after_last_use() {
        let mut build = PimProgram::new("r");
        // two sequential rounds each needing one spill
        for _ in 0..2 {
            let a = build.avg(Val::Row(0), Val::Row(1));
            let b = build.avg(Val::Row(0), Val::Row(2));
            let c = build.avg(a.into(), b.into());
            build.store(c, 5);
        }
        let one = ScratchRows::new(vec![100]);
        let l = lower(&build, LowerLevel::Opt, &one).unwrap();
        let spills = l
            .ops()
            .iter()
            .filter(|o| matches!(o.instr, MachineInstr::Writeback { row: 100 }))
            .count();
        assert_eq!(spills, 2, "one scratch row serves both rounds:\n{l}");
    }

    #[test]
    fn reduce_results_come_back_in_program_order() {
        let mut build = PimProgram::new("red");
        let a = build.add(Val::Row(0), Val::Row(1));
        build.reduce(a.into());
        let b = build.sub(Val::Row(0), Val::Row(1));
        build.reduce(b.into());
        for level in [LowerLevel::Naive, LowerLevel::Opt] {
            let mut m = PimMachine::new(ArrayConfig::default());
            m.host_write_lanes(0, &[10, 20, 30]).unwrap();
            m.host_write_lanes(1, &[1, 2, 3]).unwrap();
            let l = lower(&build, level, &scratch()).unwrap();
            assert_eq!(l.reduce_count(), 2);
            let sums = m.run_program(&l).unwrap();
            // unwritten lanes are zero-filled: 0 ± 0 contributes nothing
            assert_eq!(sums, vec![66, 54], "{level}");
        }
    }

    #[test]
    fn multireg_depth_out_of_range_is_rejected() {
        for n in [0u8, MAX_TMP_REGS + 1] {
            assert_eq!(
                lower(&smooth(), LowerLevel::MultiReg(n), &scratch()),
                Err(LowerError::RegisterDepth {
                    requested: n,
                    max: MAX_TMP_REGS
                }),
                "depth {n}"
            );
        }
        // the range bounds themselves are accepted
        for n in [1u8, MAX_TMP_REGS] {
            assert!(lower(&smooth(), LowerLevel::MultiReg(n), &scratch()).is_ok());
        }
    }

    #[test]
    fn peephole_composes_shift_chains() {
        let mut build = PimProgram::new("p");
        let s1 = build.shift_pix(Val::Row(0), 1);
        let s2 = build.shift_pix(s1.into(), 2);
        let c = build.cmp_gt(Val::Row(1), s2.into());
        build.store(c, 2);
        let l = lower(&build, LowerLevel::Opt, &scratch()).unwrap();
        // both shifts compose, then fuse into cmp_gt's pre-shift
        assert_eq!(l.ops().len(), 2);
        assert!(matches!(
            l.ops()[0].instr,
            MachineInstr::Alu {
                op: AluOp::CmpGt,
                shift: Shift::Pix(3),
                ..
            }
        ));
        // opposite-direction shifts zero-fill different edge lanes and
        // must NOT compose
        let mut build = PimProgram::new("p2");
        let s1 = build.shift_pix(Val::Row(0), 1);
        let s2 = build.shift_pix(s1.into(), -1);
        build.store(s2, 2);
        let l = lower(&build, LowerLevel::Opt, &scratch()).unwrap();
        assert!(
            l.ops()
                .iter()
                .filter(|o| matches!(o.instr, MachineInstr::ShiftPix { .. }))
                .count()
                >= 2,
            "opposite-sign shifts stayed separate"
        );
    }

    #[test]
    fn peephole_drops_identity_ops() {
        let mut build = PimProgram::new("p");
        let z = build.shift_pix(Val::Row(0), 0);
        let o = build.or(z.into(), z.into());
        build.store(o, 2);
        let l = lower(&build, LowerLevel::Opt, &scratch()).unwrap();
        // zero-shift and or(x, x) both vanish: one row copy + writeback
        assert_eq!(l.ops().len(), 2);
        assert!(matches!(
            l.ops()[0].instr,
            MachineInstr::Alu {
                op: AluOp::Logic(LogicFunc::Or),
                a: Operand::Row(0),
                b: Operand::Row(0),
                shift: Shift::None,
            }
        ));
        // values match the naive lowering exactly
        let mut rows = Vec::new();
        for level in [LowerLevel::Naive, LowerLevel::Opt] {
            let mut m = PimMachine::new(ArrayConfig::default());
            m.host_write_lanes(0, &[7, 0, 255, 13]).unwrap();
            let l = lower(&build, level, &scratch()).unwrap();
            m.run_program(&l).unwrap();
            rows.push(m.host_read_lanes(2)[..4].to_vec());
        }
        assert_eq!(rows[0], rows[1]);
    }

    /// An HPF-shaped diamond: four values live at once, whose greedy
    /// in-order walk spills all of them while a depth-first schedule
    /// computes each operand chain right before its consumer.
    fn diamond() -> PimProgram {
        let mut build = PimProgram::new("diamond");
        let d2 = build.abs_diff_sh(Val::Row(2), Val::Row(0), 1);
        let dv = build.abs_diff(Val::Row(0), Val::Row(2));
        let dh = build.abs_diff_sh(Val::Row(1), Val::Row(1), 1);
        let d1 = build.abs_diff_sh(Val::Row(0), Val::Row(2), 1);
        let e1 = build.avg(d1.into(), d2.into());
        let e2 = build.avg_sh(dh.into(), dv.into(), 1);
        let e3 = build.avg(e2.into(), e1.into());
        let out = build.shift_pix(e3.into(), 2);
        build.store(out, 3);
        build
    }

    #[test]
    fn scheduling_reduces_spills_below_greedy() {
        let greedy = [Pass::FuseShifts, Pass::EliminateDeadStores];
        let prog = diamond();
        let mut cycles = Vec::new();
        let mut rows = Vec::new();
        for passes in [&greedy[..], pass_pipeline(LowerLevel::Opt)] {
            let mut m = PimMachine::new(ArrayConfig::default());
            m.host_write_lanes(0, &[9, 3, 200, 17, 4]).unwrap();
            m.host_write_lanes(1, &[5, 100, 2, 90, 30]).unwrap();
            m.host_write_lanes(2, &[77, 1, 60, 8, 254]).unwrap();
            let l = lower_with_passes(&prog, LowerLevel::Opt, &scratch(), passes).unwrap();
            m.run_program(&l).unwrap();
            cycles.push(m.stats().cycles);
            rows.push(m.host_read_lanes(3)[..5].to_vec());
        }
        assert_eq!(rows[0], rows[1], "schedule must preserve values");
        assert!(
            cycles[1] < cycles[0],
            "scheduled {} vs greedy {}",
            cycles[1],
            cycles[0]
        );
    }

    #[test]
    fn layout_plan_replaces_rescue_with_cheap_copy() {
        // v is stored to row 3, row 3 is read and then clobbered, and v
        // is used afterwards: unplanned lowering rescues at the
        // clobber, the layout pass keeps a copy at store time instead
        let mut build = PimProgram::new("clobber");
        let v = build.add(Val::Row(0), Val::Row(1));
        build.store(v, 3);
        let w = build.add(Val::Row(3), Val::Row(1));
        build.store(w, 3);
        let x = build.add(v.into(), w.into());
        build.store(x, 4);
        let (_, report) = lower_with_report(&build, LowerLevel::Opt, &scratch()).unwrap();
        assert_eq!(report.planned_spills, 1, "{report}");
        assert_eq!(report.rescues, 0, "{report}");
        // without the layout pass the same program needs a rescue
        let no_layout: Vec<Pass> = pass_pipeline(LowerLevel::Opt)
            .iter()
            .copied()
            .filter(|p| *p != Pass::Layout)
            .collect();
        let full = lower(&build, LowerLevel::Opt, &scratch()).unwrap();
        let bare = lower_with_passes(&build, LowerLevel::Opt, &scratch(), &no_layout).unwrap();
        assert!(
            full.ops().len() <= bare.ops().len(),
            "planned copy is never worse than the rescue"
        );
        // both produce identical memory
        let mut rows = Vec::new();
        for l in [&full, &bare] {
            let mut m = PimMachine::new(ArrayConfig::default());
            m.host_write_lanes(0, &[10, 200, 30]).unwrap();
            m.host_write_lanes(1, &[1, 2, 3]).unwrap();
            m.run_program(l).unwrap();
            rows.push([
                m.host_read_lanes(3)[..3].to_vec(),
                m.host_read_lanes(4)[..3].to_vec(),
            ]);
        }
        assert_eq!(rows[0], rows[1]);
    }

    #[test]
    fn every_pipeline_prefix_preserves_values() {
        let prog = diamond();
        for level in [LowerLevel::Naive, LowerLevel::Opt, LowerLevel::MultiReg(3)] {
            let pipeline = pass_pipeline(level);
            let mut reference = None;
            for cut in 0..=pipeline.len() {
                let mut m = PimMachine::new(ArrayConfig::default());
                if let LowerLevel::MultiReg(n) = level {
                    m.set_tmp_regs(n);
                }
                m.host_write_lanes(0, &[9, 3, 200, 17, 4]).unwrap();
                m.host_write_lanes(1, &[5, 100, 2, 90, 30]).unwrap();
                m.host_write_lanes(2, &[77, 1, 60, 8, 254]).unwrap();
                let l = lower_with_passes(&prog, level, &scratch(), &pipeline[..cut]).unwrap();
                m.run_program(&l).unwrap();
                let got = m.host_read_lanes(3)[..5].to_vec();
                match &reference {
                    None => reference = Some(got),
                    Some(want) => assert_eq!(want, &got, "{level} prefix {cut}"),
                }
            }
        }
    }

    #[test]
    fn report_attributes_every_pass() {
        // a fusible stand-alone shift plus a dead store, so both
        // fuse_shifts and dse show up as op-count drops in the report
        let mut build = PimProgram::new("r");
        let s = build.shift_pix(Val::Row(0), -1);
        let c = build.cmp_gt(Val::Row(1), s.into());
        build.store(c, 2);
        let d = build.add(Val::Row(0), Val::Row(1));
        build.store(d, 3);
        let e = build.add(Val::Row(0), Val::Row(2));
        build.store(e, 3);
        let (l, report) = lower_with_report(&build, LowerLevel::Opt, &scratch()).unwrap();
        assert_eq!(report.level, LowerLevel::Opt);
        let passes: Vec<Pass> = report.passes.iter().map(|p| p.pass).collect();
        assert_eq!(passes, pass_pipeline(LowerLevel::Opt));
        assert_eq!(report.instrs, l.ops().len());
        let stats_for = |p: Pass| report.passes.iter().find(|s| s.pass == p).unwrap().clone();
        let fuse = stats_for(Pass::FuseShifts);
        assert!(fuse.ops_out < fuse.ops_in, "{report}");
        assert!(fuse.shift_distance_out <= fuse.shift_distance_in);
        let dse = stats_for(Pass::EliminateDeadStores);
        assert!(dse.ops_out < dse.ops_in, "{report}");
        let rendered = report.to_string();
        assert!(rendered.contains("schedule") && rendered.contains("spill wb"));
    }
}
