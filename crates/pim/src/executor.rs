//! Job-queue submission: [`PoolExecutor`].
//!
//! The phase-synchronous [`PimArrayPool::run_phase`] family models one
//! kernel owning the whole pool: every array participates in every
//! barrier, so a single slow shard — or a single slow *tenant* —
//! stalls the fleet. A deployed PIM cache serves many independent
//! sessions, which needs a submission model where work units queue and
//! arrays pull.
//!
//! [`PoolExecutor`] provides that model. A [`Job`] carries one lowered
//! macro-op program ([`LoweredProgram`]) plus scheduling metadata: the
//! owning [`SessionId`], a [`DeadlineClass`], a priority, and an
//! optional array *pin* for strip kernels whose host-side setup
//! already loaded inputs into a specific array.
//! [`PoolExecutor::submit`] enqueues and returns a [`JobHandle`];
//! [`PoolExecutor::drain`] dispatches in deterministic *waves*: each
//! array, in order of earliest virtual idle time, pulls its best
//! runnable job (class, then priority, then submission order), the
//! wave executes in parallel on
//! scoped threads, and per-array virtual clocks advance independently
//! — an array that finishes early starts its next job at its own
//! earlier timestamp, so one slow session no longer barriers the rest
//! of the queue in the latency model.
//!
//! Determinism is preserved exactly as in the phase API: scheduling
//! decisions depend only on queue contents (never on host thread
//! timing), each job owns its array for the duration of its run, and
//! cycle deltas are read after the wave in slot order.
//!
//! The legacy entry points remain as thin wrappers:
//! [`PimArrayPool::submit_strips`] pins one program per array and
//! drains a transient executor, and
//! [`PimArrayPool::run_programs_labeled`] delegates to it — so the
//! strip-sharded kernels keep their bit-identical accounting.

use crate::lower::LoweredProgram;
use crate::machine::{PimError, PimMachine};
use crate::pool::PimArrayPool;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifies the session (tenant) a [`Job`] belongs to. Purely an
/// attribution tag at this layer — fairness across sessions is the
/// serving layer's concern; the executor orders by class, priority and
/// submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u32);

impl SessionId {
    /// Conventional id for host-driven kernel work that belongs to no
    /// tenant session (used by [`PimArrayPool::submit_strips`]).
    pub const HOST: SessionId = SessionId(0);
}

/// Urgency class of a [`Job`]; higher classes are always scheduled
/// before lower ones, regardless of priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum DeadlineClass {
    /// Best-effort work (calibration, prefetch); runs when nothing
    /// more urgent queues.
    Background,
    /// Normal frame work.
    #[default]
    Standard,
    /// Deadline-critical work (a session already behind its budget).
    Realtime,
}

/// One schedulable unit of work: a lowered program plus scheduling
/// metadata. Build with [`Job::new`] (or [`Job::strip`] for host
/// kernel work) and the `with_*`/[`Job::pin`] builder methods.
#[derive(Debug, Clone)]
pub struct Job {
    session: SessionId,
    class: DeadlineClass,
    priority: u8,
    label: String,
    affinity: Option<usize>,
    program: Arc<LoweredProgram>,
}

impl Job {
    /// A job owned by `session`, at [`DeadlineClass::Standard`] and
    /// priority 0, runnable on any healthy array.
    pub fn new(session: SessionId, label: impl Into<String>, program: LoweredProgram) -> Self {
        Job::new_shared(session, label, Arc::new(program))
    }

    /// [`Job::new`] over an already-shared program (e.g. one handed
    /// out by [`crate::LoweredCache`]) — no clone of the instruction
    /// stream.
    pub fn new_shared(
        session: SessionId,
        label: impl Into<String>,
        program: Arc<LoweredProgram>,
    ) -> Self {
        Job {
            session,
            class: DeadlineClass::Standard,
            priority: 0,
            label: label.into(),
            affinity: None,
            program,
        }
    }

    /// A host kernel job ([`SessionId::HOST`]); the strip-sharded
    /// kernels submit these pinned one-per-array.
    pub fn strip(label: impl Into<String>, program: LoweredProgram) -> Self {
        Job::new(SessionId::HOST, label, program)
    }

    /// [`Job::strip`] over an already-shared program.
    pub fn strip_shared(label: impl Into<String>, program: Arc<LoweredProgram>) -> Self {
        Job::new_shared(SessionId::HOST, label, program)
    }

    /// Sets the deadline class.
    #[must_use]
    pub fn with_class(mut self, class: DeadlineClass) -> Self {
        self.class = class;
        self
    }

    /// Sets the priority within the deadline class (higher runs first).
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Pins the job to one array. A pinned job runs on that array even
    /// when it is quarantined — strip kernels host-load inputs into
    /// specific arrays before submission, exactly like the legacy
    /// [`PimArrayPool::run_programs_labeled`] path, and the resilience
    /// layer above decides about quarantine avoidance.
    #[must_use]
    pub fn pin(mut self, array: usize) -> Self {
        self.affinity = Some(array);
        self
    }

    /// The owning session.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The deadline class.
    pub fn class(&self) -> DeadlineClass {
        self.class
    }

    /// The priority within the class.
    pub fn priority(&self) -> u8 {
        self.priority
    }

    /// The telemetry/trace label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The array this job is pinned to, if any.
    pub fn affinity(&self) -> Option<usize> {
        self.affinity
    }

    /// The lowered program this job runs.
    pub fn program(&self) -> &LoweredProgram {
        &self.program
    }
}

/// Opaque ticket returned by [`PoolExecutor::submit`]; redeem with
/// [`PoolExecutor::take`] after a drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobHandle(u64);

/// Where and when a completed job ran, in the executor's cycle-domain
/// virtual time (per-array clocks seeded from the pool wall clock at
/// executor construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRecord {
    /// Owning session of the job.
    pub session: SessionId,
    /// Array the job executed on.
    pub array: usize,
    /// Virtual cycle at which the array started the job.
    pub start_cycles: u64,
    /// Virtual cycle at which the array finished the job.
    pub end_cycles: u64,
    /// Cycles the job spent queued behind earlier work.
    pub queue_wait: u64,
}

impl JobRecord {
    /// Execution time of the job in cycles.
    pub fn run_cycles(&self) -> u64 {
        self.end_cycles - self.start_cycles
    }
}

/// A completed job: the program's reduce results (in program order,
/// as from [`PimMachine::run_program`]) plus its [`JobRecord`].
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Reduce results of the program.
    pub outputs: Vec<i64>,
    /// Scheduling record of the run.
    pub record: JobRecord,
}

struct Pending {
    seq: u64,
    submitted_at: u64,
    job: Job,
}

struct Scheduled {
    seq: u64,
    submitted_at: u64,
    array: usize,
    job: Job,
}

/// Job-queue executor over a borrowed [`PimArrayPool`].
///
/// ```
/// use pimvo_pim::{
///     ArrayConfig, Job, LowerLevel, PimMachineBuilder, PimProgram, PoolExecutor, ScratchRows,
///     SessionId, Val,
/// };
///
/// let mut pool = PimMachineBuilder::new(ArrayConfig::qvga()).build_pool(2);
/// for i in 0..2 {
///     pool.array_mut(i).host_write_lanes(0, &[10, 20]).unwrap();
/// }
/// let mut prog = PimProgram::new("sum");
/// let v = prog.add(Val::Row(0), Val::Row(0));
/// prog.reduce(v.into());
/// let lowered = pimvo_pim::lower(&prog, LowerLevel::Opt, &ScratchRows::contiguous(8, 4)).unwrap();
///
/// let mut ex = PoolExecutor::new(&mut pool);
/// let h = ex.submit(Job::new(SessionId(1), "sum", lowered));
/// ex.drain().unwrap();
/// let done = ex.take(h).unwrap().unwrap();
/// assert_eq!(done.outputs, vec![60]);
/// ```
pub struct PoolExecutor<'p> {
    pool: &'p mut PimArrayPool,
    pending: Vec<Pending>,
    completed: BTreeMap<JobHandle, Result<JobResult, PimError>>,
    busy_until: Vec<u64>,
    next_seq: u64,
}

impl<'p> PoolExecutor<'p> {
    /// An executor over `pool`, with every array's virtual clock seeded
    /// from the pool's current wall cycle.
    pub fn new(pool: &'p mut PimArrayPool) -> Self {
        let busy_until = vec![pool.wall_cycles(); pool.len()];
        PoolExecutor {
            pool,
            pending: Vec::new(),
            completed: BTreeMap::new(),
            busy_until,
            next_seq: 0,
        }
    }

    /// Enqueues a job and returns its handle. Nothing executes until
    /// [`PoolExecutor::drain`].
    ///
    /// # Panics
    ///
    /// Panics if the job is pinned to an array index outside the pool.
    pub fn submit(&mut self, job: Job) -> JobHandle {
        if let Some(a) = job.affinity {
            assert!(
                a < self.pool.len(),
                "job pinned to array {a} of a {}-array pool",
                self.pool.len()
            );
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let submitted_at = self.busy_until.iter().copied().min().unwrap_or(0);
        self.pending.push(Pending {
            seq,
            submitted_at,
            job,
        });
        JobHandle(seq)
    }

    /// Runs queued jobs to completion in deterministic waves: per wave,
    /// each array — in order of earliest virtual idle time, ties by
    /// index — pulls its best runnable job — ordered
    /// by [`DeadlineClass`], then priority, then submission order;
    /// pinned jobs only to their array, unpinned jobs only to healthy
    /// (non-quarantined) arrays — and the wave executes in parallel.
    /// Individual job failures are recorded per handle (fetch with
    /// [`PoolExecutor::take`]); the pool's wall clock advances with
    /// barrier semantics per wave while each array's virtual clock
    /// advances by only its own jobs.
    ///
    /// # Errors
    ///
    /// [`PimError::AllArraysQuarantined`] when unpinned jobs remain
    /// queued and every array is quarantined.
    pub fn drain(&mut self) -> Result<(), PimError> {
        while !self.pending.is_empty() {
            self.run_next_wave()?;
        }
        Ok(())
    }

    /// Removes and returns the result of a completed job, or `None`
    /// when the handle is unknown, still pending, or already taken.
    pub fn take(&mut self, handle: JobHandle) -> Option<Result<JobResult, PimError>> {
        self.completed.remove(&handle)
    }

    /// Number of jobs still queued.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of completed results not yet taken.
    pub fn completed_len(&self) -> usize {
        self.completed.len()
    }

    /// Virtual cycle at which array `a` becomes idle.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn busy_until(&self, a: usize) -> u64 {
        self.busy_until[a]
    }

    /// Shared view of the underlying pool.
    pub fn pool(&self) -> &PimArrayPool {
        self.pool
    }

    /// Exclusive access to the underlying pool (host I/O between
    /// drains).
    pub fn pool_mut(&mut self) -> &mut PimArrayPool {
        self.pool
    }

    /// Picks one wave: arrays pull in order of earliest virtual idle
    /// time (ties by index) — the array that would be free first takes
    /// the most urgent work — and each pulls its best runnable pending
    /// job. Job ordering key is (class, priority) descending, then
    /// submission sequence ascending.
    fn schedule_wave(&mut self) -> Result<Vec<Scheduled>, PimError> {
        let mut order: Vec<usize> = (0..self.pool.len()).collect();
        order.sort_by_key(|&a| (self.busy_until[a], a));
        let mut wave = Vec::new();
        for a in order {
            let mut best: Option<usize> = None;
            for idx in 0..self.pending.len() {
                let job = &self.pending[idx].job;
                let runnable = match job.affinity {
                    Some(pin) => pin == a,
                    None => !self.pool.is_quarantined(a),
                };
                if !runnable {
                    continue;
                }
                best = Some(match best {
                    None => idx,
                    Some(b) => {
                        let cand = &self.pending[idx];
                        let cur = &self.pending[b];
                        let cand_key = (
                            cand.job.class,
                            cand.job.priority,
                            std::cmp::Reverse(cand.seq),
                        );
                        let cur_key = (cur.job.class, cur.job.priority, std::cmp::Reverse(cur.seq));
                        if cand_key > cur_key {
                            idx
                        } else {
                            b
                        }
                    }
                });
            }
            if let Some(idx) = best {
                let p = self.pending.remove(idx);
                wave.push(Scheduled {
                    seq: p.seq,
                    submitted_at: p.submitted_at,
                    array: a,
                    job: p.job,
                });
            }
        }
        if wave.is_empty() {
            // only unpinned jobs remain and no array accepts them
            return Err(PimError::AllArraysQuarantined {
                arrays: self.pool.len(),
            });
        }
        Ok(wave)
    }

    fn run_next_wave(&mut self) -> Result<(), PimError> {
        let wave = self.schedule_wave()?;
        let uniform = wave.iter().all(|s| s.job.label == wave[0].job.label);
        let label = if uniform {
            wave[0].job.label.clone()
        } else {
            "wave".to_string()
        };
        let members: Vec<usize> = wave.iter().map(|s| s.array).collect();
        let programs: Vec<&LoweredProgram> = wave.iter().map(|s| s.job.program()).collect();
        let sessions: Vec<u32> = wave.iter().map(|s| s.job.session.0).collect();
        let (results, deltas) = self
            .pool
            .run_wave(&label, &members, |k, m: &mut PimMachine| {
                if let Some(r) = m.op_recorder_mut() {
                    r.set_session(sessions[k]);
                }
                if let Some(r) = m.dma_recorder_mut() {
                    r.set_session(sessions[k]);
                }
                let out = m.run_program(programs[k]);
                if let Some(r) = m.op_recorder_mut() {
                    r.set_session(pimvo_telemetry::optrace::NO_SESSION);
                }
                if let Some(r) = m.dma_recorder_mut() {
                    r.set_session(pimvo_telemetry::optrace::NO_SESSION);
                }
                out
            });
        let jobs = wave.len();
        for ((s, result), delta) in wave.into_iter().zip(results).zip(deltas) {
            let start = self.busy_until[s.array];
            let end = start + delta;
            self.busy_until[s.array] = end;
            let record = JobRecord {
                session: s.job.session,
                array: s.array,
                start_cycles: start,
                end_cycles: end,
                queue_wait: start.saturating_sub(s.submitted_at),
            };
            self.completed.insert(
                JobHandle(s.seq),
                result.map(|outputs| JobResult { outputs, record }),
            );
        }
        let t = self.pool.telemetry();
        if t.is_enabled() {
            t.counter_add("pimvo_executor_jobs_total", jobs as f64);
            t.counter_add("pimvo_executor_waves_total", 1.0);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArrayConfig;
    use crate::ir::{PimProgram, Val};
    use crate::lower::{lower, LowerLevel, ScratchRows};
    use crate::machine::PimMachineBuilder;

    fn pool(n: usize) -> PimArrayPool {
        PimMachineBuilder::new(ArrayConfig::qvga()).build_pool(n)
    }

    /// A program doing `n_adds` chained adds of row 0 and reducing the
    /// final value; cost scales with `n_adds`.
    fn adds_program(n_adds: usize) -> LoweredProgram {
        let mut p = PimProgram::new("adds");
        let mut v = p.load(Val::Row(0));
        for _ in 0..n_adds {
            v = p.add(v.into(), Val::Row(0));
        }
        p.reduce(v.into());
        lower(&p, LowerLevel::Opt, &ScratchRows::contiguous(16, 4)).unwrap()
    }

    fn seed_rows(p: &mut PimArrayPool, lanes: &[i64]) {
        for i in 0..p.len() {
            p.array_mut(i).host_write_lanes(0, lanes).unwrap();
        }
    }

    #[test]
    fn strip_jobs_match_legacy_submission() {
        let progs: Vec<LoweredProgram> = (0..3).map(|i| adds_program(i + 1)).collect();
        let mut legacy = pool(3);
        seed_rows(&mut legacy, &[1, 2, 3]);
        let want = legacy
            .run_phase_labeled("strips", |i, m| m.run_program(&progs[i]))
            .into_iter()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();

        let mut p = pool(3);
        seed_rows(&mut p, &[1, 2, 3]);
        let got = p.submit_strips("strips", &progs).unwrap();
        assert_eq!(got, want);
        assert_eq!(p.wall_cycles(), legacy.wall_cycles());
        assert_eq!(p.barriers(), legacy.barriers());
        assert_eq!(p.merged_stats(), legacy.merged_stats());
    }

    #[test]
    fn run_programs_labeled_is_a_thin_wrapper() {
        let progs: Vec<LoweredProgram> = (0..2).map(|_| adds_program(2)).collect();
        let mut a = pool(2);
        seed_rows(&mut a, &[5, 6]);
        let ra = a.run_programs_labeled("x", &progs).unwrap();
        let mut b = pool(2);
        seed_rows(&mut b, &[5, 6]);
        let rb = b.submit_strips("x", &progs).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.wall_cycles(), b.wall_cycles());
        assert_eq!(a.merged_stats(), b.merged_stats());
    }

    #[test]
    fn priority_orders_jobs_on_one_array() {
        let mut p = pool(1);
        seed_rows(&mut p, &[1]);
        let mut ex = PoolExecutor::new(&mut p);
        let low = ex.submit(Job::new(SessionId(1), "low", adds_program(1)).with_priority(0));
        let high = ex.submit(Job::new(SessionId(2), "high", adds_program(1)).with_priority(9));
        ex.drain().unwrap();
        let low = ex.take(low).unwrap().unwrap();
        let high = ex.take(high).unwrap().unwrap();
        assert!(
            high.record.end_cycles <= low.record.start_cycles,
            "high priority must run first: {high:?} vs {low:?}"
        );
    }

    #[test]
    fn deadline_class_outranks_priority() {
        let mut p = pool(1);
        seed_rows(&mut p, &[1]);
        let mut ex = PoolExecutor::new(&mut p);
        let bg = ex.submit(
            Job::new(SessionId(1), "bg", adds_program(1))
                .with_class(DeadlineClass::Background)
                .with_priority(255),
        );
        let rt = ex.submit(
            Job::new(SessionId(2), "rt", adds_program(1)).with_class(DeadlineClass::Realtime),
        );
        ex.drain().unwrap();
        let bg = ex.take(bg).unwrap().unwrap();
        let rt = ex.take(rt).unwrap().unwrap();
        assert!(rt.record.end_cycles <= bg.record.start_cycles);
    }

    #[test]
    fn arrays_pull_independently_in_virtual_time() {
        // one big job and two small ones over two arrays: the array
        // that takes a small job finishes it and pulls the next small
        // job before the big job's array is free
        let mut p = pool(2);
        seed_rows(&mut p, &[1, 2]);
        let mut ex = PoolExecutor::new(&mut p);
        let big = ex.submit(Job::new(SessionId(1), "big", adds_program(200)));
        let s1 = ex.submit(Job::new(SessionId(2), "small", adds_program(1)));
        let s2 = ex.submit(Job::new(SessionId(2), "small", adds_program(1)));
        ex.drain().unwrap();
        let big = ex.take(big).unwrap().unwrap();
        let s1 = ex.take(s1).unwrap().unwrap();
        let s2 = ex.take(s2).unwrap().unwrap();
        assert_eq!(big.record.array, 0);
        assert_eq!(s1.record.array, 1);
        assert_eq!(s2.record.array, 1);
        // the second small job starts when the first finishes — well
        // before the big job's array is idle again
        assert_eq!(s2.record.start_cycles, s1.record.end_cycles);
        assert!(s2.record.start_cycles < big.record.end_cycles);
    }

    #[test]
    fn unpinned_jobs_avoid_quarantined_arrays() {
        let mut p = pool(2);
        seed_rows(&mut p, &[1]);
        p.try_quarantine(0).unwrap();
        let mut ex = PoolExecutor::new(&mut p);
        let h1 = ex.submit(Job::new(SessionId(1), "a", adds_program(1)));
        let h2 = ex.submit(Job::new(SessionId(1), "b", adds_program(1)));
        ex.drain().unwrap();
        assert_eq!(ex.take(h1).unwrap().unwrap().record.array, 1);
        assert_eq!(ex.take(h2).unwrap().unwrap().record.array, 1);
    }

    #[test]
    fn pinned_jobs_run_even_on_quarantined_arrays() {
        // strip kernels pre-load inputs per array; the pin must be
        // honored exactly like the legacy run_programs_labeled path
        let mut p = pool(2);
        seed_rows(&mut p, &[1]);
        p.try_quarantine(0).unwrap();
        let mut ex = PoolExecutor::new(&mut p);
        let h = ex.submit(Job::strip("pinned", adds_program(1)).pin(0));
        ex.drain().unwrap();
        assert_eq!(ex.take(h).unwrap().unwrap().record.array, 0);
    }

    #[test]
    fn all_quarantined_fails_unpinned_drain() {
        let mut p = pool(2);
        p.try_quarantine(0).unwrap();
        p.try_quarantine(1).unwrap();
        let mut ex = PoolExecutor::new(&mut p);
        ex.submit(Job::new(SessionId(1), "a", adds_program(1)));
        assert!(matches!(
            ex.drain(),
            Err(PimError::AllArraysQuarantined { arrays: 2 })
        ));
    }

    #[test]
    fn queue_wait_and_clocks_are_consistent() {
        let mut p = pool(1);
        seed_rows(&mut p, &[1]);
        let mut ex = PoolExecutor::new(&mut p);
        let first = ex.submit(Job::new(SessionId(1), "first", adds_program(3)));
        let second = ex.submit(Job::new(SessionId(1), "second", adds_program(3)));
        ex.drain().unwrap();
        let first = ex.take(first).unwrap().unwrap();
        let second = ex.take(second).unwrap().unwrap();
        assert_eq!(first.record.queue_wait, 0);
        assert_eq!(second.record.start_cycles, first.record.end_cycles);
        assert_eq!(second.record.queue_wait, first.record.run_cycles());
        assert_eq!(ex.busy_until(0), second.record.end_cycles);
        assert_eq!(ex.pending_len(), 0);
        assert_eq!(ex.completed_len(), 0);
    }

    #[test]
    #[should_panic(expected = "pinned to array")]
    fn out_of_range_pin_is_rejected_at_submit() {
        let mut p = pool(2);
        let mut ex = PoolExecutor::new(&mut p);
        ex.submit(Job::strip("bad", adds_program(1)).pin(7));
    }
}
