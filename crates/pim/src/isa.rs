/// A source operand of a PIM operation.
///
/// The accumulator's input multiplexer (Fig. 6-c) selects between the
/// sense-amplifier outputs (an SRAM row) and the Tmp Reg, so every
/// binary operation can mix array rows and the register:
///
/// * `Row op Row` — both word lines activated simultaneously; one SRAM
///   array access.
/// * `Row op Tmp` / `Tmp op Row` — single word line activated.
/// * `Tmp op Tmp` — register-resident step, no SRAM access (unary
///   operations on Tmp also fall here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// An SRAM word line, by row index.
    Row(usize),
    /// The primary temporary register (result of the previous
    /// operation). Equivalent to `Reg(0)`.
    Tmp,
    /// An additional temporary register (the paper's §5.4 extension:
    /// "we could use more registers to further improve the efficiency
    /// of both computation and power"). Registers beyond index 0 must
    /// be enabled via [`crate::PimMachine::set_tmp_regs`] and are
    /// filled with [`crate::PimMachine::save_tmp`].
    Reg(u8),
}

impl Operand {
    /// True when the operand requires an SRAM word-line activation.
    #[inline]
    pub fn touches_sram(self) -> bool {
        matches!(self, Operand::Row(_))
    }

    /// True when the operand reads a temporary register.
    #[inline]
    pub fn is_reg(self) -> bool {
        matches!(self, Operand::Tmp | Operand::Reg(_))
    }

    /// Register index of a register operand.
    #[inline]
    pub fn reg_index(self) -> Option<u8> {
        match self {
            Operand::Tmp => Some(0),
            Operand::Reg(i) => Some(i),
            Operand::Row(_) => None,
        }
    }
}

/// Lane pre-shift applied to operand `b` of an ALU submission.
///
/// The architecture's shifter sits in front of the accumulator, so any
/// binary operation can consume its `b` operand shifted by a whole
/// number of lanes in the same cycle (the `<< 1pix` of Fig. 2). This
/// replaces the historical `op`/`op_sh` method duplication on
/// [`crate::PimMachine`] with a single argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Shift {
    /// Operand `b` is used as stored.
    #[default]
    None,
    /// Lane `i + pix` of operand `b` feeds lane `i` (positive `pix`
    /// shifts towards lane 0; zeros shift in at the border).
    Pix(i32),
}

impl Shift {
    /// The shift amount in lanes (`None` ≡ `Pix(0)`).
    #[inline]
    pub fn pix(self) -> i32 {
        match self {
            Shift::None => 0,
            Shift::Pix(p) => p,
        }
    }
}

/// Single-submission ALU operation selector for
/// [`crate::PimMachine::alu`] — every shift-capable binary macro-op of
/// the datapath. Multi-cycle sequences (abs-diff 3 cycles, min/max 2)
/// keep their paper-faithful costs; the selector only unifies the call
/// surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Bit-wise logic through the sense amplifiers.
    Logic(LogicFunc),
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction `a - b`.
    Sub,
    /// Saturating addition.
    SatAdd,
    /// Saturating subtraction `sat(a - b)`.
    SatSub,
    /// Average `(a + b) >> 1`.
    Avg,
    /// Absolute difference `|a - b|` (3 cycles, Fig. 7-a).
    AbsDiff,
    /// Branch-free maximum (2 cycles, Fig. 7-b).
    Max,
    /// Branch-free minimum (2 cycles).
    Min,
    /// Per-lane `a > b` mask.
    CmpGt,
}

/// Bit-wise logic function computed by the sense amplifiers plus the
/// derived gates (Fig. 6-a): AND and NOR come straight from the two SAs,
/// XOR from a NOR of the two, OR from a NOT of the NOR output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicFunc {
    /// Bit-wise AND (sense amplifier 1).
    And,
    /// Bit-wise NOR (sense amplifier 2).
    Nor,
    /// Bit-wise XOR = NOR(AND, NOR).
    Xor,
    /// Bit-wise OR = NOT(NOR).
    Or,
}

impl LogicFunc {
    /// Applies the function to two lane bit-patterns.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            LogicFunc::And => a & b,
            LogicFunc::Nor => !(a | b),
            LogicFunc::Xor => a ^ b,
            LogicFunc::Or => a | b,
        }
    }
}

/// Macro-operation classes, used for the per-op histogram in
/// [`crate::ExecStats`]. One macro op may span several cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Bit-wise logic.
    Logic,
    /// Addition / subtraction (wrapping).
    AddSub,
    /// Saturating addition / subtraction.
    SatAddSub,
    /// Average `(a + b) >> 1`.
    Avg,
    /// Absolute difference (3-step sequence, Fig. 7-a).
    AbsDiff,
    /// Branch-free min/max (2-step sequence, Fig. 7-b).
    MinMax,
    /// Stand-alone lane shift.
    Shift,
    /// Comparison producing a per-lane mask.
    Cmp,
    /// Mask select (blend).
    Select,
    /// Multiplication (n + 2 cycles, Fig. 7-c).
    Mul,
    /// Division / remainder (n + 2 cycles, Fig. 7-d).
    Div,
    /// Tmp Reg write-back to SRAM.
    WriteBack,
    /// Intra-row reduction step.
    Reduce,
    /// Scatter/gather row accesses (address-indexed lookups).
    Gather,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logic_truth_tables() {
        assert_eq!(LogicFunc::And.apply(0b1100, 0b1010) & 0xF, 0b1000);
        assert_eq!(LogicFunc::Nor.apply(0b1100, 0b1010) & 0xF, 0b0001);
        assert_eq!(LogicFunc::Xor.apply(0b1100, 0b1010) & 0xF, 0b0110);
        assert_eq!(LogicFunc::Or.apply(0b1100, 0b1010) & 0xF, 0b1110);
    }

    #[test]
    fn xor_is_nor_of_and_and_nor() {
        for a in 0u64..16 {
            for b in 0u64..16 {
                let and = LogicFunc::And.apply(a, b);
                let nor = LogicFunc::Nor.apply(a, b);
                let xor_via_gates = LogicFunc::Nor.apply(and, nor);
                assert_eq!(xor_via_gates & 0xF, (a ^ b) & 0xF, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn operand_sram_classification() {
        assert!(Operand::Row(3).touches_sram());
        assert!(!Operand::Tmp.touches_sram());
    }
}
