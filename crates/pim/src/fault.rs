//! Deterministic fault injection and word-protection (parity / ECC)
//! for the PIM array.
//!
//! Low-voltage in-SRAM compute is exactly where transient read upsets
//! and stuck-at cells bite, so the simulator can optionally corrupt the
//! data it senses:
//!
//! * **Transient bit flips** — every bit that passes through the sense
//!   amplifiers during a row read flips with a configured probability.
//!   The stream of flips is fully deterministic for a given seed: the
//!   model draws geometric inter-fault gaps (in bits) from a seeded
//!   xorshift64* generator, so the hot path is a single counter
//!   decrement per row read and re-running a workload reproduces the
//!   exact same upsets.
//! * **Stuck-at bits** — persistent cell defects forced to a fixed
//!   value on every read of their row. A stuck bit whose forced value
//!   happens to match the stored data is invisible, exactly as on real
//!   silicon.
//!
//! Orthogonally, a [`Protection`] mode guards every 32-bit word of a
//! row:
//!
//! * [`Protection::Parity`] detects any odd number of flipped bits per
//!   word but corrects nothing — the corrupted value still propagates,
//!   the error is merely *visible* (to e.g. a
//!   [`crate::PimArrayPool`] retry policy).
//! * [`Protection::Ecc`] models a SECDED code: a single flipped bit per
//!   word is corrected (the flip is never observed by the datapath), two
//!   or more flips are detected but propagate corrupted.
//!
//! Detection/correction work is not free: the machine charges check and
//! correction cycles/energy through [`crate::CostModel`] on every
//! protected compute access, so fault tolerance shows up in
//! [`crate::ExecStats`].
//!
//! With the default [`FaultModel::none`] and [`Protection::None`] the
//! fast read path is untouched — outputs, cycles and energy are
//! bit-identical to a fault-free build. Constructing an *active* fault
//! model requires the `fault` cargo feature, keeping the default build
//! behaviourally unchanged.

use std::collections::BTreeMap;

/// Bits per protection word: parity/ECC check granularity.
pub const PROTECTION_WORD_BITS: usize = 32;

/// Word-level protection mode of the array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Protection {
    /// No protection: faults propagate silently, no overhead.
    #[default]
    None,
    /// Per-word parity: detects odd numbers of flipped bits, corrects
    /// nothing. Cheapest detection primitive.
    Parity,
    /// SECDED-style ECC per word: corrects single-bit errors, detects
    /// double-bit errors. The storage overhead of the check bits is not
    /// modelled; the time/energy overhead is (see [`crate::CostModel`]).
    Ecc,
}

/// A persistent stuck-at cell fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckBit {
    /// Row containing the defective cell.
    pub row: usize,
    /// Bit offset within the row (LSB-first within each byte).
    pub bit: usize,
    /// The value the cell is stuck at.
    pub value: bool,
}

/// Cumulative fault counters of one machine (host and compute reads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStatus {
    /// Bit flips actually observed by the datapath (transient upsets
    /// and visible stuck-at bits that protection did not correct).
    pub injected: u64,
    /// Words whose single-bit error was corrected by ECC.
    pub corrected: u64,
    /// Words with a *detected but uncorrected* error (parity mismatch
    /// or ECC double-bit): the corrupted value propagated, but the
    /// failure is visible to the host / pool scheduler.
    pub detected: u64,
}

impl FaultStatus {
    /// Difference `self - earlier` for scoped measurements.
    pub fn since(&self, earlier: &FaultStatus) -> FaultStatus {
        FaultStatus {
            injected: self.injected - earlier.injected,
            corrected: self.corrected - earlier.corrected,
            detected: self.detected - earlier.detected,
        }
    }
}

/// A deterministic, seeded fault model pluggable into
/// [`crate::PimMachineBuilder::fault`].
///
/// The default [`FaultModel::none`] injects nothing and adds no
/// overhead. Active models (nonzero transient rate or stuck-at bits)
/// can only be constructed with the `fault` cargo feature enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    seed: u64,
    /// Probability of a transient flip per bit read.
    bit_read_rate: f64,
    stuck: Vec<StuckBit>,
}

impl FaultModel {
    /// The inert model: no faults, no overhead. This is the default of
    /// every machine.
    pub fn none() -> Self {
        FaultModel {
            seed: 0,
            bit_read_rate: 0.0,
            stuck: Vec::new(),
        }
    }

    /// True when this model can never inject a fault.
    pub fn is_none(&self) -> bool {
        self.bit_read_rate <= 0.0 && self.stuck.is_empty()
    }

    /// Transient flip probability per bit read.
    pub fn bit_read_rate(&self) -> f64 {
        self.bit_read_rate
    }

    /// Configured stuck-at bits.
    pub fn stuck_bits(&self) -> &[StuckBit] {
        &self.stuck
    }

    /// A model injecting transient bit flips at `rate` per bit read,
    /// deterministically derived from `seed`.
    #[cfg(feature = "fault")]
    pub fn transient(seed: u64, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate must be in [0, 1)");
        FaultModel {
            seed,
            bit_read_rate: rate,
            stuck: Vec::new(),
        }
    }

    /// Adds a persistent stuck-at fault at (`row`, `bit`).
    #[cfg(feature = "fault")]
    pub fn with_stuck_bit(mut self, row: usize, bit: usize, value: bool) -> Self {
        self.stuck.push(StuckBit { row, bit, value });
        self
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

/// splitmix64 — used to derive well-mixed RNG states from seeds.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The per-machine fault state: model + RNG stream + protection mode +
/// counters. Lives inside [`crate::PimMachine`]; inert by default.
#[derive(Debug, Clone)]
pub(crate) struct FaultUnit {
    model: FaultModel,
    protection: Protection,
    /// xorshift64* state (always nonzero).
    rng: u64,
    /// Bits of fault-free stream remaining before the next transient
    /// flip (geometric inter-arrival sampling).
    bits_to_next: u64,
    status: FaultStatus,
    /// Detected (uncorrected) error events per row — the "syndrome log"
    /// an ECC controller would keep. Repeated detections on one row are
    /// the pool's evidence of a persistent (stuck-at) defect.
    row_log: BTreeMap<usize, u64>,
    /// ECC corrections performed since the machine last charged their
    /// cycle/energy cost (drained by the compute accounting).
    pending_corrections: u64,
}

impl FaultUnit {
    pub(crate) fn new(model: FaultModel, protection: Protection) -> Self {
        let mut u = FaultUnit {
            rng: splitmix64(model.seed) | 1,
            model,
            protection,
            bits_to_next: 0,
            status: FaultStatus::default(),
            row_log: BTreeMap::new(),
            pending_corrections: 0,
        };
        u.bits_to_next = u.sample_gap();
        u
    }

    pub(crate) fn inert() -> Self {
        FaultUnit::new(FaultModel::none(), Protection::None)
    }

    /// True when the read path can skip fault/protection handling
    /// entirely (the default): guarantees bit- and cycle-identical
    /// behaviour to a build without this module.
    pub(crate) fn is_inert(&self) -> bool {
        self.model.is_none() && self.protection == Protection::None
    }

    pub(crate) fn protection(&self) -> Protection {
        self.protection
    }

    pub(crate) fn set_protection(&mut self, p: Protection) {
        self.protection = p;
    }

    pub(crate) fn model(&self) -> &FaultModel {
        &self.model
    }

    pub(crate) fn set_model(&mut self, model: FaultModel) {
        let protection = self.protection;
        let status = self.status;
        let row_log = std::mem::take(&mut self.row_log);
        *self = FaultUnit::new(model, protection);
        self.status = status;
        self.row_log = row_log;
    }

    /// Forks the transient-fault stream with `salt` so pool member
    /// arrays stamped from one builder see independent fault patterns.
    pub(crate) fn reseed(&mut self, salt: u64) {
        self.rng = (self.rng ^ splitmix64(salt.wrapping_add(0x5bd1e995))) | 1;
        self.bits_to_next = self.sample_gap();
    }

    pub(crate) fn status(&self) -> FaultStatus {
        self.status
    }

    pub(crate) fn reset_status(&mut self) {
        self.status = FaultStatus::default();
        self.row_log.clear();
    }

    pub(crate) fn row_log(&self) -> &BTreeMap<usize, u64> {
        &self.row_log
    }

    #[cfg(feature = "fault")]
    pub(crate) fn add_stuck_bit(&mut self, row: usize, bit: usize, value: bool) {
        self.model.stuck.push(StuckBit { row, bit, value });
    }

    /// Takes the corrections awaiting their compute-side charge.
    pub(crate) fn take_pending_corrections(&mut self) -> u64 {
        std::mem::take(&mut self.pending_corrections)
    }

    /// Applies only the *persistent* (stuck-at) component of the model
    /// to the raw readback `data` of physical `row` — the scrub
    /// test-pattern path. A DC march test is sensitive to cell defects
    /// but not to read upsets, so protection, the transient RNG stream,
    /// the counters and the syndrome log are all left untouched: a
    /// scrub pass never perturbs the deterministic transient stream.
    pub(crate) fn apply_stuck_raw(&self, row: usize, data: &mut [u8]) {
        for s in &self.model.stuck {
            if s.row == row && s.bit / 8 < data.len() {
                let cur = (data[s.bit / 8] >> (s.bit % 8)) & 1 == 1;
                if cur != s.value {
                    data[s.bit / 8] ^= 1 << (s.bit % 8);
                }
            }
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Samples a geometric fault-free gap (in bits) at the transient
    /// rate. `u64::MAX` when the rate is zero.
    fn sample_gap(&mut self) -> u64 {
        let p = self.model.bit_read_rate;
        if p <= 0.0 {
            return u64::MAX;
        }
        // u in (0, 1]; gap = floor(ln u / ln(1 - p))
        let u = ((self.next_u64() >> 11) as f64 + 1.0) / 9007199254740992.0;
        let g = u.ln() / (-p).ln_1p();
        if g >= u64::MAX as f64 {
            u64::MAX
        } else {
            g as u64
        }
    }

    /// Applies the fault model to one row read: mutates `data` (the
    /// sensed copy — cell contents are untouched by transient upsets)
    /// and updates counters. `host` reads skip the pending-correction
    /// queue (their protection overhead is outside the compute budget,
    /// matching the paper's exclusion of I/O energy).
    pub(crate) fn apply_to_read(&mut self, row: usize, data: &mut [u8], host: bool) {
        let nbits = (data.len() * 8) as u64;

        // transient flips in this row's bit window
        let mut flips: Vec<usize> = Vec::new();
        if self.model.bit_read_rate > 0.0 {
            while self.bits_to_next < nbits {
                flips.push(self.bits_to_next as usize);
                let gap = self.sample_gap();
                self.bits_to_next = self.bits_to_next.saturating_add(gap).saturating_add(1);
            }
            self.bits_to_next -= nbits;
        }

        // stuck-at cells on this row that differ from the stored value
        for s in &self.model.stuck {
            if s.row == row && s.bit / 8 < data.len() {
                let cur = (data[s.bit / 8] >> (s.bit % 8)) & 1 == 1;
                if cur != s.value {
                    flips.push(s.bit);
                }
            }
        }
        if flips.is_empty() {
            return;
        }

        // group by protection word and resolve per the protection mode
        let mut words: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for f in flips {
            words.entry(f / PROTECTION_WORD_BITS).or_default().push(f);
        }
        for (_, wf) in words {
            match self.protection {
                Protection::None => {
                    for f in &wf {
                        data[f / 8] ^= 1 << (f % 8);
                    }
                    self.status.injected += wf.len() as u64;
                }
                Protection::Parity => {
                    for f in &wf {
                        data[f / 8] ^= 1 << (f % 8);
                    }
                    self.status.injected += wf.len() as u64;
                    if wf.len() % 2 == 1 {
                        self.status.detected += 1;
                        *self.row_log.entry(row).or_insert(0) += 1;
                    }
                }
                Protection::Ecc => {
                    if wf.len() == 1 {
                        // single-bit error: corrected, never observed
                        self.status.corrected += 1;
                        if !host {
                            self.pending_corrections += 1;
                        }
                    } else {
                        // multi-bit: detected but uncorrectable
                        for f in &wf {
                            data[f / 8] ^= 1 << (f % 8);
                        }
                        self.status.injected += wf.len() as u64;
                        self.status.detected += 1;
                        *self.row_log.entry(row).or_insert(0) += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_model_is_inert() {
        let u = FaultUnit::inert();
        assert!(u.is_inert());
        assert!(FaultModel::none().is_none());
        assert_eq!(u.status(), FaultStatus::default());
    }

    #[test]
    fn protection_alone_is_not_inert() {
        let u = FaultUnit::new(FaultModel::none(), Protection::Ecc);
        assert!(!u.is_inert(), "ECC must charge overhead even fault-free");
    }

    #[cfg(feature = "fault")]
    #[test]
    fn transient_stream_is_deterministic() {
        let run = || {
            let mut u = FaultUnit::new(FaultModel::transient(42, 0.01), Protection::None);
            let mut data = vec![0u8; 64];
            for _ in 0..50 {
                u.apply_to_read(3, &mut data, false);
            }
            (data.clone(), u.status())
        };
        let (d1, s1) = run();
        let (d2, s2) = run();
        assert_eq!(d1, d2);
        assert_eq!(s1, s2);
        assert!(s1.injected > 0, "1% rate over 25600 bits must flip");
    }

    #[cfg(feature = "fault")]
    #[test]
    fn reseed_forks_the_stream() {
        let stream = |salt: Option<u64>| {
            let mut u = FaultUnit::new(FaultModel::transient(7, 0.02), Protection::None);
            if let Some(s) = salt {
                u.reseed(s);
            }
            let mut data = vec![0u8; 32];
            for _ in 0..40 {
                u.apply_to_read(0, &mut data, false);
            }
            data
        };
        assert_ne!(stream(None), stream(Some(1)));
        assert_eq!(stream(Some(1)), stream(Some(1)));
    }

    #[cfg(feature = "fault")]
    #[test]
    fn ecc_corrects_single_bit() {
        let mut u = FaultUnit::new(
            FaultModel::none().with_stuck_bit(5, 3, true),
            Protection::Ecc,
        );
        let mut data = vec![0u8; 8]; // stored 0, stuck-at-1 differs
        u.apply_to_read(5, &mut data, false);
        assert_eq!(data, vec![0u8; 8], "ECC must hide the stuck bit");
        let s = u.status();
        assert_eq!((s.injected, s.corrected, s.detected), (0, 1, 0));
        assert_eq!(u.take_pending_corrections(), 1);
        assert_eq!(u.take_pending_corrections(), 0);
    }

    #[cfg(feature = "fault")]
    #[test]
    fn ecc_detects_double_bit_and_logs_row() {
        // two stuck bits in the same 32-bit word: uncorrectable
        let mut u = FaultUnit::new(
            FaultModel::none()
                .with_stuck_bit(5, 3, true)
                .with_stuck_bit(5, 17, true),
            Protection::Ecc,
        );
        let mut data = vec![0u8; 8];
        u.apply_to_read(5, &mut data, false);
        assert_ne!(data, vec![0u8; 8], "double-bit error must propagate");
        let s = u.status();
        assert_eq!((s.injected, s.corrected, s.detected), (2, 0, 1));
        assert_eq!(u.row_log().get(&5), Some(&1));
    }

    #[cfg(feature = "fault")]
    #[test]
    fn parity_detects_but_does_not_correct() {
        let mut u = FaultUnit::new(
            FaultModel::none().with_stuck_bit(2, 0, true),
            Protection::Parity,
        );
        let mut data = vec![0u8; 4];
        u.apply_to_read(2, &mut data, false);
        assert_eq!(data[0], 1, "parity must let the flip through");
        let s = u.status();
        assert_eq!((s.injected, s.corrected, s.detected), (1, 0, 1));
    }

    #[cfg(feature = "fault")]
    #[test]
    fn invisible_stuck_bit_matches_stored_data() {
        let mut u = FaultUnit::new(
            FaultModel::none().with_stuck_bit(0, 0, true),
            Protection::Parity,
        );
        let mut data = vec![1u8; 1]; // bit 0 already 1: stuck-at-1 invisible
        u.apply_to_read(0, &mut data, false);
        assert_eq!(u.status(), FaultStatus::default());
    }
}
