//! DMA descriptor integrity properties: the CRC over payload + header
//! rejects arbitrary single-bit corruption, and (feature `fault`) a
//! machine under a seeded transfer-fault model delivers every host
//! write intact — flips are caught by CRC and retried, never read back.

use pimvo_pim::{TransferDescriptor, TransferKind};
use proptest::prelude::*;

fn kind_for(sel: u8) -> TransferKind {
    match sel % 3 {
        0 => TransferKind::StripIn,
        1 => TransferKind::StripOut,
        _ => TransferKind::PyramidPrefetch,
    }
}

proptest! {
    /// An intact descriptor verifies; the same payload with any single
    /// bit flipped in flight does not.
    #[test]
    fn crc_rejects_any_single_payload_bit_flip(
        payload in prop::collection::vec(any::<u8>(), 1..320),
        bit_seed in any::<u64>(),
        kind_sel in any::<u8>(),
        row in 0u32..1536,
        seq in any::<u64>(),
    ) {
        let d = TransferDescriptor::new(kind_for(kind_sel), row, seq, &payload);
        prop_assert!(d.verify(&payload), "intact payload must verify");

        let bit = (bit_seed as usize) % (payload.len() * 8);
        let mut corrupted = payload.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            !d.verify(&corrupted),
            "flipped bit {bit} slipped past the CRC"
        );
    }

    /// The CRC covers the header too: a descriptor whose routing fields
    /// were corrupted in flight no longer matches its own payload.
    #[test]
    fn crc_covers_header_fields(
        payload in prop::collection::vec(any::<u8>(), 1..64),
        kind_sel in any::<u8>(),
        row in 0u32..1535,
        seq in any::<u64>(),
    ) {
        let kind = kind_for(kind_sel);
        let d = TransferDescriptor::new(kind, row, seq, &payload);
        let wrong_row = TransferDescriptor::new(kind, row + 1, seq, &payload);
        let wrong_seq =
            TransferDescriptor::new(kind, row, seq.wrapping_add(1), &payload);
        prop_assert_ne!(d.payload_crc(&payload), wrong_row.payload_crc(&payload));
        prop_assert_ne!(d.payload_crc(&payload), wrong_seq.payload_crc(&payload));
    }
}

#[cfg(feature = "fault")]
mod faulted {
    use super::*;
    use pimvo_pim::{ArrayConfig, DmaConfig, DmaFaultModel, LaneWidth, PimMachine, Signedness};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Flip-only transfer faults are invisible in the value domain:
        /// every host write lands intact (the CRC catches each injected
        /// flip and the channel retries or, past the ladder, degrades
        /// to the synchronous port) — no flip is ever delivered.
        #[test]
        fn flips_are_always_caught_and_retried(
            seed in any::<u64>(),
            rate in 0.05f64..0.45,
            rows in prop::collection::vec(
                prop::collection::vec(-128i64..128, 4..32), 2..8),
        ) {
            let mut m = PimMachine::builder(ArrayConfig::qvga_banks(6))
                .dma(DmaConfig::default())
                .build();
            m.set_lanes(LaneWidth::W16, Signedness::Signed);
            m.set_dma_fault(DmaFaultModel::flips(seed, rate));

            for (i, vals) in rows.iter().enumerate() {
                m.host_write_lanes(i, vals).unwrap();
            }
            for (i, vals) in rows.iter().enumerate() {
                let got = m.host_read_lanes(i);
                prop_assert_eq!(&got[..vals.len()], &vals[..], "row {} corrupted", i);
            }

            let h = m.dma_health().expect("channel installed");
            prop_assert_eq!(h.timeouts, 0, "flip-only model produced timeouts");
            // one retry per CRC rejection, except the final attempt of
            // a descriptor that exhausted its ladder (it is not
            // retried — the channel quarantines instead)
            prop_assert!(h.crc_errors >= h.retries, "retries without CRC cause");
            prop_assert!(
                h.crc_errors - h.retries <= h.quarantines,
                "CRC rejection neither retried nor quarantined: {} errors, {} retries, {} quarantines",
                h.crc_errors, h.retries, h.quarantines
            );
        }
    }
}
