//! Cross-validation: the fast lane-level simulator must agree
//! bit-for-bit with the gate-level reference model built from the two
//! sense amplifiers and the sliced accumulator.

use pimvo_pim::{bitexact, ArrayConfig, LaneWidth, LogicFunc, Operand, PimMachine, Signedness};
use proptest::prelude::*;

fn machine_with(width: LaneWidth, a: &[u64], b: &[u64]) -> PimMachine {
    let mut m = PimMachine::new(ArrayConfig::qvga());
    m.set_lanes(width, Signedness::Unsigned);
    let ai: Vec<i64> = a.iter().map(|&v| v as i64).collect();
    let bi: Vec<i64> = b.iter().map(|&v| v as i64).collect();
    m.host_write_lanes(0, &ai).unwrap();
    m.host_write_lanes(1, &bi).unwrap();
    m
}

fn tmp_unsigned(m: &PimMachine, n: usize, bits: u32) -> Vec<u64> {
    m.tmp_lanes()[..n]
        .iter()
        .map(|&v| (v as u64) & (u64::MAX >> (64 - bits.min(64))))
        .collect()
}

proptest! {
    /// Addition: machine lanes == gate-level accumulator, at 8 and 16 bit.
    #[test]
    fn add_matches_gates_w8(a in prop::collection::vec(0u64..256, 1..64),
                            b_seed in any::<u64>()) {
        let b: Vec<u64> = a.iter().enumerate()
            .map(|(i, _)| (b_seed.rotate_left(i as u32)) & 0xFF).collect();
        let mut m = machine_with(LaneWidth::W8, &a, &b);
        m.add(Operand::Row(0), Operand::Row(1));
        let got = tmp_unsigned(&m, a.len(), 8);

        let ra = bitexact::encode_lanes(&a, LaneWidth::W8);
        let rb = bitexact::encode_lanes(&b, LaneWidth::W8);
        let out = bitexact::accumulate(&ra, &rb, LaneWidth::W8, false);
        let want = bitexact::decode_lanes(&out.sum, LaneWidth::W8);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn add_matches_gates_w16(a in prop::collection::vec(0u64..65536, 1..32),
                             b in prop::collection::vec(0u64..65536, 1..32)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut m = machine_with(LaneWidth::W16, a, b);
        m.add(Operand::Row(0), Operand::Row(1));
        let got = tmp_unsigned(&m, n, 16);

        let ra = bitexact::encode_lanes(a, LaneWidth::W16);
        let rb = bitexact::encode_lanes(b, LaneWidth::W16);
        let out = bitexact::accumulate(&ra, &rb, LaneWidth::W16, false);
        prop_assert_eq!(got, bitexact::decode_lanes(&out.sum, LaneWidth::W16));
    }

    /// Subtraction via a + !b + 1 at gate level.
    #[test]
    fn sub_matches_gates(a in prop::collection::vec(0u64..256, 1..64),
                         b in prop::collection::vec(0u64..256, 1..64)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut m = machine_with(LaneWidth::W8, a, b);
        m.sub(Operand::Row(0), Operand::Row(1));
        let got = tmp_unsigned(&m, n, 8);

        let ra = bitexact::encode_lanes(a, LaneWidth::W8);
        let rb = bitexact::encode_lanes(b, LaneWidth::W8);
        let out = bitexact::subtract(&ra, &rb, LaneWidth::W8);
        prop_assert_eq!(got, bitexact::decode_lanes(&out.sum, LaneWidth::W8));
    }

    /// The 3-step absolute-difference sequence.
    #[test]
    fn abs_diff_matches_gates(a in prop::collection::vec(0u64..256, 1..64),
                              b in prop::collection::vec(0u64..256, 1..64)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut m = machine_with(LaneWidth::W8, a, b);
        m.abs_diff(Operand::Row(0), Operand::Row(1));
        let got = tmp_unsigned(&m, n, 8);

        let ra = bitexact::encode_lanes(a, LaneWidth::W8);
        let rb = bitexact::encode_lanes(b, LaneWidth::W8);
        let c = bitexact::abs_diff(&ra, &rb, LaneWidth::W8);
        prop_assert_eq!(got, bitexact::decode_lanes(&c, LaneWidth::W8));
    }

    /// The 2-step branch-free min/max sequence.
    #[test]
    fn min_max_match_gates(a in prop::collection::vec(0u64..256, 1..64),
                           b in prop::collection::vec(0u64..256, 1..64)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let ra = bitexact::encode_lanes(a, LaneWidth::W8);
        let rb = bitexact::encode_lanes(b, LaneWidth::W8);
        let (gmin, gmax) = bitexact::min_max(&ra, &rb, LaneWidth::W8);

        let mut m = machine_with(LaneWidth::W8, a, b);
        m.min(Operand::Row(0), Operand::Row(1));
        prop_assert_eq!(tmp_unsigned(&m, n, 8), bitexact::decode_lanes(&gmin, LaneWidth::W8));
        m.max(Operand::Row(0), Operand::Row(1));
        prop_assert_eq!(tmp_unsigned(&m, n, 8), bitexact::decode_lanes(&gmax, LaneWidth::W8));
    }

    /// Shift-and-add multiplication against the gate-level walker.
    #[test]
    fn mul_matches_gates(a in prop::collection::vec(0u64..65536, 1..16),
                         b in prop::collection::vec(0u64..65536, 1..16)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut m = machine_with(LaneWidth::W16, a, b);
        m.mul(Operand::Row(0), Operand::Row(1));
        let got = tmp_unsigned(&m, n, 32);

        let ra = bitexact::encode_lanes(a, LaneWidth::W16);
        let rb = bitexact::encode_lanes(b, LaneWidth::W16);
        let want: Vec<u64> = bitexact::multiply(&ra, &rb, LaneWidth::W16)
            .into_iter().map(|p| p & 0xFFFF_FFFF).collect();
        prop_assert_eq!(got, want);
    }

    /// Restoring division against the gate-level walker.
    #[test]
    fn div_matches_gates(a in prop::collection::vec(0u64..65536, 1..16),
                         b in prop::collection::vec(0u64..65536, 1..16)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let ra = bitexact::encode_lanes(a, LaneWidth::W16);
        let rb = bitexact::encode_lanes(b, LaneWidth::W16);
        let (gq, gr) = bitexact::divide(&ra, &rb, LaneWidth::W16);

        let mut m = machine_with(LaneWidth::W16, a, b);
        m.div(Operand::Row(0), Operand::Row(1));
        prop_assert_eq!(tmp_unsigned(&m, n, 16), gq);
        m.rem(Operand::Row(0), Operand::Row(1));
        prop_assert_eq!(tmp_unsigned(&m, n, 16), gr);
    }

    /// Logic functions against the sense-amplifier outputs.
    #[test]
    fn logic_matches_sense_amps(a in prop::collection::vec(0u64..256, 1..64),
                                b in prop::collection::vec(0u64..256, 1..64)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let ra = bitexact::encode_lanes(a, LaneWidth::W8);
        let rb = bitexact::encode_lanes(b, LaneWidth::W8);
        let s = bitexact::sense(&ra, &rb);

        for (f, bits) in [
            (LogicFunc::And, &s.and),
            (LogicFunc::Nor, &s.nor),
            (LogicFunc::Xor, &s.xor),
            (LogicFunc::Or, &s.or),
        ] {
            let mut m = machine_with(LaneWidth::W8, a, b);
            m.logic(f, Operand::Row(0), Operand::Row(1));
            prop_assert_eq!(
                tmp_unsigned(&m, n, 8),
                bitexact::decode_lanes(bits, LaneWidth::W8),
                "func {:?}", f
            );
        }
    }

    /// Carry-extension comparison: cmp_gt mask == gate-level borrow mask
    /// on strict inequality.
    #[test]
    fn cmp_matches_carry_extension(a in prop::collection::vec(0u64..256, 1..64),
                                   b in prop::collection::vec(0u64..256, 1..64)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut m = machine_with(LaneWidth::W8, a, b);
        m.cmp_gt(Operand::Row(0), Operand::Row(1));
        // gate level: a > b  <=>  b - a borrows  <=> carry-out of (b - a) is 0
        let ra = bitexact::encode_lanes(a, LaneWidth::W8);
        let rb = bitexact::encode_lanes(b, LaneWidth::W8);
        let sub = bitexact::subtract(&rb, &ra, LaneWidth::W8);
        for i in 0..n {
            let want = if !sub.carry_ext[i] { 0xFF } else { 0 };
            prop_assert_eq!(m.tmp_lanes()[i] as u64 & 0xFF, want, "lane {}", i);
        }
    }
}
