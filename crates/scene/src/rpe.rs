//! Trajectory evaluation: relative pose error (RPE) and absolute
//! trajectory error (ATE), after Sturm et al., *A Benchmark for the
//! Evaluation of RGB-D SLAM Systems* (the paper's reference [24]).
//!
//! Table 1 of the paper reports the RMSE of the RPE per second:
//! translational drift in m/s and rotational drift in °/s.

use crate::trajectory::Trajectory;

/// RPE RMSE over a trajectory pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpeResult {
    /// Translational drift RMSE, m/s.
    pub trans_mps: f64,
    /// Rotational drift RMSE, °/s.
    pub rot_dps: f64,
    /// Number of relative-pose pairs evaluated.
    pub pairs: usize,
}

/// Computes the RPE RMSE between an estimated and a ground-truth
/// trajectory over a time window `delta_s` (the benchmark's standard is
/// 1 s). Trajectories must be sampled at the same timestamps
/// (frame-aligned, as our tracker produces).
///
/// # Panics
///
/// Panics if the trajectories have different lengths or fewer than two
/// samples span `delta_s`.
pub fn rpe_rmse(estimate: &Trajectory, ground_truth: &Trajectory, delta_s: f64) -> RpeResult {
    assert_eq!(
        estimate.len(),
        ground_truth.len(),
        "trajectories must be frame-aligned"
    );
    let n = estimate.len();
    assert!(n >= 2, "need at least two poses");
    // frame step corresponding to delta_s
    let dt = if n >= 2 {
        ground_truth.samples[1].0 - ground_truth.samples[0].0
    } else {
        1.0 / 30.0
    };
    let step = ((delta_s / dt).round() as usize).clamp(1, n - 1);
    let actual_delta = step as f64 * dt;

    let mut sum_t2 = 0.0;
    let mut sum_r2 = 0.0;
    let mut pairs = 0usize;
    for i in 0..n - step {
        let q_rel = ground_truth
            .pose(i)
            .inverse()
            .compose(ground_truth.pose(i + step));
        let p_rel = estimate.pose(i).inverse().compose(estimate.pose(i + step));
        let err = q_rel.inverse().compose(&p_rel);
        let te = err.translation_norm() / actual_delta;
        let re = err.rotation_angle().to_degrees() / actual_delta;
        sum_t2 += te * te;
        sum_r2 += re * re;
        pairs += 1;
    }
    RpeResult {
        trans_mps: (sum_t2 / pairs as f64).sqrt(),
        rot_dps: (sum_r2 / pairs as f64).sqrt(),
        pairs,
    }
}

/// Absolute trajectory error RMSE (meters) after first-pose alignment
/// (the tracker starts at the identity while the ground truth starts at
/// an arbitrary pose; a rigid re-basing on the first pose removes that
/// gauge freedom, as the TUM evaluation tooling does).
///
/// # Panics
///
/// Panics if the trajectories have different lengths or are empty.
pub fn ate_rmse(estimate: &Trajectory, ground_truth: &Trajectory) -> f64 {
    assert_eq!(estimate.len(), ground_truth.len());
    assert!(!estimate.is_empty());
    let estimate = estimate.aligned_to(ground_truth);
    let sum2: f64 = estimate
        .samples
        .iter()
        .zip(&ground_truth.samples)
        .map(|((_, e), (_, g))| (e.translation - g.translation).dot(e.translation - g.translation))
        .sum();
    (sum2 / estimate.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimvo_vomath::SE3;

    fn straight_line(n: usize, speed: f64) -> Trajectory {
        (0..n)
            .map(|i| {
                let t = i as f64 / 30.0;
                (t, SE3::exp(&[speed * t, 0.0, 0.0, 0.0, 0.0, 0.0]))
            })
            .collect()
    }

    #[test]
    fn perfect_estimate_has_zero_error() {
        let gt = straight_line(90, 0.3);
        let res = rpe_rmse(&gt, &gt, 1.0);
        assert!(res.trans_mps < 1e-12);
        assert!(res.rot_dps < 1e-12);
        assert!(res.pairs > 0);
        assert!(ate_rmse(&gt, &gt) < 1e-12);
    }

    #[test]
    fn constant_velocity_bias_measured_exactly() {
        let gt = straight_line(90, 0.3);
        let est = straight_line(90, 0.33); // 10% speed bias
        let res = rpe_rmse(&est, &gt, 1.0);
        // relative translation error per second: 0.03 m/s
        assert!((res.trans_mps - 0.03).abs() < 1e-9, "{}", res.trans_mps);
    }

    #[test]
    fn short_sequences_clamp_delta() {
        let gt = straight_line(10, 0.3); // only 1/3 second
        let est = straight_line(10, 0.36);
        let res = rpe_rmse(&est, &gt, 1.0);
        assert!(res.pairs >= 1);
        assert!((res.trans_mps - 0.06).abs() < 1e-9);
    }

    #[test]
    fn rotational_drift_in_degrees_per_second() {
        let gt: Trajectory = (0..61).map(|i| (i as f64 / 30.0, SE3::IDENTITY)).collect();
        let est: Trajectory = (0..61)
            .map(|i| {
                let t = i as f64 / 30.0;
                (t, SE3::exp(&[0.0, 0.0, 0.0, 0.0, 0.0, 0.01 * t]))
            })
            .collect();
        let res = rpe_rmse(&est, &gt, 1.0);
        assert!(
            (res.rot_dps - 0.01f64.to_degrees()).abs() < 1e-6,
            "{}",
            res.rot_dps
        );
    }
}
