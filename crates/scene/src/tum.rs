//! TUM RGB-D trajectory text format:
//! `timestamp tx ty tz qx qy qz qw`, one pose per line, `#` comments.

use crate::trajectory::Trajectory;
use pimvo_vomath::{Quaternion, Vec3, SE3};
use std::fmt;
use std::fmt::Write as _;

/// Error parsing a TUM trajectory file, pointing at the offending
/// 1-based line. Converts into [`std::io::Error`] (`InvalidData`) so a
/// corrupt `groundtruth.txt` surfaces as an ordinary read failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TumError {
    /// 1-based line number of the first malformed line.
    pub line: usize,
    /// What was wrong with it.
    pub kind: TumErrorKind,
}

/// What made a TUM trajectory line unparsable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TumErrorKind {
    /// A field failed to parse as a number.
    Number(std::num::ParseFloatError),
    /// The line did not have exactly 8 whitespace-separated fields.
    FieldCount(usize),
}

impl fmt::Display for TumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TumErrorKind::Number(e) => write!(f, "line {}: {e}", self.line),
            TumErrorKind::FieldCount(n) => {
                write!(f, "line {}: expected 8 fields, got {n}", self.line)
            }
        }
    }
}

impl std::error::Error for TumError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            TumErrorKind::Number(e) => Some(e),
            TumErrorKind::FieldCount(_) => None,
        }
    }
}

impl From<TumError> for std::io::Error {
    fn from(e: TumError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Formats a trajectory in the TUM text format (poses are
/// camera-to-world, quaternion order `qx qy qz qw`).
pub fn format_tum(traj: &Trajectory) -> String {
    let mut out = String::new();
    out.push_str("# timestamp tx ty tz qx qy qz qw\n");
    for (t, pose) in &traj.samples {
        let p = pose.translation;
        let q = pose.rotation.to_quaternion();
        writeln!(
            out,
            "{t:.6} {:.6} {:.6} {:.6} {:.6} {:.6} {:.6} {:.6}",
            p.x, p.y, p.z, q.x, q.y, q.z, q.w
        )
        .expect("string write cannot fail");
    }
    out
}

/// Parses a TUM-format trajectory. Lines starting with `#` and blank
/// lines are skipped.
///
/// # Errors
///
/// Returns a [`TumError`] locating the first malformed line.
pub fn parse_tum(text: &str) -> Result<Trajectory, TumError> {
    let mut traj = Trajectory::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<f64> = line
            .split_whitespace()
            .map(|f| f.parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| TumError {
                line: lineno + 1,
                kind: TumErrorKind::Number(e),
            })?;
        if fields.len() != 8 {
            return Err(TumError {
                line: lineno + 1,
                kind: TumErrorKind::FieldCount(fields.len()),
            });
        }
        let q = Quaternion {
            x: fields[4],
            y: fields[5],
            z: fields[6],
            w: fields[7],
        };
        traj.push(
            fields[0],
            SE3::new(q.to_so3(), Vec3::new(fields[1], fields[2], fields[3])),
        );
    }
    Ok(traj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut traj = Trajectory::new();
        for i in 0..5 {
            let t = i as f64 / 30.0;
            traj.push(
                t,
                SE3::exp(&[0.1 * t, -0.05 * t, 0.2 * t, 0.02 * t, 0.0, -0.01 * t]),
            );
        }
        let text = format_tum(&traj);
        let parsed = parse_tum(&text).unwrap();
        assert_eq!(parsed.len(), traj.len());
        for i in 0..traj.len() {
            let (ta, a) = &traj.samples[i];
            let (tb, b) = &parsed.samples[i];
            assert!((ta - tb).abs() < 1e-5); // %.6 text precision
            let diff = a.inverse().compose(b);
            assert!(diff.translation_norm() < 1e-5, "frame {i}");
            assert!(diff.rotation_angle() < 1e-5, "frame {i}");
        }
    }

    #[test]
    fn skips_comments_and_rejects_malformed() {
        let good = "# header\n\n0.0 0 0 0 0 0 0 1\n";
        assert_eq!(parse_tum(good).unwrap().len(), 1);
        assert_eq!(
            parse_tum("0.0 1 2 3\n").unwrap_err(),
            TumError {
                line: 1,
                kind: TumErrorKind::FieldCount(4)
            }
        );
        let err = parse_tum("# c\n0.0 a b c d e f g\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, TumErrorKind::Number(_)));
        let io: std::io::Error = err.into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
    }
}
