//! TUM RGB-D trajectory text format:
//! `timestamp tx ty tz qx qy qz qw`, one pose per line, `#` comments.

use crate::trajectory::Trajectory;
use pimvo_vomath::{Quaternion, Vec3, SE3};
use std::fmt::Write as _;

/// Formats a trajectory in the TUM text format (poses are
/// camera-to-world, quaternion order `qx qy qz qw`).
pub fn format_tum(traj: &Trajectory) -> String {
    let mut out = String::new();
    out.push_str("# timestamp tx ty tz qx qy qz qw\n");
    for (t, pose) in &traj.samples {
        let p = pose.translation;
        let q = pose.rotation.to_quaternion();
        writeln!(
            out,
            "{t:.6} {:.6} {:.6} {:.6} {:.6} {:.6} {:.6} {:.6}",
            p.x, p.y, p.z, q.x, q.y, q.z, q.w
        )
        .expect("string write cannot fail");
    }
    out
}

/// Parses a TUM-format trajectory. Lines starting with `#` and blank
/// lines are skipped.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_tum(text: &str) -> Result<Trajectory, String> {
    let mut traj = Trajectory::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<f64> = line
            .split_whitespace()
            .map(|f| f.parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if fields.len() != 8 {
            return Err(format!(
                "line {}: expected 8 fields, got {}",
                lineno + 1,
                fields.len()
            ));
        }
        let q = Quaternion {
            x: fields[4],
            y: fields[5],
            z: fields[6],
            w: fields[7],
        };
        traj.push(
            fields[0],
            SE3::new(q.to_so3(), Vec3::new(fields[1], fields[2], fields[3])),
        );
    }
    Ok(traj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut traj = Trajectory::new();
        for i in 0..5 {
            let t = i as f64 / 30.0;
            traj.push(
                t,
                SE3::exp(&[0.1 * t, -0.05 * t, 0.2 * t, 0.02 * t, 0.0, -0.01 * t]),
            );
        }
        let text = format_tum(&traj);
        let parsed = parse_tum(&text).unwrap();
        assert_eq!(parsed.len(), traj.len());
        for i in 0..traj.len() {
            let (ta, a) = &traj.samples[i];
            let (tb, b) = &parsed.samples[i];
            assert!((ta - tb).abs() < 1e-5); // %.6 text precision
            let diff = a.inverse().compose(b);
            assert!(diff.translation_norm() < 1e-5, "frame {i}");
            assert!(diff.rotation_angle() < 1e-5, "frame {i}");
        }
    }

    #[test]
    fn skips_comments_and_rejects_malformed() {
        let good = "# header\n\n0.0 0 0 0 0 0 0 1\n";
        assert_eq!(parse_tum(good).unwrap().len(), 1);
        assert!(parse_tum("0.0 1 2 3\n").is_err());
        assert!(parse_tum("0.0 a b c d e f g\n").is_err());
    }
}
