//! Loading real RGB-D data from disk (TUM-style directory layout).
//!
//! Expected layout, mirroring a TUM RGB-D sequence converted to PGM
//! (see [`crate::pgm`] for the conversion notes):
//!
//! ```text
//! <dir>/associated.txt      # "timestamp gray/xxx.pgm timestamp depth/xxx.pgm"
//! <dir>/groundtruth.txt     # optional, TUM trajectory format
//! <dir>/gray/*.pgm          # 8-bit grayscale frames
//! <dir>/depth/*.pgm         # 16-bit depth frames (5000 units/m)
//! ```

use crate::pgm::{read_pgm_depth, read_pgm_gray, PgmError};
use crate::sequences::Frame;
use crate::trajectory::Trajectory;
use crate::tum::{parse_tum, TumError};
use pimvo_vomath::SE3;
use std::fmt;
use std::path::{Path, PathBuf};

/// Error loading a dataset directory.
///
/// Every variant names the file involved, and [`std::error::Error::source`]
/// exposes the underlying [`std::io::Error`] / [`PgmError`] /
/// [`TumError`] for callers that match on the cause. Truncated or
/// corrupt files therefore surface as `Err` values — never panics —
/// before any frame reaches the tracker.
#[derive(Debug)]
pub enum DatasetError {
    /// I/O failure reading or writing a file.
    Io(PathBuf, std::io::Error),
    /// A PGM image file is malformed or truncated.
    Pgm(PathBuf, PgmError),
    /// A trajectory file is malformed.
    Trajectory(PathBuf, TumError),
    /// An `associated.txt` line is malformed (1-based line number).
    Assoc(PathBuf, usize, String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Io(p, e) => write!(f, "reading {}: {e}", p.display()),
            DatasetError::Pgm(p, e) => write!(f, "parsing {}: {e}", p.display()),
            DatasetError::Trajectory(p, e) => write!(f, "parsing {}: {e}", p.display()),
            DatasetError::Assoc(p, line, msg) => {
                write!(f, "parsing {} line {line}: {msg}", p.display())
            }
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Io(_, e) => Some(e),
            DatasetError::Pgm(_, e) => Some(e),
            DatasetError::Trajectory(_, e) => Some(e),
            DatasetError::Assoc(..) => None,
        }
    }
}

impl From<DatasetError> for std::io::Error {
    fn from(e: DatasetError) -> Self {
        match e {
            DatasetError::Io(_, io) => io,
            DatasetError::Pgm(_, pgm) => pgm.into(),
            DatasetError::Trajectory(_, tum) => tum.into(),
            DatasetError::Assoc(..) => std::io::Error::new(std::io::ErrorKind::InvalidData, e),
        }
    }
}

/// A dataset loaded from disk: frames plus the ground-truth trajectory
/// when `groundtruth.txt` is present.
#[derive(Debug, Clone)]
pub struct DiskDataset {
    /// Frames in time order (ground-truth poses are identity when no
    /// trajectory file is present; check [`DiskDataset::ground_truth`]).
    pub frames: Vec<Frame>,
    /// Ground-truth trajectory, if available.
    pub ground_truth: Option<Trajectory>,
}

/// Loads a TUM-style directory (see the module docs for the layout).
///
/// # Errors
///
/// Returns [`DatasetError`] on missing/unreadable files or malformed
/// association lines, PGMs or trajectories.
pub fn load_tum_dir(dir: impl AsRef<Path>) -> Result<DiskDataset, DatasetError> {
    let dir = dir.as_ref();
    let assoc_path = dir.join("associated.txt");
    let assoc = std::fs::read_to_string(&assoc_path)
        .map_err(|e| DatasetError::Io(assoc_path.clone(), e))?;

    let gt_path = dir.join("groundtruth.txt");
    let ground_truth = if gt_path.exists() {
        let text =
            std::fs::read_to_string(&gt_path).map_err(|e| DatasetError::Io(gt_path.clone(), e))?;
        Some(parse_tum(&text).map_err(|e| DatasetError::Trajectory(gt_path.clone(), e))?)
    } else {
        None
    };

    let mut frames = Vec::new();
    for (lineno, line) in assoc.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(DatasetError::Assoc(
                assoc_path.clone(),
                lineno + 1,
                format!("expected 4 fields, got {}", fields.len()),
            ));
        }
        let time: f64 = fields[0]
            .parse()
            .map_err(|e| DatasetError::Assoc(assoc_path.clone(), lineno + 1, format!("{e}")))?;
        let gray_path = dir.join(fields[1]);
        let depth_path = dir.join(fields[3]);
        let gray_bytes =
            std::fs::read(&gray_path).map_err(|e| DatasetError::Io(gray_path.clone(), e))?;
        let depth_bytes =
            std::fs::read(&depth_path).map_err(|e| DatasetError::Io(depth_path.clone(), e))?;
        let gray =
            read_pgm_gray(&gray_bytes).map_err(|e| DatasetError::Pgm(gray_path.clone(), e))?;
        let depth =
            read_pgm_depth(&depth_bytes).map_err(|e| DatasetError::Pgm(depth_path.clone(), e))?;
        let gt_wc = ground_truth
            .as_ref()
            .and_then(|gt| nearest_pose(gt, time))
            .unwrap_or(SE3::IDENTITY);
        frames.push(Frame {
            index: frames.len(),
            time,
            gray,
            depth,
            gt_wc,
        });
    }
    Ok(DiskDataset {
        frames,
        ground_truth,
    })
}

/// Ground-truth pose nearest in time to `t`. Total order over the time
/// deltas (NaN sorts last), so a corrupt timestamp cannot panic here.
fn nearest_pose(gt: &Trajectory, t: f64) -> Option<SE3> {
    gt.samples
        .iter()
        .min_by(|(ta, _), (tb, _)| (ta - t).abs().total_cmp(&(tb - t).abs()))
        .map(|(_, p)| *p)
}

/// Writes a sequence to disk in the layout [`load_tum_dir`] reads —
/// used to export synthetic sequences for external tools and in tests
/// to round-trip the loader against the generator.
///
/// # Errors
///
/// Returns [`DatasetError::Io`] on any write failure.
pub fn write_tum_dir(
    dir: impl AsRef<Path>,
    frames: &[Frame],
    ground_truth: Option<&Trajectory>,
) -> Result<(), DatasetError> {
    use crate::pgm::{write_pgm_depth, write_pgm_gray};
    let dir = dir.as_ref();
    let io = |p: &Path, e: std::io::Error| DatasetError::Io(p.to_path_buf(), e);
    for sub in ["gray", "depth"] {
        let p = dir.join(sub);
        std::fs::create_dir_all(&p).map_err(|e| io(&p, e))?;
    }
    let mut assoc = String::new();
    for f in frames {
        let gname = format!("gray/{:06}.pgm", f.index);
        let dname = format!("depth/{:06}.pgm", f.index);
        let gp = dir.join(&gname);
        std::fs::write(&gp, write_pgm_gray(&f.gray)).map_err(|e| io(&gp, e))?;
        let dp = dir.join(&dname);
        std::fs::write(&dp, write_pgm_depth(&f.depth)).map_err(|e| io(&dp, e))?;
        assoc.push_str(&format!("{:.6} {gname} {:.6} {dname}\n", f.time, f.time));
    }
    let ap = dir.join("associated.txt");
    std::fs::write(&ap, assoc).map_err(|e| io(&ap, e))?;
    if let Some(gt) = ground_truth {
        let gp = dir.join("groundtruth.txt");
        std::fs::write(&gp, crate::tum::format_tum(gt)).map_err(|e| io(&gp, e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequences::{Sequence, SequenceKind};

    #[test]
    fn export_import_roundtrip() {
        let seq = Sequence::generate(SequenceKind::Desk, 3);
        let dir = std::env::temp_dir().join("pimvo_dataset_roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        write_tum_dir(&dir, &seq.frames, Some(&seq.ground_truth)).unwrap();
        let loaded = load_tum_dir(&dir).unwrap();
        assert_eq!(loaded.frames.len(), 3);
        assert!(loaded.ground_truth.is_some());
        // grayscale round-trips exactly; depth within the TUM scale LSB
        assert_eq!(loaded.frames[1].gray, seq.frames[1].gray);
        for y in (0..240).step_by(17) {
            for x in (0..320).step_by(13) {
                let (a, b) = (
                    seq.frames[2].depth.get(x, y),
                    loaded.frames[2].depth.get(x, y),
                );
                assert!((a - b).abs() < 2.0 / 5000.0 + 1e-6, "({x},{y}): {a} vs {b}");
            }
        }
        // ground-truth poses attach to the frames
        let diff = loaded.frames[2]
            .gt_wc
            .compose(&seq.frames[2].gt_wc.inverse());
        assert!(diff.translation_norm() < 1e-4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_errors() {
        assert!(load_tum_dir("/nonexistent/pimvo_dataset").is_err());
    }

    #[test]
    fn truncated_frame_errors_instead_of_panicking() {
        let seq = Sequence::generate(SequenceKind::Desk, 2);
        let dir = std::env::temp_dir().join("pimvo_dataset_truncated");
        let _ = std::fs::remove_dir_all(&dir);
        write_tum_dir(&dir, &seq.frames, Some(&seq.ground_truth)).unwrap();
        // Chop the second gray frame mid-payload, as a failed copy would.
        let victim = dir.join("gray/000001.pgm");
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_tum_dir(&dir).unwrap_err();
        match &err {
            DatasetError::Pgm(p, PgmError::Truncated { .. }) => {
                assert!(p.ends_with("gray/000001.pgm"), "{}", p.display());
            }
            other => panic!("expected truncated-PGM error, got {other}"),
        }
        // and it degrades to a plain io::Error for generic callers
        let io: std::io::Error = err.into();
        assert_eq!(io.kind(), std::io::ErrorKind::UnexpectedEof);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_groundtruth_errors_with_line_number() {
        let seq = Sequence::generate(SequenceKind::Desk, 1);
        let dir = std::env::temp_dir().join("pimvo_dataset_badgt");
        let _ = std::fs::remove_dir_all(&dir);
        write_tum_dir(&dir, &seq.frames, Some(&seq.ground_truth)).unwrap();
        std::fs::write(dir.join("groundtruth.txt"), "# ok\n0.0 1 2\n").unwrap();
        match load_tum_dir(&dir).unwrap_err() {
            DatasetError::Trajectory(_, e) => assert_eq!(e.line, 2),
            other => panic!("expected trajectory error, got {other}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
