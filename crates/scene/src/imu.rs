//! Synthetic inertial measurements — the substrate for the paper's
//! stated future-work direction ("support more VO/vSLAM models, such as
//! VIO").
//!
//! Samples are derived from the analytic ground-truth trajectory by
//! finite differences and corrupted with bias and noise, following the
//! usual MEMS-gyro error model. The tracker consumes only the gyroscope
//! (rotation prediction for warm starts); accelerometer samples are
//! generated too for completeness.

use crate::sequences::{pose_at, SequenceKind};
use pimvo_vomath::Vec3;

/// One IMU sample in the body (camera) frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuSample {
    /// Timestamp, seconds.
    pub time: f64,
    /// Angular velocity, rad/s.
    pub gyro: Vec3,
    /// Specific force (linear acceleration minus gravity), m/s².
    pub accel: Vec3,
}

/// MEMS-grade error model for the synthetic IMU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuNoise {
    /// Constant gyroscope bias, rad/s.
    pub gyro_bias: Vec3,
    /// Gyroscope white-noise standard deviation, rad/s.
    pub gyro_sigma: f64,
    /// Accelerometer white-noise standard deviation, m/s².
    pub accel_sigma: f64,
}

impl Default for ImuNoise {
    fn default() -> Self {
        ImuNoise {
            gyro_bias: Vec3::new(2e-3, -1.5e-3, 1e-3),
            gyro_sigma: 2e-3,
            accel_sigma: 2e-2,
        }
    }
}

impl ImuNoise {
    /// A perfect IMU (for testing the integration math in isolation).
    pub fn none() -> Self {
        ImuNoise {
            gyro_bias: Vec3::ZERO,
            gyro_sigma: 0.0,
            accel_sigma: 0.0,
        }
    }
}

/// Deterministic unit-ish Gaussian via the sum of hashed uniforms.
fn noise1(seed: u64) -> f64 {
    let mut acc = 0.0;
    for k in 0..4u64 {
        let mut x = seed.wrapping_add(k.wrapping_mul(0x9E3779B97F4A7C15));
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51AFD7ED558CCD);
        x ^= x >> 33;
        acc += (x as f64) / (u64::MAX as f64) - 0.5;
    }
    acc * (12.0f64 / 4.0).sqrt()
}

fn noise3(seed: u64) -> Vec3 {
    Vec3::new(noise1(seed), noise1(seed ^ 0xA5A5), noise1(seed ^ 0x5A5A))
}

/// Generates IMU samples for a sequence profile at `rate_hz` over
/// `duration_s`, with the given error model.
///
/// Angular velocity is expressed in the body frame:
/// `ω = log(R_wcᵀ(t) · R_wc(t + dt)) / dt`; specific force includes the
/// gravity reaction `g = (0, -9.81, 0)` world-down convention mapped
/// into the body frame (world y points down in our scenes, so gravity
/// is +y and the reaction force -y).
pub fn generate_imu(
    kind: SequenceKind,
    duration_s: f64,
    rate_hz: f64,
    noise: &ImuNoise,
) -> Vec<ImuSample> {
    assert!(rate_hz > 0.0 && duration_s > 0.0, "positive rate/duration");
    let dt = 1.0 / rate_hz;
    let n = (duration_s * rate_hz).ceil() as usize;
    let eps = dt.min(1e-3);
    let gravity_world = Vec3::new(0.0, 9.81, 0.0); // y-down world
    (0..n)
        .map(|i| {
            let t = i as f64 * dt;
            let p0 = pose_at(kind, t);
            let p1 = pose_at(kind, t + eps);
            // body-frame angular velocity
            let rel = p0.rotation.inverse().compose(&p1.rotation);
            let gyro_true = rel.log().scale(1.0 / eps);
            // linear acceleration by central difference of position
            // (shift the stencil centre away from t = 0 so the
            // three-point formula stays valid at the sequence start)
            let tc = t.max(eps);
            let pc = pose_at(kind, tc);
            let pp = pose_at(kind, tc + eps);
            let pm = pose_at(kind, tc - eps);
            let a_world = (pp.translation - pc.translation.scale(2.0) + pm.translation)
                .scale(1.0 / (eps * eps));
            // specific force in the body frame: a - g, rotated
            let f_world = a_world - gravity_world;
            let accel_true = p0.rotation.inverse().rotate(f_world);
            let seed = (i as u64).wrapping_mul(0x2545F4914F6CDD1D);
            ImuSample {
                time: t,
                gyro: gyro_true + noise.gyro_bias + noise3(seed).scale(noise.gyro_sigma),
                accel: accel_true + noise3(seed ^ 0xBEEF).scale(noise.accel_sigma),
            }
        })
        .collect()
}

/// Integrates the gyroscope between two timestamps into a rotation
/// increment (body frame), the prediction a VIO front-end feeds the
/// tracker's warm start.
pub fn integrate_gyro(samples: &[ImuSample], t0: f64, t1: f64) -> pimvo_vomath::SO3 {
    use pimvo_vomath::SO3;
    let mut r = SO3::IDENTITY;
    let mut prev_t: Option<f64> = None;
    for s in samples {
        if s.time < t0 || s.time > t1 {
            continue;
        }
        let dt = match prev_t {
            Some(p) => s.time - p,
            None => s.time - t0,
        };
        if dt > 0.0 {
            r = r.compose(&SO3::exp(s.gyro.scale(dt)));
        }
        prev_t = Some(s.time);
    }
    if let Some(p) = prev_t {
        if t1 > p {
            // extend the last sample to t1
            if let Some(last) = samples.iter().rev().find(|s| s.time <= t1 && s.time >= t0) {
                r = r.compose(&SO3::exp(last.gyro.scale(t1 - p)));
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn noiseless_gyro_integrates_to_ground_truth_rotation() {
        let kind = SequenceKind::Xyz;
        let samples = generate_imu(kind, 1.0, 400.0, &ImuNoise::none());
        let (t0, t1) = (0.2, 0.5);
        let r_int = integrate_gyro(&samples, t0, t1);
        let gt = pose_at(kind, t0)
            .rotation
            .inverse()
            .compose(&pose_at(kind, t1).rotation);
        let err = gt.inverse().compose(&r_int).log().norm();
        assert!(err < 2e-3, "integration error {err} rad");
    }

    #[test]
    fn bias_accumulates_linearly() {
        let noise = ImuNoise {
            gyro_bias: Vec3::new(0.01, 0.0, 0.0),
            gyro_sigma: 0.0,
            accel_sigma: 0.0,
        };
        let samples = generate_imu(SequenceKind::Desk, 1.0, 200.0, &noise);
        let r1 = integrate_gyro(&samples, 0.0, 0.5);
        let gt1 = pose_at(SequenceKind::Desk, 0.0)
            .rotation
            .inverse()
            .compose(&pose_at(SequenceKind::Desk, 0.5).rotation);
        let drift = gt1.inverse().compose(&r1).log().norm();
        // ~0.01 rad/s * 0.5 s = 5 mrad of bias drift
        assert!((0.002..0.02).contains(&drift), "drift {drift}");
    }

    #[test]
    fn samples_are_deterministic() {
        let a = generate_imu(SequenceKind::Xyz, 0.2, 100.0, &ImuNoise::default());
        let b = generate_imu(SequenceKind::Xyz, 0.2, 100.0, &ImuNoise::default());
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn gravity_dominates_specific_force_at_rest_attitude() {
        let samples = generate_imu(SequenceKind::StrNtexFar, 0.5, 100.0, &ImuNoise::none());
        // the profile's accelerations are centimeters/s²; gravity is ~9.81
        for s in &samples {
            assert!((s.accel.norm() - 9.81).abs() < 1.0, "{:?}", s.accel);
        }
    }
}
