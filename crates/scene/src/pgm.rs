//! PGM (portable graymap, binary `P5`) image I/O.
//!
//! The hook for running the pipeline on real data: TUM RGB-D frames
//! convert losslessly to 8-bit grayscale + 16-bit depth PGMs (e.g.
//! `convert rgb/xyz.png -colorspace gray gray/xyz.pgm`), which this
//! module reads without any external image dependency. Depth maps use
//! the TUM convention of 16-bit values at 5000 units per meter.

use pimvo_kernels::{DepthImage, GrayImage};
use std::fmt;

/// TUM depth scale: raw 16-bit value per meter.
pub const TUM_DEPTH_SCALE: f32 = 5000.0;

/// Error decoding a PGM byte stream.
///
/// Converts into [`std::io::Error`] (kind `UnexpectedEof` for
/// [`PgmError::Truncated`], `InvalidData` otherwise) so dataset loaders
/// can surface it through ordinary I/O error plumbing instead of
/// panicking on a short read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PgmError {
    /// The byte stream does not start with the binary-PGM `P5` magic.
    NotPgm,
    /// The width/height/maxval header is malformed.
    Header(String),
    /// The header declares an unsupported sample range.
    Maxval(u32),
    /// The pixel payload is shorter than the header promises.
    Truncated {
        /// Bytes the header implies (`width * height * bytes/sample`).
        expected: usize,
        /// Bytes actually present after the header.
        actual: usize,
    },
    /// The sample depth does not match what the caller requires
    /// (e.g. an 8-bit image passed to the 16-bit depth reader).
    BitDepth(String),
}

impl fmt::Display for PgmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PgmError::NotPgm => write!(f, "not a binary PGM (missing P5 magic)"),
            PgmError::Header(msg) => write!(f, "malformed PGM header: {msg}"),
            PgmError::Maxval(v) => write!(f, "unsupported maxval {v}"),
            PgmError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated pixel data: expected {expected} bytes, got {actual}"
                )
            }
            PgmError::BitDepth(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for PgmError {}

impl From<PgmError> for std::io::Error {
    fn from(e: PgmError) -> Self {
        let kind = match e {
            PgmError::Truncated { .. } => std::io::ErrorKind::UnexpectedEof,
            _ => std::io::ErrorKind::InvalidData,
        };
        std::io::Error::new(kind, e)
    }
}

/// Serializes an 8-bit grayscale image as binary PGM (`P5`, maxval 255).
pub fn write_pgm_gray(img: &GrayImage) -> Vec<u8> {
    let mut out = format!("P5\n{} {}\n255\n", img.width(), img.height()).into_bytes();
    out.extend_from_slice(img.pixels());
    out
}

/// Serializes a depth image as 16-bit binary PGM (`P5`, maxval 65535,
/// big-endian samples per the netpbm spec), at [`TUM_DEPTH_SCALE`].
pub fn write_pgm_depth(img: &DepthImage) -> Vec<u8> {
    let mut out = format!("P5\n{} {}\n65535\n", img.width(), img.height()).into_bytes();
    for &d in img.pixels() {
        let raw = if d.is_finite() && d > 0.0 {
            (d * TUM_DEPTH_SCALE).round().clamp(0.0, 65535.0) as u16
        } else {
            0
        };
        out.extend_from_slice(&raw.to_be_bytes());
    }
    out
}

/// Parses a binary PGM into an 8-bit grayscale image. 16-bit inputs are
/// rescaled to 8 bits.
///
/// # Errors
///
/// Returns a [`PgmError`] describing the malformed header or truncated
/// data.
pub fn read_pgm_gray(bytes: &[u8]) -> Result<GrayImage, PgmError> {
    let (w, h, maxval, data) = parse_pgm(bytes)?;
    let mut img = GrayImage::new(w, h);
    if maxval <= 255 {
        if data.len() < (w * h) as usize {
            return Err(PgmError::Truncated {
                expected: (w * h) as usize,
                actual: data.len(),
            });
        }
        for (i, px) in img.pixels_mut().iter_mut().enumerate() {
            *px = data[i];
        }
    } else {
        if data.len() < 2 * (w * h) as usize {
            return Err(PgmError::Truncated {
                expected: 2 * (w * h) as usize,
                actual: data.len(),
            });
        }
        for (i, px) in img.pixels_mut().iter_mut().enumerate() {
            let v = u16::from_be_bytes([data[2 * i], data[2 * i + 1]]);
            *px = (v as u32 * 255 / maxval) as u8;
        }
    }
    Ok(img)
}

/// Parses a 16-bit binary PGM into a depth image at [`TUM_DEPTH_SCALE`].
/// Zero raw values mean "no measurement" (invalid depth).
///
/// # Errors
///
/// Returns a [`PgmError`] describing the malformed header or truncated
/// data.
pub fn read_pgm_depth(bytes: &[u8]) -> Result<DepthImage, PgmError> {
    let (w, h, maxval, data) = parse_pgm(bytes)?;
    if maxval <= 255 {
        return Err(PgmError::BitDepth(
            "depth PGMs must be 16-bit (maxval > 255)".into(),
        ));
    }
    if data.len() < 2 * (w * h) as usize {
        return Err(PgmError::Truncated {
            expected: 2 * (w * h) as usize,
            actual: data.len(),
        });
    }
    let mut img = DepthImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let i = (y * w + x) as usize;
            let raw = u16::from_be_bytes([data[2 * i], data[2 * i + 1]]);
            img.set(x, y, raw as f32 / TUM_DEPTH_SCALE);
        }
    }
    Ok(img)
}

/// Shared header parser: returns `(width, height, maxval, pixel data)`.
fn parse_pgm(bytes: &[u8]) -> Result<(u32, u32, u32, &[u8]), PgmError> {
    if bytes.len() < 2 || &bytes[..2] != b"P5" {
        return Err(PgmError::NotPgm);
    }
    let mut pos = 2usize;
    let mut fields = [0u32; 3];
    for field in &mut fields {
        // skip whitespace and comments
        loop {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos < bytes.len() && bytes[pos] == b'#' {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            } else {
                break;
            }
        }
        let start = pos;
        while pos < bytes.len() && bytes[pos].is_ascii_digit() {
            pos += 1;
        }
        if start == pos {
            return Err(PgmError::Header("missing numeric field".into()));
        }
        *field = std::str::from_utf8(&bytes[start..pos])
            .map_err(|_| PgmError::Header("non-UTF8 header".into()))?
            .parse::<u32>()
            .map_err(|e| PgmError::Header(format!("bad number: {e}")))?;
    }
    // exactly one whitespace byte separates the header from the data
    if pos >= bytes.len() || !bytes[pos].is_ascii_whitespace() {
        return Err(PgmError::Header("missing header/data separator".into()));
    }
    pos += 1;
    let (w, h, maxval) = (fields[0], fields[1], fields[2]);
    if w == 0 || h == 0 {
        return Err(PgmError::Header("zero image dimension".into()));
    }
    if maxval == 0 || maxval > 65535 {
        return Err(PgmError::Maxval(maxval));
    }
    Ok((w, h, maxval, &bytes[pos..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_roundtrip() {
        let img = GrayImage::from_fn(17, 9, |x, y| (x * 13 + y * 7) as u8);
        let bytes = write_pgm_gray(&img);
        let back = read_pgm_gray(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn depth_roundtrip_within_scale() {
        let img = DepthImage::from_fn(8, 6, |x, y| {
            if x == 0 {
                0.0 // invalid
            } else {
                0.5 + (x + y) as f32 * 0.37
            }
        });
        let bytes = write_pgm_depth(&img);
        let back = read_pgm_depth(&bytes).unwrap();
        for y in 0..6 {
            for x in 0..8 {
                let (a, b) = (img.get(x, y), back.get(x, y));
                assert!((a - b).abs() < 1.0 / TUM_DEPTH_SCALE + 1e-6, "({x},{y})");
                assert_eq!(img.is_valid(x, y), back.is_valid(x, y));
            }
        }
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(read_pgm_gray(b"P6\n1 1\n255\n\0"), Err(PgmError::NotPgm));
        assert!(matches!(
            read_pgm_gray(b"P5\n0 1\n255\n"),
            Err(PgmError::Header(_))
        ));
        assert_eq!(
            read_pgm_gray(b"P5\n4 4\n255\nshort"),
            Err(PgmError::Truncated {
                expected: 16,
                actual: 5
            })
        );
        assert!(matches!(
            read_pgm_depth(&write_pgm_gray(&GrayImage::new(2, 2))),
            Err(PgmError::BitDepth(_))
        ));
    }

    #[test]
    fn errors_convert_to_io_errors() {
        let trunc = read_pgm_gray(b"P5\n4 4\n255\nshort").unwrap_err();
        let io: std::io::Error = trunc.into();
        assert_eq!(io.kind(), std::io::ErrorKind::UnexpectedEof);
        let bad: std::io::Error = PgmError::NotPgm.into();
        assert_eq!(bad.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn header_comments_are_skipped() {
        let mut bytes = b"P5\n# a comment\n2 2\n255\n".to_vec();
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        let img = read_pgm_gray(&bytes).unwrap();
        assert_eq!(img.get(1, 1), 4);
    }

    #[test]
    fn sixteen_bit_gray_rescales() {
        let depth = DepthImage::from_fn(2, 2, |x, y| (1 + x + y) as f32);
        let bytes = write_pgm_depth(&depth);
        let gray = read_pgm_gray(&bytes).unwrap();
        assert_eq!(gray.width(), 2);
        // monotone mapping preserved
        assert!(gray.get(1, 1) > gray.get(0, 0));
    }
}
