#![warn(missing_docs)]

//! Synthetic RGB-D dataset substrate.
//!
//! The paper evaluates on the TUM RGB-D benchmark, which cannot be
//! redistributed here; this crate provides the substitute documented in
//! `DESIGN.md`: a deterministic procedural renderer producing
//! grayscale and depth frames with exact ground-truth poses, plus
//! three sequence profiles whose motion and texture statistics mimic
//! the sequences the paper reports on.
//!
//! * [`SequenceKind::Xyz`] — fast hand-held translation in a richly
//!   textured room (stands in for `fr1_xyz`);
//! * [`SequenceKind::Desk`] — a slow arc around a cluttered desk scene
//!   (stands in for `fr2_desk`);
//! * [`SequenceKind::StrNtexFar`] — distant, texture-poor structural
//!   panels (stands in for `fr3_str_ntex_far`).
//!
//! Evaluation (relative pose error, absolute trajectory error) follows
//! the TUM benchmark definitions, and trajectories can be written in the
//! TUM text format for external tooling.
//!
//! ```
//! use pimvo_scene::{Sequence, SequenceKind};
//!
//! let seq = Sequence::generate(SequenceKind::Desk, 4);
//! assert_eq!(seq.frames.len(), 4);
//! let f = &seq.frames[0];
//! assert_eq!(f.gray.width(), 320);
//! ```

mod dataset;
mod imu;
mod pgm;
mod plot;
mod render;
mod rpe;
mod sequences;
mod texture;
mod trajectory;
mod tum;

pub use dataset::{load_tum_dir, write_tum_dir, DatasetError, DiskDataset};
pub use imu::{generate_imu, integrate_gyro, ImuNoise, ImuSample};
pub use pgm::{
    read_pgm_depth, read_pgm_gray, write_pgm_depth, write_pgm_gray, PgmError, TUM_DEPTH_SCALE,
};
pub use plot::{plot_trajectories_svg, PlotPlane};
pub use render::{Aabb, Plane, RenderOptions, Scene};
pub use rpe::{ate_rmse, rpe_rmse, RpeResult};
pub use sequences::{build_scene, pose_at, Frame, Sequence, SequenceKind};
pub use texture::Texture;
pub use trajectory::Trajectory;
pub use tum::{format_tum, parse_tum, TumError, TumErrorKind};
