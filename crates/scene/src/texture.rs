//! Deterministic procedural textures for the synthetic scenes.

/// Integer hash (Wang hash variant) → uniform `[0, 1)`.
fn hash01(mut x: u32) -> f64 {
    x = x.wrapping_mul(0x9E3779B9) ^ (x >> 16);
    x = x.wrapping_mul(0x85EBCA6B) ^ (x >> 13);
    x = x.wrapping_mul(0xC2B2AE35) ^ (x >> 16);
    (x as f64) / (u32::MAX as f64 + 1.0)
}

fn lattice(ix: i64, iy: i64, seed: u32) -> f64 {
    let h = (ix as u32)
        .wrapping_mul(0x27D4EB2F)
        .wrapping_add((iy as u32).wrapping_mul(0x165667B1))
        .wrapping_add(seed.wrapping_mul(0x9E3779B9));
    hash01(h)
}

/// Smoothstep-interpolated 2D value noise in `[0, 1)`.
fn value_noise(u: f64, v: f64, seed: u32) -> f64 {
    let (iu, iv) = (u.floor(), v.floor());
    let (fu, fv) = (u - iu, v - iv);
    let (iu, iv) = (iu as i64, iv as i64);
    let s = |t: f64| t * t * (3.0 - 2.0 * t);
    let (su, sv) = (s(fu), s(fv));
    let n00 = lattice(iu, iv, seed);
    let n10 = lattice(iu + 1, iv, seed);
    let n01 = lattice(iu, iv + 1, seed);
    let n11 = lattice(iu + 1, iv + 1, seed);
    n00 * (1.0 - su) * (1.0 - sv) + n10 * su * (1.0 - sv) + n01 * (1.0 - su) * sv + n11 * su * sv
}

/// A procedural surface texture, sampled in surface coordinates
/// (meters). Intensities are in gray levels around a base value.
#[derive(Debug, Clone, PartialEq)]
pub enum Texture {
    /// Uniform intensity (texture-poor surfaces).
    Flat {
        /// Base gray level.
        base: f64,
    },
    /// Multi-octave value noise: `base ± amplitude`.
    Noise {
        /// Base gray level.
        base: f64,
        /// Peak-to-peak amplitude in gray levels.
        amplitude: f64,
        /// Feature size in meters (smaller = finer detail).
        scale: f64,
        /// Noise seed (different surfaces decorrelate).
        seed: u32,
        /// Number of octaves (1-4).
        octaves: u32,
    },
    /// Checkerboard of two intensities.
    Checker {
        /// First cell gray level.
        a: f64,
        /// Second cell gray level.
        b: f64,
        /// Cell edge length in meters.
        cell: f64,
    },
    /// Axis-aligned rectangular panels of distinct flat intensities on a
    /// flat background — strong structural edges with no interior
    /// texture (the `str_ntex` profile).
    Panels {
        /// Background gray level.
        base: f64,
        /// Panel edge length in meters.
        cell: f64,
        /// Gap between panels, meters.
        gap: f64,
        /// Seed choosing per-panel intensities.
        seed: u32,
    },
}

impl Texture {
    /// Samples the intensity (gray levels, unclamped) at surface
    /// coordinates `(u, v)` in meters.
    pub fn sample(&self, u: f64, v: f64) -> f64 {
        match *self {
            Texture::Flat { base } => base,
            Texture::Noise {
                base,
                amplitude,
                scale,
                seed,
                octaves,
            } => {
                let mut acc = 0.0;
                let mut amp = 1.0;
                let mut freq = 1.0 / scale.max(1e-6);
                let mut norm = 0.0;
                for o in 0..octaves.clamp(1, 4) {
                    acc += amp * value_noise(u * freq, v * freq, seed.wrapping_add(o * 7919));
                    norm += amp;
                    amp *= 0.5;
                    freq *= 2.1;
                }
                base + (acc / norm - 0.5) * amplitude
            }
            Texture::Checker { a, b, cell } => {
                let cu = (u / cell).floor() as i64;
                let cv = (v / cell).floor() as i64;
                if (cu + cv).rem_euclid(2) == 0 {
                    a
                } else {
                    b
                }
            }
            Texture::Panels {
                base,
                cell,
                gap,
                seed,
            } => {
                let period = cell + gap;
                let cu = (u / period).floor();
                let cv = (v / period).floor();
                let fu = u - cu * period;
                let fv = v - cv * period;
                if fu < cell && fv < cell {
                    let h = lattice(cu as i64, cv as i64, seed);
                    base + 40.0 + h * 140.0
                } else {
                    base
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let t = Texture::Noise {
            base: 100.0,
            amplitude: 60.0,
            scale: 0.2,
            seed: 42,
            octaves: 3,
        };
        let a = t.sample(0.37, 1.25);
        let b = t.sample(0.37, 1.25);
        assert_eq!(a, b);
        for i in 0..200 {
            let v = t.sample(i as f64 * 0.031, i as f64 * 0.047);
            assert!((40.0..=160.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn noise_varies_spatially() {
        let t = Texture::Noise {
            base: 100.0,
            amplitude: 80.0,
            scale: 0.1,
            seed: 7,
            octaves: 2,
        };
        let samples: Vec<f64> = (0..50).map(|i| t.sample(i as f64 * 0.05, 0.0)).collect();
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 10.0, "texture too flat: {min}..{max}");
    }

    #[test]
    fn checker_alternates() {
        let t = Texture::Checker {
            a: 20.0,
            b: 200.0,
            cell: 0.5,
        };
        assert_eq!(t.sample(0.1, 0.1), 20.0);
        assert_eq!(t.sample(0.6, 0.1), 200.0);
        assert_eq!(t.sample(0.6, 0.6), 20.0);
        // negative coordinates keep alternating (rem_euclid)
        assert_eq!(t.sample(-0.1, 0.1), 200.0);
    }

    #[test]
    fn panels_have_flat_interiors() {
        let t = Texture::Panels {
            base: 50.0,
            cell: 1.0,
            gap: 0.3,
            seed: 3,
        };
        let inside1 = t.sample(0.3, 0.3);
        let inside2 = t.sample(0.7, 0.6);
        assert_eq!(inside1, inside2, "panel interior must be flat");
        assert!(inside1 > 50.0);
        assert_eq!(t.sample(1.1, 0.3), 50.0); // gap
    }
}
