//! Dependency-free SVG trajectory plots — the visual half of Fig. 8
//! (estimated trajectory overlaid on ground truth).

use crate::trajectory::Trajectory;

/// A 2D projection plane for the top-down plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlotPlane {
    /// World x (right) vs z (forward) — the usual top-down view.
    #[default]
    Xz,
    /// World x vs y.
    Xy,
}

impl PlotPlane {
    fn project(self, t: pimvo_vomath::Vec3) -> (f64, f64) {
        match self {
            PlotPlane::Xz => (t.x, t.z),
            PlotPlane::Xy => (t.x, t.y),
        }
    }
}

/// Renders the estimate (green, as in the paper's Fig. 8) over the
/// ground truth (red) as a standalone SVG document. The estimate is
/// first-pose aligned to the ground truth.
///
/// # Panics
///
/// Panics if either trajectory is empty or lengths differ.
pub fn plot_trajectories_svg(
    estimate: &Trajectory,
    ground_truth: &Trajectory,
    plane: PlotPlane,
    title: &str,
) -> String {
    assert!(
        !estimate.is_empty() && !ground_truth.is_empty(),
        "empty trajectory"
    );
    assert_eq!(estimate.len(), ground_truth.len(), "length mismatch");
    let est = estimate.aligned_to(ground_truth);

    // bounds over both curves
    let points = |t: &Trajectory| -> Vec<(f64, f64)> {
        t.samples
            .iter()
            .map(|(_, p)| plane.project(p.translation))
            .collect()
    };
    let pe = points(&est);
    let pg = points(ground_truth);
    let (mut min_x, mut max_x) = (f64::MAX, f64::MIN);
    let (mut min_y, mut max_y) = (f64::MAX, f64::MIN);
    for &(x, y) in pe.iter().chain(&pg) {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    let span = (max_x - min_x).max(max_y - min_y).max(0.02);
    let pad = span * 0.1;
    let (w, h) = (640.0, 640.0);
    let scale = (w - 40.0) / (span + 2.0 * pad);
    let to_px = |x: f64, y: f64| -> (f64, f64) {
        (
            20.0 + (x - min_x + pad) * scale,
            h - 20.0 - (y - min_y + pad) * scale,
        )
    };
    let polyline = |pts: &[(f64, f64)], color: &str| -> String {
        let coords: Vec<String> = pts
            .iter()
            .map(|&(x, y)| {
                let (px, py) = to_px(x, y);
                format!("{px:.1},{py:.1}")
            })
            .collect();
        format!(
            "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"2\" points=\"{}\"/>",
            coords.join(" ")
        )
    };

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\">\n"
    ));
    svg.push_str("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
    svg.push_str(&format!(
        "<text x=\"20\" y=\"18\" font-family=\"sans-serif\" font-size=\"14\">{title} \
         (green: estimate, red: ground truth; span {span:.2} m)</text>\n"
    ));
    svg.push_str(&polyline(&pg, "#cc2222"));
    svg.push('\n');
    svg.push_str(&polyline(&pe, "#22aa44"));
    svg.push('\n');
    // start marker
    let (sx, sy) = to_px(pg[0].0, pg[0].1);
    svg.push_str(&format!(
        "<circle cx=\"{sx:.1}\" cy=\"{sy:.1}\" r=\"4\" fill=\"#2244cc\"/>\n"
    ));
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimvo_vomath::SE3;

    fn line(n: usize, speed: f64) -> Trajectory {
        (0..n)
            .map(|i| {
                let t = i as f64 / 30.0;
                (t, SE3::exp(&[speed * t, 0.0, 0.1 * t, 0.0, 0.0, 0.0]))
            })
            .collect()
    }

    #[test]
    fn produces_well_formed_svg() {
        let gt = line(30, 0.3);
        let est = line(30, 0.32);
        let svg = plot_trajectories_svg(&est, &gt, PlotPlane::Xz, "test");
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("#22aa44") && svg.contains("#cc2222"));
    }

    #[test]
    fn degenerate_static_trajectory_still_plots() {
        let gt: Trajectory = (0..5).map(|i| (i as f64, SE3::IDENTITY)).collect();
        let svg = plot_trajectories_svg(&gt, &gt, PlotPlane::Xy, "static");
        assert!(svg.contains("<polyline"));
        // no NaN/inf coordinates
        assert!(!svg.contains("NaN") && !svg.contains("inf"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let a = line(5, 0.1);
        let b = line(6, 0.1);
        let _ = plot_trajectories_svg(&a, &b, PlotPlane::Xz, "bad");
    }
}
