//! A small plane/box raycaster producing grayscale + depth frames.
//!
//! Camera convention: x right, y down, z forward (optical axis). A
//! frame's pose is the camera-to-world transform `T_wc`; rays are cast
//! from the camera center through each pixel and intersected with the
//! scene's planes and axis-aligned boxes.

use crate::texture::Texture;
use pimvo_kernels::{DepthImage, GrayImage};
use pimvo_vomath::{Pinhole, Vec3, SE3};

/// An infinite or bounded textured plane.
#[derive(Debug, Clone, PartialEq)]
pub struct Plane {
    /// A point on the plane.
    pub point: Vec3,
    /// Unit normal.
    pub normal: Vec3,
    /// In-plane texture axis U (unit).
    pub axis_u: Vec3,
    /// In-plane texture axis V (unit).
    pub axis_v: Vec3,
    /// Half-extent along U/V in meters; `None` = infinite.
    pub half_extent: Option<(f64, f64)>,
    /// Surface texture.
    pub texture: Texture,
}

impl Plane {
    /// Builds an axis-aligned plane facing `normal` through `point`,
    /// deriving the texture axes automatically.
    pub fn new(point: Vec3, normal: Vec3, texture: Texture) -> Self {
        let n = normal.normalized().expect("zero plane normal");
        let helper = if n.x.abs() < 0.9 {
            Vec3::new(1.0, 0.0, 0.0)
        } else {
            Vec3::new(0.0, 1.0, 0.0)
        };
        let axis_u = n.cross(helper).normalized().expect("degenerate axis");
        let axis_v = n.cross(axis_u);
        Plane {
            point,
            normal: n,
            axis_u,
            axis_v,
            half_extent: None,
            texture,
        }
    }

    /// Restricts the plane to a rectangle of the given half-extents.
    pub fn with_extent(mut self, hu: f64, hv: f64) -> Self {
        self.half_extent = Some((hu, hv));
        self
    }
}

/// An axis-aligned textured box.
#[derive(Debug, Clone, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
    /// Surface texture (sampled in the two in-face coordinates).
    pub texture: Texture,
}

/// Rendering options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderOptions {
    /// Standard deviation of the additive sensor noise, gray levels.
    /// Deterministic per (pixel, frame): the same frame always renders
    /// identically.
    pub noise_sigma: f64,
    /// Relative depth noise at 1 m (structured-light style: the error
    /// grows quadratically with range, σ_d = coeff · d²). 0 disables.
    pub depth_noise_coeff: f64,
    /// Maximum depth in meters; farther hits are invalid (0 depth).
    pub max_depth: f64,
    /// Per-face Lambert-style shading strength (0 = none), which makes
    /// different box faces render at distinct intensities.
    pub shading: f64,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            noise_sigma: 1.2,
            depth_noise_coeff: 0.0015,
            max_depth: 8.0,
            shading: 0.25,
        }
    }
}

/// A renderable scene.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scene {
    /// Planes (walls, floor, panels).
    pub planes: Vec<Plane>,
    /// Boxes (furniture, clutter).
    pub boxes: Vec<Aabb>,
}

struct Hit {
    depth: f64,
    intensity: f64,
    normal: Vec3,
}

impl Scene {
    /// Renders the scene from camera pose `t_wc` (camera-to-world) and
    /// returns (grayscale, depth).
    pub fn render(
        &self,
        cam: &Pinhole,
        t_wc: &SE3,
        opts: &RenderOptions,
        frame_seed: u32,
    ) -> (GrayImage, DepthImage) {
        let mut gray = GrayImage::new(cam.width, cam.height);
        let mut depth = DepthImage::new(cam.width, cam.height);
        let origin = t_wc.translation;
        // light direction for face shading (world frame, arbitrary fixed)
        let light = Vec3::new(0.4, -0.8, 0.45).normalized().unwrap();

        for py in 0..cam.height {
            for px in 0..cam.width {
                // unnormalized camera-frame ray with z = 1: the hit
                // parameter s directly equals the camera-frame depth
                let dir_c = Vec3::new(
                    (px as f64 - cam.cx) / cam.f,
                    (py as f64 - cam.cy) / cam.f,
                    1.0,
                );
                let dir_w = t_wc.rotation.rotate(dir_c);
                if let Some(hit) = self.trace(origin, dir_w) {
                    if hit.depth <= opts.max_depth {
                        let shade = 1.0 - opts.shading * (1.0 - hit.normal.dot(light).abs());
                        let noise = if opts.noise_sigma > 0.0 {
                            (pixel_noise(px, py, frame_seed) - 0.5) * opts.noise_sigma * 3.46
                        } else {
                            0.0
                        };
                        let v = (hit.intensity * shade + noise).clamp(0.0, 255.0);
                        gray.set(px, py, v as u8);
                        // Kinect-style range noise: σ grows with d²
                        let d = if opts.depth_noise_coeff > 0.0 {
                            let u = pixel_noise(px ^ 0x5555, py, frame_seed ^ 0xD00D) - 0.5;
                            hit.depth + u * 3.46 * opts.depth_noise_coeff * hit.depth * hit.depth
                        } else {
                            hit.depth
                        };
                        depth.set(px, py, d.max(0.05) as f32);
                    }
                }
            }
        }
        (gray, depth)
    }

    fn trace(&self, origin: Vec3, dir: Vec3) -> Option<Hit> {
        let mut best: Option<Hit> = None;
        let mut best_s = f64::INFINITY;
        for plane in &self.planes {
            if let Some((s, tu, tv)) = intersect_plane(plane, origin, dir) {
                if s < best_s {
                    best_s = s;
                    best = Some(Hit {
                        depth: s,
                        intensity: plane.texture.sample(tu, tv),
                        normal: plane.normal,
                    });
                }
            }
        }
        for b in &self.boxes {
            if let Some((s, n, tu, tv)) = intersect_aabb(b, origin, dir) {
                if s < best_s {
                    best_s = s;
                    best = Some(Hit {
                        depth: s,
                        intensity: b.texture.sample(tu, tv),
                        normal: n,
                    });
                }
            }
        }
        best
    }
}

impl Scene {
    /// Unsigned distance from a world point to the nearest scene
    /// surface — the reconstruction-quality metric for the semi-dense
    /// map (a perfectly reconstructed edge point lies on a surface).
    pub fn distance_to_surface(&self, p: Vec3) -> f64 {
        let mut best = f64::INFINITY;
        for plane in &self.planes {
            let rel = p - plane.point;
            let dn = rel.dot(plane.normal).abs();
            let d = if let Some((hu, hv)) = plane.half_extent {
                // distance to the bounded rectangle
                let tu = rel.dot(plane.axis_u);
                let tv = rel.dot(plane.axis_v);
                let du = (tu.abs() - hu).max(0.0);
                let dv = (tv.abs() - hv).max(0.0);
                (dn * dn + du * du + dv * dv).sqrt()
            } else {
                dn
            };
            best = best.min(d);
        }
        for b in &self.boxes {
            // signed-distance-style AABB surface distance
            let dx = (b.min.x - p.x).max(0.0).max(p.x - b.max.x);
            let dy = (b.min.y - p.y).max(0.0).max(p.y - b.max.y);
            let dz = (b.min.z - p.z).max(0.0).max(p.z - b.max.z);
            let outside = (dx * dx + dy * dy + dz * dz).sqrt();
            let d = if outside > 0.0 {
                outside
            } else {
                // inside: distance to the nearest face
                let ix = (p.x - b.min.x).min(b.max.x - p.x);
                let iy = (p.y - b.min.y).min(b.max.y - p.y);
                let iz = (p.z - b.min.z).min(b.max.z - p.z);
                ix.min(iy).min(iz)
            };
            best = best.min(d);
        }
        best
    }
}

/// Deterministic per-pixel noise in `[0, 1)`.
fn pixel_noise(x: u32, y: u32, seed: u32) -> f64 {
    let mut h = x
        .wrapping_mul(0x27D4EB2F)
        .wrapping_add(y.wrapping_mul(0x165667B1))
        .wrapping_add(seed.wrapping_mul(0x9E3779B9));
    h = h.wrapping_mul(0x9E3779B9) ^ (h >> 16);
    h = h.wrapping_mul(0x85EBCA6B) ^ (h >> 13);
    (h as f64) / (u32::MAX as f64 + 1.0)
}

fn intersect_plane(plane: &Plane, origin: Vec3, dir: Vec3) -> Option<(f64, f64, f64)> {
    let denom = plane.normal.dot(dir);
    if denom.abs() < 1e-12 {
        return None;
    }
    let s = plane.normal.dot(plane.point - origin) / denom;
    if s <= 1e-6 {
        return None;
    }
    let hit = origin + dir * s;
    let rel = hit - plane.point;
    let tu = rel.dot(plane.axis_u);
    let tv = rel.dot(plane.axis_v);
    if let Some((hu, hv)) = plane.half_extent {
        if tu.abs() > hu || tv.abs() > hv {
            return None;
        }
    }
    Some((s, tu, tv))
}

fn intersect_aabb(b: &Aabb, origin: Vec3, dir: Vec3) -> Option<(f64, Vec3, f64, f64)> {
    let inv = |d: f64| if d.abs() < 1e-300 { 1e300 } else { 1.0 / d };
    let (ix, iy, iz) = (inv(dir.x), inv(dir.y), inv(dir.z));
    let mut t0 = (b.min.x - origin.x) * ix;
    let mut t1 = (b.max.x - origin.x) * ix;
    if t0 > t1 {
        std::mem::swap(&mut t0, &mut t1);
    }
    let (mut ty0, mut ty1) = ((b.min.y - origin.y) * iy, (b.max.y - origin.y) * iy);
    if ty0 > ty1 {
        std::mem::swap(&mut ty0, &mut ty1);
    }
    let (mut tz0, mut tz1) = ((b.min.z - origin.z) * iz, (b.max.z - origin.z) * iz);
    if tz0 > tz1 {
        std::mem::swap(&mut tz0, &mut tz1);
    }
    let tmin = t0.max(ty0).max(tz0);
    let tmax = t1.min(ty1).min(tz1);
    if tmax < tmin || tmax <= 1e-6 {
        return None;
    }
    let s = if tmin > 1e-6 { tmin } else { tmax };
    let hit = origin + dir * s;
    // face normal: which slab bound we hit
    let eps = 1e-6;
    let (n, tu, tv) = if (hit.x - b.min.x).abs() < eps || (hit.x - b.max.x).abs() < eps {
        (
            Vec3::new(
                if (hit.x - b.min.x).abs() < eps {
                    -1.0
                } else {
                    1.0
                },
                0.0,
                0.0,
            ),
            hit.y,
            hit.z,
        )
    } else if (hit.y - b.min.y).abs() < eps || (hit.y - b.max.y).abs() < eps {
        (
            Vec3::new(
                0.0,
                if (hit.y - b.min.y).abs() < eps {
                    -1.0
                } else {
                    1.0
                },
                0.0,
            ),
            hit.x,
            hit.z,
        )
    } else {
        (
            Vec3::new(
                0.0,
                0.0,
                if (hit.z - b.min.z).abs() < eps {
                    -1.0
                } else {
                    1.0
                },
            ),
            hit.x,
            hit.y,
        )
    };
    Some((s, n, tu, tv))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wall_scene() -> Scene {
        Scene {
            planes: vec![Plane::new(
                Vec3::new(0.0, 0.0, 3.0),
                Vec3::new(0.0, 0.0, -1.0),
                Texture::Checker {
                    a: 60.0,
                    b: 180.0,
                    cell: 0.4,
                },
            )],
            boxes: vec![],
        }
    }

    #[test]
    fn wall_renders_at_expected_depth() {
        let cam = Pinhole::qvga();
        let (gray, depth) = wall_scene().render(
            &cam,
            &SE3::IDENTITY,
            &RenderOptions {
                noise_sigma: 0.0,
                depth_noise_coeff: 0.0,
                ..Default::default()
            },
            0,
        );
        // center pixel looks straight at the wall: depth == 3
        assert!((depth.get(160, 120) - 3.0).abs() < 1e-4);
        // depth is the camera-frame z, identical across the wall
        assert!((depth.get(10, 10) - 3.0).abs() < 1e-3);
        // checkerboard produces both intensities
        let pixels = gray.pixels();
        assert!(pixels.iter().any(|&p| p > 150));
        assert!(pixels.iter().any(|&p| (40..90).contains(&p)));
    }

    #[test]
    fn camera_translation_shifts_depth() {
        let cam = Pinhole::qvga();
        let pose = SE3::exp(&[0.0, 0.0, 1.0, 0.0, 0.0, 0.0]); // 1 m forward
        let (_, depth) = wall_scene().render(
            &cam,
            &pose,
            &RenderOptions {
                noise_sigma: 0.0,
                depth_noise_coeff: 0.0,
                ..Default::default()
            },
            0,
        );
        assert!((depth.get(160, 120) - 2.0).abs() < 1e-4);
    }

    #[test]
    fn box_occludes_wall() {
        let mut scene = wall_scene();
        scene.boxes.push(Aabb {
            min: Vec3::new(-0.3, -0.3, 1.5),
            max: Vec3::new(0.3, 0.3, 2.0),
            texture: Texture::Flat { base: 240.0 },
        });
        let cam = Pinhole::qvga();
        let (gray, depth) = scene.render(
            &cam,
            &SE3::IDENTITY,
            &RenderOptions {
                noise_sigma: 0.0,
                depth_noise_coeff: 0.0,
                shading: 0.0,
                ..Default::default()
            },
            0,
        );
        assert!((depth.get(160, 120) - 1.5).abs() < 1e-4);
        assert_eq!(gray.get(160, 120), 240);
        // outside the box: the wall
        assert!((depth.get(10, 120) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn rendering_is_deterministic() {
        let cam = Pinhole::qvga();
        let scene = wall_scene();
        let (g1, d1) = scene.render(&cam, &SE3::IDENTITY, &RenderOptions::default(), 5);
        let (g2, d2) = scene.render(&cam, &SE3::IDENTITY, &RenderOptions::default(), 5);
        assert_eq!(g1, g2);
        assert_eq!(d1, d2);
        // different frame seed changes both noise fields; geometry is
        // recoverable by disabling the noise
        let (g3, d3) = scene.render(&cam, &SE3::IDENTITY, &RenderOptions::default(), 6);
        assert_ne!(g1, g3);
        assert_ne!(d1, d3);
        let clean_opts = RenderOptions {
            noise_sigma: 0.0,
            depth_noise_coeff: 0.0,
            ..Default::default()
        };
        let (_, c1) = scene.render(&cam, &SE3::IDENTITY, &clean_opts, 5);
        let (_, c2) = scene.render(&cam, &SE3::IDENTITY, &clean_opts, 6);
        assert_eq!(c1, c2);
    }

    #[test]
    fn surface_distance_is_zero_on_surfaces() {
        let mut scene = wall_scene();
        scene.boxes.push(Aabb {
            min: Vec3::new(-0.3, -0.3, 1.5),
            max: Vec3::new(0.3, 0.3, 2.0),
            texture: Texture::Flat { base: 200.0 },
        });
        // on the wall plane
        assert!(scene.distance_to_surface(Vec3::new(0.7, -0.2, 3.0)) < 1e-12);
        // on a box face
        assert!(scene.distance_to_surface(Vec3::new(0.0, 0.0, 1.5)) < 1e-12);
        // 0.4 m in front of the wall, away from the box
        let d = scene.distance_to_surface(Vec3::new(1.5, 1.0, 2.6));
        assert!((d - 0.4).abs() < 1e-9, "{d}");
        // inside the box: distance to the nearest face
        let d = scene.distance_to_surface(Vec3::new(0.0, 0.0, 1.75));
        assert!((d - 0.25).abs() < 1e-9, "{d}");
    }

    #[test]
    fn bounded_plane_misses_outside_extent() {
        let cam = Pinhole::qvga();
        let scene = Scene {
            planes: vec![Plane::new(
                Vec3::new(0.0, 0.0, 2.0),
                Vec3::new(0.0, 0.0, -1.0),
                Texture::Flat { base: 200.0 },
            )
            .with_extent(0.2, 0.2)],
            boxes: vec![],
        };
        let (_, depth) = scene.render(&cam, &SE3::IDENTITY, &RenderOptions::default(), 0);
        assert!(depth.is_valid(160, 120));
        assert!(!depth.is_valid(5, 5)); // ray misses the small panel
    }
}

#[cfg(test)]
mod depth_noise_tests {
    use super::*;

    #[test]
    fn depth_noise_grows_with_range() {
        let scene = Scene {
            planes: vec![Plane::new(
                Vec3::new(0.0, 0.0, 4.0),
                Vec3::new(0.0, 0.0, -1.0),
                Texture::Flat { base: 120.0 },
            )],
            boxes: vec![],
        };
        let cam = Pinhole::qvga();
        let opts = RenderOptions {
            noise_sigma: 0.0,
            depth_noise_coeff: 0.005,
            ..Default::default()
        };
        let (_, depth) = scene.render(&cam, &SE3::IDENTITY, &opts, 3);
        // rms error over the frame versus the true 4 m plane depth
        let mut sum2 = 0.0f64;
        let mut n = 0usize;
        for y in (0..240).step_by(7) {
            for x in (0..320).step_by(7) {
                if depth.is_valid(x, y) {
                    let e = depth.get(x, y) as f64 - 4.0;
                    sum2 += e * e;
                    n += 1;
                }
            }
        }
        let rms = (sum2 / n as f64).sqrt();
        // expected σ = 0.005 * 16 = 0.08 m
        assert!((0.03..0.15).contains(&rms), "depth rms {rms}");
    }

    #[test]
    fn zero_coeff_is_exact() {
        let scene = Scene {
            planes: vec![Plane::new(
                Vec3::new(0.0, 0.0, 2.0),
                Vec3::new(0.0, 0.0, -1.0),
                Texture::Flat { base: 120.0 },
            )],
            boxes: vec![],
        };
        let cam = Pinhole::qvga();
        let opts = RenderOptions {
            noise_sigma: 0.0,
            depth_noise_coeff: 0.0,
            ..Default::default()
        };
        let (_, depth) = scene.render(&cam, &SE3::IDENTITY, &opts, 0);
        assert!((depth.get(160, 120) - 2.0).abs() < 1e-5);
    }
}
