//! The three synthetic sequence profiles standing in for the TUM RGB-D
//! sequences the paper evaluates on (Table 1 / Fig. 8).

use crate::render::{Aabb, Plane, RenderOptions, Scene};
use crate::texture::Texture;
use crate::trajectory::Trajectory;
use pimvo_kernels::{DepthImage, GrayImage};
use pimvo_vomath::{Mat3, Pinhole, Vec3, SE3, SO3};

/// Which sequence profile to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SequenceKind {
    /// Fast hand-held translation in a richly textured room
    /// (`fr1_xyz` analogue).
    Xyz,
    /// Slow arc around a cluttered desk (`fr2_desk` analogue).
    Desk,
    /// Distant texture-poor structural panels (`fr3_str_ntex_far`
    /// analogue).
    StrNtexFar,
    /// Fast yaw pan in the textured room — not part of the paper's
    /// Table 1; exercises the pyramid and gyro-aided extensions
    /// (vision-only tracking at full frame rate is comfortable, but
    /// subsampled consumption produces whip-pan inter-frame motion).
    Pan,
}

impl SequenceKind {
    /// Short name used in reports and file names.
    pub fn name(self) -> &'static str {
        match self {
            SequenceKind::Xyz => "xyz",
            SequenceKind::Desk => "desk",
            SequenceKind::StrNtexFar => "str_ntex_far",
            SequenceKind::Pan => "pan",
        }
    }

    /// All profiles, in the order of the paper's Table 1.
    pub fn all() -> [SequenceKind; 3] {
        [
            SequenceKind::Xyz,
            SequenceKind::Desk,
            SequenceKind::StrNtexFar,
        ]
    }
}

/// One rendered RGB-D frame with ground truth.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame index.
    pub index: usize,
    /// Timestamp in seconds (30 Hz).
    pub time: f64,
    /// Grayscale image.
    pub gray: GrayImage,
    /// Depth image (meters).
    pub depth: DepthImage,
    /// Ground-truth camera-to-world pose.
    pub gt_wc: SE3,
}

/// A generated sequence: camera model, frames and the ground-truth
/// trajectory.
#[derive(Debug, Clone)]
pub struct Sequence {
    /// Profile this sequence was generated from.
    pub kind: SequenceKind,
    /// Camera intrinsics.
    pub camera: Pinhole,
    /// Rendered frames.
    pub frames: Vec<Frame>,
    /// Ground-truth trajectory (camera-to-world).
    pub ground_truth: Trajectory,
}

impl Sequence {
    /// Generates `n_frames` frames of the given profile at 30 Hz.
    pub fn generate(kind: SequenceKind, n_frames: usize) -> Sequence {
        let camera = Pinhole::qvga();
        let scene = build_scene(kind);
        let opts = RenderOptions::default();
        let mut frames = Vec::with_capacity(n_frames);
        let mut ground_truth = Trajectory::new();
        for i in 0..n_frames {
            let time = i as f64 / 30.0;
            let gt_wc = pose_at(kind, time);
            let (gray, depth) = scene.render(&camera, &gt_wc, &opts, i as u32);
            ground_truth.push(time, gt_wc);
            frames.push(Frame {
                index: i,
                time,
                gray,
                depth,
                gt_wc,
            });
        }
        Sequence {
            kind,
            camera,
            frames,
            ground_truth,
        }
    }
}

/// Camera pose (camera-to-world) of a profile at time `t`.
pub fn pose_at(kind: SequenceKind, t: f64) -> SE3 {
    use std::f64::consts::TAU;
    match kind {
        SequenceKind::Xyz => {
            // hand-held translation, ~0.25 m/s, slight rotational wobble
            let p = Vec3::new(
                0.16 * (TAU * 0.25 * t).sin(),
                0.10 * (TAU * 0.20 * t + 1.0).sin(),
                0.13 * (TAU * 0.16 * t + 2.1).sin(),
            );
            let w = Vec3::new(
                0.03 * (TAU * 0.21 * t).sin(),
                0.04 * (TAU * 0.17 * t + 0.7).sin(),
                0.02 * (TAU * 0.13 * t + 1.9).sin(),
            );
            SE3::new(SO3::exp(w), p)
        }
        SequenceKind::Desk => {
            // slow arc around the desk centre at (0, 0.2, 1.9)
            let center = Vec3::new(0.0, 0.2, 1.9);
            let angle = 0.35 * (TAU * 0.05 * t).sin(); // ±20 deg sweep
            let radius = 1.55 + 0.05 * (TAU * 0.07 * t).sin();
            let eye = Vec3::new(
                center.x + radius * angle.sin(),
                center.y - 0.35 + 0.03 * (TAU * 0.09 * t).sin(),
                center.z - radius * angle.cos(),
            );
            look_at(eye, center)
        }
        SequenceKind::Pan => {
            // fast yaw sweep with slight translation
            let yaw = 0.9 * (TAU * 0.08 * t).sin();
            let p = Vec3::new(
                0.04 * (TAU * 0.11 * t).sin(),
                0.02 * (TAU * 0.07 * t + 0.4).sin(),
                0.03 * (TAU * 0.05 * t + 1.1).sin(),
            );
            SE3::new(SO3::exp(Vec3::new(0.0, yaw, 0.0)), p)
        }
        SequenceKind::StrNtexFar => {
            // lateral dolly in front of a far panel wall
            let p = Vec3::new(
                0.22 * (TAU * 0.08 * t).sin(),
                0.05 * (TAU * 0.05 * t + 0.5).sin(),
                0.08 * (TAU * 0.04 * t + 1.2).sin(),
            );
            let w = Vec3::new(
                0.0,
                0.025 * (TAU * 0.06 * t).sin(),
                0.008 * (TAU * 0.1 * t).sin(),
            );
            SE3::new(SO3::exp(w), p)
        }
    }
}

/// Builds the camera-to-world pose looking from `eye` toward `target`
/// (y-down camera convention).
fn look_at(eye: Vec3, target: Vec3) -> SE3 {
    let f = (target - eye).normalized().expect("eye == target");
    // world "down" is +y; camera x = down × forward, camera y = f × x
    let down = Vec3::new(0.0, 1.0, 0.0);
    let x_c = down
        .cross(f)
        .normalized()
        .unwrap_or(Vec3::new(1.0, 0.0, 0.0));
    let y_c = f.cross(x_c);
    // columns of R_wc are the camera axes expressed in world coordinates
    let r = Mat3::from_rows(
        [x_c.x, y_c.x, f.x],
        [x_c.y, y_c.y, f.y],
        [x_c.z, y_c.z, f.z],
    );
    SE3::new(SO3::from_matrix_unchecked(r), eye)
}

/// Scene geometry for each profile.
pub fn build_scene(kind: SequenceKind) -> Scene {
    match kind {
        SequenceKind::Xyz => {
            let noise = |base: f64, amp: f64, scale: f64, seed: u32| Texture::Noise {
                base,
                amplitude: amp,
                scale,
                seed,
                octaves: 3,
            };
            Scene {
                planes: vec![
                    // front wall, floor, ceiling, side walls (y down)
                    Plane::new(
                        Vec3::new(0.0, 0.0, 3.0),
                        Vec3::new(0.0, 0.0, -1.0),
                        noise(120.0, 130.0, 0.07, 11),
                    ),
                    Plane::new(
                        Vec3::new(0.0, 1.3, 0.0),
                        Vec3::new(0.0, -1.0, 0.0),
                        noise(100.0, 110.0, 0.08, 22),
                    ),
                    Plane::new(
                        Vec3::new(0.0, -1.3, 0.0),
                        Vec3::new(0.0, 1.0, 0.0),
                        noise(140.0, 90.0, 0.1, 33),
                    ),
                    Plane::new(
                        Vec3::new(-2.2, 0.0, 0.0),
                        Vec3::new(1.0, 0.0, 0.0),
                        noise(110.0, 120.0, 0.08, 44),
                    ),
                    Plane::new(
                        Vec3::new(2.2, 0.0, 0.0),
                        Vec3::new(-1.0, 0.0, 0.0),
                        noise(125.0, 115.0, 0.09, 55),
                    ),
                ],
                boxes: vec![
                    Aabb {
                        min: Vec3::new(-0.9, 0.5, 2.0),
                        max: Vec3::new(-0.3, 1.3, 2.6),
                        texture: noise(150.0, 100.0, 0.05, 66),
                    },
                    Aabb {
                        min: Vec3::new(0.5, 0.1, 2.3),
                        max: Vec3::new(1.2, 1.3, 2.9),
                        texture: Texture::Checker {
                            a: 70.0,
                            b: 190.0,
                            cell: 0.15,
                        },
                    },
                ],
            }
        }
        SequenceKind::Desk => {
            let noise = |base: f64, amp: f64, scale: f64, seed: u32| Texture::Noise {
                base,
                amplitude: amp,
                scale,
                seed,
                octaves: 3,
            };
            Scene {
                planes: vec![
                    // desk surface and back wall
                    Plane::new(
                        Vec3::new(0.0, 0.55, 0.0),
                        Vec3::new(0.0, -1.0, 0.0),
                        noise(135.0, 70.0, 0.09, 7),
                    ),
                    Plane::new(
                        Vec3::new(0.0, 0.0, 3.2),
                        Vec3::new(0.0, 0.0, -1.0),
                        noise(95.0, 85.0, 0.1, 8),
                    ),
                ],
                boxes: vec![
                    Aabb {
                        min: Vec3::new(-0.55, 0.15, 1.7),
                        max: Vec3::new(-0.15, 0.55, 2.1),
                        texture: Texture::Checker {
                            a: 60.0,
                            b: 200.0,
                            cell: 0.08,
                        },
                    },
                    Aabb {
                        min: Vec3::new(0.05, 0.25, 1.8),
                        max: Vec3::new(0.45, 0.55, 2.2),
                        texture: noise(170.0, 90.0, 0.04, 9),
                    },
                    Aabb {
                        min: Vec3::new(-0.1, -0.05, 2.1),
                        max: Vec3::new(0.25, 0.55, 2.45),
                        texture: noise(90.0, 110.0, 0.05, 10),
                    },
                ],
            }
        }
        SequenceKind::Pan => build_scene(SequenceKind::Xyz),
        SequenceKind::StrNtexFar => Scene {
            planes: vec![
                // far panel wall: strong structural edges, flat interiors
                Plane::new(
                    Vec3::new(0.0, 0.0, 4.6),
                    Vec3::new(0.0, 0.0, -1.0),
                    Texture::Panels {
                        base: 70.0,
                        cell: 0.5,
                        gap: 0.22,
                        seed: 5,
                    },
                ),
                // nearly textureless floor
                Plane::new(
                    Vec3::new(0.0, 1.4, 0.0),
                    Vec3::new(0.0, -1.0, 0.0),
                    Texture::Noise {
                        base: 95.0,
                        amplitude: 14.0,
                        scale: 0.9,
                        seed: 6,
                        octaves: 2,
                    },
                ),
            ],
            // texture-free structural clutter at varied depths: the
            // paper's fr3 "structure" sequences have geometry but no
            // surface texture
            boxes: vec![
                Aabb {
                    min: Vec3::new(-1.6, 0.6, 3.7),
                    max: Vec3::new(-0.8, 1.4, 4.4),
                    texture: Texture::Flat { base: 160.0 },
                },
                Aabb {
                    min: Vec3::new(0.7, -0.1, 2.6),
                    max: Vec3::new(1.3, 1.4, 3.3),
                    texture: Texture::Flat { base: 125.0 },
                },
                Aabb {
                    min: Vec3::new(-0.45, 0.8, 2.2),
                    max: Vec3::new(0.1, 1.4, 2.8),
                    texture: Texture::Flat { base: 185.0 },
                },
                Aabb {
                    min: Vec3::new(-1.1, -0.6, 3.1),
                    max: Vec3::new(-0.55, 0.0, 3.6),
                    texture: Texture::Flat { base: 45.0 },
                },
            ],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_frames_with_ground_truth() {
        let seq = Sequence::generate(SequenceKind::Xyz, 3);
        assert_eq!(seq.frames.len(), 3);
        assert_eq!(seq.ground_truth.len(), 3);
        assert_eq!(seq.frames[1].index, 1);
        assert!((seq.frames[2].time - 2.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn frames_have_valid_depth_coverage() {
        for kind in SequenceKind::all() {
            let seq = Sequence::generate(kind, 1);
            let d = &seq.frames[0].depth;
            let valid = (0..240)
                .flat_map(|y| (0..320).map(move |x| (x, y)))
                .filter(|&(x, y)| d.is_valid(x, y))
                .count();
            assert!(
                valid > 320 * 240 / 2,
                "{}: only {valid} valid depth pixels",
                kind.name()
            );
        }
    }

    #[test]
    fn motion_is_smooth_and_small_between_frames() {
        for kind in SequenceKind::all() {
            for i in 0..20 {
                let t = i as f64 / 30.0;
                let a = pose_at(kind, t);
                let b = pose_at(kind, t + 1.0 / 30.0);
                let rel = b.compose(&a.inverse());
                assert!(
                    rel.translation_norm() < 0.05,
                    "{} at t={t}: step {}",
                    kind.name(),
                    rel.translation_norm()
                );
                assert!(rel.rotation_angle() < 0.03, "{} rotation step", kind.name());
            }
        }
    }

    #[test]
    fn look_at_points_camera_at_target() {
        let eye = Vec3::new(1.0, -0.5, 0.0);
        let target = Vec3::new(0.0, 0.2, 1.9);
        let pose = look_at(eye, target);
        // transform the target into the camera frame: must be on +z
        let p_cam = pose.inverse().transform(target);
        assert!(p_cam.x.abs() < 1e-9 && p_cam.y.abs() < 1e-9);
        assert!(p_cam.z > 0.0);
        // rotation must be orthonormal
        let r = pose.rotation.matrix();
        let rtr = r.transpose().mul_mat(r);
        for i in 0..3 {
            assert!((rtr.m[i][i] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn profiles_have_distinct_texture_statistics() {
        let rich = Sequence::generate(SequenceKind::Xyz, 1);
        let poor = Sequence::generate(SequenceKind::StrNtexFar, 1);
        let variance = |img: &GrayImage| {
            let n = img.pixels().len() as f64;
            let mean = img.pixels().iter().map(|&p| p as f64).sum::<f64>() / n;
            img.pixels()
                .iter()
                .map(|&p| (p as f64 - mean).powi(2))
                .sum::<f64>()
                / n
        };
        let _ = variance; // texture-poor panels still have high variance
                          // what separates the profiles is the *density* of gradient
                          // pixels: rich noise textures put gradients almost everywhere,
                          // flat panels only at their boundaries
        let grad_density = |img: &GrayImage| {
            let mut n = 0usize;
            for y in 0..img.height() {
                for x in 1..img.width() {
                    let d = img.get(x, y) as i32 - img.get(x - 1, y) as i32;
                    if d.abs() > 10 {
                        n += 1;
                    }
                }
            }
            n as f64 / (img.pixels().len() as f64)
        };
        let (gd_rich, gd_poor) = (
            grad_density(&rich.frames[0].gray),
            grad_density(&poor.frames[0].gray),
        );
        assert!(
            gd_rich > 3.0 * gd_poor,
            "gradient density rich {gd_rich} vs poor {gd_poor}"
        );
    }
}

#[cfg(test)]
mod pan_tests {
    use super::*;

    #[test]
    fn pan_profile_has_fast_rotation() {
        // peak yaw rate ~0.45 rad/s: gentle at 30 Hz, violent at 6 Hz
        let a = pose_at(SequenceKind::Pan, 0.0);
        let b = pose_at(SequenceKind::Pan, 1.0 / 6.0);
        let rel = a.inverse().compose(&b);
        assert!(
            rel.rotation_angle() > 0.05,
            "6 Hz step {}",
            rel.rotation_angle()
        );
        let c = pose_at(SequenceKind::Pan, 1.0 / 30.0);
        let rel30 = a.inverse().compose(&c);
        assert!(rel30.rotation_angle() < 0.03);
    }

    #[test]
    fn pan_renders_the_textured_room() {
        let seq = Sequence::generate(SequenceKind::Pan, 2);
        assert_eq!(seq.frames.len(), 2);
        let valid = seq.frames[0]
            .gray
            .pixels()
            .iter()
            .filter(|&&p| p > 0)
            .count();
        assert!(valid > 320 * 240 / 2);
    }
}
