use pimvo_vomath::SE3;

/// A timestamped camera trajectory. Poses are **camera-to-world**
/// transforms `T_wc`, matching the TUM ground-truth convention.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trajectory {
    /// `(timestamp_seconds, T_wc)` samples in time order.
    pub samples: Vec<(f64, SE3)>,
}

impl Trajectory {
    /// Creates an empty trajectory.
    pub fn new() -> Self {
        Trajectory::default()
    }

    /// Appends a pose sample.
    pub fn push(&mut self, t: f64, pose: SE3) {
        self.samples.push((t, pose));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Pose at index `i`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn pose(&self, i: usize) -> &SE3 {
        &self.samples[i].1
    }

    /// Returns this trajectory rigidly re-based so its first pose
    /// coincides with `other`'s first pose (the standard first-pose
    /// alignment before computing absolute errors: a tracker starts at
    /// the identity, the ground truth starts wherever the generator
    /// put the camera).
    ///
    /// # Panics
    ///
    /// Panics if either trajectory is empty.
    pub fn aligned_to(&self, other: &Trajectory) -> Trajectory {
        assert!(!self.is_empty() && !other.is_empty(), "empty trajectory");
        let align = other.samples[0].1.compose(&self.samples[0].1.inverse());
        Trajectory {
            samples: self
                .samples
                .iter()
                .map(|(t, p)| (*t, align.compose(p)))
                .collect(),
        }
    }

    /// Total path length (meters) — sum of inter-sample translations.
    pub fn path_length(&self) -> f64 {
        self.samples
            .windows(2)
            .map(|w| (w[1].1.translation - w[0].1.translation).norm())
            .sum()
    }
}

impl FromIterator<(f64, SE3)> for Trajectory {
    fn from_iter<T: IntoIterator<Item = (f64, SE3)>>(iter: T) -> Self {
        Trajectory {
            samples: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_length_sums_steps() {
        let mut t = Trajectory::new();
        t.push(0.0, SE3::IDENTITY);
        t.push(1.0, SE3::exp(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]));
        t.push(2.0, SE3::exp(&[1.0, 1.0, 0.0, 0.0, 0.0, 0.0]));
        assert!((t.path_length() - 2.0).abs() < 1e-12);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn collects_from_iterator() {
        let t: Trajectory = (0..5).map(|i| (i as f64 / 30.0, SE3::IDENTITY)).collect();
        assert_eq!(t.len(), 5);
    }
}
