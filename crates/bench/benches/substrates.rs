//! Criterion benches of the supporting substrates: distance transform,
//! SE(3) operations, the synthetic renderer and CNN inference.

use criterion::{criterion_group, criterion_main, Criterion};
use pimvo_cnn::{render_shape, Shape, SmallNet};
use pimvo_pim::{ArrayConfig, PimMachine};
use pimvo_scene::{build_scene, RenderOptions, SequenceKind};
use pimvo_vomath::{distance_transform, gradient_maps, Pinhole, SE3};

fn bench_substrates(c: &mut Criterion) {
    // distance transform on a QVGA edge mask
    let mut mask = vec![0u8; 320 * 240];
    for i in (0..mask.len()).step_by(23) {
        mask[i] = 255;
    }
    let mut g = c.benchmark_group("substrates");
    g.bench_function("distance_transform_qvga", |b| {
        b.iter(|| distance_transform(&mask, 320, 240))
    });
    let dt = distance_transform(&mask, 320, 240);
    g.bench_function("gradient_maps_qvga", |b| b.iter(|| gradient_maps(&dt)));

    // SE(3) exp/log round trip
    let xi = [0.1, -0.05, 0.2, 0.03, -0.02, 0.01];
    g.bench_function("se3_exp_log", |b| {
        b.iter(|| {
            let t = SE3::exp(&xi);
            t.log()
        })
    });

    // one synthetic QVGA render
    let scene = build_scene(SequenceKind::Desk);
    let cam = Pinhole::qvga();
    let opts = RenderOptions::default();
    g.sample_size(10);
    g.bench_function("render_qvga_frame", |b| {
        b.iter(|| scene.render(&cam, &SE3::IDENTITY, &opts, 0))
    });

    // CNN inference on the simulated PIM
    let mut net = SmallNet::untrained();
    let _ = net.train_head(20, 5, 8);
    let img = render_shape(Shape::Circle, 42);
    g.bench_function("cnn_inference_scalar", |b| {
        b.iter(|| net.forward_scalar(&img))
    });
    g.bench_function("cnn_inference_pim_simulated", |b| {
        let mut m = PimMachine::new(ArrayConfig::qvga());
        b.iter(|| net.forward_pim(&mut m, 0, &img))
    });
    g.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
