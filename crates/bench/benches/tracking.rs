//! Criterion bench of full-frame tracking on both backends (simulator
//! wall-clock per frame).

use criterion::{criterion_group, criterion_main, Criterion};
use pimvo_core::{BackendKind, Tracker, TrackerConfig};
use pimvo_scene::{Sequence, SequenceKind};

fn bench_tracking(c: &mut Criterion) {
    let seq = Sequence::generate(SequenceKind::Desk, 4);
    let mut g = c.benchmark_group("tracking_per_frame");
    g.sample_size(10);
    for (name, backend) in [("float", BackendKind::Float), ("pim", BackendKind::Pim)] {
        g.bench_function(name, |b| {
            let mut tracker = Tracker::new(TrackerConfig::default(), backend);
            // bootstrap so the measured frames exercise the LM path
            let _ = tracker.process_frame(&seq.frames[0].gray, &seq.frames[0].depth);
            let mut i = 1usize;
            b.iter(|| {
                let f = &seq.frames[1 + (i % 3)];
                i += 1;
                tracker.process_frame(&f.gray, &f.depth)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tracking);
criterion_main!(benches);
