//! Criterion micro-benches of the sharded multi-array pool: simulator
//! wall-clock throughput of pooled edge detection and LM batch
//! submission at several pool sizes (the modeled hardware cycles are
//! printed by `exp_scaling`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pimvo_core::pim_exec::{BatchOptions, BatchRunner};
use pimvo_core::{extract_features, Keyframe, QFeature, QPose};
use pimvo_kernels::{pim_pool, EdgeConfig};
use pimvo_pim::{ArrayConfig, PimMachine};
use pimvo_vomath::{Pinhole, SE3};

fn bench_pool(c: &mut Criterion) {
    let (gray, depth) = pimvo_bench::canonical_frame();
    let cfg = EdgeConfig::default();
    let builder = PimMachine::builder(ArrayConfig::qvga_banks(6));

    let mut g = c.benchmark_group("pool_edge_detect");
    for n in [1usize, 2, 4, 8] {
        g.bench_function(format!("arrays_{n}"), |b| {
            b.iter(|| {
                let mut pool = builder.build_pool(n);
                black_box(pim_pool::edge_detect(&mut pool, &gray, &cfg))
            })
        });
    }
    g.finish();

    let cam = Pinhole::qvga();
    let mut pool = builder.build_pool(1);
    let maps = pim_pool::edge_detect(&mut pool, &gray, &cfg);
    let features = extract_features(&maps.mask, &depth, &cam, 4000, 0.3, 8.0);
    let kf = Keyframe::build(0, SE3::IDENTITY, maps.mask.clone(), &cam);
    let qpose = QPose::quantize(&SE3::IDENTITY);
    let qfeats: Vec<QFeature> = features.iter().map(QFeature::quantize).collect();

    let mut g = c.benchmark_group("pool_lm_submit");
    for n in [1usize, 4] {
        g.bench_function(format!("arrays_{n}"), |b| {
            b.iter(|| {
                let mut runner = BatchRunner::new(BatchOptions {
                    pool: n,
                    ..Default::default()
                });
                black_box(runner.submit(&qfeats, &qpose, &kf.q_tables, &cam).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pool);
criterion_main!(benches);
