//! Criterion micro-benches of the PIM machine primitives (simulator
//! throughput per operation class, at each lane width).

use criterion::{criterion_group, criterion_main, Criterion};
use pimvo_pim::{ArrayConfig, LaneWidth, Operand, PimMachine, Signedness};
use Operand::Row;

fn machine(width: LaneWidth, sign: Signedness) -> PimMachine {
    let mut m = PimMachine::new(ArrayConfig::qvga());
    m.set_lanes(width, sign);
    let lanes = m.lanes();
    let a: Vec<i64> = (0..lanes as i64).map(|i| i * 3 + 1).collect();
    let b: Vec<i64> = (0..lanes as i64).map(|i| i * 7 + 2).collect();
    m.host_write_lanes(0, &a).unwrap();
    m.host_write_lanes(1, &b).unwrap();
    m
}

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("pim_primitives");
    for (name, width) in [("w8", LaneWidth::W8), ("w32", LaneWidth::W32)] {
        let mut m = machine(width, Signedness::Unsigned);
        g.bench_function(format!("add_{name}"), |b| b.iter(|| m.add(Row(0), Row(1))));
        let mut m = machine(width, Signedness::Unsigned);
        g.bench_function(format!("mul_{name}"), |b| b.iter(|| m.mul(Row(0), Row(1))));
        let mut m = machine(width, Signedness::Unsigned);
        g.bench_function(format!("div_{name}"), |b| b.iter(|| m.div(Row(0), Row(1))));
        let mut m = machine(width, Signedness::Unsigned);
        g.bench_function(format!("abs_diff_{name}"), |b| {
            b.iter(|| m.abs_diff(Row(0), Row(1)))
        });
    }
    let mut m = machine(LaneWidth::W32, Signedness::Signed);
    g.bench_function("mul_signed_w32", |b| {
        b.iter(|| m.mul_signed(Row(0), Row(1)))
    });
    let mut m = machine(LaneWidth::W8, Signedness::Unsigned);
    g.bench_function("writeback", |b| {
        m.add(Row(0), Row(1));
        b.iter(|| m.writeback(2))
    });
    g.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
