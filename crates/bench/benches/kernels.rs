//! Criterion micro-benches of the edge-detection kernels.
//!
//! These measure *simulator wall-clock throughput* (how fast this Rust
//! implementation runs on the host), complementing the modeled hardware
//! cycle counts printed by the `exp_*` binaries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pimvo_kernels::{ir, scalar, EdgeConfig, GrayImage};
use pimvo_pim::{ArrayConfig, LowerLevel, PimMachine};

fn qvga_image() -> GrayImage {
    GrayImage::from_fn(320, 240, |x, y| {
        ((x * 13 + y * 7).wrapping_mul(2654435761) >> 9) as u8
    })
}

fn bench_kernels(c: &mut Criterion) {
    let img = qvga_image();
    let cfg = EdgeConfig::default();
    let lpf_map = scalar::lpf(&img);
    let hpf_map = scalar::hpf(&lpf_map);

    let mut g = c.benchmark_group("edge_kernels_scalar");
    g.bench_function("lpf", |b| b.iter(|| scalar::lpf(&img)));
    g.bench_function("hpf", |b| b.iter(|| scalar::hpf(&lpf_map)));
    g.bench_function("nms", |b| b.iter(|| scalar::nms(&hpf_map, &cfg)));
    g.bench_function("full_pipeline", |b| {
        b.iter(|| scalar::edge_detect(&img, &cfg))
    });
    g.finish();

    let mut g = c.benchmark_group("edge_kernels_pim_simulated");
    g.sample_size(10);
    g.bench_function("optimized", |b| {
        b.iter_batched(
            || PimMachine::new(ArrayConfig::qvga_banks(6)),
            |mut m| ir::edge_detect(&mut m, &img, &cfg, LowerLevel::Opt),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("naive", |b| {
        b.iter_batched(
            || PimMachine::new(ArrayConfig::qvga_banks(6)),
            |mut m| ir::edge_detect(&mut m, &img, &cfg, LowerLevel::Naive),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("multireg", |b| {
        b.iter_batched(
            || {
                let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
                m.set_tmp_regs(pimvo_kernels::ir::REGS_REQUIRED);
                m
            },
            |mut m| {
                ir::edge_detect(
                    &mut m,
                    &img,
                    &cfg,
                    LowerLevel::MultiReg(pimvo_kernels::ir::REGS_REQUIRED),
                )
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
