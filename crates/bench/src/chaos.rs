//! Deterministic chaos-soak harness for the supervisor/recovery layer.
//!
//! [`run_chaos`] drives a [`Tracker`] over a procedurally generated
//! sequence while a seeded RNG interleaves the failure modes the
//! robustness PR is supposed to survive:
//!
//! * **kill-and-restore** — the tracker is dropped and a fresh one is
//!   restored from the last on-disk checkpoint;
//! * **checkpoint corruption** — a random bit of the snapshot file is
//!   flipped, so the next restore must fail with a typed
//!   [`pimvo_core::CheckpointError`] and fall back to re-initialization;
//! * **budget squeezes** — the per-frame cycle budget is slashed for a
//!   few frames, forcing the tracker down the degradation ladder;
//! * **quarantine storms** — a subset of PIM arrays is quarantined and
//!   later released (PIM backend only);
//! * **fault bursts** — a transient bit-upset model is attached to one
//!   array for a few frames. The model is installed on every build so
//!   the RNG stream is identical with and without the `fault` feature;
//!   actual upsets are only injected when the feature is enabled.
//!
//! After every frame the harness checks the invariants shared with the
//! core test-suite: the pose stays finite, the
//! [`TrackingState`] transition is legal per
//! [`pimvo_core::transition_legal`], and backend cycle counters are
//! monotonic within a tracker incarnation.
//!
//! Everything — frames, event schedule, corruption offsets — derives
//! from [`ChaosConfig::seed`] through [`SplitMix64`], and the report
//! carries no wall-clock measurements, so the emitted
//! `BENCH_chaos_soak.json` is byte-identical for a fixed seed.
//!
//! [`run_fleet_chaos`] lifts the same discipline to the multi-tenant
//! serving layer: N sessions over one shared self-healing pool, driven
//! through a defect storm (stuck-at injection + quarantine), scrub /
//! spare-row-remap rehabilitation, circuit-breaker trips with half-open
//! probe recovery, a DMA transfer-fault storm (CRC-rejected payload
//! flips, stalled descriptors, channel quarantine with degradation to
//! the synchronous port), and a mid-soak hard kill replayed
//! bit-identically from a [`pimvo_serve::FleetCheckpointStore`]
//! manifest (`BENCH_fleet_chaos.json`).

use std::fs;
use std::io;
use std::path::PathBuf;

use pimvo_core::checkpoint::pose_finite;
use pimvo_core::{
    transition_legal, BackendKind, CheckpointError, FrameResult, PimBackend, Tracker,
    TrackerConfig, TrackingState,
};
use pimvo_kernels::{DepthImage, GrayImage};
use pimvo_pim::{
    ArrayConfig, DmaConfig, DmaFaultModel, FaultModel, PimMachine, PimMachineBuilder, ScrubConfig,
    SessionId,
};
use pimvo_serve::{
    BreakerConfig, BreakerState, FleetCheckpointStore, FleetScheduler, FlightDump, SessionSpec,
};
use pimvo_vomath::Pinhole;

use crate::sink::BenchReport;

/// Sebastiano Vigna's SplitMix64 — a tiny, zero-dependency PRNG with a
/// 64-bit state. Used for every chaos decision so a seed fully
/// determines the run.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose whole future is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`; modulo bias is irrelevant at
    /// the event rates used here).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Parameters of a chaos-soak run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for every chaos decision and procedural frame.
    pub seed: u64,
    /// Number of frames to drive.
    pub frames: usize,
    /// Backend under test.
    pub backend: BackendKind,
    /// PIM arrays in the pool (PIM backend only).
    pub arrays: usize,
    /// Periodic checkpoint interval in frames (0 disables periodic
    /// snapshots, which also disables kill-and-restore).
    pub checkpoint_every: usize,
    /// Scratch directory for checkpoint files. Its path never enters
    /// the report, so it does not affect determinism.
    pub workdir: PathBuf,
}

impl ChaosConfig {
    /// A run with the default event mix.
    pub fn new(seed: u64, frames: usize, workdir: impl Into<PathBuf>) -> Self {
        ChaosConfig {
            seed,
            frames,
            backend: BackendKind::Pim,
            arrays: 4,
            checkpoint_every: 25,
            workdir: workdir.into(),
        }
    }
}

/// Outcome of a chaos-soak run: the deterministic report plus any
/// invariant violations (empty on a healthy run).
#[derive(Debug)]
pub struct ChaosOutcome {
    /// Deterministic metrics; serialize with [`BenchReport::to_json`].
    pub report: BenchReport,
    /// Human-readable invariant violations, in frame order.
    pub violations: Vec<String>,
}

impl ChaosOutcome {
    /// True when every per-frame invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The tracker configuration used by the soak: a quarter-QVGA camera
/// so a 500-frame PIM run stays cheap.
pub fn chaos_tracker_config() -> TrackerConfig {
    TrackerConfig {
        camera: Pinhole::qvga().halved(),
        max_features: 3000,
        ..TrackerConfig::default()
    }
}

/// Procedural textured-wall frame `i` of the chaos sequence: a fixed
/// multi-frequency texture at 2 m depth, translated laterally by a
/// smooth deterministic shift.
pub fn chaos_frame(cam: &Pinhole, i: usize) -> (GrayImage, DepthImage) {
    let shift = (i as f64 * 0.23).sin() * 2.5;
    let gray = GrayImage::from_fn(cam.width, cam.height, |x, y| {
        let xs = x as f64 + shift;
        let v = ((xs * 0.55).sin()
            + (y as f64 * 0.41).sin()
            + (xs * 0.13).sin() * (y as f64 * 0.09).cos())
            * 50.0
            + 120.0;
        v.clamp(0.0, 255.0) as u8
    });
    let depth = DepthImage::from_fn(cam.width, cam.height, |_, _| 2.0);
    (gray, depth)
}

/// Per-frame invariants shared with the core supervision tests: finite
/// pose and a legal [`TrackingState`] transition. Returns a
/// human-readable description per violated invariant.
pub fn check_frame(
    prev_state: TrackingState,
    result: &FrameResult,
    max_bad_frames: usize,
) -> Vec<String> {
    let mut violations = Vec::new();
    if !pose_finite(&result.pose_wc) {
        violations.push(format!("frame {}: non-finite pose_wc", result.index));
    }
    if !transition_legal(prev_state, result.state, max_bad_frames) {
        violations.push(format!(
            "frame {}: illegal transition {:?} -> {:?}",
            result.index, prev_state, result.state
        ));
    }
    violations
}

fn make_tracker(cfg: &ChaosConfig, tracker_cfg: &TrackerConfig) -> Tracker {
    match cfg.backend {
        BackendKind::Pim => Tracker::with_backend(
            tracker_cfg.clone(),
            Box::new(PimBackend::with_pool(cfg.arrays)),
        ),
        _ => Tracker::new(tracker_cfg.clone(), cfg.backend),
    }
}

fn ckpt_io(e: CheckpointError) -> io::Error {
    match e {
        CheckpointError::Io(e) => e,
        other => io::Error::other(other.to_string()),
    }
}

/// Flips one RNG-chosen bit of the file at `path`.
fn corrupt_file(path: &PathBuf, rng: &mut SplitMix64) -> io::Result<()> {
    let mut bytes = fs::read(path)?;
    if bytes.is_empty() {
        return Ok(());
    }
    let offset = rng.below(bytes.len() as u64) as usize;
    let bit = rng.below(8) as u8;
    bytes[offset] ^= 1 << bit;
    fs::write(path, bytes)
}

fn backend_name(kind: BackendKind) -> &'static str {
    match kind {
        BackendKind::Float => "float",
        BackendKind::Pim => "pim",
    }
}

/// Drives the chaos soak described in the module docs. The only
/// fallible operations are checkpoint-file reads/writes in
/// `cfg.workdir`; every tracker-level failure (typed checkpoint
/// rejection, quarantine exhaustion, deadline overrun) is part of the
/// experiment and recorded rather than propagated.
pub fn run_chaos(cfg: &ChaosConfig) -> io::Result<ChaosOutcome> {
    fs::create_dir_all(&cfg.workdir)?;
    let tracker_cfg = chaos_tracker_config();
    let cam = tracker_cfg.camera;
    let max_bad = tracker_cfg.recovery.max_bad_frames;
    let ckpt_path = cfg.workdir.join(format!("chaos_{:016x}.ckpt", cfg.seed));

    let mut rng = SplitMix64::new(cfg.seed);
    let mut tracker = make_tracker(cfg, &tracker_cfg);

    let mut have_ckpt = false;
    let mut squeeze_left = 0usize;
    let mut storm_left = 0usize;
    let mut burst_left = 0usize;
    let mut burst_array = 0usize;

    let mut restores = 0u64;
    let mut reinits = 0u64;
    let mut corruptions = 0u64;
    let mut typed_rejections = 0u64;
    let mut squeezes = 0u64;
    let mut storms = 0u64;
    let mut bursts = 0u64;
    let mut ok_frames = 0u64;
    let mut degraded_frames = 0u64;
    let mut lost_frames = 0u64;
    let mut keyframes = 0u64;

    let mut prev_state = tracker.state();
    let mut prev_cycles = 0u64;
    let mut frame_cycles_ema = 0u64;
    let mut violations = Vec::new();

    for i in 0..cfg.frames {
        // Periodic snapshot — the restart point for later kills.
        if cfg.checkpoint_every > 0 && i > 0 && i % cfg.checkpoint_every == 0 {
            tracker.save_checkpoint(&ckpt_path).map_err(ckpt_io)?;
            have_ckpt = true;
        }

        // Snapshot corruption: flip a bit so the *next* restore must be
        // rejected with a typed error.
        if have_ckpt && rng.chance(1, 47) {
            corrupt_file(&ckpt_path, &mut rng)?;
            corruptions += 1;
        }

        // Kill-and-restore: drop the live tracker, bring up a fresh one
        // from disk. A rejected (corrupt) snapshot must never panic —
        // the harness falls back to re-initialization, exactly like a
        // supervisor would.
        if have_ckpt && rng.chance(1, 31) {
            let mut fresh = make_tracker(cfg, &tracker_cfg);
            match fresh.restore_from_file(&ckpt_path) {
                Ok(()) => restores += 1,
                Err(_typed) => {
                    typed_rejections += 1;
                    reinits += 1;
                    have_ckpt = false;
                }
            }
            tracker = fresh;
            prev_state = tracker.state();
            prev_cycles = 0;
        }

        // Budget squeeze: slash the per-frame cycle budget to a
        // fraction of the recently observed frame cost for a few
        // frames, then lift it again. Scaling to the observed cost
        // (rather than an absolute number) makes the squeeze bite on
        // both backends, whose per-frame cycle counts differ by orders
        // of magnitude.
        if squeeze_left == 0 && rng.chance(1, 23) {
            squeeze_left = 4 + rng.below(8) as usize;
            let typical = frame_cycles_ema.max(1);
            tracker.set_frame_budget_cycles(Some(typical / 4 + rng.below(typical)));
            squeezes += 1;
        } else if squeeze_left > 0 {
            squeeze_left -= 1;
            if squeeze_left == 0 {
                tracker.set_frame_budget_cycles(None);
            }
        }

        if let Some(pool) = tracker.pool_mut() {
            // Quarantine storm: sideline some arrays (always leaving at
            // least one healthy) and release them a few frames later.
            if storm_left == 0 && rng.chance(1, 29) {
                let n = pool.len();
                let k = 1 + rng.below(n.saturating_sub(1).max(1) as u64) as usize;
                for j in 0..k.min(n.saturating_sub(1)) {
                    let _ = pool.try_quarantine(j);
                }
                storm_left = 3 + rng.below(6) as usize;
                storms += 1;
            } else if storm_left > 0 {
                storm_left -= 1;
                if storm_left == 0 {
                    for j in 0..pool.len() {
                        let _ = pool.unquarantine(j);
                    }
                }
            }

            // Fault burst: attach a transient upset model to one array.
            // The model is installed unconditionally (keeping the RNG
            // stream build-independent); upsets only fire under the
            // `fault` feature.
            if burst_left == 0 && rng.chance(1, 37) {
                burst_array = rng.below(pool.len() as u64) as usize;
                let seed = rng.next_u64();
                #[cfg(feature = "fault")]
                let model = FaultModel::transient(seed, 1e-7);
                #[cfg(not(feature = "fault"))]
                let model = {
                    let _ = seed;
                    FaultModel::none()
                };
                pool.array_mut(burst_array).set_fault_model(model);
                burst_left = 2 + rng.below(5) as usize;
                bursts += 1;
            } else if burst_left > 0 {
                burst_left -= 1;
                if burst_left == 0 {
                    pool.array_mut(burst_array)
                        .set_fault_model(FaultModel::none());
                }
            }
        }

        let (gray, depth) = chaos_frame(&cam, i);
        let result = tracker.process_frame(&gray, &depth);

        violations.extend(check_frame(prev_state, &result, max_bad));
        let stats = tracker.stats();
        let cycles = stats.edge_cycles + stats.lm_cycles;
        if cycles < prev_cycles {
            violations.push(format!(
                "frame {}: cycle counter went backwards ({} -> {})",
                result.index, prev_cycles, cycles
            ));
        }
        let spent = cycles.saturating_sub(prev_cycles);
        if spent > 0 {
            frame_cycles_ema = if frame_cycles_ema == 0 {
                spent
            } else {
                (frame_cycles_ema * 7 + spent) / 8
            };
        }
        prev_cycles = cycles;
        prev_state = result.state;
        match result.state {
            TrackingState::Ok => ok_frames += 1,
            TrackingState::Degraded => degraded_frames += 1,
            TrackingState::Lost => lost_frames += 1,
        }
        if result.is_keyframe {
            keyframes += 1;
        }
    }

    let budget = tracker.budget_status();
    let stats = tracker.stats();
    let t = tracker.checkpoint().pose_wc.translation;
    let mut report = BenchReport::new("chaos_soak");
    report
        .note("seed", &format!("{:#018x}", cfg.seed))
        .note("backend", backend_name(cfg.backend))
        .metric("frames", cfg.frames as f64)
        .metric("checkpoint_every", cfg.checkpoint_every as f64)
        .metric("restores", restores as f64)
        .metric("reinit_fallbacks", reinits as f64)
        .metric("corruptions", corruptions as f64)
        .metric("typed_rejections", typed_rejections as f64)
        .metric("budget_squeezes", squeezes as f64)
        .metric("quarantine_storms", storms as f64)
        .metric("fault_bursts", bursts as f64)
        .metric("frames_ok", ok_frames as f64)
        .metric("frames_degraded", degraded_frames as f64)
        .metric("frames_lost", lost_frames as f64)
        .metric("keyframes", keyframes as f64)
        .metric("deadline_misses", budget.deadline_misses as f64)
        .metric("coasted_frames", budget.coasted_frames as f64)
        .metric("final_cycles", (stats.edge_cycles + stats.lm_cycles) as f64)
        .metric("final_energy_mj", stats.energy_mj)
        .metric("final_translation_norm", t.norm())
        .metric("invariant_violations", violations.len() as f64);

    let _ = fs::remove_file(&ckpt_path);
    Ok(ChaosOutcome { report, violations })
}

// ---------------------------------------------------------------------
// Fleet-level chaos: N sessions over one shared self-healing pool
// ---------------------------------------------------------------------

/// Parameters of a fleet chaos-soak run ([`run_fleet_chaos`]).
#[derive(Debug, Clone)]
pub struct FleetChaosConfig {
    /// Seed for every chaos decision.
    pub seed: u64,
    /// Frames per session; the soak serves `sessions * frames_per_session`.
    pub frames_per_session: usize,
    /// Tenant sessions sharing the pool.
    pub sessions: usize,
    /// PIM arrays in the shared pool.
    pub arrays: usize,
    /// Scratch directory for the fleet manifest. Never enters the
    /// report, so it does not affect determinism.
    pub workdir: PathBuf,
}

impl FleetChaosConfig {
    /// A run with the default fleet shape (4 sessions, 3 arrays).
    pub fn new(seed: u64, frames_per_session: usize, workdir: impl Into<PathBuf>) -> Self {
        FleetChaosConfig {
            seed,
            frames_per_session,
            sessions: 4,
            arrays: 3,
            workdir: workdir.into(),
        }
    }
}

/// Per-session procedural frame of the fleet soak: the chaos texture
/// with session-specific frequencies so tenants never share a scene.
fn fleet_frame(cam: &Pinhole, session: usize, k: usize) -> (GrayImage, DepthImage) {
    let speed = 0.5 + (session % 8) as f64 * 0.1;
    let shift = k as f64 * speed;
    let fx = 0.55 + session as f64 * 0.011;
    let gray = GrayImage::from_fn(cam.width, cam.height, |x, y| {
        let xs = x as f64 + shift;
        let y = y as f64;
        let v = ((xs * fx).sin() + (y * 0.41).sin() + (xs * 0.13).sin() * (y * 0.09).cos()) * 50.0
            + 120.0;
        v.clamp(0.0, 255.0) as u8
    });
    let depth = DepthImage::from_fn(cam.width, cam.height, |_, _| 2.0);
    (gray, depth)
}

/// Healthy per-frame cost of the fleet's tracker configuration on an
/// `arrays`-wide pool (second frame, keyframe bootstrap excluded) —
/// anchors the breaker session's deadline and backoff.
fn calibrate_fleet_frame_cycles(builder: &PimMachineBuilder, arrays: usize) -> u64 {
    let mut fleet = FleetScheduler::from_builder(builder, arrays);
    fleet.add_session(
        SessionId(1),
        SessionSpec::new(chaos_tracker_config()).max_queue(2),
    );
    let cam = chaos_tracker_config().camera;
    let mut last = 1;
    for k in 0..2 {
        let (g, d) = fleet_frame(&cam, 0, k);
        fleet.submit_frame(SessionId(1), g, d).unwrap();
        let o = fleet.step().unwrap().expect("calibration frame queued");
        last = o.latency_cycles.max(1);
    }
    last
}

/// Drives one wave of the fleet: offers frame `k` to every session
/// (full queues shed — that is part of the experiment), then runs up to
/// `sessions` scheduler steps, recording outcomes and invariants.
/// During a `blackout` wave, session 1's camera feed goes dark
/// (featureless frames), driving its tracker through `Degraded` into
/// `Lost` — the failure signal its circuit breaker counts.
#[allow(clippy::too_many_arguments)]
fn fleet_wave(
    fleet: &mut FleetScheduler,
    cam: &Pinhole,
    sessions: usize,
    k: usize,
    blackout: bool,
    max_bad: usize,
    prev_states: &mut [TrackingState],
    poses: &mut Vec<(u32, pimvo_vomath::SE3)>,
    violations: &mut Vec<String>,
) {
    for s in 0..sessions {
        let (g, d) = fleet_frame(cam, s, k);
        let g = if blackout && s == 0 {
            GrayImage::from_fn(cam.width, cam.height, |_, _| 0)
        } else {
            g
        };
        let _ = fleet.submit_frame(SessionId(s as u32 + 1), g, d);
    }
    for _ in 0..sessions {
        let Some(o) = fleet.step().expect("scheduler step") else {
            break;
        };
        let s = o.session.0 as usize - 1;
        for v in check_frame(prev_states[s], &o.result, max_bad) {
            violations.push(format!("session {}: {v}", o.session.0));
        }
        prev_states[s] = o.result.state;
        poses.push((o.session.0, o.result.pose_wc));
    }
}

/// Drives the fleet chaos soak: `sessions` tenants over one shared
/// self-healing pool (DMA transfer channels armed on every array),
/// through five acts —
///
/// 1. **warm-up** — clean serving, all arrays healthy;
/// 2. **defect storm** — all but one array is quarantined, two of the
///    victims grow persistent stuck-at defects (under the `fault`
///    feature), a seeded transient fault burst rides the surviving
///    array, and the breaker-armed session's camera feed blacks out:
///    its tracker degrades into `Lost`, the breaker counts the failed
///    frames, trips open, and the session is evicted mid-storm;
/// 3. **rehabilitation** — a scrub pass march-tests the quarantined
///    arrays, remaps defective rows onto spares, and re-admits them;
///    capacity must return to its pre-storm value, and — vision
///    restored — the tripped session must earn its slot back through a
///    half-open probe frame;
/// 4. **transfer storm** — a seeded [`DmaFaultModel`] floods every
///    channel with payload flips, stalled descriptors and dropped
///    completions; the CRC/timeout ladder retries, channels quarantine
///    and traffic degrades to the synchronous port with poses
///    unaffected; the operator lifts the model and rehabilitates the
///    channels (like act 3's scrub, the model is installed on every
///    build so the RNG stream is identical without the `fault`
///    feature — actual transfer faults only fire with it);
/// 5. **kill-and-recover** — the fleet is checkpointed to a
///    [`pimvo_serve::FleetCheckpointStore`] manifest and dropped; a
///    recovered fleet replays the remaining waves and must match the
///    uninterrupted run bit-for-bit (pose delta 0, equal clocks).
///
/// Everything derives from `cfg.seed`; the emitted
/// `BENCH_fleet_chaos.json` is byte-identical for a fixed seed.
pub fn run_fleet_chaos(cfg: &FleetChaosConfig) -> io::Result<ChaosOutcome> {
    fs::create_dir_all(&cfg.workdir)?;
    let tracker_cfg = chaos_tracker_config();
    let cam = tracker_cfg.camera;
    let max_bad = tracker_cfg.recovery.max_bad_frames;
    let n = cfg.sessions.max(1);
    // f/4 storm waves must cover the breaker's 3-failure trip threshold
    let f = cfg.frames_per_session.max(16);
    let storm_at = f / 4;
    let scrub_at = f / 2;
    let kill_at = 3 * f / 4;
    // transfer storm rides the second half of the post-scrub window, so
    // the pool is back to full array capacity when the channels fail
    let dma_storm_at = (scrub_at + kill_at) / 2;

    let mut rng = SplitMix64::new(cfg.seed);
    // every array gets a host↔array DMA channel: transfers overlap
    // compute all soak long, and act 4 faults that very data path
    let builder = PimMachine::builder(ArrayConfig::qvga_banks(6))
        .spare_rows(4)
        .dma(DmaConfig::default());
    let healthy_cycles = calibrate_fleet_frame_cycles(&builder, cfg.arrays);

    // session 1 carries the deadline and the circuit breaker; the rest
    // are background tenants. The deadline must absorb a full wave of
    // queue wait: a half-open probe is scheduled after every other
    // session's frame, so a per-frame deadline tighter than one wave
    // makes each probe "miss" on queue wait alone and the breaker can
    // never close again.
    let breaker = BreakerConfig {
        failure_window: 8,
        trip_threshold: 2,
        backoff_base: healthy_cycles,
        backoff_factor: 2,
        backoff_max: healthy_cycles * 16,
    };
    let mut specs: Vec<(SessionId, SessionSpec)> = vec![(
        SessionId(1),
        SessionSpec::new(tracker_cfg.clone())
            .deadline_cycles(healthy_cycles * (n as u64 + 2))
            .max_queue(2)
            .breaker(breaker)
            // flight recorder on the failure-prone session: every trip
            // and deadline miss dumps the last 4 frames' op traces
            .flight_recorder(4),
    )];
    for s in 1..n {
        specs.push((
            SessionId(s as u32 + 1),
            SessionSpec::new(tracker_cfg.clone()).max_queue(2),
        ));
    }

    let mut fleet = FleetScheduler::from_builder(&builder, cfg.arrays);
    fleet.set_flight_dir(&cfg.workdir);
    for (id, spec) in &specs {
        fleet.add_session(*id, spec.clone());
    }
    fleet.pool_mut().set_scrub(ScrubConfig {
        interval_phases: 0, // the harness is the maintenance cadence
        probation_phases: 3,
    });

    let mut prev_states = vec![TrackingState::Ok; n];
    let mut poses: Vec<(u32, pimvo_vomath::SE3)> = Vec::new();
    let mut violations = Vec::new();

    // act 1: warm-up
    for k in 0..storm_at {
        fleet_wave(
            &mut fleet,
            &cam,
            n,
            k,
            false,
            max_bad,
            &mut prev_states,
            &mut poses,
            &mut violations,
        );
    }
    let pre_storm_available = fleet.pool_mut().available();

    // act 2: defect storm — quarantine all but one array, two victims
    // with persistent stuck-at defects, plus a transient burst on the
    // survivor (upsets only fire under the `fault` feature; the model
    // install keeps the RNG stream build-independent).
    let quarantined = cfg.arrays.saturating_sub(1).max(1).min(cfg.arrays - 1);
    for v in 0..quarantined {
        if v < 2 {
            let row = 1 + rng.below(40) as usize;
            let bit = rng.below(32) as usize;
            #[cfg(feature = "fault")]
            fleet
                .pool_mut()
                .array_mut(v)
                .inject_stuck_bit(row, bit, true);
            #[cfg(not(feature = "fault"))]
            let _ = (row, bit);
        }
        fleet
            .pool_mut()
            .try_quarantine(v)
            .expect("storm victim index in range");
    }
    let survivor = quarantined; // the one array left standing
    let burst_seed = rng.next_u64();
    #[cfg(feature = "fault")]
    let burst_model = FaultModel::transient(burst_seed, 1e-8);
    #[cfg(not(feature = "fault"))]
    let burst_model = {
        let _ = burst_seed;
        FaultModel::none()
    };
    fleet
        .pool_mut()
        .array_mut(survivor)
        .set_fault_model(burst_model);
    let storm_available = fleet.pool_mut().available();

    for k in storm_at..scrub_at {
        fleet_wave(
            &mut fleet,
            &cam,
            n,
            k,
            true,
            max_bad,
            &mut prev_states,
            &mut poses,
            &mut violations,
        );
    }
    let trips_during_storm = fleet.stats(SessionId(1)).expect("session 1").breaker_trips;

    // act 3: rehabilitation — lift the burst, scrub the quarantined
    // arrays back in (remapping the stuck rows onto spares)
    fleet
        .pool_mut()
        .array_mut(survivor)
        .set_fault_model(FaultModel::none());
    let rehabbed = fleet.pool_mut().scrub_now();
    let post_scrub_available = fleet.pool_mut().available();
    if post_scrub_available != pre_storm_available {
        violations.push(format!(
            "capacity not restored: {post_scrub_available} available after scrub, \
             {pre_storm_available} before the storm"
        ));
    }
    for k in scrub_at..dma_storm_at {
        fleet_wave(
            &mut fleet,
            &cam,
            n,
            k,
            false,
            max_bad,
            &mut prev_states,
            &mut poses,
            &mut violations,
        );
    }

    // act 4: transfer storm — flood every DMA channel with payload
    // flips, stalled descriptors and dropped completions. Rates are
    // high enough that the retry ladder exhausts and channels
    // quarantine, degrading traffic to the synchronous port; poses must
    // not care (the channel applies data eagerly, the CRC only gates
    // the *cost* ladder).
    let dma_before = fleet.pool_mut().dma_health();
    let dma_seed = rng.next_u64();
    #[cfg(feature = "fault")]
    let dma_model = DmaFaultModel::new(dma_seed, 0.40, 0.30, 0.05);
    #[cfg(not(feature = "fault"))]
    let dma_model = {
        let _ = dma_seed;
        DmaFaultModel::none()
    };
    fleet.pool_mut().set_dma_fault(dma_model);
    for k in dma_storm_at..kill_at {
        fleet_wave(
            &mut fleet,
            &cam,
            n,
            k,
            false,
            max_bad,
            &mut prev_states,
            &mut poses,
            &mut violations,
        );
    }
    // lift the burst and rehabilitate the channels (operator action),
    // so the checkpoint in act 5 sees a clean transfer path
    fleet.pool_mut().set_dma_fault(DmaFaultModel::none());
    fleet.pool_mut().dma_rehabilitate();
    let dma_storm = fleet.pool_mut().dma_health().since(&dma_before);
    if fleet.pool_mut().dma_health().quarantined {
        violations.push("dma channels still quarantined after rehabilitation".into());
    }
    if dma_storm.issued == 0 {
        violations.push("no dma descriptors were issued during the transfer storm".into());
    }
    #[cfg(feature = "fault")]
    {
        if dma_storm.crc_errors == 0 {
            violations.push("transfer storm injected no CRC-detected flips".into());
        }
        if dma_storm.timeouts == 0 {
            violations.push("transfer storm produced no stall/drop timeouts".into());
        }
        if dma_storm.quarantines == 0 {
            violations.push("transfer storm never drove a channel into quarantine".into());
        }
        if dma_storm.sync_fallbacks == 0 {
            violations.push("quarantined channels never degraded to the synchronous port".into());
        }
    }

    // act 5: kill-and-recover — drain, checkpoint, then run the tail
    // twice: uninterrupted, and replayed on a recovered fleet.
    for o in fleet.run_until_idle().expect("drain before kill") {
        let s = o.session.0 as usize - 1;
        prev_states[s] = o.result.state;
        poses.push((o.session.0, o.result.pose_wc));
    }
    let store =
        FleetCheckpointStore::new(cfg.workdir.join(format!("fleet_{:016x}.ckpt", cfg.seed)));
    store
        .save(&fleet)
        .map_err(|e| io::Error::other(e.to_string()))?;

    let run_tail = |fleet: &mut FleetScheduler| -> (Vec<(u32, pimvo_vomath::SE3)>, u64) {
        let mut tail: Vec<(u32, pimvo_vomath::SE3)> = Vec::new();
        for k in kill_at..f {
            for s in 0..n {
                let (g, d) = fleet_frame(&cam, s, k);
                let _ = fleet.submit_frame(SessionId(s as u32 + 1), g, d);
            }
            for o in fleet.run_until_idle().expect("tail wave") {
                tail.push((o.session.0, o.result.pose_wc));
            }
        }
        (tail, fleet.now_cycles())
    };

    let (tail_a, clock_a) = run_tail(&mut fleet);
    let mut recovered = FleetScheduler::recover(&store, &builder, cfg.arrays, &specs)
        .map_err(|e| io::Error::other(e.to_string()))?;
    recovered.set_flight_dir(&cfg.workdir);
    let (tail_b, clock_b) = run_tail(&mut recovered);

    let mut pose_delta_max = 0.0f64;
    if tail_a.len() != tail_b.len() {
        violations.push(format!(
            "recovery replay length mismatch: {} frames uninterrupted, {} recovered",
            tail_a.len(),
            tail_b.len()
        ));
    } else {
        for (i, ((sa, pa), (sb, pb))) in tail_a.iter().zip(&tail_b).enumerate() {
            if sa != sb {
                violations.push(format!(
                    "recovery replay order diverged at tail frame {i}: \
                     session {sa} vs {sb}"
                ));
                break;
            }
            let dt = (pa.translation - pb.translation).norm();
            pose_delta_max = pose_delta_max.max(dt);
            if pa != pb {
                violations.push(format!(
                    "recovered pose differs at tail frame {i} (session {sa}, \
                     |dt| = {dt:e})"
                ));
            }
        }
    }
    if clock_a != clock_b {
        violations.push(format!(
            "recovered virtual clock diverged: {clock_a} vs {clock_b}"
        ));
    }
    if pose_delta_max >= 1e-12 {
        violations.push(format!(
            "recovery pose delta {pose_delta_max:e} exceeds 1e-12"
        ));
    }

    // invariant roll-up for the breaker story
    let st1 = fleet.stats(SessionId(1)).expect("session 1").clone();
    if st1.breaker_trips == 0 {
        violations.push("breaker never tripped during the storm".into());
    }
    if !matches!(
        fleet.breaker_state(SessionId(1)),
        Some(BreakerState::Closed)
    ) {
        violations.push("tripped session did not recover to a closed breaker".into());
    }
    // flight recorder: the storm must have produced at least one dump,
    // every dump must decode cleanly, and each recorded frame's
    // dependency DAG must replay to exactly the pool cycles the
    // scheduler charged that frame (critical path == wall delta)
    if st1.flight_dumps.is_empty() {
        violations.push("no flight-recorder dump was written during the storm".into());
    }
    let mut flight_frames_checked = 0u64;
    for path in &st1.flight_dumps {
        match FlightDump::load(std::path::Path::new(path)) {
            Ok(dump) => {
                for fr in &dump.frames {
                    if fr.trace.dropped != 0 {
                        violations.push(format!(
                            "flight frame {} of {path} dropped {} op records",
                            fr.frame, fr.trace.dropped
                        ));
                    }
                    let prof = pimvo_telemetry::optrace::profile(&fr.trace);
                    for (k, row) in &prof.by_kind {
                        eprintln!(
                            "  kind {k:?}: n={} cyc={} crit={}",
                            row.count, row.cycles, row.crit_cycles
                        );
                    }
                    if prof.critical_path_cycles != fr.wall_delta {
                        violations.push(format!(
                            "flight frame {} of {path}: critical path {} cycles, \
                             frame ran {} wall cycles",
                            fr.frame, prof.critical_path_cycles, fr.wall_delta
                        ));
                    }
                    flight_frames_checked += 1;
                }
            }
            Err(e) => violations.push(format!("flight dump {path} failed to decode: {e}")),
        }
    }
    poses.extend(tail_a);
    for (_, p) in &poses {
        debug_assert!(p.translation.norm().is_finite());
    }

    let health = fleet.pool_mut().health();
    let dma_total = fleet.pool_mut().dma_health();
    let (mut completed, mut shed, mut misses, mut lost) = (0u64, 0u64, 0u64, 0u64);
    for id in fleet.session_ids() {
        let st = fleet.stats(id).expect("registered session");
        completed += st.completed;
        shed += st.shed;
        misses += st.deadline_misses;
        lost += st.lost_frames;
    }

    let mut report = BenchReport::new("fleet_chaos");
    report
        .note("seed", &format!("{:#018x}", cfg.seed))
        .note("backend", "pim")
        .note(
            "acts",
            "warm-up / defect storm + breaker trip / scrub + probe recovery / \
             dma transfer storm + channel quarantine / kill + manifest recovery",
        )
        .metric("sessions", n as f64)
        .metric("arrays", cfg.arrays as f64)
        .metric("frames_per_session", f as f64)
        .metric("frames_completed", completed as f64)
        .metric("frames_shed", shed as f64)
        .metric("deadline_misses", misses as f64)
        .metric("frames_lost", lost as f64)
        .metric("pre_storm_available", pre_storm_available as f64)
        .metric("storm_available", storm_available as f64)
        .metric("post_scrub_available", post_scrub_available as f64)
        .metric("arrays_rehabilitated", rehabbed as f64)
        .metric("rows_remapped", health.total_remapped_rows() as f64)
        .metric("scrub_passes", health.scrubs as f64)
        .metric("breaker_trips", st1.breaker_trips as f64)
        .metric("breaker_trips_during_storm", trips_during_storm as f64)
        .metric("breaker_probes", st1.breaker_probes as f64)
        .metric("session1_failures", st1.failures as f64)
        .metric("pool_detected_session1", st1.pool_detected as f64)
        .metric("dma_descriptors_issued", dma_total.issued as f64)
        .metric("dma_storm_crc_errors", dma_storm.crc_errors as f64)
        .metric("dma_storm_timeouts", dma_storm.timeouts as f64)
        .metric("dma_storm_retries", dma_storm.retries as f64)
        .metric("dma_storm_quarantines", dma_storm.quarantines as f64)
        .metric("dma_storm_sync_fallbacks", dma_storm.sync_fallbacks as f64)
        .metric("dma_faults_session1", st1.dma_faults as f64)
        .metric("dma_quarantines_session1", st1.dma_quarantines as f64)
        .metric("replayed_tail_frames", (f - kill_at) as f64 * n as f64)
        .metric("flight_dumps", st1.flight_dumps.len() as f64)
        .metric("flight_frames_checked", flight_frames_checked as f64)
        .metric("recovery_pose_delta_max", pose_delta_max)
        .metric("final_virtual_cycles", clock_a as f64)
        .metric("invariant_violations", violations.len() as f64);

    let _ = fs::remove_file(store.path());
    Ok(ChaosOutcome { report, violations })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pimvo_chaos_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        let mut c = SplitMix64::new(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn chaos_soak_is_byte_identical_for_a_fixed_seed() {
        let mut cfg = ChaosConfig::new(3, 40, temp_dir("det_a"));
        cfg.backend = BackendKind::Float;
        cfg.checkpoint_every = 8;
        let a = run_chaos(&cfg).expect("run a");
        cfg.workdir = temp_dir("det_b");
        let b = run_chaos(&cfg).expect("run b");
        assert!(a.passed(), "violations: {:?}", a.violations);
        assert_eq!(a.report.to_json(), b.report.to_json());
        assert!(a.report.metrics()["restores"] + a.report.metrics()["reinit_fallbacks"] > 0.0);
        for d in [&cfg.workdir, &temp_dir("det_a")] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn fleet_chaos_recovers_capacity_and_replays_bit_identically() {
        let mut cfg = FleetChaosConfig::new(7, 16, temp_dir("fleet_a"));
        cfg.sessions = 2;
        cfg.arrays = 3; // survivor = 1/3 capacity, safely past the 2x deadline
        let a = run_fleet_chaos(&cfg).expect("fleet run a");
        assert!(
            a.passed(),
            "violations: {:?}\nreport: {}",
            a.violations,
            a.report.to_json()
        );
        let m = a.report.metrics();
        assert_eq!(m["post_scrub_available"], m["pre_storm_available"]);
        assert!(m["breaker_trips"] >= 1.0);
        assert!(m["breaker_probes"] >= 1.0);
        assert_eq!(m["recovery_pose_delta_max"], 0.0);

        cfg.workdir = temp_dir("fleet_b");
        let b = run_fleet_chaos(&cfg).expect("fleet run b");
        assert_eq!(a.report.to_json(), b.report.to_json(), "byte-identical");
        for d in [&temp_dir("fleet_a"), &cfg.workdir.clone()] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut cfg = ChaosConfig::new(1, 30, temp_dir("seed_a"));
        cfg.backend = BackendKind::Float;
        cfg.checkpoint_every = 6;
        let a = run_chaos(&cfg).expect("run a");
        cfg.seed = 2;
        cfg.workdir = temp_dir("seed_b");
        let b = run_chaos(&cfg).expect("run b");
        assert!(a.passed() && b.passed());
        assert_ne!(a.report.to_json(), b.report.to_json());
        for d in [&temp_dir("seed_a"), &temp_dir("seed_b")] {
            let _ = std::fs::remove_dir_all(d);
        }
    }
}
