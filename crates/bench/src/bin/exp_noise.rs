//! Robustness sweep: tracking accuracy versus synthetic sensor noise
//! (intensity and range noise swept independently).

fn main() {
    let frames = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(45);
    print!("{}", pimvo_bench::reports::noise_sweep(frames));
}
