//! Experiment E4: regenerates Fig. 9-b (naive vs optimized PIM
//! mappings of LPF / HPF / NMS / one LM iteration).

fn main() {
    let (_, report) = pimvo_bench::reports::fig9b();
    print!("{report}");
}
