//! Experiment E11: the §5.1 area/energy characterization report.

fn main() {
    print!("{}", pimvo_bench::reports::area());
}
