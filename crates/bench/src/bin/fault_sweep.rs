//! Fault-injection sweep (requires `--features fault`): tracking
//! accuracy (ATE) and energy overhead versus transient bit-upset rate
//! and SRAM word protection (none / parity / SECDED ECC), plus a
//! stuck-at defect run demonstrating array quarantine + re-dispatch.
//!
//! Every configuration runs the pose-estimation batches *on the
//! machines* (`BatchOptions::on_machine`), so injected upsets really
//! corrupt the normal equations and recovery is exercised end to end.
//!
//! ```text
//! cargo run --release --features fault --bin fault_sweep [frames]
//! ```

use pimvo_bench::sink::{BenchReport, TelemetrySink};
use pimvo_core::pim_exec::BatchOptions;
use pimvo_core::{PimBackend, Tracker, TrackerConfig, TrackingState};
use pimvo_pim::{ArrayConfig, CostModel, FaultModel, PimMachine, PoolHealth, Protection};
use pimvo_scene::{ate_rmse, Sequence, SequenceKind, Trajectory};

/// Arrays in the pool: at least 2 so a quarantined array has somewhere
/// to re-dispatch its shard.
const POOL: usize = 2;

/// Feature cap: the cycle-accurate on-machine LM path is ~10x the
/// calibrated fast path, so the sweep runs a lighter frame than the
/// accuracy experiments.
const MAX_FEATURES: usize = 1200;

struct RunReport {
    ate_m: f64,
    energy_mj: f64,
    ecc_pj: f64,
    parity_checks: u64,
    ecc_checks: u64,
    ecc_corrections: u64,
    state: TrackingState,
    health: PoolHealth,
}

fn config() -> TrackerConfig {
    TrackerConfig {
        max_features: MAX_FEATURES,
        ..TrackerConfig::default()
    }
}

fn track(seq: &Sequence, mut tracker: Tracker) -> RunReport {
    let mut estimate = Trajectory::new();
    for f in &seq.frames {
        let r = tracker.process_frame(&f.gray, &f.depth);
        estimate.push(f.time, r.pose_wc);
    }
    let stats = tracker.stats();
    let pim = stats.pim.clone().expect("PIM backend");
    let energy = stats
        .pim_energy(&CostModel::default())
        .expect("PIM backend");
    RunReport {
        ate_m: ate_rmse(&estimate, &seq.ground_truth),
        energy_mj: stats.energy_mj,
        ecc_pj: energy.ecc_pj,
        parity_checks: pim.parity_checks,
        ecc_checks: pim.ecc_checks,
        ecc_corrections: pim.ecc_corrections,
        state: tracker.state(),
        health: tracker.pool_health().expect("PIM backend"),
    }
}

fn protected_tracker(protection: Protection, rate: f64, seed: u64) -> Tracker {
    let model = if rate > 0.0 {
        FaultModel::transient(seed, rate)
    } else {
        FaultModel::none()
    };
    let builder = PimMachine::builder(ArrayConfig::qvga_banks(6))
        .fault(model)
        .protection(protection);
    let options = BatchOptions {
        pool: POOL,
        on_machine: true,
        ..Default::default()
    };
    let backend = PimBackend::from_builder(&builder, options);
    Tracker::with_backend(config(), Box::new(backend))
}

fn protection_name(p: Protection) -> &'static str {
    match p {
        Protection::None => "none",
        Protection::Parity => "parity",
        Protection::Ecc => "ecc",
    }
}

fn main() {
    let frames = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(15);
    let seq = Sequence::generate(SequenceKind::Desk, frames);

    println!("# Fault sweep: transient upset rate x word protection");
    println!(
        "# {frames} Desk frames, {POOL}-array pool, {MAX_FEATURES} features, on-machine LM batches"
    );
    println!(
        "{:<10} {:>9} {:>10} {:>11} {:>9} {:>10} {:>9} {:>9} {:>6} {:>9}",
        "protect",
        "rate",
        "ate_m",
        "energy_mJ",
        "ecc_uJ",
        "escaped",
        "corrected",
        "detected",
        "dirty",
        "state"
    );

    let started = std::time::Instant::now();
    let mut report = BenchReport::new("fault_sweep");
    report.note(
        "config",
        &format!("{frames} Desk frames, {POOL}-array pool, on-machine LM"),
    );

    let mut baseline_mj = None;
    for protection in [Protection::None, Protection::Parity, Protection::Ecc] {
        for rate in [0.0, 1e-6, 1e-5] {
            let r = track(&seq, protected_tracker(protection, rate, 0xFA57_C0DE));
            let key = format!("{}_rate{:e}", protection_name(protection), rate);
            report
                .metric(&format!("{key}_ate_m"), r.ate_m)
                .metric(&format!("{key}_energy_mj"), r.energy_mj)
                .metric(&format!("{key}_ecc_uj"), r.ecc_pj / 1e6)
                .metric(
                    &format!("{key}_injected"),
                    r.health.arrays.iter().map(|a| a.injected).sum::<u64>() as f64,
                )
                .metric(
                    &format!("{key}_corrected"),
                    r.health.total_corrected() as f64,
                )
                .metric(&format!("{key}_detected"), r.health.total_detected() as f64)
                .metric(
                    &format!("{key}_dirty_accepted"),
                    r.health.dirty_accepted as f64,
                )
                .metric(
                    &format!("{key}_tracking_ok"),
                    if r.state == TrackingState::Lost {
                        0.0
                    } else {
                        1.0
                    },
                );
            if protection == Protection::None && rate == 0.0 {
                baseline_mj = Some(r.energy_mj);
            }
            let overhead = baseline_mj
                .map(|b| {
                    format!(
                        " ({:+.2}% energy vs clean)",
                        (r.energy_mj / b - 1.0) * 100.0
                    )
                })
                .unwrap_or_default();
            println!(
                "{:<10} {:>9.0e} {:>10.4} {:>11.4} {:>9.3} {:>10} {:>9} {:>9} {:>6} {:>9?}{overhead}",
                protection_name(protection),
                rate,
                r.ate_m,
                r.energy_mj,
                r.ecc_pj / 1e6,
                r.health.arrays.iter().map(|a| a.injected).sum::<u64>(),
                r.health.total_corrected(),
                r.health.total_detected(),
                r.health.dirty_accepted,
                r.state,
            );
            assert!(r.ate_m.is_finite(), "ATE must stay finite under faults");
            if protection == Protection::Ecc && rate > 0.0 {
                assert!(
                    r.ecc_checks > 0 && r.ecc_pj > 0.0,
                    "ECC overhead must be visible in ExecStats"
                );
            }
            if protection == Protection::Parity && rate > 0.0 {
                assert!(r.parity_checks > 0, "parity checks must be charged");
            }
            let _ = r.ecc_corrections;
        }
    }

    println!();
    println!("# Stuck-at defect: 4 stuck bits in one protected word of array 0's");
    println!("# LM scratch rows -> uncorrectable under ECC -> quarantine + re-dispatch");
    let builder = PimMachine::builder(ArrayConfig::qvga_banks(6))
        .fault(FaultModel::transient(0xFA57_C0DE, 1e-6))
        .protection(Protection::Ecc);
    let options = BatchOptions {
        pool: POOL,
        on_machine: true,
        ..Default::default()
    };
    let mut backend = PimBackend::from_builder(&builder, options);
    // Inject the defect before any frame is processed: four stuck bits
    // share one 32-bit protection word, so ECC cannot correct the row.
    let row = pimvo_core::pim_exec::POSE_BASE + 2;
    for bit in 64..68 {
        backend
            .pool_mut()
            .array_mut(0)
            .inject_stuck_bit(row, bit, true);
    }
    let mut tracker = Tracker::with_backend(config(), Box::new(backend));
    for f in &seq.frames {
        tracker.process_frame(&f.gray, &f.depth);
    }
    let health = tracker.pool_health().expect("PIM backend");
    println!(
        "quarantined {}/{POOL} arrays, retries {}, redispatches {}, detected {}, state {:?}",
        health.quarantined_count(),
        health.retries,
        health.redispatches,
        health.total_detected(),
        tracker.state(),
    );
    assert!(
        health.quarantined_count() >= 1 && health.retries > 0 && health.redispatches > 0,
        "stuck-at defect must drive quarantine + re-dispatch"
    );

    report
        .metric("stuckat_quarantined", health.quarantined_count() as f64)
        .metric("stuckat_retries", health.retries as f64)
        .metric("stuckat_redispatches", health.redispatches as f64)
        .metric("stuckat_detected", health.total_detected() as f64)
        .metric(
            "stuckat_tracking_ok",
            if tracker.state() == TrackingState::Lost {
                0.0
            } else {
                1.0
            },
        )
        .metric("wall_seconds", started.elapsed().as_secs_f64());
    let mut sink = TelemetrySink::new(".");
    match sink.emit(&report) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", report.file_name()),
    }
}
