//! Experiment E6: regenerates Fig. 10-b (memory-access decomposition:
//! SRAM reads / writes / Tmp Reg traffic).

fn main() {
    let (_, report) = pimvo_bench::reports::fig10b();
    print!("{report}");
}
