//! Experiment E1: regenerates Table 1 of the paper (RMSE of relative
//! pose error, baseline vs PIM EBVO, three sequences).

fn main() {
    let frames = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(pimvo_bench::DEFAULT_FRAMES);
    let (_, report) = pimvo_bench::reports::table1(frames);
    print!("{report}");
}
