//! Chaos-soak driver for the supervisor/recovery layer: seeded,
//! deterministic interleaving of kill-and-restore, checkpoint
//! corruption, budget squeezes, quarantine storms, and fault bursts,
//! with per-frame invariant checks (finite pose, legal
//! `TrackingState` transitions, monotonic cycle counters).
//!
//! Writes `BENCH_chaos_soak.json` — byte-identical for a fixed seed —
//! and exits non-zero if any invariant was violated.
//!
//! ```text
//! cargo run --release --bin chaos_soak -- \
//!     [--frames 500] [--seed 1] [--backend pim|float] \
//!     [--checkpoint-every 25] [--arrays 4] [--out .]
//! ```

use pimvo_bench::chaos::{run_chaos, ChaosConfig};
use pimvo_bench::sink::TelemetrySink;
use pimvo_core::BackendKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = String::from(".");
    let mut cfg = ChaosConfig::new(1, 500, std::env::temp_dir().join("pimvo_chaos_soak"));

    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize, what: &str| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("{what} needs an argument");
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--frames" => {
                cfg.frames = value(&mut i, "--frames").parse().unwrap_or_else(|_| {
                    eprintln!("--frames expects a count");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                cfg.seed = value(&mut i, "--seed").parse().unwrap_or_else(|_| {
                    eprintln!("--seed expects an integer");
                    std::process::exit(2);
                });
            }
            "--checkpoint-every" => {
                cfg.checkpoint_every =
                    value(&mut i, "--checkpoint-every")
                        .parse()
                        .unwrap_or_else(|_| {
                            eprintln!("--checkpoint-every expects a frame count");
                            std::process::exit(2);
                        });
            }
            "--arrays" => {
                cfg.arrays = value(&mut i, "--arrays").parse().unwrap_or_else(|_| {
                    eprintln!("--arrays expects a pool size");
                    std::process::exit(2);
                });
            }
            "--backend" => match value(&mut i, "--backend").as_str() {
                "pim" => cfg.backend = BackendKind::Pim,
                "float" => cfg.backend = BackendKind::Float,
                other => {
                    eprintln!("--backend expects pim or float, got {other}");
                    std::process::exit(2);
                }
            },
            "--out" => out_dir = value(&mut i, "--out"),
            a => {
                eprintln!("unrecognized argument: {a}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    cfg.workdir = std::path::PathBuf::from(&out_dir).join("chaos_work");

    let outcome = run_chaos(&cfg).unwrap_or_else(|e| {
        eprintln!("chaos soak failed on checkpoint I/O: {e}");
        std::process::exit(1);
    });
    let _ = std::fs::remove_dir_all(&cfg.workdir);

    print!("{}", outcome.report.to_json());
    let mut sink = TelemetrySink::new(&out_dir);
    match sink.emit(&outcome.report) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", outcome.report.file_name());
            std::process::exit(1);
        }
    }

    if !outcome.passed() {
        eprintln!("{} invariant violation(s):", outcome.violations.len());
        for v in &outcome.violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "chaos soak passed: {} frames, {} restores, {} typed rejections, {} deadline misses",
        cfg.frames,
        outcome.report.metrics()["restores"],
        outcome.report.metrics()["typed_rejections"],
        outcome.report.metrics()["deadline_misses"],
    );
}
