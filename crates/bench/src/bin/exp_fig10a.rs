//! Experiment E5: regenerates Fig. 10-a (energy decomposition across
//! the PIM components: SRAM array, shifter & adder, Tmp Reg).

fn main() {
    let (_, report) = pimvo_bench::reports::fig10a();
    print!("{report}");
}
