//! Experiment E9: regenerates the §5.4 energy comparison (mJ per frame,
//! baseline MCU vs PIM EBVO).

fn main() {
    let (_, report) = pimvo_bench::reports::energy();
    print!("{report}");
}
