//! Experiment E10: regenerates the §3.3/§3.4 quantization evidence —
//! feature-width warp-error sweep and Hessian accumulator-width
//! ablation.

fn main() {
    print!("{}", pimvo_bench::reports::quant_ablation());
}
