//! Fleet-level chaos soak for the self-healing serving stack: N
//! sessions over one shared PIM pool driven through a defect storm
//! (stuck-at injection + quarantine + sensor blackout), scrub /
//! spare-row-remap rehabilitation, circuit-breaker trips with
//! half-open probe recovery, and a mid-soak hard kill replayed
//! bit-identically from the fleet checkpoint manifest.
//!
//! Writes `BENCH_fleet_chaos.json` — byte-identical for a fixed seed —
//! and exits non-zero if any invariant was violated (capacity not
//! restored after the storm, breaker stuck, recovery diverging).
//!
//! ```text
//! cargo run --release --bin fleet_chaos -- \
//!     [--frames 128] [--seed 1] [--sessions 4] [--arrays 3] [--out .]
//! ```
//!
//! `--frames` is per session: the default 128 x 4 sessions serves 512
//! frames plus the replayed recovery tail.

use pimvo_bench::chaos::{run_fleet_chaos, FleetChaosConfig};
use pimvo_bench::sink::TelemetrySink;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = String::from(".");
    let mut cfg = FleetChaosConfig::new(1, 128, std::env::temp_dir().join("pimvo_fleet_chaos"));

    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize, what: &str| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("{what} needs an argument");
                std::process::exit(2);
            })
        };
        let parse = |s: String, what: &str| -> usize {
            s.parse().unwrap_or_else(|_| {
                eprintln!("{what} expects a count");
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--frames" => cfg.frames_per_session = parse(value(&mut i, "--frames"), "--frames"),
            "--seed" => {
                cfg.seed = value(&mut i, "--seed").parse().unwrap_or_else(|_| {
                    eprintln!("--seed expects an integer");
                    std::process::exit(2);
                });
            }
            "--sessions" => cfg.sessions = parse(value(&mut i, "--sessions"), "--sessions"),
            "--arrays" => cfg.arrays = parse(value(&mut i, "--arrays"), "--arrays"),
            "--out" => out_dir = value(&mut i, "--out"),
            a => {
                eprintln!("unrecognized argument: {a}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    cfg.workdir = std::path::PathBuf::from(&out_dir).join("fleet_chaos_work");

    let outcome = run_fleet_chaos(&cfg).unwrap_or_else(|e| {
        eprintln!("fleet chaos soak failed on manifest I/O: {e}");
        std::process::exit(1);
    });
    let _ = std::fs::remove_dir_all(&cfg.workdir);

    print!("{}", outcome.report.to_json());
    let mut sink = TelemetrySink::new(&out_dir);
    match sink.emit(&outcome.report) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", outcome.report.file_name());
            std::process::exit(1);
        }
    }

    if !outcome.passed() {
        eprintln!("{} invariant violation(s):", outcome.violations.len());
        for v in &outcome.violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    let m = outcome.report.metrics();
    eprintln!(
        "fleet chaos passed: {} frames completed, capacity {} -> {} -> {}, \
         {} breaker trip(s), {} probe(s), recovery pose delta {:e}",
        m["frames_completed"],
        m["pre_storm_available"],
        m["storm_available"],
        m["post_scrub_available"],
        m["breaker_trips"],
        m["breaker_probes"],
        m["recovery_pose_delta_max"],
    );
}
