//! Ablation: nearest-neighbour vs bilinear residual lookup on the PIM
//! backend — accuracy and per-frame LM cycle cost.

fn main() {
    let frames = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60);
    print!("{}", pimvo_bench::reports::interp_ablation(frames));
}
