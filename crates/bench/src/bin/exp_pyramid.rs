//! Extension ablation: coarse-to-fine pyramid levels vs the
//! convergence basin of the edge alignment.

fn main() {
    print!("{}", pimvo_bench::reports::pyramid_ablation());
}
