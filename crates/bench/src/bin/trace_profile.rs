//! Records dependency-tracked op traces of the paper's headline
//! workloads and profiles them through the critical-path profiler:
//!
//! * **Fig. 9-a** — the PIM side of the per-frame measurement (edge
//!   detection + one LM batch) on a single machine. The raw trace is
//!   written as `trace_fig9a.bin` and the rendered attribution table as
//!   `profile_fig9a.txt` (the committed golden in `out/`).
//! * **Fig. 9-b** — the optimized LPF/HPF/NMS mapping, traced the same
//!   way (cycle totals only; the per-kernel split shows up in the
//!   fig9a table already).
//! * **Fleet soak** — a two-session [`pimvo_serve::FleetScheduler`]
//!   with a flight-recorder-armed session on a 1-cycle deadline, so
//!   every frame dumps; the last dump is loaded back from disk and its
//!   final frame profiled, asserting the critical path reproduces the
//!   frame's wall-cycle delta.
//!
//! Everything is measured in virtual (pool) cycles, so the outputs —
//! including `BENCH_profile.json` — are byte-identical across runs.
//!
//! ```text
//! cargo run --release --bin trace_profile -- [--out .]
//! ```

use pimvo_bench::canonical_frame;
use pimvo_bench::sink::{BenchReport, TelemetrySink};
use pimvo_core::pim_exec::{run_batch, BATCH};
use pimvo_core::{extract_features, Keyframe, QFeature, QPose, TrackerConfig};
use pimvo_kernels::{ir, EdgeConfig};
use pimvo_pim::{ArrayConfig, CostModel, LowerLevel, PimMachine, SessionId};
use pimvo_serve::{FleetScheduler, FlightDump, SessionSpec};
use pimvo_telemetry::optrace::{profile, EnergyWeights, OpTrace, Profile};
use pimvo_vomath::{Pinhole, SE3};
use std::path::{Path, PathBuf};

/// Ring capacity for the traced workloads: big enough that nothing is
/// shed (the profile asserts `dropped == 0`).
const RING: usize = 1 << 20;

fn energy_weights() -> EnergyWeights {
    let cm = CostModel::dac22_90nm();
    EnergyWeights {
        op_pj: cm.shifter_adder_pj + cm.tmp_reg_pj,
        sram_pj: cm.sram_read_pj,
    }
}

/// Traces the PIM side of Fig. 9-a: edge detection plus one LM batch.
fn trace_fig9a() -> OpTrace {
    let (gray, depth) = canonical_frame();
    let cam = Pinhole::qvga();
    let cfg = EdgeConfig::default();
    let mut machine = PimMachine::new(ArrayConfig::qvga_banks(6));
    machine.arm_op_recorder(0, RING);
    let maps = ir::edge_detect(&mut machine, &gray, &cfg, LowerLevel::Opt);
    let features = extract_features(&maps.mask, &depth, &cam, 6000, 0.3, 8.0);
    let kf = Keyframe::build(0, SE3::IDENTITY, maps.mask.clone(), &cam);
    let qpose = QPose::quantize(&SE3::IDENTITY);
    let qfeats: Vec<QFeature> = features.iter().map(QFeature::quantize).collect();
    let _ = run_batch(
        &mut machine,
        5 * 256 + 64,
        &qfeats[..BATCH.min(qfeats.len())],
        &qpose,
        &kf.q_tables,
        &cam,
    );
    machine.drain_op_trace().expect("recorder is armed")
}

/// Traces the optimized Fig. 9-b edge pipeline (LPF → HPF → NMS).
fn trace_fig9b() -> OpTrace {
    let (gray, _) = canonical_frame();
    let cfg = EdgeConfig::default();
    let mut machine = PimMachine::new(ArrayConfig::qvga_banks(6));
    machine.arm_op_recorder(0, RING);
    let lpf_map = ir::lpf(&mut machine, &gray, LowerLevel::Opt);
    let hpf_map = ir::hpf(&mut machine, &lpf_map, LowerLevel::Opt);
    let _ = ir::nms(&mut machine, &hpf_map, &cfg, LowerLevel::Opt);
    machine.drain_op_trace().expect("recorder is armed")
}

/// Runs the small fleet soak: a flight-armed session on an impossible
/// deadline dumps every frame; returns the last dump loaded from disk.
fn fleet_soak(workdir: &Path) -> FlightDump {
    std::fs::create_dir_all(workdir).expect("create fleet workdir");
    let mut fleet = FleetScheduler::new(2);
    fleet.set_flight_dir(workdir);
    fleet.add_session(
        SessionId(1),
        SessionSpec::new(TrackerConfig::default())
            .deadline_cycles(1)
            .max_queue(4)
            .flight_recorder(2),
    );
    fleet.add_session(SessionId(2), SessionSpec::new(TrackerConfig::default()));
    let gray = pimvo_kernels::GrayImage::from_fn(320, 240, |x, y| {
        let (x, y) = (x as f64, y as f64);
        (((x * 0.55).sin() + (y * 0.41).sin() + (x * 0.13).sin() * (y * 0.09).cos()) * 50.0 + 120.0)
            as u8
    });
    let depth = pimvo_kernels::DepthImage::from_fn(320, 240, |_, _| 2.0);
    for _ in 0..3 {
        for id in [SessionId(1), SessionId(2)] {
            fleet
                .submit_frame(id, gray.clone(), depth.clone())
                .expect("queue has room");
            let _ = fleet.step().expect("no serve error").expect("frame ran");
        }
    }
    let stats = fleet.stats(SessionId(1)).expect("session 1 exists");
    let last = stats
        .flight_dumps
        .last()
        .expect("1-cycle deadline dumps every frame");
    FlightDump::load(Path::new(last)).expect("dump decodes")
}

fn add_metrics(report: &mut BenchReport, prefix: &str, p: &Profile) {
    report
        .metric(&format!("{prefix}_records"), p.records as f64)
        .metric(&format!("{prefix}_dropped"), p.dropped as f64)
        .metric(&format!("{prefix}_total_cycles"), p.total_cycles as f64)
        .metric(
            &format!("{prefix}_critical_path_cycles"),
            p.critical_path_cycles as f64,
        )
        .metric(
            &format!("{prefix}_critical_path_records"),
            p.critical_path_records as f64,
        );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = String::from(".");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_dir = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs an argument");
                    std::process::exit(2);
                });
            }
            a => {
                eprintln!("unrecognized argument: {a}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let out = PathBuf::from(&out_dir);
    std::fs::create_dir_all(&out).expect("create output directory");
    let w = energy_weights();
    let mut report = BenchReport::new("profile");
    report
        .note("op_pj", &format!("{:.1}", w.op_pj))
        .note("sram_pj", &format!("{:.1}", w.sram_pj));

    // Fig. 9-a: raw trace + rendered golden
    let t9a = trace_fig9a();
    let p9a = profile(&t9a);
    let table = p9a.render(&w);
    print!("{table}");
    std::fs::write(out.join("trace_fig9a.bin"), t9a.encode()).expect("write trace_fig9a.bin");
    std::fs::write(out.join("profile_fig9a.txt"), &table).expect("write profile_fig9a.txt");
    add_metrics(&mut report, "fig9a", &p9a);

    // Fig. 9-b: optimized edge pipeline, cycle totals only
    let p9b = profile(&trace_fig9b());
    add_metrics(&mut report, "fig9b", &p9b);
    eprintln!(
        "fig9b: {} records, {} total cycles, critical path {}",
        p9b.records, p9b.total_cycles, p9b.critical_path_cycles
    );

    // Fleet soak: profile the last frame of the last flight dump
    let workdir = out.join("trace_profile_work");
    let dump = fleet_soak(&workdir);
    let last = dump.frames.last().expect("dump holds frames");
    let pf = profile(&last.trace);
    if pf.critical_path_cycles != last.wall_delta || pf.dropped != 0 {
        eprintln!(
            "fleet flight frame diverged: critical path {} vs wall delta {} ({} dropped)",
            pf.critical_path_cycles, last.wall_delta, pf.dropped
        );
        std::process::exit(1);
    }
    report.metric("fleet_frames_in_dump", dump.frames.len() as f64);
    report.metric("fleet_wall_delta", last.wall_delta as f64);
    add_metrics(&mut report, "fleet", &pf);
    eprintln!(
        "fleet: last flight frame has {} records, critical path {} == wall delta",
        pf.records, pf.critical_path_cycles
    );
    let _ = std::fs::remove_dir_all(&workdir);

    let mut sink = TelemetrySink::new(&out);
    match sink.emit(&report) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", report.file_name());
            std::process::exit(1);
        }
    }
    eprintln!(
        "wrote {} and {}",
        out.join("trace_fig9a.bin").display(),
        out.join("profile_fig9a.txt").display()
    );
}
