//! Experiment E2: regenerates Fig. 8 — tracked trajectories vs ground
//! truth for a texture-rich and a texture-poor sequence. Writes TUM
//! format trajectory files under `out/`.

use std::fs;

fn main() {
    let frames = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(pimvo_bench::DEFAULT_FRAMES);
    let (files, report) = pimvo_bench::reports::fig8(frames);
    fs::create_dir_all("out").expect("create out/");
    for (name, est, gt, svg) in files {
        let est_path = format!("out/fig8_{name}_estimate.txt");
        let gt_path = format!("out/fig8_{name}_groundtruth.txt");
        let svg_path = format!("out/fig8_{name}.svg");
        fs::write(&est_path, est).expect("write estimate");
        fs::write(&gt_path, gt).expect("write ground truth");
        fs::write(&svg_path, svg).expect("write plot");
        println!("wrote {est_path} / {gt_path} / {svg_path}");
    }
    print!("{report}");
}
