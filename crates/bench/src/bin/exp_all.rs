//! Runs every experiment (E1-E11 except the Fig. 8 file dump) and
//! prints one consolidated report. Optional argument: frame count for
//! the accuracy runs (default 90).

fn main() {
    let frames = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(pimvo_bench::DEFAULT_FRAMES);
    print!("{}", pimvo_bench::reports::all(frames));
}
