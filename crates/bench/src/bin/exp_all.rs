//! Runs every experiment (E1-E11 except the Fig. 8 file dump) and
//! prints one consolidated report, plus machine-readable
//! `BENCH_<experiment>.json` snapshots in the current directory.
//!
//! ```text
//! cargo run --release --bin exp_all [frames] [--out <dir>]
//! ```

use pimvo_bench::sink::TelemetrySink;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut frames = pimvo_bench::DEFAULT_FRAMES;
    let mut out_dir = String::from(".");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_dir = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a directory argument");
                    std::process::exit(2);
                });
            }
            a => {
                frames = a.parse().unwrap_or_else(|_| {
                    eprintln!("unrecognized argument: {a} (expected a frame count or --out <dir>)");
                    std::process::exit(2);
                });
            }
        }
        i += 1;
    }

    let (reports, text) = pimvo_bench::reports::all_with_reports(frames);
    print!("{text}");

    let mut sink = TelemetrySink::new(&out_dir);
    for report in &reports {
        match sink.emit(report) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", report.file_name()),
        }
    }
}
