//! Fleet-soak bench for the `pimvo-serve` multi-tenant scheduler:
//! sessions × arrays sweep reporting p50/p99 frame latency (pool
//! cycles, queue wait included), deadline-miss rate and admission-shed
//! rate. Everything runs in the pool's virtual cycle domain, so the
//! numbers are deterministic across hosts.
//!
//! ```text
//! cargo run --release -p pimvo-bench --bin fleet_soak -- \
//!     [--sessions 4] [--arrays 2] [--frames 13] [--out .]
//! ```
//!
//! Without `--sessions`/`--arrays` the full {1,4,16} × {2,4,8} sweep
//! runs and `BENCH_fleet.json` is written to `--out` (default `.`).
//! With both given, only that one cell runs (the CI smoke
//! configuration) and the report goes to `--out` as well.

use pimvo_bench::sink::{BenchReport, TelemetrySink};
use pimvo_core::TrackerConfig;
use pimvo_kernels::{DepthImage, GrayImage};
use pimvo_pim::SessionId;
use pimvo_serve::{FleetScheduler, SessionSpec};

/// Per-session translating sinusoid texture (session-specific
/// frequencies and speed so tenants never share a scene).
fn session_frame(session: usize, k: usize) -> (GrayImage, DepthImage) {
    let speed = 0.5 + (session % 8) as f64 * 0.1;
    let shift = k as f64 * speed;
    let fx = 0.55 + session as f64 * 0.011;
    let gray = GrayImage::from_fn(320, 240, |x, y| {
        let xs = x as f64 + shift;
        let y = y as f64;
        (((xs * fx).sin() + (y * 0.41).sin() + (xs * 0.13).sin() * (y * 0.09).cos()) * 50.0 + 120.0)
            as u8
    });
    let depth = DepthImage::from_fn(320, 240, |_, _| 2.0);
    (gray, depth)
}

/// Median solo frame cost on an `arrays`-wide pool (second frame, so
/// keyframe bootstrap is excluded) — the deadline calibration anchor.
fn calibrate_frame_cycles(arrays: usize) -> u64 {
    let mut fleet = FleetScheduler::new(arrays);
    fleet.add_session(
        SessionId(1),
        SessionSpec::new(TrackerConfig::default()).max_queue(2),
    );
    let mut last = 0;
    for k in 0..2 {
        let (g, d) = session_frame(0, k);
        fleet.submit_frame(SessionId(1), g, d).unwrap();
        let o = fleet.step().unwrap().expect("frame queued");
        last = o.latency_cycles;
    }
    last
}

struct CellResult {
    p50: u64,
    p99: u64,
    miss_rate: f64,
    shed_rate: f64,
    completed: u64,
    lower: pimvo_pim::LoweredCacheStats,
}

/// One sweep cell: `sessions` tenants with a deadline of 2x the solo
/// frame cost share an `arrays`-wide pool for `rounds` rounds. Each
/// round offers one frame per session but only drains 3/4 of them, so
/// backlog (and with it queue wait, misses and sheds) builds under
/// contention.
fn run_cell(sessions: usize, arrays: usize, rounds: usize) -> CellResult {
    let deadline = 2 * calibrate_frame_cycles(arrays).max(1);
    let mut fleet = FleetScheduler::new(arrays);
    for s in 0..sessions {
        fleet.add_session(
            SessionId(s as u32 + 1),
            SessionSpec::new(TrackerConfig::default())
                .deadline_cycles(deadline)
                .max_queue(3),
        );
    }
    let steps_per_round = (sessions * 3).div_ceil(4).max(1);
    for k in 0..rounds {
        for s in 0..sessions {
            let (g, d) = session_frame(s, k);
            // a full queue sheds the frame — that is the point
            let _ = fleet.submit_frame(SessionId(s as u32 + 1), g, d);
        }
        for _ in 0..steps_per_round {
            if fleet.step().unwrap().is_none() {
                break;
            }
        }
    }
    fleet.run_until_idle().unwrap();

    let mut latencies: Vec<u64> = Vec::new();
    let (mut submitted, mut completed, mut shed, mut misses) = (0u64, 0u64, 0u64, 0u64);
    for id in fleet.session_ids() {
        let st = fleet.stats(id).expect("registered session");
        latencies.extend(&st.latencies_cycles);
        submitted += st.submitted;
        completed += st.completed;
        shed += st.shed;
        misses += st.deadline_misses;
    }
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        let rank = ((p / 100.0) * (latencies.len() as f64 - 1.0)).round() as usize;
        latencies[rank.min(latencies.len() - 1)]
    };
    CellResult {
        p50: pct(50.0),
        p99: pct(99.0),
        miss_rate: misses as f64 / completed.max(1) as f64,
        shed_rate: shed as f64 / submitted.max(1) as f64,
        completed,
        lower: fleet.lowered_stats(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = String::from(".");
    let mut sessions: Option<usize> = None;
    let mut arrays: Option<usize> = None;
    let mut rounds = 12usize;

    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize, what: &str| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("{what} needs an argument");
                std::process::exit(2);
            })
        };
        let parse = |s: String, what: &str| -> usize {
            s.parse().unwrap_or_else(|_| {
                eprintln!("{what} expects a count");
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--sessions" => sessions = Some(parse(value(&mut i, "--sessions"), "--sessions")),
            "--arrays" => arrays = Some(parse(value(&mut i, "--arrays"), "--arrays")),
            "--frames" => rounds = parse(value(&mut i, "--frames"), "--frames"),
            "--out" => out_dir = value(&mut i, "--out"),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let sweep: Vec<(usize, usize)> = match (sessions, arrays) {
        (Some(s), Some(a)) => vec![(s, a)],
        (None, None) => [1usize, 4, 16]
            .iter()
            .flat_map(|&s| [2usize, 4, 8].iter().map(move |&a| (s, a)))
            .collect(),
        _ => {
            eprintln!("--sessions and --arrays must be given together");
            std::process::exit(2);
        }
    };

    let mut report = BenchReport::new("fleet");
    report.note(
        "units",
        "latency in pool cycles (virtual time, queue wait included)",
    );
    report.note(
        "policy",
        "EDF + least-served fair-share; deadline = 2x solo frame cost; queue cap 3; \
         3/4 drain per round",
    );
    report.note("frames_per_session", &rounds.to_string());

    println!("sessions arrays    p50_cycles    p99_cycles  miss_rate  shed_rate  frames");
    for &(s, a) in &sweep {
        let cell = run_cell(s, a, rounds);
        println!(
            "{s:>8} {a:>6} {p50:>13} {p99:>13} {miss:>10.3} {shed:>10.3} {n:>7}",
            p50 = cell.p50,
            p99 = cell.p99,
            miss = cell.miss_rate,
            shed = cell.shed_rate,
            n = cell.completed
        );
        let key = |m: &str| format!("s{s}_a{a}_{m}");
        report.metric(&key("p50_cycles"), cell.p50 as f64);
        report.metric(&key("p99_cycles"), cell.p99 as f64);
        report.metric(&key("miss_rate"), cell.miss_rate);
        report.metric(&key("shed_rate"), cell.shed_rate);
        report.metric(&key("frames"), cell.completed as f64);
        // lowered-program cache: misses = distinct (program, level,
        // config) triples in the cell's workload, flat in `sessions`
        report.metric(&key("lower_hits"), cell.lower.hits as f64);
        report.metric(&key("lower_misses"), cell.lower.misses as f64);
        report.metric(&key("lower_entries"), cell.lower.entries as f64);
        report.metric(&key("lower_bytes"), cell.lower.bytes as f64);
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("failed to create {out_dir}: {e}");
        std::process::exit(1);
    }
    let mut sink = TelemetrySink::new(&out_dir);
    match sink.emit(&report) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write report: {e}");
            std::process::exit(1);
        }
    }
}
