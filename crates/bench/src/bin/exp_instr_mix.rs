//! Experiment E7: regenerates the §1 motivation profile — the share of
//! data-movement instructions in a portable EBVO frame.

fn main() {
    let (_, report) = pimvo_bench::reports::instr_mix();
    print!("{report}");
}
