//! Extension experiment: lowering-pipeline stage sweep — per-kernel
//! cycles at `Opt` as each staged pass group (greedy baseline →
//! +peephole → +scheduler → +home-row layout) is enabled. Outputs are
//! asserted bit-identical across stages.

fn main() {
    let (_, report) = pimvo_bench::reports::lowering();
    print!("{report}");
}
