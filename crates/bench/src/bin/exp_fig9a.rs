//! Experiments E3 + E8: regenerates Fig. 9-a (per-frame cycles,
//! baseline vs PIM) and the §5.3 speed-up ratios / iso-performance
//! clock frequency.

fn main() {
    let (_, report) = pimvo_bench::reports::fig9a();
    print!("{report}");
}
