//! Experiment E12: array-scaling sweep of the sharded `PimArrayPool`
//! (1/2/4/8 arrays, QVGA edge detection + LM linearizations).

fn main() {
    let (_, report) = pimvo_bench::reports::scaling();
    print!("{report}");
}
