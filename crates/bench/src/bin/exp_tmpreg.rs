//! Extension ablation (§5.4): Tmp-register count — cycles, SRAM
//! traffic and energy of the edge-detection pipeline with one vs four
//! temporary registers.

fn main() {
    print!("{}", pimvo_bench::reports::tmpreg_ablation());
}
