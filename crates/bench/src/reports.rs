//! Experiment implementations. Each function performs the measurement
//! for one table/figure and returns both the structured numbers and a
//! formatted report block; the `exp_*` binaries are thin wrappers.

use crate::{canonical_frame, fmt_cycles, run_sequence, SequenceRun, DEFAULT_FRAMES};
use pimvo_core::pim_exec::{run_batch, run_batch_naive, BATCH};
use pimvo_core::{
    ablation, extract_features, BackendKind, Keyframe, QFeature, QPose, Tracker, TrackerConfig,
};
use pimvo_kernels::{ir, pim_pool, EdgeConfig};
use pimvo_mcu::{
    edge_detect_counted, edge_detect_counted_with, linearize_counted, CodegenModel, CostCounter,
    FloatFeature, InstructionMix,
};
use pimvo_pim::{ArrayConfig, CostModel, DmaConfig, LowerLevel, Pass, PimMachine};
use pimvo_scene::{format_tum, Sequence, SequenceKind};
use pimvo_vomath::{Pinhole, SE3};
use std::fmt::Write as _;

/// Mean LM iterations the paper reports (×8 in Fig. 9-a's `LM*`).
pub const LM_ITERS: u64 = 8;

/// Table 1 — RMSE of relative pose error for the three sequences, both
/// backends.
pub fn table1(frames: usize) -> (Vec<SequenceRun>, String) {
    let mut runs = Vec::new();
    let mut out = String::new();
    writeln!(out, "Table 1: RMSE of relative pose error (1 s windows)").unwrap();
    writeln!(
        out,
        "{:<14} | {:>10} {:>10} | {:>10} {:>10}",
        "", "baseline", "", "PIM EBVO", ""
    )
    .unwrap();
    writeln!(
        out,
        "{:<14} | {:>10} {:>10} | {:>10} {:>10}",
        "sequence", "t (m/s)", "rot (°/s)", "t (m/s)", "rot (°/s)"
    )
    .unwrap();
    for kind in SequenceKind::all() {
        let float_run = run_sequence(kind, BackendKind::Float, frames);
        let pim_run = run_sequence(kind, BackendKind::Pim, frames);
        writeln!(
            out,
            "{:<14} | {:>10.4} {:>10.3} | {:>10.4} {:>10.3}",
            kind.name(),
            float_run.rpe.trans_mps,
            float_run.rpe.rot_dps,
            pim_run.rpe.trans_mps,
            pim_run.rpe.rot_dps
        )
        .unwrap();
        runs.push(float_run);
        runs.push(pim_run);
    }
    writeln!(
        out,
        "(paper, TUM RGB-D: fr1_xyz 0.030/1.82 vs 0.039/1.92; fr2_desk \
         0.020/0.69 vs 0.019/0.64; fr3_st_ntex_far 0.028/0.77 vs 0.030/0.86)"
    )
    .unwrap();
    (runs, out)
}

/// Fig. 8 — estimated vs ground-truth trajectories (TUM text + SVG) and
/// the semi-dense reconstruction quality for a texture-rich and a
/// texture-poor sequence.
pub fn fig8(frames: usize) -> (Vec<(String, String, String, String)>, String) {
    let mut files = Vec::new();
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 8: trajectory + reconstruction vs ground truth (PIM backend)"
    )
    .unwrap();
    for kind in [SequenceKind::Desk, SequenceKind::StrNtexFar] {
        let run = run_sequence(kind, BackendKind::Pim, frames);
        let ate = pimvo_scene::ate_rmse(&run.estimate, &run.ground_truth);
        // reconstruction: re-track with map building and measure the
        // RMS distance of map points to the analytic scene surfaces
        let seq = pimvo_scene::Sequence::generate(kind, frames);
        let scene = pimvo_scene::build_scene(kind);
        let config = TrackerConfig {
            build_map: true,
            ..TrackerConfig::default()
        };
        let mut tracker = Tracker::new(config, BackendKind::Pim);
        for f in &seq.frames {
            let _ = tracker.process_frame(&f.gray, &f.depth);
        }
        let map = tracker.map().expect("map enabled");
        // align map points with the gt start pose before measuring
        let align = seq.ground_truth.samples[0].1;
        let rms = {
            let n = map.len().max(1) as f64;
            let sum2: f64 = map
                .points()
                .iter()
                .map(|&p| {
                    let d = scene.distance_to_surface(align.transform(p));
                    d * d
                })
                .sum();
            (sum2 / n).sqrt()
        };
        writeln!(
            out,
            "  {:<14} ATE RMSE {:.4} m over {:.2} m path ({} keyframes); map: {} points, RMS surface distance {:.4} m",
            kind.name(),
            ate,
            run.ground_truth.path_length(),
            run.keyframes,
            map.len(),
            rms
        )
        .unwrap();
        files.push((
            kind.name().to_string(),
            format_tum(&run.estimate.aligned_to(&run.ground_truth)),
            format_tum(&run.ground_truth),
            pimvo_scene::plot_trajectories_svg(
                &run.estimate,
                &run.ground_truth,
                pimvo_scene::PlotPlane::Xz,
                kind.name(),
            ),
        ));
    }
    (files, out)
}

/// Measured cycle counts behind Fig. 9-a.
#[derive(Debug, Clone, Copy)]
pub struct Fig9aResult {
    /// MCU edge-detection cycles per frame.
    pub mcu_edge: u64,
    /// MCU LM cycles (×[`LM_ITERS`] iterations).
    pub mcu_lm8: u64,
    /// PIM edge-detection cycles per frame.
    pub pim_edge: u64,
    /// PIM LM cycles (×[`LM_ITERS`] iterations).
    pub pim_lm8: u64,
    /// Features used for the LM measurement.
    pub features: usize,
}

impl Fig9aResult {
    /// Edge-detection speed-up.
    pub fn edge_speedup(&self) -> f64 {
        self.mcu_edge as f64 / self.pim_edge as f64
    }
    /// LM speed-up.
    pub fn lm_speedup(&self) -> f64 {
        self.mcu_lm8 as f64 / self.pim_lm8 as f64
    }
    /// Overall per-frame speed-up.
    pub fn overall_speedup(&self) -> f64 {
        (self.mcu_edge + self.mcu_lm8) as f64 / (self.pim_edge + self.pim_lm8) as f64
    }
}

/// Fig. 9-a — per-frame cycles, baseline vs PIM, for edge detection and
/// 8 LM iterations.
pub fn fig9a() -> (Fig9aResult, String) {
    let (gray, depth) = canonical_frame();
    let cam = Pinhole::qvga();
    let cfg = EdgeConfig::default();

    // MCU side
    let mut counter = CostCounter::new();
    let maps = edge_detect_counted(&gray, &cfg, &mut counter);
    let mcu_edge = counter.cycles();
    let features = extract_features(&maps.mask, &depth, &cam, 6000, 0.3, 8.0);
    let floats: Vec<FloatFeature> = features
        .iter()
        .map(|f| FloatFeature {
            a: f.a,
            b: f.b,
            c: f.c,
        })
        .collect();
    let kf = Keyframe::build(0, SE3::IDENTITY, maps.mask.clone(), &cam);
    counter.reset();
    let _ = linearize_counted(&floats, &kf.tables, &cam, &SE3::IDENTITY, &mut counter);
    let mcu_lm8 = counter.cycles() * LM_ITERS;

    // PIM side
    let mut machine = PimMachine::new(ArrayConfig::qvga_banks(6));
    let c0 = machine.stats().cycles;
    let _ = ir::edge_detect(&mut machine, &gray, &cfg, LowerLevel::Opt);
    let pim_edge = machine.stats().cycles - c0;
    let qpose = QPose::quantize(&SE3::IDENTITY);
    let qfeats: Vec<QFeature> = features.iter().map(QFeature::quantize).collect();
    let c1 = machine.stats().cycles;
    let _ = run_batch(
        &mut machine,
        5 * 256 + 64,
        &qfeats[..BATCH.min(qfeats.len())],
        &qpose,
        &kf.q_tables,
        &cam,
    );
    let per_batch = machine.stats().cycles - c1;
    let batches = features.len().div_ceil(BATCH) as u64;
    let pim_lm8 = per_batch * batches * LM_ITERS;

    let res = Fig9aResult {
        mcu_edge,
        mcu_lm8,
        pim_edge,
        pim_lm8,
        features: features.len(),
    };
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 9-a: computing cycles per frame ({} features)",
        res.features
    )
    .unwrap();
    writeln!(out, "  {:<18} {:>12} {:>12}", "", "baseline", "PIM").unwrap();
    writeln!(
        out,
        "  {:<18} {:>12} {:>12}   ({:.0}x)",
        "edge detection",
        fmt_cycles(res.mcu_edge),
        fmt_cycles(res.pim_edge),
        res.edge_speedup()
    )
    .unwrap();
    writeln!(
        out,
        "  {:<18} {:>12} {:>12}   ({:.1}x)",
        "LM x8",
        fmt_cycles(res.mcu_lm8),
        fmt_cycles(res.pim_lm8),
        res.lm_speedup()
    )
    .unwrap();
    writeln!(
        out,
        "  overall speed-up: {:.1}x  (paper: 48x edge, 9x LM, ~11x overall)",
        res.overall_speedup()
    )
    .unwrap();
    writeln!(
        out,
        "  iso-performance PIM clock: {:.1} MHz (paper: ~19 MHz at 216 MHz baseline)",
        216.0 / res.overall_speedup()
    )
    .unwrap();
    (res, out)
}

/// Measured cycles behind Fig. 9-b.
#[derive(Debug, Clone, Copy)]
pub struct Fig9bResult {
    /// (naive, optimized) cycles per kernel.
    pub lpf: (u64, u64),
    /// HPF cycles.
    pub hpf: (u64, u64),
    /// NMS cycles.
    pub nms: (u64, u64),
    /// One LM iteration.
    pub lm: (u64, u64),
}

/// Fig. 9-b — naive vs optimized PIM mappings.
pub fn fig9b() -> (Fig9bResult, String) {
    let (gray, depth) = canonical_frame();
    let cam = Pinhole::qvga();
    let cfg = EdgeConfig::default();

    let measure_edge = |naive: bool| -> (u64, u64, u64) {
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let c0 = m.stats().cycles;
        let level = if naive {
            LowerLevel::Naive
        } else {
            LowerLevel::Opt
        };
        let lpf_map = ir::lpf(&mut m, &gray, level);
        let c1 = m.stats().cycles;
        let hpf_map = ir::hpf(&mut m, &lpf_map, level);
        let c2 = m.stats().cycles;
        let _ = ir::nms(&mut m, &hpf_map, &cfg, level);
        let c3 = m.stats().cycles;
        (c1 - c0, c2 - c1, c3 - c2)
    };
    let (lpf_n, hpf_n, nms_n) = measure_edge(true);
    let (lpf_o, hpf_o, nms_o) = measure_edge(false);

    // LM: one iteration, naive vs optimized batch schedule
    let maps = ir::edge_detect(
        &mut PimMachine::new(ArrayConfig::qvga_banks(6)),
        &gray,
        &cfg,
        LowerLevel::Opt,
    );
    let features = extract_features(&maps.mask, &depth, &cam, 6000, 0.3, 8.0);
    let kf = Keyframe::build(0, SE3::IDENTITY, maps.mask.clone(), &cam);
    let qpose = QPose::quantize(&SE3::IDENTITY);
    let qfeats: Vec<QFeature> = features.iter().map(QFeature::quantize).collect();
    let batches = features.len().div_ceil(BATCH) as u64;
    let measure_lm = |naive: bool| -> u64 {
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let c0 = m.stats().cycles;
        let chunk = &qfeats[..BATCH.min(qfeats.len())];
        if naive {
            let _ = run_batch_naive(&mut m, 5 * 256 + 64, chunk, &qpose, &kf.q_tables, &cam);
        } else {
            let _ = run_batch(&mut m, 5 * 256 + 64, chunk, &qpose, &kf.q_tables, &cam);
        }
        (m.stats().cycles - c0) * batches
    };
    let lm_n = measure_lm(true);
    let lm_o = measure_lm(false);

    let res = Fig9bResult {
        lpf: (lpf_n, lpf_o),
        hpf: (hpf_n, hpf_o),
        nms: (nms_n, nms_o),
        lm: (lm_n, lm_o),
    };
    let mut out = String::new();
    writeln!(out, "Fig. 9-b: naive vs optimized PIM mappings (cycles)").unwrap();
    writeln!(
        out,
        "  {:<8} {:>10} {:>10} {:>8}",
        "kernel", "naive", "opt", "ratio"
    )
    .unwrap();
    for (name, (n, o)) in [
        ("LPF", res.lpf),
        ("HPF", res.hpf),
        ("NMS", res.nms),
        ("LM x1", res.lm),
    ] {
        writeln!(
            out,
            "  {:<8} {:>10} {:>10} {:>7.2}x",
            name,
            fmt_cycles(n),
            fmt_cycles(o),
            n as f64 / o as f64
        )
        .unwrap();
    }
    let edge_ratio = (lpf_n + hpf_n + nms_n) as f64 / (lpf_o + hpf_o + nms_o) as f64;
    writeln!(
        out,
        "  edge detection overall: {edge_ratio:.2}x (paper: 1.7x); LM (paper: 1.4x)"
    )
    .unwrap();
    (res, out)
}

/// The staged pass groups the lowering sweep compares. `greedy` is the
/// pre-pipeline optimizer (shift fusion + dead-store elimination, the
/// PR-5 baseline); each later stage enables one more pass group, up to
/// the full [`pimvo_pim::pass_pipeline`] at `Opt`.
pub const LOWERING_STAGES: [(&str, &[Pass]); 4] = [
    ("greedy", &[Pass::FuseShifts, Pass::EliminateDeadStores]),
    (
        "peephole",
        &[Pass::Peephole, Pass::FuseShifts, Pass::EliminateDeadStores],
    ),
    (
        "sched",
        &[
            Pass::Peephole,
            Pass::FuseShifts,
            Pass::EliminateDeadStores,
            Pass::Schedule,
        ],
    ),
    (
        "layout",
        &[
            Pass::Peephole,
            Pass::FuseShifts,
            Pass::EliminateDeadStores,
            Pass::Schedule,
            Pass::Layout,
        ],
    ),
];

/// Lowering-pipeline stage sweep: per-kernel cycles on the canonical
/// frame at `Opt` as each staged pass group is enabled. Outputs are
/// asserted bit-identical across stages (passes may only change cost),
/// so the sweep isolates where the cycle wins come from — the
/// scheduler and home-row layout vs the PR-5 greedy baseline.
///
/// Returns `(kernel, stage, cycles)` rows and the formatted table.
pub fn lowering() -> (Vec<(&'static str, &'static str, u64)>, String) {
    let (gray, _) = canonical_frame();
    let cfg = EdgeConfig::default();
    let lpf_map = pimvo_kernels::scalar::lpf(&gray);
    let hpf_map = pimvo_kernels::scalar::hpf(&lpf_map);

    let mut rows: Vec<(&'static str, &'static str, u64)> = Vec::new();
    let mut outputs: Vec<(&'static str, pimvo_kernels::GrayImage)> = Vec::new();
    for (stage, passes) in LOWERING_STAGES {
        let mut measure =
            |kernel: &'static str, f: &dyn Fn(&mut PimMachine) -> pimvo_kernels::GrayImage| {
                let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
                let c0 = m.stats().cycles;
                let img = f(&mut m);
                rows.push((kernel, stage, m.stats().cycles - c0));
                // identity across stages: later passes may only change cost
                match outputs.iter().find(|(k, _)| *k == kernel) {
                    Some((_, want)) => {
                        assert_eq!(&img, want, "{kernel} output drifted at stage {stage}")
                    }
                    None => outputs.push((kernel, img)),
                }
            };
        measure("lpf", &|m| {
            ir::lpf_with_passes(m, &gray, LowerLevel::Opt, passes)
        });
        measure("hpf", &|m| {
            ir::hpf_with_passes(m, &lpf_map, LowerLevel::Opt, passes)
        });
        measure("nms", &|m| {
            ir::nms_with_passes(m, &hpf_map, &cfg, LowerLevel::Opt, passes)
        });
        measure("downsample", &|m| {
            ir::downsample2x_with_passes(m, &gray, LowerLevel::Opt, passes)
        });
    }

    let mut out = String::new();
    writeln!(out, "Lowering pipeline: cycles per kernel per stage").unwrap();
    write!(out, "  {:<12}", "kernel").unwrap();
    for (stage, _) in LOWERING_STAGES {
        write!(out, " {stage:>10}").unwrap();
    }
    writeln!(out).unwrap();
    for kernel in ["lpf", "hpf", "nms", "downsample"] {
        write!(out, "  {kernel:<12}").unwrap();
        for (stage, _) in LOWERING_STAGES {
            let c = rows
                .iter()
                .find(|(k, s, _)| *k == kernel && *s == stage)
                .map(|(_, _, c)| *c)
                .expect("every (kernel, stage) pair measured");
            write!(out, " {c:>10}").unwrap();
        }
        writeln!(out).unwrap();
    }
    writeln!(out, "  outputs bit-identical across all stages (asserted)").unwrap();
    (rows, out)
}

/// Tracks one full frame on the PIM backend and returns the machine
/// statistics (used by the energy/memory decompositions).
fn pim_frame_stats(frames: usize) -> (pimvo_pim::ExecStats, u64) {
    let mut tracker = Tracker::new(TrackerConfig::default(), BackendKind::Pim);
    let seq = pimvo_scene::Sequence::generate(SequenceKind::Xyz, frames);
    for f in &seq.frames {
        let _ = tracker.process_frame(&f.gray, &f.depth);
    }
    let stats = tracker.stats();
    (stats.pim.expect("pim backend"), stats.frames)
}

/// Fig. 10-a — energy decomposition per PIM component.
pub fn fig10a() -> (pimvo_pim::EnergyBreakdown, String) {
    let (stats, frames) = pim_frame_stats(6);
    let cost = CostModel::default();
    let e = stats.energy(&cost);
    let total = e.total_pj();
    let mut out = String::new();
    writeln!(out, "Fig. 10-a: PIM energy decomposition ({frames} frames)").unwrap();
    writeln!(
        out,
        "  SRAM array     : {:>6.1} %  (paper: 86 %)",
        100.0 * e.sram_pj / total
    )
    .unwrap();
    writeln!(
        out,
        "  shifter & adder: {:>6.1} %",
        100.0 * e.shifter_adder_pj / total
    )
    .unwrap();
    writeln!(
        out,
        "  Tmp Reg        : {:>6.1} %",
        100.0 * e.tmp_reg_pj / total
    )
    .unwrap();
    (e, out)
}

/// Fig. 10-b — memory-access decomposition.
pub fn fig10b() -> (pimvo_pim::MemAccessBreakdown, String) {
    let (stats, frames) = pim_frame_stats(6);
    let m = stats.mem_accesses();
    let total = m.total() as f64;
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 10-b: memory-access decomposition ({frames} frames)"
    )
    .unwrap();
    writeln!(
        out,
        "  SRAM reads : {:>6.1} %",
        100.0 * m.sram_reads as f64 / total
    )
    .unwrap();
    writeln!(
        out,
        "  SRAM writes: {:>6.1} %  (paper: ~7 % after Tmp-Reg optimization)",
        100.0 * m.sram_writes as f64 / total
    )
    .unwrap();
    writeln!(
        out,
        "  Tmp Reg    : {:>6.1} %",
        100.0 * m.tmp_accesses as f64 / total
    )
    .unwrap();
    (m, out)
}

/// §5.4 — per-frame energy, baseline vs PIM.
pub fn energy() -> ((f64, f64), String) {
    let frames = 6;
    let float_run = run_sequence(SequenceKind::Xyz, BackendKind::Float, frames);
    let pim_run = run_sequence(SequenceKind::Xyz, BackendKind::Pim, frames);
    let mcu_mj = float_run.stats.energy_mj / float_run.stats.frames as f64;
    let pim_mj = pim_run.stats.energy_mj / pim_run.stats.frames as f64;
    let mut out = String::new();
    writeln!(out, "§5.4: energy per frame").unwrap();
    writeln!(out, "  baseline MCU : {mcu_mj:.3} mJ (paper: 10.3 mJ)").unwrap();
    writeln!(out, "  PIM EBVO     : {pim_mj:.3} mJ (paper: 0.495 mJ)").unwrap();
    writeln!(
        out,
        "  improvement  : {:.1}x (paper: 20.8x)",
        mcu_mj / pim_mj
    )
    .unwrap();
    ((mcu_mj, pim_mj), out)
}

/// §1 — instruction-mix motivation (data movement share).
pub fn instr_mix() -> (InstructionMix, String) {
    let (gray, depth) = canonical_frame();
    let cam = Pinhole::qvga();
    let cfg = EdgeConfig::default();
    let mut c = CostCounter::new();
    let maps = edge_detect_counted_with(&gray, &cfg, &mut c, CodegenModel::PortableScalar);
    let features = extract_features(&maps.mask, &depth, &cam, 6000, 0.3, 8.0);
    let floats: Vec<FloatFeature> = features
        .iter()
        .map(|f| FloatFeature {
            a: f.a,
            b: f.b,
            c: f.c,
        })
        .collect();
    let kf = Keyframe::build(0, SE3::IDENTITY, maps.mask.clone(), &cam);
    for _ in 0..LM_ITERS {
        let _ = pimvo_mcu::linearize_counted_with(
            &floats,
            &kf.tables,
            &cam,
            &SE3::IDENTITY,
            &mut c,
            CodegenModel::PortableScalar,
        );
    }
    let mix = InstructionMix::from_counter(&c);
    let mut out = String::new();
    writeln!(
        out,
        "§1 motivation: instruction mix of a portable EBVO frame"
    )
    .unwrap();
    writeln!(
        out,
        "  data movement: {:.1} % of {} instructions (paper: 43 % x86 / 51 % ARM)",
        100.0 * mix.memory_share(),
        fmt_cycles(mix.total)
    )
    .unwrap();
    writeln!(
        out,
        "  arithmetic: {:.1} %, control: {:.1} %",
        100.0 * mix.arithmetic as f64 / mix.total as f64,
        100.0 * mix.control as f64 / mix.total as f64
    )
    .unwrap();
    (mix, out)
}

/// §3.3/§3.4 — quantization ablations.
pub fn quant_ablation() -> String {
    let cam = Pinhole::qvga();
    let pose = SE3::exp(&[0.05, -0.02, 0.03, 0.02, -0.01, 0.015]);
    let sweep = ablation::warp_error_sweep(&cam, &pose, &[(16, 12), (12, 8), (10, 6), (8, 4)]);
    let mut out = String::new();
    writeln!(out, "§3.3 ablation: feature-quantization warp error").unwrap();
    writeln!(
        out,
        "  {:<8} {:>12} {:>12}",
        "format", "max err(px)", "mean err(px)"
    )
    .unwrap();
    for s in &sweep {
        writeln!(
            out,
            "  Q{}.{:<5} {:>12.3} {:>12.4}",
            s.bits - s.frac,
            s.frac,
            s.max_err_px,
            s.mean_err_px
        )
        .unwrap();
    }
    writeln!(out, "  (paper: 16-bit < 1 px; 8-bit completely faulty)").unwrap();
    writeln!(out).unwrap();
    writeln!(out, "§3.4 ablation: Hessian accumulator width").unwrap();
    for r in ablation::hessian_width_ablation(&[32, 24, 16]) {
        writeln!(
            out,
            "  {:>2}-bit: solve_ok={} update_rel_err={:.4} saturated={:.0} %",
            r.bits,
            r.solve_ok,
            r.update_rel_err,
            100.0 * r.saturated_share
        )
        .unwrap();
    }
    writeln!(
        out,
        "  (paper: 32-bit Q29.3 works, 16-bit breaks the solver)"
    )
    .unwrap();
    out
}

/// §5.1 — area report.
pub fn area() -> String {
    let cost = CostModel::default();
    let a = cost.area_report();
    let mut out = String::new();
    writeln!(out, "§5.1: 90 nm area model").unwrap();
    writeln!(
        out,
        "  SRAM array      : {:.3e} µm²  (paper: 3.48e6)",
        a.array_um2
    )
    .unwrap();
    writeln!(
        out,
        "  sense amplifiers: {:.3e} µm²  (paper: 5.60e4)",
        a.sa_um2
    )
    .unwrap();
    writeln!(
        out,
        "  computing logic : {:.3e} µm² = {:.1} % of the array (paper: 5.1 %)",
        a.logic_um2,
        100.0 * a.logic_over_array
    )
    .unwrap();
    writeln!(
        out,
        "  energy/op: SRAM access {} pJ, datapath {} pJ (paper: 944.8 / 44.6)",
        cost.sram_read_pj,
        cost.shifter_adder_pj + cost.tmp_reg_pj
    )
    .unwrap();
    out
}

/// Runs the cheap experiments plus a reduced Table 1 (used by
/// `exp_all`). `frames` bounds the accuracy runs.
pub fn all(frames: usize) -> String {
    all_with_reports(frames).1
}

/// Backend name used in machine-readable metric keys.
fn backend_slug(backend: BackendKind) -> &'static str {
    match backend {
        BackendKind::Float => "float",
        BackendKind::Pim => "pim",
    }
}

/// Builds the machine-readable summary for one set of accuracy runs
/// (used for both Table 1 and the fault-free part of `fault_sweep`).
pub fn sequence_report(name: &str, runs: &[SequenceRun]) -> crate::sink::BenchReport {
    let mut r = crate::sink::BenchReport::new(name);
    for run in runs {
        let prefix = format!("{}_{}", run.kind.name(), backend_slug(run.backend));
        r.metric(&format!("{prefix}_rpe_trans_mps"), run.rpe.trans_mps)
            .metric(&format!("{prefix}_rpe_rot_dps"), run.rpe.rot_dps)
            .metric(
                &format!("{prefix}_ate_m"),
                pimvo_scene::ate_rmse(&run.estimate, &run.ground_truth),
            )
            .metric(
                &format!("{prefix}_cycles_total"),
                run.stats.total_cycles() as f64,
            )
            .metric(&format!("{prefix}_energy_mj"), run.stats.energy_mj)
            .metric(&format!("{prefix}_keyframes"), run.keyframes as f64)
            .metric(&format!("{prefix}_mean_features"), run.mean_features)
            .metric(&format!("{prefix}_mean_lm_iterations"), run.mean_iterations);
    }
    r
}

/// Runs the same experiments as [`all`] and additionally returns one
/// [`BenchReport`](crate::sink::BenchReport) per experiment — cycles,
/// energy, accuracy, and wall-clock seconds in a flat numeric map —
/// so `exp_all` can drop `BENCH_*.json` snapshots next to the
/// human-readable tables.
pub fn all_with_reports(frames: usize) -> (Vec<crate::sink::BenchReport>, String) {
    use crate::sink::BenchReport;
    use std::time::Instant;

    let mut reports = Vec::new();
    let mut out = String::new();
    let started = Instant::now();

    let t0 = Instant::now();
    let (runs, t1) = table1(frames.min(DEFAULT_FRAMES));
    out.push_str(&t1);
    out.push('\n');
    let mut r = sequence_report("table1", &runs);
    r.metric("wall_seconds", t0.elapsed().as_secs_f64())
        .note("paper", "Table 1: RPE RMSE, baseline vs PIM EBVO");
    reports.push(r);

    let t0 = Instant::now();
    let (f9a, text) = fig9a();
    out.push_str(&text);
    out.push('\n');
    let mut r = BenchReport::new("fig9a");
    r.metric("mcu_edge_cycles", f9a.mcu_edge as f64)
        .metric("mcu_lm8_cycles", f9a.mcu_lm8 as f64)
        .metric("pim_edge_cycles", f9a.pim_edge as f64)
        .metric("pim_lm8_cycles", f9a.pim_lm8 as f64)
        .metric("features", f9a.features as f64)
        .metric("edge_speedup", f9a.edge_speedup())
        .metric("lm_speedup", f9a.lm_speedup())
        .metric("overall_speedup", f9a.overall_speedup())
        .metric("wall_seconds", t0.elapsed().as_secs_f64())
        .note("paper", "Fig. 9-a: 48x edge, 11x LM, 24x overall");
    reports.push(r);

    let t0 = Instant::now();
    let (f9b, text) = fig9b();
    out.push_str(&text);
    out.push('\n');
    let mut r = BenchReport::new("fig9b");
    for (name, (naive, optimized)) in [
        ("lpf", f9b.lpf),
        ("hpf", f9b.hpf),
        ("nms", f9b.nms),
        ("lm", f9b.lm),
    ] {
        r.metric(&format!("{name}_naive_cycles"), naive as f64)
            .metric(&format!("{name}_optimized_cycles"), optimized as f64);
    }
    r.metric("wall_seconds", t0.elapsed().as_secs_f64())
        .note("paper", "Fig. 9-b: naive vs optimized PIM mappings");
    reports.push(r);

    let t0 = Instant::now();
    let (stages, text) = lowering();
    out.push_str(&text);
    out.push('\n');
    let mut r = BenchReport::new("lowering");
    for (kernel, stage, cycles) in &stages {
        r.metric(&format!("{kernel}_{stage}_cycles"), *cycles as f64);
    }
    r.metric("wall_seconds", t0.elapsed().as_secs_f64()).note(
        "paper",
        "extension: staged lowering pipeline, per-kernel cycles per pass group",
    );
    reports.push(r);

    let t0 = Instant::now();
    let (f10a, text) = fig10a();
    out.push_str(&text);
    out.push('\n');
    let mut r = BenchReport::new("fig10a");
    r.metric("sram_pj", f10a.sram_pj)
        .metric("shifter_adder_pj", f10a.shifter_adder_pj)
        .metric("tmp_reg_pj", f10a.tmp_reg_pj)
        .metric("ecc_pj", f10a.ecc_pj)
        .metric("total_pj", f10a.total_pj())
        .metric("sram_share", f10a.sram_share())
        .metric("wall_seconds", t0.elapsed().as_secs_f64())
        .note("paper", "Fig. 10-a: SRAM ~86 % of PIM energy");
    reports.push(r);

    let t0 = Instant::now();
    let (f10b, text) = fig10b();
    out.push_str(&text);
    out.push('\n');
    let mut r = BenchReport::new("fig10b");
    r.metric("sram_reads", f10b.sram_reads as f64)
        .metric("sram_writes", f10b.sram_writes as f64)
        .metric("tmp_accesses", f10b.tmp_accesses as f64)
        .metric("total_accesses", f10b.total() as f64)
        .metric("wall_seconds", t0.elapsed().as_secs_f64())
        .note("paper", "Fig. 10-b: writes ~7 % after Tmp-Reg optimization");
    reports.push(r);

    let t0 = Instant::now();
    let ((mcu_mj, pim_mj), text) = energy();
    out.push_str(&text);
    out.push('\n');
    let mut r = BenchReport::new("energy");
    r.metric("mcu_mj_per_frame", mcu_mj)
        .metric("pim_mj_per_frame", pim_mj)
        .metric("improvement_x", mcu_mj / pim_mj)
        .metric("wall_seconds", t0.elapsed().as_secs_f64())
        .note("paper", "10.3 mJ vs 0.495 mJ per frame (20.8x)");
    reports.push(r);

    let t0 = Instant::now();
    let (mix, text) = instr_mix();
    out.push_str(&text);
    out.push('\n');
    let mut r = BenchReport::new("instr_mix");
    r.metric("total_instructions", mix.total as f64)
        .metric("memory_instructions", mix.memory as f64)
        .metric("arithmetic_instructions", mix.arithmetic as f64)
        .metric("control_instructions", mix.control as f64)
        .metric("wall_seconds", t0.elapsed().as_secs_f64())
        .note("paper", "§1 motivation: data-movement share");
    reports.push(r);

    out.push_str(&quant_ablation());
    out.push('\n');
    out.push_str(&tmpreg_ablation());
    out.push('\n');
    out.push_str(&interp_ablation(frames.min(60)));
    out.push('\n');
    out.push_str(&pyramid_ablation());
    out.push('\n');
    out.push_str(&area());
    out.push('\n');

    let t0 = Instant::now();
    let (points, text) = scaling();
    out.push_str(&text);
    let mut r = BenchReport::new("scaling");
    for p in &points {
        let prefix = format!("arrays_{}", p.arrays);
        r.metric(&format!("{prefix}_edge_wall_cycles"), p.edge_wall as f64)
            .metric(&format!("{prefix}_lm_wall_cycles"), p.lm_wall as f64)
            .metric(&format!("{prefix}_energy_mj"), p.energy_mj)
            .metric(
                &format!("{prefix}_bit_identical"),
                if p.identical { 1.0 } else { 0.0 },
            );
    }
    r.metric("wall_seconds", t0.elapsed().as_secs_f64())
        .note("paper", "extension: sharded pool scaling, 1-8 arrays");
    reports.push(r);

    let t0 = Instant::now();
    let (ov, text) = overlap();
    out.push('\n');
    out.push_str(&text);
    out.push('\n');
    let mut r = BenchReport::new("overlap");
    r.metric("frames", ov.frames as f64)
        .metric("arrays", ov.arrays as f64)
        .metric("sync_wall_cycles", ov.sync_wall as f64)
        .metric("overlap_wall_cycles", ov.overlap_wall as f64)
        .metric("compute_cycles", ov.compute as f64)
        .metric("hidden_cycles", ov.hidden() as f64)
        .metric("overlap_speedup", ov.speedup())
        .metric("bit_identical", if ov.identical { 1.0 } else { 0.0 });
    for p in &ov.fault_sweep {
        let prefix = format!(
            "fault_{:02}_{:02}",
            (p.flip_rate * 100.0) as u32,
            (p.stall_rate * 100.0) as u32
        );
        r.metric(&format!("{prefix}_wall_cycles"), p.wall as f64)
            .metric(&format!("{prefix}_crc_errors"), p.health.crc_errors as f64)
            .metric(&format!("{prefix}_timeouts"), p.health.timeouts as f64)
            .metric(&format!("{prefix}_retries"), p.health.retries as f64)
            .metric(
                &format!("{prefix}_quarantines"),
                p.health.quarantines as f64,
            )
            .metric(
                &format!("{prefix}_bit_identical"),
                if p.identical { 1.0 } else { 0.0 },
            );
    }
    r.metric("wall_seconds", t0.elapsed().as_secs_f64()).note(
        "paper",
        "extension: host-array DMA channels hide strip transfers behind compute",
    );
    reports.push(r);

    let mut summary = BenchReport::new("summary");
    summary
        .metric("experiments", reports.len() as f64)
        .metric("frames", frames.min(DEFAULT_FRAMES) as f64)
        .metric("wall_seconds", started.elapsed().as_secs_f64())
        .note("tool", "pimvo-bench exp_all");
    reports.push(summary);

    (reports, out)
}

/// §5.4 extension ablation: Tmp-register count (the paper: "we could
/// use more registers to further improve the efficiency of both
/// computation and power"). Compares the single-register optimized
/// edge-detection mapping against the four-register variant.
pub fn tmpreg_ablation() -> String {
    let (gray, _) = canonical_frame();
    let cfg = EdgeConfig::default();
    let cost = CostModel::default();

    let mut m1 = PimMachine::new(ArrayConfig::qvga_banks(6));
    let single = ir::edge_detect(&mut m1, &gray, &cfg, LowerLevel::Opt);
    let mut m4 = PimMachine::new(ArrayConfig::qvga_banks(6));
    m4.set_tmp_regs(pimvo_kernels::ir::REGS_REQUIRED);
    let multi = ir::edge_detect(
        &mut m4,
        &gray,
        &cfg,
        LowerLevel::MultiReg(pimvo_kernels::ir::REGS_REQUIRED),
    );
    assert_eq!(single.mask, multi.mask, "outputs must be identical");

    let (s1, s4) = (m1.stats(), m4.stats());
    let (e1, e4) = (s1.energy(&cost), s4.energy(&cost));
    let mut out = String::new();
    writeln!(
        out,
        "§5.4 extension: Tmp-register count (edge detection, one frame)"
    )
    .unwrap();
    writeln!(
        out,
        "  {:<22} {:>12} {:>12}",
        "", "1 register", "4 registers"
    )
    .unwrap();
    writeln!(
        out,
        "  {:<22} {:>12} {:>12}",
        "cycles",
        fmt_cycles(s1.cycles),
        fmt_cycles(s4.cycles)
    )
    .unwrap();
    writeln!(
        out,
        "  {:<22} {:>12} {:>12}",
        "SRAM writes",
        fmt_cycles(s1.sram_writes),
        fmt_cycles(s4.sram_writes)
    )
    .unwrap();
    writeln!(
        out,
        "  {:<22} {:>12} {:>12}",
        "SRAM reads",
        fmt_cycles(s1.sram_reads),
        fmt_cycles(s4.sram_reads)
    )
    .unwrap();
    writeln!(
        out,
        "  {:<22} {:>12.1} {:>12.1}",
        "energy (µJ)",
        e1.total_pj() / 1e6,
        e4.total_pj() / 1e6
    )
    .unwrap();
    writeln!(
        out,
        "  energy saving: {:.1} %  cycle saving: {:.1} %",
        100.0 * (1.0 - e4.total_pj() / e1.total_pj()),
        100.0 * (1.0 - s4.cycles as f64 / s1.cycles as f64)
    )
    .unwrap();
    out
}

/// Residual-lookup ablation: nearest-neighbour vs bilinear
/// interpolation on the PIM backend (the one place this reproduction
/// deliberately refines the paper's "directly looked-up" residual —
/// this experiment quantifies why).
pub fn interp_ablation(frames: usize) -> String {
    use pimvo_core::Interp;
    use pimvo_scene::{rpe_rmse, Sequence, Trajectory};

    let seq = Sequence::generate(SequenceKind::Xyz, frames);
    let mut out = String::new();
    writeln!(
        out,
        "residual-lookup ablation (xyz, {frames} frames, PIM backend)"
    )
    .unwrap();
    writeln!(
        out,
        "  {:<10} {:>12} {:>12} {:>14}",
        "mode", "t (m/s)", "rot (°/s)", "LM cyc/frame"
    )
    .unwrap();
    for (name, interp) in [("nearest", Interp::Nearest), ("bilinear", Interp::Bilinear)] {
        let backend = Box::new(pimvo_core::PimBackend::with_interp(interp));
        let mut tracker = Tracker::with_backend(TrackerConfig::default(), backend);
        let mut est = Trajectory::new();
        for f in &seq.frames {
            let r = tracker.process_frame(&f.gray, &f.depth);
            est.push(f.time, r.pose_wc);
        }
        let rpe = rpe_rmse(&est, &seq.ground_truth, 1.0);
        let stats = tracker.stats();
        writeln!(
            out,
            "  {:<10} {:>12.4} {:>12.3} {:>14}",
            name,
            rpe.trans_mps,
            rpe.rot_dps,
            fmt_cycles(stats.lm_cycles / stats.frames.max(1))
        )
        .unwrap();
    }
    writeln!(
        out,
        "  (bilinear buys sub-pixel residuals for a modest lerp/gather cost)"
    )
    .unwrap();
    out
}

/// Extension ablation: pyramid levels — convergence basin vs cost.
pub fn pyramid_ablation() -> String {
    use pimvo_scene::{build_scene, RenderOptions};
    use pimvo_vomath::SE3;

    let scene = build_scene(SequenceKind::Xyz);
    let cam = Pinhole::qvga();
    let opts = RenderOptions::default();
    let (g0, d0) = scene.render(&cam, &SE3::IDENTITY, &opts, 0);
    let mut out = String::new();
    writeln!(
        out,
        "extension: coarse-to-fine pyramid (lateral jump recovery)"
    )
    .unwrap();
    writeln!(
        out,
        "  {:<10} {:>9} {:>9} {:>9} {:>14}",
        "jump (m)", "1 level", "2 levels", "3 levels", "(abs error, m)"
    )
    .unwrap();
    for jump in [0.05f64, 0.10, 0.20] {
        let pose = SE3::exp(&[jump, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let (g1, d1) = scene.render(&cam, &pose, &opts, 1);
        let mut errs = Vec::new();
        for levels in 1..=3usize {
            let config = TrackerConfig {
                pyramid_levels: levels,
                ..TrackerConfig::default()
            };
            let mut t = Tracker::new(config, BackendKind::Float);
            let _ = t.process_frame(&g0, &d0);
            let r = t.process_frame(&g1, &d1);
            errs.push((r.pose_wc.translation.x - jump).abs());
        }
        writeln!(
            out,
            "  {:<10.2} {:>9.4} {:>9.4} {:>9.4}",
            jump, errs[0], errs[1], errs[2]
        )
        .unwrap();
    }
    writeln!(
        out,
        "  (each extra level costs ~1/4 of the full-resolution edge detection)"
    )
    .unwrap();
    out
}

/// Robustness sweep: tracking accuracy vs sensor noise (intensity and
/// range noise swept independently around the defaults). A
/// reproduction-quality check the paper leaves implicit: EBVO's
/// distance-transform alignment should degrade gracefully, not fall
/// off a cliff, as the synthetic sensor gets worse.
pub fn noise_sweep(frames: usize) -> String {
    use pimvo_scene::{rpe_rmse, RenderOptions, Trajectory};

    let mut out = String::new();
    writeln!(
        out,
        "robustness: RPE vs sensor noise (desk, {frames} frames, PIM backend)"
    )
    .unwrap();
    let track = |opts: RenderOptions| -> (f64, f64) {
        let scene = pimvo_scene::build_scene(SequenceKind::Desk);
        let cam = Pinhole::qvga();
        let mut tracker = Tracker::new(TrackerConfig::default(), BackendKind::Pim);
        let mut est = Trajectory::new();
        let mut gt = Trajectory::new();
        for i in 0..frames {
            let t = i as f64 / 30.0;
            let pose = pimvo_scene::pose_at(SequenceKind::Desk, t);
            let (gray, depth) = scene.render(&cam, &pose, &opts, i as u32);
            let r = tracker.process_frame(&gray, &depth);
            est.push(t, r.pose_wc);
            gt.push(t, pose);
        }
        let rpe = rpe_rmse(&est, &gt, 1.0);
        (rpe.trans_mps, rpe.rot_dps)
    };

    writeln!(out, "  intensity noise sweep (range noise at default):").unwrap();
    writeln!(
        out,
        "  {:<12} {:>10} {:>10}",
        "σ (gray)", "t (m/s)", "rot (°/s)"
    )
    .unwrap();
    for sigma in [0.0, 1.2, 3.0, 6.0, 10.0] {
        let (t, r) = track(RenderOptions {
            noise_sigma: sigma,
            ..Default::default()
        });
        writeln!(out, "  {:<12} {:>10.4} {:>10.3}", sigma, t, r).unwrap();
    }
    writeln!(out, "  range noise sweep (intensity noise at default):").unwrap();
    writeln!(
        out,
        "  {:<12} {:>10} {:>10}",
        "σd@4m (m)", "t (m/s)", "rot (°/s)"
    )
    .unwrap();
    for coeff in [0.0, 0.0015, 0.005, 0.010] {
        let (t, r) = track(RenderOptions {
            depth_noise_coeff: coeff,
            ..Default::default()
        });
        writeln!(out, "  {:<12.3} {:>10.4} {:>10.3}", coeff * 16.0, t, r).unwrap();
    }
    writeln!(
        out,
        "  (notable: moderate intensity noise *helps* on this scene — it\n            breaks the NMS response ties of clean synthetic surfaces and\n            yields more, better-distributed edge features; range noise is\n            absorbed by the Q4.12 inverse-depth quantization)"
    )
    .unwrap();
    out
}

/// One point of the array-scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Pool size (number of PIM arrays).
    pub arrays: usize,
    /// Edge-detection wall cycles for one QVGA frame.
    pub edge_wall: u64,
    /// Pose-estimation wall cycles for [`LM_ITERS`] LM iterations.
    pub lm_wall: u64,
    /// Total energy in mJ (the compute work is conserved — only the
    /// wall clock shrinks with more arrays).
    pub energy_mj: f64,
    /// Whether every output is bit-identical to the single-array run.
    pub identical: bool,
}

/// Array-scaling experiment: the sharded [`pimvo_pim::PimArrayPool`]
/// on 1/2/4/8 arrays running QVGA edge detection plus [`LM_ITERS`] LM
/// linearizations. Wall cycles per phase are the slowest shard plus
/// the inter-array sync overhead; outputs must stay bit-identical to
/// the single-array execution.
pub fn scaling() -> (Vec<ScalingPoint>, String) {
    use pimvo_core::{PimBackend, TrackerBackend};

    let (gray, depth) = canonical_frame();
    let cam = Pinhole::qvga();
    let cfg = EdgeConfig::default();
    let pose = SE3::exp(&[0.01, -0.005, 0.008, 0.002, -0.004, 0.001]);

    let mut points: Vec<ScalingPoint> = Vec::new();
    let mut reference: Option<(pimvo_kernels::EdgeMaps, usize, f64)> = None;
    for arrays in [1usize, 2, 4, 8] {
        let mut be = PimBackend::with_pool(arrays);
        let maps = be.detect_edges(&gray, &cfg);
        let features = extract_features(&maps.mask, &depth, &cam, 6000, 0.3, 8.0);
        let kf = Keyframe::build(0, SE3::IDENTITY, maps.mask.clone(), &cam);
        let mut eq = None;
        for _ in 0..LM_ITERS {
            eq = Some(be.linearize(&features, &kf, &cam, &pose));
        }
        let eq = eq.expect("at least one LM iteration");
        let stats = be.stats();
        let identical = match &reference {
            None => {
                reference = Some((maps, eq.count, eq.cost));
                true
            }
            Some((rm, rc, rcost)) => *rm == maps && *rc == eq.count && *rcost == eq.cost,
        };
        points.push(ScalingPoint {
            arrays,
            edge_wall: stats.edge_cycles,
            lm_wall: stats.lm_cycles,
            energy_mj: stats.energy_mj,
            identical,
        });
    }

    let total0 = points[0].edge_wall + points[0].lm_wall;
    let mut out = String::new();
    writeln!(
        out,
        "Array scaling: sharded PimArrayPool (QVGA edge detection + {LM_ITERS} LM iterations)"
    )
    .unwrap();
    writeln!(
        out,
        "  {:<7} {:>12} {:>12} {:>12} {:>8} {:>12} {:>10}",
        "arrays", "edge wall", "LM wall", "total wall", "speedup", "energy (mJ)", "identical"
    )
    .unwrap();
    for p in &points {
        let total = p.edge_wall + p.lm_wall;
        writeln!(
            out,
            "  {:<7} {:>12} {:>12} {:>12} {:>7.2}x {:>12.4} {:>10}",
            p.arrays,
            fmt_cycles(p.edge_wall),
            fmt_cycles(p.lm_wall),
            fmt_cycles(total),
            total0 as f64 / total as f64,
            p.energy_mj,
            if p.identical { "yes" } else { "NO" }
        )
        .unwrap();
    }
    writeln!(
        out,
        "  (wall = slowest shard per phase + {} sync cycles per barrier; compute work,\n   energy and outputs are conserved — only elapsed time shrinks)",
        CostModel::default().pool_sync_cycles
    )
    .unwrap();
    (points, out)
}

/// One arm of the transfer-fault sweep in [`overlap`] (fault builds
/// only — the vector stays empty on default builds).
#[derive(Debug, Clone, Copy)]
pub struct OverlapFaultPoint {
    /// Per-descriptor payload-flip probability (caught by CRC).
    pub flip_rate: f64,
    /// Per-descriptor stall probability (caught by the cycle timeout).
    pub stall_rate: f64,
    /// End-to-end wall cycles of the faulted run.
    pub wall: u64,
    /// Whether the edge maps still matched the synchronous arm.
    pub identical: bool,
    /// Merged channel health over the run.
    pub health: pimvo_pim::DmaHealth,
}

/// Measured results of the DMA-overlap experiment.
#[derive(Debug, Clone)]
pub struct OverlapResult {
    /// Frames streamed through each arm.
    pub frames: usize,
    /// Pool arrays per arm.
    pub arrays: usize,
    /// End-to-end wall cycles over the synchronous host port.
    pub sync_wall: u64,
    /// End-to-end wall cycles with channel prefetch behind compute.
    pub overlap_wall: u64,
    /// Array compute cycles (identical in both arms by construction).
    pub compute: u64,
    /// Whether the overlap arm's edge maps matched the synchronous arm
    /// bit for bit.
    pub identical: bool,
    /// Seeded transfer-fault arms (empty without the `fault` feature).
    pub fault_sweep: Vec<OverlapFaultPoint>,
}

impl OverlapResult {
    /// Transfer cycles the channels hid behind compute.
    pub fn hidden(&self) -> u64 {
        self.sync_wall.saturating_sub(self.overlap_wall)
    }

    /// End-to-end speed-up of the overlap arm.
    pub fn speedup(&self) -> f64 {
        self.sync_wall as f64 / self.overlap_wall as f64
    }
}

/// Extension: host↔array DMA overlap. Streams a short QVGA sequence
/// through the pooled edge-detection front-end twice — once over the
/// synchronous host port (every strip transfer serializes with
/// compute) and once with per-array DMA channels prefetching the next
/// frame's strips behind the current frame's remaining phases
/// ([`pim_pool::edge_detect_pipelined`]). Fault builds add a seeded
/// transfer-fault sweep on top of the overlap arm. Every arm produces
/// bit-identical edge maps; only the timing model moves.
pub fn overlap() -> (OverlapResult, String) {
    const FRAMES: usize = 6;
    const ARRAYS: usize = 4;
    let cfg = EdgeConfig::default();
    let seq = Sequence::generate(SequenceKind::Xyz, FRAMES);
    let frames: Vec<_> = seq.frames.iter().map(|f| f.gray.clone()).collect();

    // synchronous arm: no channels, every transfer serializes
    let mut sync = PimMachine::builder(ArrayConfig::qvga_banks(6)).build_pool(ARRAYS);
    let mut want = Vec::with_capacity(FRAMES);
    for img in &frames {
        want.push(pim_pool::edge_detect(&mut sync, img, &cfg));
    }
    sync.dma_settle();

    // overlap arm: channels on, next frame streams in behind compute
    let mut dma = PimMachine::builder(ArrayConfig::qvga_banks(6))
        .dma(DmaConfig::default())
        .build_pool(ARRAYS);
    let got = pim_pool::edge_detect_pipelined(&mut dma, &frames, &cfg);

    #[cfg_attr(not(feature = "fault"), allow(unused_mut))]
    let mut res = OverlapResult {
        frames: FRAMES,
        arrays: ARRAYS,
        sync_wall: sync.wall_cycles(),
        overlap_wall: dma.wall_cycles(),
        compute: dma.merged_stats().cycles,
        identical: got == want && sync.merged_stats().cycles == dma.merged_stats().cycles,
        fault_sweep: Vec::new(),
    };

    // fault sweep: same schedule under a seeded transfer-fault storm —
    // CRC'd descriptors retry (and eventually quarantine down to the
    // synchronous port), so outputs stay bit-identical at any rate
    #[cfg(feature = "fault")]
    for &(flip, stall) in &[(0.02, 0.01), (0.10, 0.05), (0.35, 0.25)] {
        let mut p = PimMachine::builder(ArrayConfig::qvga_banks(6))
            .dma(DmaConfig::default())
            .build_pool(ARRAYS);
        p.set_dma_fault(pimvo_pim::DmaFaultModel::new(
            0xd3a0_0b5e,
            flip,
            stall,
            0.01,
        ));
        let maps = pim_pool::edge_detect_pipelined(&mut p, &frames, &cfg);
        res.fault_sweep.push(OverlapFaultPoint {
            flip_rate: flip,
            stall_rate: stall,
            wall: p.wall_cycles(),
            identical: maps == want,
            health: p.dma_health(),
        });
    }

    let mut out = String::new();
    writeln!(
        out,
        "DMA overlap: {FRAMES}-frame QVGA edge detection on {ARRAYS} arrays"
    )
    .unwrap();
    writeln!(
        out,
        "  {:<22} {:>14} {:>10}",
        "arm", "wall cycles", "identical"
    )
    .unwrap();
    writeln!(
        out,
        "  {:<22} {:>14} {:>10}",
        "synchronous port",
        fmt_cycles(res.sync_wall),
        "ref"
    )
    .unwrap();
    writeln!(
        out,
        "  {:<22} {:>14} {:>10}",
        "channel prefetch",
        fmt_cycles(res.overlap_wall),
        if res.identical { "yes" } else { "NO" }
    )
    .unwrap();
    for p in &res.fault_sweep {
        writeln!(
            out,
            "  {:<22} {:>14} {:>10}   ({} crc, {} timeout, {} retry, {} quarantine)",
            format!("faulted f={} s={}", p.flip_rate, p.stall_rate),
            fmt_cycles(p.wall),
            if p.identical { "yes" } else { "NO" },
            p.health.crc_errors,
            p.health.timeouts,
            p.health.retries,
            p.health.quarantines,
        )
        .unwrap();
    }
    writeln!(
        out,
        "  hidden behind compute: {} cycles ({:.2}x end-to-end)",
        fmt_cycles(res.hidden()),
        res.speedup()
    )
    .unwrap();
    (res, out)
}

#[cfg(test)]
mod scaling_tests {
    use super::*;

    #[test]
    fn scaling_is_monotone_and_bit_identical() {
        let (points, _) = scaling();
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!(
                p.identical,
                "{} arrays diverged from single-array",
                p.arrays
            );
        }
        for w in points.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            assert!(
                b.edge_wall + b.lm_wall < a.edge_wall + a.lm_wall,
                "total wall cycles must shrink: {} arrays {} vs {} arrays {}",
                a.arrays,
                a.edge_wall + a.lm_wall,
                b.arrays,
                b.edge_wall + b.lm_wall
            );
        }
    }

    #[test]
    fn overlap_hides_transfers_and_stays_bit_identical() {
        let (res, text) = overlap();
        assert!(res.identical, "overlap arm diverged from synchronous arm");
        assert!(
            res.overlap_wall < res.sync_wall,
            "overlap did not pay: {} >= {}",
            res.overlap_wall,
            res.sync_wall
        );
        assert!(text.contains("hidden behind compute"));
        // the sweep only runs on fault builds, and every arm must
        // still match the synchronous reference bit for bit
        #[cfg(feature = "fault")]
        {
            assert!(!res.fault_sweep.is_empty());
            for p in &res.fault_sweep {
                assert!(
                    p.identical,
                    "faulted arm f={} s={} diverged",
                    p.flip_rate, p.stall_rate
                );
            }
            let worst = res.fault_sweep.last().unwrap();
            assert!(worst.health.crc_errors > 0, "storm injected no CRC errors");
            assert!(worst.health.retries > 0, "storm forced no retries");
        }
        #[cfg(not(feature = "fault"))]
        assert!(res.fault_sweep.is_empty());
    }
}
