#![warn(missing_docs)]

//! Shared harness code for the experiment binaries (`exp_*`) that
//! regenerate every table and figure of the paper, and for the
//! Criterion micro-benches.
//!
//! Each experiment binary prints the same rows/series the paper
//! reports; `EXPERIMENTS.md` records the paper-vs-measured comparison.

use pimvo_core::{BackendKind, Tracker, TrackerConfig};
use pimvo_kernels::{DepthImage, GrayImage};
use pimvo_scene::{rpe_rmse, RpeResult, Sequence, SequenceKind, Trajectory};

/// Default frame count per sequence in the accuracy experiments
/// (3 seconds at 30 Hz — enough for several RPE windows while keeping
/// the cycle-accurate simulation affordable).
pub const DEFAULT_FRAMES: usize = 90;

/// Outcome of tracking one sequence with one backend.
pub struct SequenceRun {
    /// Sequence profile.
    pub kind: SequenceKind,
    /// Backend used.
    pub backend: BackendKind,
    /// Relative-pose-error RMSE (1 s windows).
    pub rpe: RpeResult,
    /// Estimated trajectory.
    pub estimate: Trajectory,
    /// Ground-truth trajectory.
    pub ground_truth: Trajectory,
    /// Backend cost statistics over the whole run.
    pub stats: pimvo_core::BackendStats,
    /// Keyframes promoted.
    pub keyframes: usize,
    /// Mean features per frame.
    pub mean_features: f64,
    /// Mean LM iterations per tracked frame.
    pub mean_iterations: f64,
}

/// Tracks a generated sequence with the chosen backend.
pub fn run_sequence(kind: SequenceKind, backend: BackendKind, frames: usize) -> SequenceRun {
    let seq = Sequence::generate(kind, frames);
    track_sequence(&seq, backend)
}

/// Tracks an already-generated sequence.
pub fn track_sequence(seq: &Sequence, backend: BackendKind) -> SequenceRun {
    let mut tracker = Tracker::new(TrackerConfig::default(), backend);
    let mut estimate = Trajectory::new();
    let mut keyframes = 0usize;
    let mut feats = 0usize;
    let mut iters = 0usize;
    let mut tracked = 0usize;
    for f in &seq.frames {
        let r = tracker.process_frame(&f.gray, &f.depth);
        estimate.push(f.time, r.pose_wc);
        keyframes += r.is_keyframe as usize;
        feats += r.features;
        if r.iterations > 0 {
            iters += r.iterations;
            tracked += 1;
        }
    }
    let rpe = rpe_rmse(&estimate, &seq.ground_truth, 1.0);
    SequenceRun {
        kind: seq.kind,
        backend,
        rpe,
        estimate,
        ground_truth: seq.ground_truth.clone(),
        stats: tracker.stats(),
        keyframes,
        mean_features: feats as f64 / seq.frames.len() as f64,
        mean_iterations: if tracked > 0 {
            iters as f64 / tracked as f64
        } else {
            0.0
        },
    }
}

/// The canonical evaluation frame: one rendered frame of the `xyz`
/// profile (rich texture, ~4-6 k edge features at the default
/// thresholds) — used by the per-kernel cycle experiments.
pub fn canonical_frame() -> (GrayImage, DepthImage) {
    let seq = Sequence::generate(SequenceKind::Xyz, 1);
    let f = &seq.frames[0];
    (f.gray.clone(), f.depth.clone())
}

/// Formats a cycle count with thousands separators for report tables.
pub fn fmt_cycles(c: u64) -> String {
    let s = c.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_cycles_groups_digits() {
        assert_eq!(fmt_cycles(1419120), "1,419,120");
        assert_eq!(fmt_cycles(999), "999");
        assert_eq!(fmt_cycles(1000), "1,000");
    }

    #[test]
    fn short_run_produces_stats() {
        let run = run_sequence(SequenceKind::Desk, BackendKind::Float, 5);
        assert_eq!(run.estimate.len(), 5);
        assert!(run.keyframes >= 1);
        assert!(run.mean_features > 100.0);
        assert!(run.stats.frames == 5);
    }
}

pub mod chaos;
pub mod reports;
pub mod sink;
