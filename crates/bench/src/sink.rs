//! Machine-readable bench reports: `BENCH_<experiment>.json`.
//!
//! Each experiment contributes one [`BenchReport`] — a flat map of
//! numeric metrics (cycles, energy, accuracy, wall time) plus string
//! annotations — and a [`TelemetrySink`] serializes them to
//! `BENCH_*.json` files, one per experiment, so CI and notebooks can
//! diff runs without scraping the human-readable tables. Serialization
//! reuses the dependency-free JSON helpers of `pimvo-telemetry`;
//! metrics iterate from `BTreeMap`s, so files are deterministically
//! ordered.

use pimvo_telemetry::json;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

/// One experiment's machine-readable result summary.
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    meta: BTreeMap<String, String>,
    metrics: BTreeMap<String, f64>,
}

impl BenchReport {
    /// Starts an empty report for experiment `name` (becomes the
    /// `BENCH_<name>.json` file name — keep it path-safe).
    pub fn new(name: &str) -> Self {
        BenchReport {
            name: name.to_string(),
            meta: BTreeMap::new(),
            metrics: BTreeMap::new(),
        }
    }

    /// Experiment name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a numeric metric.
    pub fn metric(&mut self, key: &str, value: f64) -> &mut Self {
        self.metrics.insert(key.to_string(), value);
        self
    }

    /// Adds a string annotation (units, paper reference, config).
    pub fn note(&mut self, key: &str, value: &str) -> &mut Self {
        self.meta.insert(key.to_string(), value.to_string());
        self
    }

    /// The collected metrics.
    pub fn metrics(&self) -> &BTreeMap<String, f64> {
        &self.metrics
    }

    /// File name this report serializes to.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(out, "  \"experiment\": {},\n", json::escaped(&self.name));
        out.push_str("  \"meta\": {");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", json::escaped(k), json::escaped(v));
        }
        if !self.meta.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", json::escaped(k), json::number(*v));
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Writes [`BenchReport`]s as `BENCH_*.json` files into one directory
/// (typically the repo root, so `scripts/bench_snapshot.sh` leaves the
/// snapshots next to the code that produced them).
#[derive(Debug)]
pub struct TelemetrySink {
    dir: PathBuf,
    written: Vec<PathBuf>,
}

impl TelemetrySink {
    /// A sink writing into `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        TelemetrySink {
            dir: dir.into(),
            written: Vec::new(),
        }
    }

    /// Serializes one report to `<dir>/BENCH_<name>.json`.
    pub fn emit(&mut self, report: &BenchReport) -> std::io::Result<PathBuf> {
        let path = self.dir.join(report.file_name());
        std::fs::write(&path, report.to_json())?;
        self.written.push(path.clone());
        Ok(path)
    }

    /// Every file written so far.
    pub fn written(&self) -> &[PathBuf] {
        &self.written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_deterministically() {
        let mut r = BenchReport::new("fig9a");
        r.metric("pim_edge_cycles", 29_556.0)
            .metric("edge_speedup", 47.5)
            .note("paper", "48x edge");
        let j = r.to_json();
        assert!(j.contains("\"experiment\": \"fig9a\""));
        assert!(j.contains("\"pim_edge_cycles\": 29556"));
        assert!(j.contains("\"edge_speedup\": 47.5"));
        assert!(j.contains("\"paper\": \"48x edge\""));
        assert_eq!(j, r.to_json());
        assert_eq!(r.file_name(), "BENCH_fig9a.json");
    }

    #[test]
    fn sink_writes_files() {
        let dir = std::env::temp_dir().join("pimvo_bench_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut sink = TelemetrySink::new(&dir);
        let mut r = BenchReport::new("unit");
        r.metric("x", 1.0);
        let path = sink.emit(&r).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"x\": 1"));
        std::fs::remove_file(path).unwrap();
    }
}
