//! Euclidean distance transform of a binary edge mask, after
//! Felzenszwalb & Huttenlocher, *Distance Transforms of Sampled
//! Functions* (the algorithm the paper cites as reference [6]).
//!
//! EBVO pre-computes, for every keyframe, the distance from each pixel
//! to the nearest edge pixel (`DT_k`) plus its gradient maps, so that
//! the warp residual and part of the Jacobian become table lookups.

/// A distance map over an image grid: for every pixel, the Euclidean
/// distance (in pixels) to the nearest edge pixel, clamped to
/// [`DistanceMap::MAX_DIST`].
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMap {
    width: u32,
    height: u32,
    data: Vec<f32>,
}

impl DistanceMap {
    /// Distances are clamped here; residuals beyond this are
    /// uninformative for alignment (and the clamp bounds the Q-format
    /// range needed on the PIM side).
    pub const MAX_DIST: f32 = 30.0;

    /// Map width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Map height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Distance at an integer pixel.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> f32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[(y * self.width + x) as usize]
    }

    /// Bilinearly interpolated distance at a sub-pixel location.
    /// Coordinates are clamped to the valid interpolation region.
    pub fn sample(&self, u: f64, v: f64) -> f32 {
        let u = u.clamp(0.0, (self.width - 1) as f64);
        let v = v.clamp(0.0, (self.height - 1) as f64);
        let x0 = (u.floor() as u32).min(self.width - 2);
        let y0 = (v.floor() as u32).min(self.height - 2);
        let fx = (u - x0 as f64) as f32;
        let fy = (v - y0 as f64) as f32;
        let d00 = self.get(x0, y0);
        let d10 = self.get(x0 + 1, y0);
        let d01 = self.get(x0, y0 + 1);
        let d11 = self.get(x0 + 1, y0 + 1);
        d00 * (1.0 - fx) * (1.0 - fy)
            + d10 * fx * (1.0 - fy)
            + d01 * (1.0 - fx) * fy
            + d11 * fx * fy
    }

    /// Raw data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }
}

/// Computes the Euclidean distance transform of `mask` (nonzero pixels
/// are sites). Uses the exact two-pass lower-envelope algorithm on
/// squared distances, then takes square roots.
///
/// # Panics
///
/// Panics if `mask.len() != width * height` or either dimension is 0.
pub fn distance_transform(mask: &[u8], width: u32, height: u32) -> DistanceMap {
    assert!(width > 0 && height > 0, "dimensions must be nonzero");
    assert_eq!(mask.len(), (width * height) as usize, "mask size mismatch");
    let (w, h) = (width as usize, height as usize);
    const INF: f64 = 1e18;

    // column pass: 1D squared distance along each column
    let mut g = vec![0.0f64; w * h];
    let mut f = vec![0.0f64; h.max(w)];
    let mut d = vec![0.0f64; h.max(w)];
    let mut vbuf = vec![0usize; h.max(w)];
    let mut zbuf = vec![0.0f64; h.max(w) + 1];

    for x in 0..w {
        for y in 0..h {
            f[y] = if mask[y * w + x] != 0 { 0.0 } else { INF };
        }
        dt_1d(&f[..h], &mut d[..h], &mut vbuf, &mut zbuf);
        for y in 0..h {
            g[y * w + x] = d[y];
        }
    }
    // row pass
    let mut out = vec![0.0f32; w * h];
    for y in 0..h {
        f[..w].copy_from_slice(&g[y * w..(y + 1) * w]);
        dt_1d(&f[..w], &mut d[..w], &mut vbuf, &mut zbuf);
        for x in 0..w {
            out[y * w + x] = (d[x].sqrt() as f32).min(DistanceMap::MAX_DIST);
        }
    }
    DistanceMap {
        width,
        height,
        data: out,
    }
}

/// 1D squared-distance transform (lower envelope of parabolas).
fn dt_1d(f: &[f64], d: &mut [f64], v: &mut [usize], z: &mut [f64]) {
    let n = f.len();
    let mut k = 0usize;
    v[0] = 0;
    z[0] = -1e18;
    z[1] = 1e18;
    for q in 1..n {
        loop {
            let p = v[k];
            let s = ((f[q] + (q * q) as f64) - (f[p] + (p * p) as f64))
                / (2.0 * q as f64 - 2.0 * p as f64);
            if s <= z[k] {
                if k == 0 {
                    break;
                }
                k -= 1;
            } else {
                k += 1;
                v[k] = q;
                z[k] = s;
                z[k + 1] = 1e18;
                break;
            }
        }
    }
    let mut k = 0usize;
    for (q, dq) in d.iter_mut().enumerate() {
        while z[k + 1] < q as f64 {
            k += 1;
        }
        let p = v[k];
        let diff = q as f64 - p as f64;
        *dq = diff * diff + f[p];
    }
}

/// Central-difference gradient maps `(∂DT/∂u, ∂DT/∂v)` of a distance
/// map — pre-computed per keyframe so the Jacobian's `(I_u, I_v)` terms
/// become lookups.
pub fn gradient_maps(dt: &DistanceMap) -> (Vec<f32>, Vec<f32>) {
    let (w, h) = (dt.width(), dt.height());
    let mut gx = vec![0.0f32; (w * h) as usize];
    let mut gy = vec![0.0f32; (w * h) as usize];
    for y in 0..h {
        for x in 0..w {
            let xm = x.saturating_sub(1);
            let xp = (x + 1).min(w - 1);
            let ym = y.saturating_sub(1);
            let yp = (y + 1).min(h - 1);
            let idx = (y * w + x) as usize;
            gx[idx] = (dt.get(xp, y) - dt.get(xm, y)) / (xp - xm).max(1) as f32;
            gy[idx] = (dt.get(x, yp) - dt.get(x, ym)) / (yp - ym).max(1) as f32;
        }
    }
    (gx, gy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(mask: &[u8], w: u32, h: u32) -> Vec<f32> {
        let mut out = vec![DistanceMap::MAX_DIST; (w * h) as usize];
        let sites: Vec<(i64, i64)> = (0..h as i64)
            .flat_map(|y| (0..w as i64).map(move |x| (x, y)))
            .filter(|&(x, y)| mask[(y * w as i64 + x) as usize] != 0)
            .collect();
        for y in 0..h as i64 {
            for x in 0..w as i64 {
                let mut best = f64::INFINITY;
                for &(sx, sy) in &sites {
                    let d2 = ((x - sx) * (x - sx) + (y - sy) * (y - sy)) as f64;
                    best = best.min(d2);
                }
                if best.is_finite() {
                    out[(y * w as i64 + x) as usize] =
                        (best.sqrt() as f32).min(DistanceMap::MAX_DIST);
                }
            }
        }
        out
    }

    #[test]
    fn matches_brute_force_on_random_masks() {
        let (w, h) = (23u32, 17u32);
        for seed in 0..5u32 {
            let mask: Vec<u8> = (0..w * h)
                .map(|i| u8::from((i.wrapping_mul(2654435761).wrapping_add(seed * 997)) % 31 == 0))
                .collect();
            if mask.iter().all(|&m| m == 0) {
                continue;
            }
            let dt = distance_transform(&mask, w, h);
            let bf = brute_force(&mask, w, h);
            for (i, (&got, &want)) in dt.data().iter().zip(&bf).enumerate() {
                assert!(
                    (got - want).abs() < 1e-4,
                    "seed {seed} pixel {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn zero_at_sites() {
        let (w, h) = (10u32, 10u32);
        let mut mask = vec![0u8; 100];
        mask[5 * 10 + 5] = 255;
        let dt = distance_transform(&mask, w, h);
        assert_eq!(dt.get(5, 5), 0.0);
        assert!((dt.get(5, 8) - 3.0).abs() < 1e-6);
        assert!((dt.get(8, 9) - 25.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn empty_mask_clamps_to_max() {
        let dt = distance_transform(&[0u8; 64], 8, 8);
        assert!(dt.data().iter().all(|&d| d == DistanceMap::MAX_DIST));
    }

    #[test]
    fn bilinear_sampling_interpolates() {
        let mut mask = vec![0u8; 64];
        mask[0] = 1; // site at (0,0)
        let dt = distance_transform(&mask, 8, 8);
        let mid = dt.sample(1.5, 0.0);
        assert!((mid - 1.5).abs() < 1e-5);
        // clamps outside
        let far = dt.sample(-3.0, -3.0);
        assert_eq!(far, dt.get(0, 0));
    }

    #[test]
    fn gradient_points_away_from_site() {
        let mut mask = vec![0u8; 15 * 15];
        mask[7 * 15 + 7] = 1;
        let dt = distance_transform(&mask, 15, 15);
        let (gx, gy) = gradient_maps(&dt);
        // right of the site: distance increases with x
        assert!(gx[(7 * 15 + 10) as usize] > 0.5);
        // above the site (smaller y): distance decreases with y
        assert!(gy[(4 * 15 + 7) as usize] < -0.5);
    }
}
