use std::ops::{Add, Mul, Neg, Sub};

/// A 3-vector of `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// Zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Unit vector in the same direction; `None` for (near-)zero input.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(self * (1.0 / n))
        }
    }

    /// Component-wise scaling.
    #[inline]
    pub fn scale(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        self.scale(s)
    }
}

/// A row-major 3x3 matrix of `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Row-major entries.
    pub m: [[f64; 3]; 3],
}

impl Mat3 {
    /// Identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Zero matrix.
    pub const ZERO: Mat3 = Mat3 { m: [[0.0; 3]; 3] };

    /// Creates a matrix from row-major entries.
    #[inline]
    pub fn from_rows(r0: [f64; 3], r1: [f64; 3], r2: [f64; 3]) -> Self {
        Mat3 { m: [r0, r1, r2] }
    }

    /// The skew-symmetric (hat) matrix of `v`: `hat(v) * w == v × w`.
    pub fn hat(v: Vec3) -> Mat3 {
        Mat3::from_rows([0.0, -v.z, v.y], [v.z, 0.0, -v.x], [-v.y, v.x, 0.0])
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat3 {
        let mut t = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                t.m[i][j] = self.m[j][i];
            }
        }
        t
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y + self.m[0][2] * v.z,
            self.m[1][0] * v.x + self.m[1][1] * v.y + self.m[1][2] * v.z,
            self.m[2][0] * v.x + self.m[2][1] * v.y + self.m[2][2] * v.z,
        )
    }

    /// Matrix-matrix product.
    pub fn mul_mat(&self, o: &Mat3) -> Mat3 {
        let mut r = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for (k, ok) in o.m.iter().enumerate() {
                    s += self.m[i][k] * ok[j];
                }
                r.m[i][j] = s;
            }
        }
        r
    }

    /// Scales every entry.
    pub fn scale(&self, s: f64) -> Mat3 {
        let mut r = *self;
        for row in &mut r.m {
            for v in row {
                *v *= s;
            }
        }
        r
    }

    /// Entry-wise sum.
    pub fn add_mat(&self, o: &Mat3) -> Mat3 {
        let mut r = *self;
        for i in 0..3 {
            for j in 0..3 {
                r.m[i][j] += o.m[i][j];
            }
        }
        r
    }

    /// Trace.
    pub fn trace(&self) -> f64 {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a.dot(b), -1.0 + 1.0 + 6.0);
        let c = a.cross(b);
        // orthogonal to both
        assert!(c.dot(a).abs() < 1e-12 && c.dot(b).abs() < 1e-12);
        assert!((Vec3::new(3.0, 4.0, 0.0).norm() - 5.0).abs() < 1e-12);
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn hat_encodes_cross_product() {
        let v = Vec3::new(0.3, -0.7, 1.1);
        let w = Vec3::new(2.0, 0.1, -0.4);
        let via_hat = Mat3::hat(v).mul_vec(w);
        let direct = v.cross(w);
        assert!((via_hat - direct).norm() < 1e-12);
    }

    #[test]
    fn mat_mul_and_transpose() {
        let a = Mat3::from_rows([1.0, 2.0, 0.0], [0.0, 1.0, 3.0], [4.0, 0.0, 1.0]);
        let id = a.mul_mat(&Mat3::IDENTITY);
        assert_eq!(id, a);
        let t = a.transpose();
        assert_eq!(t.m[0][2], 4.0);
        assert_eq!(a.trace(), 3.0);
    }
}
