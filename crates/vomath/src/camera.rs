use crate::mat::Vec3;

/// A pinhole camera model.
///
/// The paper folds the intrinsics into the inverse-depth feature
/// coordinates `(a, b, c) = ((u - cx)/f, (v - cy)/f, 1/d)`; this type
/// provides the conversions in both directions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pinhole {
    /// Focal length in pixels (square pixels: `fx == fy == f`).
    pub f: f64,
    /// Principal point x.
    pub cx: f64,
    /// Principal point y.
    pub cy: f64,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
}

impl Pinhole {
    /// A QVGA camera with a ~62° horizontal field of view — the
    /// resolution the paper evaluates at.
    pub fn qvga() -> Self {
        Pinhole {
            f: 265.0,
            cx: 159.5,
            cy: 119.5,
            width: 320,
            height: 240,
        }
    }

    /// Back-projects pixel `(u, v)` at depth `d` (meters) to a camera-
    /// frame 3D point.
    pub fn unproject(&self, u: f64, v: f64, d: f64) -> Vec3 {
        Vec3::new((u - self.cx) / self.f * d, (v - self.cy) / self.f * d, d)
    }

    /// Projects a camera-frame point to pixel coordinates. Returns
    /// `None` for points at or behind the camera plane.
    pub fn project(&self, p: Vec3) -> Option<(f64, f64)> {
        if p.z <= 1e-9 {
            return None;
        }
        Some((self.f * p.x / p.z + self.cx, self.f * p.y / p.z + self.cy))
    }

    /// True when `(u, v)` lies within the image with `margin` pixels of
    /// slack from the border.
    pub fn in_bounds(&self, u: f64, v: f64, margin: f64) -> bool {
        u >= margin
            && v >= margin
            && u <= self.width as f64 - 1.0 - margin
            && v <= self.height as f64 - 1.0 - margin
    }

    /// The camera of the next-coarser pyramid level: half resolution,
    /// halved focal length, principal point mapped through the 2x2
    /// block-averaging convention (pixel centers at `(2x+0.5, 2y+0.5)`).
    pub fn halved(&self) -> Pinhole {
        Pinhole {
            f: self.f / 2.0,
            cx: (self.cx - 0.5) / 2.0,
            cy: (self.cy - 0.5) / 2.0,
            width: self.width / 2,
            height: self.height / 2,
        }
    }

    /// Inverse-depth feature coordinates `(a, b, c)` of pixel `(u, v)`
    /// with depth `d` (Fig. 5-a): the 3D point is `(a, b, 1) / c`.
    pub fn inverse_depth_coords(&self, u: f64, v: f64, d: f64) -> (f64, f64, f64) {
        ((u - self.cx) / self.f, (v - self.cy) / self.f, 1.0 / d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_unproject_roundtrip() {
        let cam = Pinhole::qvga();
        let p = cam.unproject(100.0, 80.0, 2.5);
        let (u, v) = cam.project(p).unwrap();
        assert!((u - 100.0).abs() < 1e-9 && (v - 80.0).abs() < 1e-9);
    }

    #[test]
    fn behind_camera_fails() {
        let cam = Pinhole::qvga();
        assert!(cam.project(Vec3::new(0.0, 0.0, -1.0)).is_none());
        assert!(cam.project(Vec3::new(0.0, 0.0, 0.0)).is_none());
    }

    #[test]
    fn inverse_depth_coords_reconstruct_point() {
        let cam = Pinhole::qvga();
        let (a, b, c) = cam.inverse_depth_coords(200.0, 50.0, 4.0);
        let p = Vec3::new(a / c, b / c, 1.0 / c);
        let q = cam.unproject(200.0, 50.0, 4.0);
        assert!((p - q).norm() < 1e-12);
    }

    #[test]
    fn halved_preserves_projection_geometry() {
        let cam = Pinhole::qvga();
        let half = cam.halved();
        assert_eq!(half.width, 160);
        let p = cam.unproject(101.0, 63.0, 2.0);
        let (u, v) = half.project(p).unwrap();
        // full-res pixel u maps to (u - 0.5) / 2 at half resolution
        assert!((u - (101.0 - 0.5) / 2.0).abs() < 1e-9, "u={u}");
        assert!((v - (63.0 - 0.5) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn in_bounds_respects_margin() {
        let cam = Pinhole::qvga();
        assert!(cam.in_bounds(2.0, 2.0, 2.0));
        assert!(!cam.in_bounds(1.0, 2.0, 2.0));
        assert!(!cam.in_bounds(318.5, 100.0, 2.0));
    }
}
