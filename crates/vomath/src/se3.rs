use crate::mat::{Mat3, Vec3};
use crate::Twist;

/// A rotation in SO(3), stored as an orthonormal matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SO3 {
    r: Mat3,
}

impl SO3 {
    /// The identity rotation.
    pub const IDENTITY: SO3 = SO3 { r: Mat3::IDENTITY };

    /// Wraps a rotation matrix. The caller must supply an orthonormal
    /// matrix; use [`SO3::exp`] to build rotations safely.
    pub fn from_matrix_unchecked(r: Mat3) -> Self {
        SO3 { r }
    }

    /// Exponential map: axis-angle vector → rotation (Rodrigues).
    pub fn exp(w: Vec3) -> SO3 {
        let theta = w.norm();
        if theta < 1e-12 {
            // second-order series keeps exp/log consistent near zero
            let k = Mat3::hat(w);
            let r = Mat3::IDENTITY
                .add_mat(&k)
                .add_mat(&k.mul_mat(&k).scale(0.5));
            return SO3 { r };
        }
        let k = Mat3::hat(w.scale(1.0 / theta));
        let (s, c) = theta.sin_cos();
        let r = Mat3::IDENTITY
            .add_mat(&k.scale(s))
            .add_mat(&k.mul_mat(&k).scale(1.0 - c));
        SO3 { r }
    }

    /// Logarithm map: rotation → axis-angle vector.
    pub fn log(&self) -> Vec3 {
        let tr = self.r.trace();
        let cos_theta = ((tr - 1.0) * 0.5).clamp(-1.0, 1.0);
        let theta = cos_theta.acos();
        let m = &self.r.m;
        let axis_unscaled = Vec3::new(m[2][1] - m[1][2], m[0][2] - m[2][0], m[1][0] - m[0][1]);
        if theta < 1e-9 {
            return axis_unscaled.scale(0.5);
        }
        if (std::f64::consts::PI - theta) < 1e-6 {
            // near pi: extract the axis from the symmetric part
            let mut axis = Vec3::new(
                (m[0][0] + 1.0).max(0.0).sqrt(),
                (m[1][1] + 1.0).max(0.0).sqrt(),
                (m[2][2] + 1.0).max(0.0).sqrt(),
            )
            .scale(1.0 / std::f64::consts::SQRT_2);
            // fix signs from the off-diagonal entries
            if m[0][1] + m[1][0] < 0.0 {
                axis.y = -axis.y;
            }
            if m[0][2] + m[2][0] < 0.0 {
                axis.z = -axis.z;
            }
            return axis.scale(theta / axis.norm().max(1e-12));
        }
        axis_unscaled.scale(theta / (2.0 * theta.sin()))
    }

    /// The rotation matrix.
    pub fn matrix(&self) -> &Mat3 {
        &self.r
    }

    /// Rotates a vector.
    pub fn rotate(&self, v: Vec3) -> Vec3 {
        self.r.mul_vec(v)
    }

    /// Composition `self ∘ other`.
    pub fn compose(&self, other: &SO3) -> SO3 {
        SO3 {
            r: self.r.mul_mat(&other.r),
        }
    }

    /// Inverse rotation (transpose).
    pub fn inverse(&self) -> SO3 {
        SO3 {
            r: self.r.transpose(),
        }
    }

    /// Unit quaternion `(w, x, y, z)` of this rotation.
    pub fn to_quaternion(&self) -> Quaternion {
        let m = &self.r.m;
        let tr = self.r.trace();
        let (w, x, y, z);
        if tr > 0.0 {
            let s = (tr + 1.0).sqrt() * 2.0;
            w = 0.25 * s;
            x = (m[2][1] - m[1][2]) / s;
            y = (m[0][2] - m[2][0]) / s;
            z = (m[1][0] - m[0][1]) / s;
        } else if m[0][0] > m[1][1] && m[0][0] > m[2][2] {
            let s = (1.0 + m[0][0] - m[1][1] - m[2][2]).sqrt() * 2.0;
            w = (m[2][1] - m[1][2]) / s;
            x = 0.25 * s;
            y = (m[0][1] + m[1][0]) / s;
            z = (m[0][2] + m[2][0]) / s;
        } else if m[1][1] > m[2][2] {
            let s = (1.0 + m[1][1] - m[0][0] - m[2][2]).sqrt() * 2.0;
            w = (m[0][2] - m[2][0]) / s;
            x = (m[0][1] + m[1][0]) / s;
            y = 0.25 * s;
            z = (m[1][2] + m[2][1]) / s;
        } else {
            let s = (1.0 + m[2][2] - m[0][0] - m[1][1]).sqrt() * 2.0;
            w = (m[1][0] - m[0][1]) / s;
            x = (m[0][2] + m[2][0]) / s;
            y = (m[1][2] + m[2][1]) / s;
            z = 0.25 * s;
        }
        Quaternion { w, x, y, z }
    }
}

/// A unit quaternion `(w, x, y, z)` — used for TUM-format trajectory I/O.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quaternion {
    /// Scalar part.
    pub w: f64,
    /// X imaginary part.
    pub x: f64,
    /// Y imaginary part.
    pub y: f64,
    /// Z imaginary part.
    pub z: f64,
}

impl Quaternion {
    /// The rotation this quaternion represents.
    pub fn to_so3(&self) -> SO3 {
        let Quaternion { w, x, y, z } = *self;
        let n = (w * w + x * x + y * y + z * z).sqrt();
        let (w, x, y, z) = (w / n, x / n, y / n, z / n);
        let r = Mat3::from_rows(
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        );
        SO3::from_matrix_unchecked(r)
    }
}

/// A rigid-body transform in SE(3): `p' = R p + t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SE3 {
    /// Rotation part.
    pub rotation: SO3,
    /// Translation part.
    pub translation: Vec3,
}

impl SE3 {
    /// The identity transform.
    pub const IDENTITY: SE3 = SE3 {
        rotation: SO3::IDENTITY,
        translation: Vec3::ZERO,
    };

    /// Builds a transform from parts.
    pub fn new(rotation: SO3, translation: Vec3) -> Self {
        SE3 {
            rotation,
            translation,
        }
    }

    /// Exponential map of a twist `[v; w]`.
    pub fn exp(xi: &Twist) -> SE3 {
        let v = Vec3::new(xi[0], xi[1], xi[2]);
        let w = Vec3::new(xi[3], xi[4], xi[5]);
        let rotation = SO3::exp(w);
        let theta = w.norm();
        let k = Mat3::hat(w);
        let k2 = k.mul_mat(&k);
        // left Jacobian V: t = V v
        let vmat = if theta < 1e-9 {
            Mat3::IDENTITY
                .add_mat(&k.scale(0.5))
                .add_mat(&k2.scale(1.0 / 6.0))
        } else {
            let (s, c) = theta.sin_cos();
            Mat3::IDENTITY
                .add_mat(&k.scale((1.0 - c) / (theta * theta)))
                .add_mat(&k2.scale((theta - s) / (theta * theta * theta)))
        };
        SE3 {
            rotation,
            translation: vmat.mul_vec(v),
        }
    }

    /// Logarithm map: transform → twist.
    pub fn log(&self) -> Twist {
        let w = self.rotation.log();
        let theta = w.norm();
        let k = Mat3::hat(w);
        let k2 = k.mul_mat(&k);
        let vinv = if theta < 1e-9 {
            Mat3::IDENTITY
                .add_mat(&k.scale(-0.5))
                .add_mat(&k2.scale(1.0 / 12.0))
        } else {
            let half = theta * 0.5;
            let cot = half / half.tan();
            Mat3::IDENTITY
                .add_mat(&k.scale(-0.5))
                .add_mat(&k2.scale((1.0 - cot) / (theta * theta)))
        };
        let v = vinv.mul_vec(self.translation);
        [v.x, v.y, v.z, w.x, w.y, w.z]
    }

    /// Applies the transform to a point.
    pub fn transform(&self, p: Vec3) -> Vec3 {
        self.rotation.rotate(p) + self.translation
    }

    /// Composition `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &SE3) -> SE3 {
        SE3 {
            rotation: self.rotation.compose(&other.rotation),
            translation: self.rotation.rotate(other.translation) + self.translation,
        }
    }

    /// Inverse transform.
    pub fn inverse(&self) -> SE3 {
        let rinv = self.rotation.inverse();
        SE3 {
            rotation: rinv,
            translation: -rinv.rotate(self.translation),
        }
    }

    /// Rotation angle (radians) of the transform.
    pub fn rotation_angle(&self) -> f64 {
        self.rotation.log().norm()
    }

    /// Translation magnitude of the transform.
    pub fn translation_norm(&self) -> f64 {
        self.translation.norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn so3_exp_log_roundtrip() {
        for w in [
            Vec3::new(0.1, -0.2, 0.3),
            Vec3::new(1.5, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 1e-10),
            Vec3::new(-0.7, 0.9, 2.0),
        ] {
            let r = SO3::exp(w);
            let w2 = r.log();
            assert!((w - w2).norm() < 1e-9, "w={w:?} w2={w2:?}");
        }
    }

    #[test]
    fn so3_is_orthonormal() {
        let r = SO3::exp(Vec3::new(0.4, -1.1, 0.2));
        let rt_r = r.matrix().transpose().mul_mat(r.matrix());
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(close(rt_r.m[i][j], want, 1e-12));
            }
        }
    }

    #[test]
    fn se3_exp_log_roundtrip() {
        let xi: Twist = [0.3, -0.1, 0.5, 0.2, -0.4, 0.1];
        let t = SE3::exp(&xi);
        let xi2 = t.log();
        for i in 0..6 {
            assert!(close(xi[i], xi2[i], 1e-9), "{i}: {} vs {}", xi[i], xi2[i]);
        }
    }

    #[test]
    fn se3_compose_inverse_is_identity() {
        let t = SE3::exp(&[0.2, 0.1, -0.3, 0.5, 0.0, -0.2]);
        let id = t.compose(&t.inverse());
        assert!(id.translation.norm() < 1e-12);
        assert!(id.rotation_angle() < 1e-12);
    }

    #[test]
    fn transform_matches_compose() {
        let a = SE3::exp(&[0.1, 0.0, 0.0, 0.0, 0.3, 0.0]);
        let b = SE3::exp(&[0.0, -0.2, 0.1, 0.1, 0.0, 0.0]);
        let p = Vec3::new(0.5, -1.0, 2.0);
        let via_compose = a.compose(&b).transform(p);
        let sequential = a.transform(b.transform(p));
        assert!((via_compose - sequential).norm() < 1e-12);
    }

    #[test]
    fn quaternion_roundtrip() {
        for w in [
            Vec3::new(0.3, 0.4, -0.5),
            Vec3::new(2.5, -1.0, 0.7),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(3.0, 0.1, 0.0), // near-pi rotation
        ] {
            let r = SO3::exp(w);
            let q = r.to_quaternion();
            let r2 = q.to_so3();
            let diff = r.inverse().compose(&r2).log().norm();
            assert!(diff < 1e-9, "w={w:?} diff={diff}");
        }
    }

    #[test]
    fn small_motion_twist_is_linear() {
        let xi: Twist = [1e-6, 2e-6, -1e-6, 3e-7, 0.0, -2e-7];
        let t = SE3::exp(&xi);
        assert!(close(t.translation.x, 1e-6, 1e-12));
        assert!(close(t.rotation_angle(), (9e-14_f64 + 4e-14).sqrt(), 1e-10));
    }
}
