use std::fmt;

/// Error from the small linear solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinSolveError {
    /// The system is singular or too ill-conditioned to solve.
    Singular,
}

impl fmt::Display for LinSolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinSolveError::Singular => write!(f, "matrix is singular or ill-conditioned"),
        }
    }
}

impl std::error::Error for LinSolveError {}

/// Solves the symmetric 6x6 system `A x = b` by Gaussian elimination
/// with partial pivoting.
///
/// This is the one step of the LM iteration the paper keeps on the CPU
/// ("the linear solver of a small matrix of 6x6 … can hardly benefit
/// from the parallel computing of PIM").
///
/// # Errors
///
/// Returns [`LinSolveError::Singular`] when a pivot falls below
/// `1e-12 * max|A|` — the caller treats this as an LM solver failure
/// (which is exactly what the paper observes with 16-bit quantized
/// Hessians).
pub fn solve_sym6(a: &[[f64; 6]; 6], b: &[f64; 6]) -> Result<[f64; 6], LinSolveError> {
    let mut m = *a;
    let mut rhs = *b;
    let scale = m.iter().flatten().fold(0.0f64, |acc, &v| acc.max(v.abs()));
    if !(scale.is_finite()) || scale == 0.0 {
        return Err(LinSolveError::Singular);
    }
    let eps = 1e-12 * scale;

    for col in 0..6 {
        // partial pivot
        let mut piv = col;
        for row in col + 1..6 {
            if m[row][col].abs() > m[piv][col].abs() {
                piv = row;
            }
        }
        if m[piv][col].abs() < eps {
            return Err(LinSolveError::Singular);
        }
        if piv != col {
            m.swap(piv, col);
            rhs.swap(piv, col);
        }
        let inv = 1.0 / m[col][col];
        let pivot_row = m[col];
        for row in col + 1..6 {
            let factor = m[row][col] * inv;
            if factor == 0.0 {
                continue;
            }
            for (k, &pk) in pivot_row.iter().enumerate().skip(col) {
                m[row][k] -= factor * pk;
            }
            rhs[row] -= factor * rhs[col];
        }
    }
    // back substitution
    let mut x = [0.0f64; 6];
    for row in (0..6).rev() {
        let mut s = rhs[row];
        for k in row + 1..6 {
            s -= m[row][k] * x[k];
        }
        x[row] = s / m[row][row];
    }
    if x.iter().any(|v| !v.is_finite()) {
        return Err(LinSolveError::Singular);
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_vec(a: &[[f64; 6]; 6], x: &[f64; 6]) -> [f64; 6] {
        let mut out = [0.0; 6];
        for i in 0..6 {
            for j in 0..6 {
                out[i] += a[i][j] * x[j];
            }
        }
        out
    }

    #[test]
    fn solves_identity() {
        let mut a = [[0.0; 6]; 6];
        for (i, row) in a.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(solve_sym6(&a, &b).unwrap(), b);
    }

    #[test]
    fn solves_spd_system() {
        // A = L L^T with a simple lower-triangular L
        let mut l = [[0.0f64; 6]; 6];
        for (i, row) in l.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate().take(i + 1) {
                *v = 1.0 + (i * 6 + j) as f64 * 0.1;
            }
        }
        let mut a = [[0.0f64; 6]; 6];
        for i in 0..6 {
            for j in 0..6 {
                for (k, _) in l.iter().enumerate() {
                    a[i][j] += l[i][k] * l[j][k];
                }
            }
        }
        let x_true = [0.5, -1.0, 2.0, 0.0, 3.5, -0.25];
        let b = mat_vec(&a, &x_true);
        let x = solve_sym6(&a, &b).unwrap();
        for i in 0..6 {
            assert!((x[i] - x_true[i]).abs() < 1e-8, "{i}");
        }
    }

    #[test]
    fn rejects_singular() {
        let a = [[1.0; 6]; 6]; // rank 1
        let b = [1.0; 6];
        assert_eq!(solve_sym6(&a, &b), Err(LinSolveError::Singular));
        let zero = [[0.0; 6]; 6];
        assert_eq!(solve_sym6(&zero, &b), Err(LinSolveError::Singular));
    }

    #[test]
    fn rejects_nonfinite() {
        let mut a = [[0.0; 6]; 6];
        a[0][0] = f64::NAN;
        assert!(solve_sym6(&a, &[0.0; 6]).is_err());
    }
}
