#![warn(missing_docs)]

//! Visual-odometry math substrate: small fixed-size linear algebra,
//! SO(3)/SE(3) Lie groups, the pinhole camera model, the Felzenszwalb
//! distance transform, a 6x6 symmetric solver and a Levenberg-Marquardt
//! driver.
//!
//! Everything here is implemented from scratch (no external linear
//! algebra dependency) and sized for the EBVO problem: poses are 6-DOF
//! twists, the normal equations are 6x6, and the distance transform runs
//! on QVGA-scale binary edge masks.
//!
//! ```
//! use pimvo_vomath::{SE3, Vec3};
//!
//! let pose = SE3::exp(&[0.1, 0.0, 0.0, 0.0, 0.02, 0.0]);
//! let p = pose.transform(Vec3::new(1.0, 2.0, 3.0));
//! let back = pose.inverse().transform(p);
//! assert!((back.x - 1.0).abs() < 1e-12);
//! ```

mod camera;
mod dt;
mod linsolve;
mod lm;
mod mat;
mod se3;

pub use camera::Pinhole;
pub use dt::{distance_transform, gradient_maps, DistanceMap};
pub use linsolve::{solve_sym6, LinSolveError};
pub use lm::{LmConfig, LmOutcome, LmProblem, LmSolver, NormalEquations};
pub use mat::{Mat3, Vec3};
pub use se3::{Quaternion, SE3, SO3};

/// A 6-DOF twist `[v; w]`: translational velocity then rotational
/// (axis-angle rate), the tangent-space parameterization used by the LM
/// pose update `ξ' = exp(Δξ) ∘ ξ`.
pub type Twist = [f64; 6];
