use crate::linsolve::{solve_sym6, LinSolveError};
use crate::se3::SE3;

/// The accumulated normal equations of one linearization: `H = Σ JᵀJ`,
/// `b = Σ Jᵀr`, the total squared residual and the number of residuals.
///
/// This is exactly what the PIM computes in parallel over the feature
/// set (Fig. 1-c); the 6x6 solve stays on the CPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalEquations {
    /// Gauss-Newton Hessian approximation `Σ JᵀJ` (symmetric 6x6).
    pub h: [[f64; 6]; 6],
    /// Steepest-descent vector `Σ Jᵀ r`.
    pub b: [f64; 6],
    /// Total cost `Σ r²`.
    pub cost: f64,
    /// Number of residuals accumulated.
    pub count: usize,
}

impl NormalEquations {
    /// Empty accumulator.
    pub fn zero() -> Self {
        NormalEquations {
            h: [[0.0; 6]; 6],
            b: [0.0; 6],
            cost: 0.0,
            count: 0,
        }
    }

    /// Rank-1 update with one residual `r` and Jacobian row `j`,
    /// weighted by `w`.
    pub fn accumulate(&mut self, j: &[f64; 6], r: f64, w: f64) {
        for a in 0..6 {
            for bi in 0..6 {
                self.h[a][bi] += w * j[a] * j[bi];
            }
            self.b[a] += w * j[a] * r;
        }
        self.cost += w * r * r;
        self.count += 1;
    }

    /// Mean squared residual.
    pub fn mean_cost(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.cost / self.count as f64
        }
    }
}

/// A nonlinear least-squares problem over an SE(3) pose.
pub trait LmProblem {
    /// Linearizes at `pose`: evaluates all residuals and returns the
    /// accumulated normal equations.
    fn build(&mut self, pose: &SE3) -> NormalEquations;
}

/// Levenberg-Marquardt configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmConfig {
    /// Maximum LM iterations (the paper tracks within 10, converging in
    /// ~8.1 on average).
    pub max_iterations: usize,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
    /// Multiplier applied to λ after a rejected step.
    pub lambda_up: f64,
    /// Divisor applied to λ after an accepted step.
    pub lambda_down: f64,
    /// Convergence threshold on the twist-update norm.
    pub min_delta_norm: f64,
    /// Relative cost-decrease threshold for convergence.
    pub min_rel_decrease: f64,
    /// Upper bound on λ: repeated rejections (e.g. from corrupted
    /// residuals) cannot drive the damping to infinity, which would
    /// shrink every step to numerical noise while never terminating.
    pub lambda_max: f64,
}

impl Default for LmConfig {
    fn default() -> Self {
        LmConfig {
            max_iterations: 10,
            initial_lambda: 1e-4,
            lambda_up: 10.0,
            lambda_down: 3.0,
            min_delta_norm: 1e-7,
            min_rel_decrease: 1e-6,
            lambda_max: 1e10,
        }
    }
}

/// Result of an LM solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmOutcome {
    /// The optimized pose.
    pub pose: SE3,
    /// Linearization (outer) iterations performed.
    pub iterations: usize,
    /// Final mean squared residual.
    pub final_cost: f64,
    /// Residual count at the final linearization.
    pub residual_count: usize,
    /// Whether a convergence criterion was met (vs. iteration cap).
    pub converged: bool,
    /// Number of 6x6 solves that failed (singular damped Hessian).
    pub solver_failures: usize,
    /// True when the solve hit the divergence guard: a non-finite or
    /// exploding cost/update was rejected (corrupted residuals, broken
    /// linearization). The returned pose is the last healthy iterate.
    pub diverged: bool,
}

/// The Levenberg-Marquardt driver: repeatedly linearize, solve the
/// damped normal equations `(H + λ diag(H)) Δξ = -b`, and left-compose
/// the pose update `ξ ← exp(Δξ) ∘ ξ` (Fig. 1-c).
#[derive(Debug, Clone, Default)]
pub struct LmSolver {
    /// Solver configuration.
    pub config: LmConfig,
}

impl LmSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: LmConfig) -> Self {
        LmSolver { config }
    }

    /// Minimizes the problem starting from `init`.
    pub fn solve(&self, problem: &mut dyn LmProblem, init: SE3) -> LmOutcome {
        let cfg = &self.config;
        let mut pose = init;
        let mut lambda = cfg.initial_lambda;
        let mut eq = problem.build(&pose);
        let mut iterations = 0;
        let mut converged = false;
        let mut solver_failures = 0;
        let mut diverged = false;

        if !eq.mean_cost().is_finite() {
            // nothing to optimize against: refuse rather than chase NaNs
            return LmOutcome {
                pose,
                iterations: 0,
                final_cost: f64::INFINITY,
                residual_count: eq.count,
                converged: false,
                solver_failures: 0,
                diverged: true,
            };
        }

        while iterations < cfg.max_iterations {
            iterations += 1;
            // damped system (Marquardt scaling on the diagonal)
            let mut accepted = false;
            for _attempt in 0..4 {
                let mut damped = eq.h;
                for (i, row) in damped.iter_mut().enumerate() {
                    row[i] += lambda * eq.h[i][i].max(1e-12);
                }
                let delta = match solve_sym6(&damped, &eq.b) {
                    Ok(mut d) => {
                        for v in &mut d {
                            *v = -*v;
                        }
                        d
                    }
                    Err(LinSolveError::Singular) => {
                        solver_failures += 1;
                        lambda = (lambda * cfg.lambda_up).min(cfg.lambda_max);
                        continue;
                    }
                };
                // divergence guard: a non-finite update (corrupted H/b)
                // is rejected like a failed solve
                if delta.iter().any(|v| !v.is_finite()) {
                    solver_failures += 1;
                    diverged = true;
                    lambda = (lambda * cfg.lambda_up).min(cfg.lambda_max);
                    continue;
                }
                let delta_norm = delta.iter().map(|v| v * v).sum::<f64>().sqrt();
                let candidate = SE3::exp(&delta).compose(&pose);
                let new_eq = problem.build(&candidate);
                // non-finite or exploding candidate cost: reject the
                // step, keep the last healthy iterate
                if !new_eq.mean_cost().is_finite() {
                    diverged = true;
                    lambda = (lambda * cfg.lambda_up).min(cfg.lambda_max);
                    continue;
                }
                if new_eq.count > 0 && new_eq.mean_cost() < eq.mean_cost() {
                    let rel = (eq.mean_cost() - new_eq.mean_cost()) / eq.mean_cost().max(1e-300);
                    pose = candidate;
                    eq = new_eq;
                    lambda = (lambda / cfg.lambda_down).max(1e-12);
                    accepted = true;
                    if delta_norm < cfg.min_delta_norm || rel < cfg.min_rel_decrease {
                        converged = true;
                    }
                    break;
                }
                lambda = (lambda * cfg.lambda_up).min(cfg.lambda_max);
            }
            if !accepted {
                // no acceptable step at any damping: treat as converged
                // to the current pose
                converged = true;
            }
            if converged {
                break;
            }
        }
        LmOutcome {
            pose,
            iterations,
            final_cost: eq.mean_cost(),
            residual_count: eq.count,
            converged,
            solver_failures,
            diverged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Vec3;

    /// Toy problem: align a 3D point cloud to a rotated/translated copy
    /// (residual = distance along each axis, stacked).
    struct CloudAlign {
        src: Vec<Vec3>,
        dst: Vec<Vec3>,
    }

    impl LmProblem for CloudAlign {
        fn build(&mut self, pose: &SE3) -> NormalEquations {
            let mut eq = NormalEquations::zero();
            for (s, d) in self.src.iter().zip(&self.dst) {
                let p = pose.transform(*s);
                let e = p - *d;
                // Jacobian of p' = exp(dξ) p w.r.t. dξ at 0:
                // ∂p/∂v = I, ∂p/∂w = -hat(p)
                let rows = [
                    [1.0, 0.0, 0.0, 0.0, p.z, -p.y],
                    [0.0, 1.0, 0.0, -p.z, 0.0, p.x],
                    [0.0, 0.0, 1.0, p.y, -p.x, 0.0],
                ];
                eq.accumulate(&rows[0], e.x, 1.0);
                eq.accumulate(&rows[1], e.y, 1.0);
                eq.accumulate(&rows[2], e.z, 1.0);
            }
            eq
        }
    }

    #[test]
    fn recovers_known_transform() {
        let truth = SE3::exp(&[0.05, -0.03, 0.08, 0.04, -0.06, 0.02]);
        let src: Vec<Vec3> = (0..30)
            .map(|i| {
                let f = i as f64;
                Vec3::new(
                    (f * 0.37).sin() * 2.0,
                    (f * 0.61).cos() * 1.5,
                    2.0 + (f * 0.13).sin(),
                )
            })
            .collect();
        let dst: Vec<Vec3> = src.iter().map(|&p| truth.transform(p)).collect();
        let mut problem = CloudAlign { src, dst };
        let solver = LmSolver::new(LmConfig {
            max_iterations: 20,
            ..LmConfig::default()
        });
        let out = solver.solve(&mut problem, SE3::IDENTITY);
        assert!(out.final_cost < 1e-12, "cost {}", out.final_cost);
        let err = out.pose.compose(&truth.inverse());
        assert!(err.translation_norm() < 1e-6);
        assert!(err.rotation_angle() < 1e-6);
    }

    #[test]
    fn identity_problem_converges_immediately() {
        let src: Vec<Vec3> = (0..10)
            .map(|i| Vec3::new(i as f64 * 0.1, 1.0, 2.0))
            .collect();
        let dst = src.clone();
        let mut problem = CloudAlign { src, dst };
        let out = LmSolver::default().solve(&mut problem, SE3::IDENTITY);
        assert!(out.converged);
        assert!(out.final_cost < 1e-20);
        assert!(out.iterations <= 2);
    }

    #[test]
    fn degenerate_problem_reports_failures_without_panicking() {
        // a single point cannot constrain 6 DOF: damped solves still
        // succeed but the solver must terminate gracefully
        let mut problem = CloudAlign {
            src: vec![Vec3::new(0.0, 0.0, 1.0)],
            dst: vec![Vec3::new(0.1, 0.0, 1.0)],
        };
        let out = LmSolver::default().solve(&mut problem, SE3::IDENTITY);
        assert!(out.iterations <= LmConfig::default().max_iterations);
        assert!(out.final_cost.is_finite());
    }

    /// A problem whose residuals are NaN everywhere except at the
    /// starting pose — models a corrupted linearization.
    struct PoisonedAway {
        inner: CloudAlign,
        builds: usize,
    }

    impl LmProblem for PoisonedAway {
        fn build(&mut self, pose: &SE3) -> NormalEquations {
            self.builds += 1;
            if self.builds == 1 {
                return self.inner.build(pose);
            }
            let mut eq = self.inner.build(pose);
            eq.cost = f64::NAN;
            eq
        }
    }

    #[test]
    fn non_finite_candidate_cost_is_rejected_not_propagated() {
        let truth = SE3::exp(&[0.05, -0.03, 0.08, 0.04, -0.06, 0.02]);
        let src: Vec<Vec3> = (0..20)
            .map(|i| {
                let f = i as f64;
                Vec3::new((f * 0.37).sin(), (f * 0.61).cos(), 2.0 + (f * 0.13).sin())
            })
            .collect();
        let dst: Vec<Vec3> = src.iter().map(|&p| truth.transform(p)).collect();
        let mut problem = PoisonedAway {
            inner: CloudAlign { src, dst },
            builds: 0,
        };
        let out = LmSolver::default().solve(&mut problem, SE3::IDENTITY);
        assert!(out.diverged, "poisoned rebuilds must trip the guard");
        assert!(out.final_cost.is_finite(), "cost stays the healthy one");
        // the pose never moved: every candidate was rejected
        let drift = out.pose.compose(&SE3::IDENTITY.inverse());
        assert!(drift.translation_norm() < 1e-12);
    }

    #[test]
    fn non_finite_initial_cost_refuses_to_solve() {
        struct AlwaysNan;
        impl LmProblem for AlwaysNan {
            fn build(&mut self, _pose: &SE3) -> NormalEquations {
                let mut eq = NormalEquations::zero();
                eq.accumulate(&[1.0; 6], f64::NAN, 1.0);
                eq
            }
        }
        let out = LmSolver::default().solve(&mut AlwaysNan, SE3::IDENTITY);
        assert!(out.diverged);
        assert_eq!(out.iterations, 0);
        assert!(!out.converged);
    }

    #[test]
    fn lambda_growth_is_capped() {
        // a problem that rejects every step keeps multiplying λ; the cap
        // keeps it finite so the outcome is well-defined
        struct NeverBetter;
        impl LmProblem for NeverBetter {
            fn build(&mut self, pose: &SE3) -> NormalEquations {
                let mut eq = NormalEquations::zero();
                // constant cost regardless of pose: no step ever accepted
                let t = pose.translation_norm();
                eq.accumulate(&[1.0, 0.5, 0.2, 0.1, 0.3, 0.6], 1.0 + 0.0 * t, 1.0);
                eq
            }
        }
        let solver = LmSolver::new(LmConfig {
            max_iterations: 50,
            lambda_up: 1e6,
            lambda_max: 1e8,
            ..LmConfig::default()
        });
        let out = solver.solve(&mut NeverBetter, SE3::IDENTITY);
        assert!(out.final_cost.is_finite());
        assert!(!out.diverged);
    }

    #[test]
    fn normal_equations_accumulate_symmetric() {
        let mut eq = NormalEquations::zero();
        eq.accumulate(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 0.5, 2.0);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(eq.h[i][j], eq.h[j][i]);
            }
        }
        assert_eq!(eq.count, 1);
        assert!((eq.cost - 0.5).abs() < 1e-12);
    }
}
