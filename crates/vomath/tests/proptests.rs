//! Property tests for the Lie-group and solver substrate.

use pimvo_vomath::{solve_sym6, Vec3, SE3, SO3};
use proptest::prelude::*;

fn twist_strategy() -> impl Strategy<Value = [f64; 6]> {
    prop::array::uniform6(-1.5f64..1.5)
}

proptest! {
    /// exp/log round-trips for any moderate twist.
    #[test]
    fn se3_exp_log_roundtrip(xi in twist_strategy()) {
        let t = SE3::exp(&xi);
        let xi2 = t.log();
        for k in 0..6 {
            prop_assert!((xi[k] - xi2[k]).abs() < 1e-8, "component {}", k);
        }
    }

    /// Composition with the inverse is the identity.
    #[test]
    fn compose_inverse_identity(xi in twist_strategy()) {
        let t = SE3::exp(&xi);
        let id = t.compose(&t.inverse());
        prop_assert!(id.translation_norm() < 1e-9);
        prop_assert!(id.rotation_angle() < 1e-9);
    }

    /// Group action: (a ∘ b)(p) == a(b(p)).
    #[test]
    fn composition_is_action_compatible(
        xa in twist_strategy(),
        xb in twist_strategy(),
        px in -3.0f64..3.0,
        py in -3.0f64..3.0,
        pz in -3.0f64..3.0,
    ) {
        let (a, b) = (SE3::exp(&xa), SE3::exp(&xb));
        let p = Vec3::new(px, py, pz);
        let lhs = a.compose(&b).transform(p);
        let rhs = a.transform(b.transform(p));
        prop_assert!((lhs - rhs).norm() < 1e-9);
    }

    /// Rotations preserve lengths.
    #[test]
    fn rotation_is_isometry(
        wx in -2.0f64..2.0,
        wy in -2.0f64..2.0,
        wz in -2.0f64..2.0,
        px in -5.0f64..5.0,
        py in -5.0f64..5.0,
        pz in -5.0f64..5.0,
    ) {
        let r = SO3::exp(Vec3::new(wx, wy, wz));
        let p = Vec3::new(px, py, pz);
        prop_assert!((r.rotate(p).norm() - p.norm()).abs() < 1e-9);
    }

    /// Quaternion round-trip for arbitrary rotations.
    #[test]
    fn quaternion_roundtrip(wx in -3.0f64..3.0, wy in -3.0f64..3.0, wz in -3.0f64..3.0) {
        let r = SO3::exp(Vec3::new(wx, wy, wz));
        let r2 = r.to_quaternion().to_so3();
        let diff = r.inverse().compose(&r2).log().norm();
        prop_assert!(diff < 1e-8, "diff {}", diff);
    }

    /// The 6x6 solver inverts well-conditioned SPD systems built from
    /// random square roots.
    #[test]
    fn solver_recovers_solution(vals in prop::collection::vec(-1.0f64..1.0, 21)) {
        // L: lower-triangular with a strengthened diagonal
        let mut l = [[0.0f64; 6]; 6];
        let mut it = vals.into_iter();
        for i in 0..6 {
            for j in 0..=i {
                let v = it.next().expect("21 values");
                l[i][j] = if i == j { 2.0 + v.abs() } else { v };
            }
        }
        let mut a = [[0.0f64; 6]; 6];
        for i in 0..6 {
            for j in 0..6 {
                for k in 0..6 {
                    a[i][j] += l[i][k] * l[j][k];
                }
            }
        }
        let x_true = [0.7, -0.3, 1.1, 0.0, -2.0, 0.5];
        let mut b = [0.0f64; 6];
        for i in 0..6 {
            for j in 0..6 {
                b[i] += a[i][j] * x_true[j];
            }
        }
        let x = solve_sym6(&a, &b).expect("SPD system");
        for k in 0..6 {
            prop_assert!((x[k] - x_true[k]).abs() < 1e-6, "x[{}]", k);
        }
    }
}
