//! Fault-containment property tests (feature `fault`): a 4-session
//! fleet under a seeded quarantine storm stays bit-identical to its
//! solo runs once the scrub pass re-admits (and, where needed, spare-
//! row-remaps) the arrays — and never drops a committed frame.
#![cfg(feature = "fault")]

use pimvo_core::{BackendKind, TrackerBuilder, TrackerConfig};
use pimvo_kernels::{DepthImage, GrayImage};
use pimvo_pim::{ArrayConfig, PimMachine, ScrubConfig, SessionId};
use pimvo_serve::{FleetScheduler, SessionSpec, StepOutcome};
use pimvo_vomath::SE3;
use proptest::prelude::*;

/// Per-session synthetic stream (same generator as the interleaving
/// tests): a sinusoid texture translating at a session-specific speed.
fn session_frame(session: usize, k: usize, speed: f64) -> (GrayImage, DepthImage) {
    let shift = k as f64 * speed;
    let fx = 0.55 + session as f64 * 0.013;
    let fy = 0.41 + session as f64 * 0.009;
    let gray = GrayImage::from_fn(320, 240, |x, y| {
        let xs = x as f64 + shift;
        let y = y as f64;
        (((xs * fx).sin() + (y * fy).sin() + (xs * 0.13).sin() * (y * 0.09).cos()) * 50.0 + 120.0)
            as u8
    });
    let depth = DepthImage::from_fn(320, 240, |_, _| 2.0);
    (gray, depth)
}

/// Reference: the session's frames run alone on a fault-free tracker.
fn solo_poses(session: usize, n_frames: usize, speed: f64) -> Vec<SE3> {
    let mut tracker = TrackerBuilder::new(TrackerConfig::default())
        .backend(BackendKind::Pim)
        .build();
    (0..n_frames)
        .map(|k| {
            let (g, d) = session_frame(session, k, speed);
            tracker.process_frame(&g, &d).pose_wc
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Mid-run, a seeded subset of the shared pool's arrays is
    /// quarantined (one of them additionally grows a persistent
    /// stuck-at defect), the fleet keeps serving on the survivors, and
    /// a scrub pass remaps the defective row onto a spare and re-admits
    /// every array. All four sessions' pose trajectories must stay
    /// bit-identical to their solo runs, and every submitted frame must
    /// complete — a quarantine storm may slow the fleet, never shrink
    /// its output.
    #[test]
    fn quarantine_storm_matches_solo_after_scrub(
        arrays in 3usize..5,
        storm_seed in 0u64..1000,
        speed_seed in 0u64..1000,
    ) {
        const N: usize = 4;
        const FRAMES: usize = 3;
        let speeds: Vec<f64> = (0..N)
            .map(|s| 0.4 + ((speed_seed as usize + s * 7) % 10) as f64 * 0.08)
            .collect();

        let builder = PimMachine::builder(ArrayConfig::qvga_banks(6)).spare_rows(2);
        let mut fleet = FleetScheduler::from_builder(&builder, arrays);
        fleet.pool_mut().set_scrub(ScrubConfig {
            interval_phases: 0, // manual scrub below stands in for the cadence
            probation_phases: 2,
        });
        for s in 0..N {
            fleet.add_session(
                SessionId(s as u32 + 1),
                SessionSpec::new(TrackerConfig::default()).max_queue(FRAMES),
            );
        }
        for s in 0..N {
            for k in 0..FRAMES {
                let (g, d) = session_frame(s, k, speeds[s]);
                fleet.submit_frame(SessionId(s as u32 + 1), g, d).unwrap();
            }
        }

        let mut outcomes: Vec<StepOutcome> = Vec::new();
        for _ in 0..N {
            outcomes.push(fleet.step().unwrap().expect("backlog present"));
        }

        // the storm: quarantine a seeded subset (always leaving at
        // least one healthy array) and plant a stuck bit on the first
        // victim so re-admission requires a spare-row remap
        let q = 1 + storm_seed as usize % (arrays - 1);
        let start = storm_seed as usize % arrays;
        let storm: Vec<usize> = (0..q).map(|i| (start + i) % arrays).collect();
        let victim = storm[0];
        let row = 1 + (storm_seed as usize % 40);
        fleet
            .pool_mut()
            .array_mut(victim)
            .inject_stuck_bit(row, storm_seed as usize % 32, true);
        for &i in &storm {
            fleet.pool_mut().try_quarantine(i).unwrap();
        }
        prop_assert_eq!(fleet.pool_mut().available(), arrays - q);

        // the fleet keeps serving on the surviving arrays
        for _ in 0..N {
            outcomes.push(fleet.step().unwrap().expect("backlog present"));
        }

        // scrub re-admits everything: clean arrays pass the march
        // patterns, the defective one gets its row remapped to a spare
        prop_assert_eq!(fleet.pool_mut().scrub_now(), q);
        prop_assert_eq!(fleet.pool_mut().available(), arrays);
        let health = fleet.pool_mut().health();
        prop_assert_eq!(health.rehabilitated, q as u64);
        prop_assert_eq!(health.remapped_rows[victim], 1);

        outcomes.extend(fleet.run_until_idle().unwrap());

        for s in 0..N {
            let id = SessionId(s as u32 + 1);
            let got: Vec<SE3> = outcomes
                .iter()
                .filter(|o| o.session == id)
                .map(|o| o.result.pose_wc)
                .collect();
            let want = solo_poses(s, FRAMES, speeds[s]);
            let st = fleet.stats(id).unwrap();
            prop_assert_eq!(st.completed, FRAMES as u64, "session {} dropped frames", s);
            prop_assert_eq!(st.shed, 0, "session {} shed committed frames", s);
            for (k, (g, w)) in got.iter().zip(&want).enumerate() {
                prop_assert_eq!(g, w, "session {} frame {} pose", s, k);
            }
        }
    }
}
