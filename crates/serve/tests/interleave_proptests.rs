//! Serving-determinism tests: interleaving N sessions over one shared
//! pool must produce poses bit-identical to each session running alone
//! on its own tracker, and eviction + restore of a cold session must
//! replay exactly.

use pimvo_core::{BackendKind, TrackerBuilder, TrackerConfig};
use pimvo_kernels::{DepthImage, GrayImage};
use pimvo_pim::SessionId;
use pimvo_serve::{FleetScheduler, SessionSpec, StepOutcome};
use pimvo_vomath::SE3;
use proptest::prelude::*;

/// Per-session synthetic stream: a sinusoid texture translating at a
/// session-specific speed, with session-specific spatial frequencies so
/// no two sessions see the same scene.
fn session_frame(session: usize, k: usize, speed: f64) -> (GrayImage, DepthImage) {
    let shift = k as f64 * speed;
    let fx = 0.55 + session as f64 * 0.013;
    let fy = 0.41 + session as f64 * 0.009;
    let gray = GrayImage::from_fn(320, 240, |x, y| {
        let xs = x as f64 + shift;
        let y = y as f64;
        (((xs * fx).sin() + (y * fy).sin() + (xs * 0.13).sin() * (y * 0.09).cos()) * 50.0 + 120.0)
            as u8
    });
    let depth = DepthImage::from_fn(320, 240, |_, _| 2.0);
    (gray, depth)
}

/// Reference: the session's frames run alone on a freshly built
/// tracker (same builder path the fleet uses, one-array pool).
fn solo_poses(session: usize, n_frames: usize, speed: f64) -> Vec<SE3> {
    let mut tracker = TrackerBuilder::new(TrackerConfig::default())
        .backend(BackendKind::Pim)
        .build();
    (0..n_frames)
        .map(|k| {
            let (g, d) = session_frame(session, k, speed);
            tracker.process_frame(&g, &d).pose_wc
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// 4 sessions, arbitrary submission/execution interleaving over a
    /// shared multi-array pool: every session's pose trajectory is
    /// bit-identical to its solo run.
    #[test]
    fn interleaved_sessions_match_solo(
        arrays in 2usize..5,
        speed_seed in 0u64..1000,
        schedule in prop::collection::vec(any::<u8>(), 20..40),
    ) {
        const N: usize = 4;
        const FRAMES: usize = 3;
        let speeds: Vec<f64> = (0..N)
            .map(|s| 0.4 + ((speed_seed as usize + s * 7) % 10) as f64 * 0.08)
            .collect();

        let mut fleet = FleetScheduler::new(arrays);
        for s in 0..N {
            fleet.add_session(
                SessionId(s as u32 + 1),
                SessionSpec::new(TrackerConfig::default()).max_queue(FRAMES),
            );
        }

        // interleave submissions and steps per the random schedule,
        // then drain whatever is left
        let mut next = vec![0usize; N];
        let mut outcomes: Vec<StepOutcome> = Vec::new();
        for ix in &schedule {
            let slot = *ix as usize % (2 * N);
            if slot < N {
                if next[slot] < FRAMES {
                    let (g, d) = session_frame(slot, next[slot], speeds[slot]);
                    fleet.submit_frame(SessionId(slot as u32 + 1), g, d).unwrap();
                    next[slot] += 1;
                }
            } else if let Some(o) = fleet.step().unwrap() {
                outcomes.push(o);
            }
        }
        for (s, n) in next.iter_mut().enumerate() {
            while *n < FRAMES {
                let (g, d) = session_frame(s, *n, speeds[s]);
                fleet.submit_frame(SessionId(s as u32 + 1), g, d).unwrap();
                *n += 1;
            }
        }
        outcomes.extend(fleet.run_until_idle().unwrap());

        for s in 0..N {
            let got: Vec<SE3> = outcomes
                .iter()
                .filter(|o| o.session == SessionId(s as u32 + 1))
                .map(|o| o.result.pose_wc)
                .collect();
            let want = solo_poses(s, FRAMES, speeds[s]);
            prop_assert_eq!(got.len(), FRAMES, "session {} frame count", s);
            for (k, (g, w)) in got.iter().zip(&want).enumerate() {
                prop_assert_eq!(g, w, "session {} frame {} pose", s, k);
            }
        }

        // Fleet-wide lowering dedup: whatever the interleaving, every
        // distinct (program, level, config) triple was lowered exactly
        // once — misses mint entries one-for-one, and any re-lowering
        // of a resident triple would push misses past entries.
        let lw = fleet.lowered_stats();
        prop_assert_eq!(lw.misses, lw.entries, "one lowering per distinct triple");
        prop_assert!(lw.hits > 0, "later frames must reuse earlier lowerings");
        // per-session attribution adds up to the fleet totals
        let (mut hits, mut misses) = (0u64, 0u64);
        for s in 0..N {
            let st = fleet.stats(SessionId(s as u32 + 1)).unwrap();
            hits += st.lower_hits;
            misses += st.lower_misses;
        }
        prop_assert_eq!(hits, lw.hits);
        prop_assert_eq!(misses, lw.misses);
    }
}

/// The cache is keyed by content, not by fleet or session identity: a
/// second fleet sharing the handle and serving the same streams lowers
/// nothing at all — its workload's triples are already resident.
#[test]
fn shared_cache_makes_second_fleet_lower_nothing() {
    use pimvo_pim::LoweredCache;
    const N: usize = 4;
    const FRAMES: usize = 2;

    let cache = LoweredCache::new();
    let run = |cache: &LoweredCache| {
        let mut fleet = FleetScheduler::new(2);
        fleet.set_lowered_cache(cache.clone());
        for s in 0..N {
            fleet.add_session(
                SessionId(s as u32 + 1),
                SessionSpec::new(TrackerConfig::default()).max_queue(FRAMES),
            );
            for k in 0..FRAMES {
                let (g, d) = session_frame(s, k, 0.6);
                fleet.submit_frame(SessionId(s as u32 + 1), g, d).unwrap();
            }
        }
        fleet.run_until_idle().unwrap();
        fleet.lowered_stats()
    };

    let first = run(&cache);
    assert_eq!(first.misses, first.entries, "one lowering per triple");
    assert!(first.hits > 0, "sessions share each other's lowerings");

    let second = run(&cache);
    assert_eq!(
        second.misses, first.misses,
        "an identical fleet must re-lower nothing"
    );
    assert!(second.hits > first.hits, "the rerun is served from cache");
}

/// Eviction to checkpoint bytes and transparent restore replays the
/// session exactly: the poses after the evict/restore cycle equal an
/// uninterrupted run bit-for-bit.
#[test]
fn evicted_session_replays_exactly() {
    const FRAMES: usize = 6;
    const EVICT_AT: usize = 3;
    let speed = 0.7;

    let baseline = solo_poses(0, FRAMES, speed);

    let mut fleet = FleetScheduler::new(2);
    fleet.add_session(
        SessionId(1),
        SessionSpec::new(TrackerConfig::default()).max_queue(FRAMES),
    );
    let mut poses = Vec::new();
    for k in 0..EVICT_AT {
        let (g, d) = session_frame(0, k, speed);
        fleet.submit_frame(SessionId(1), g, d).unwrap();
    }
    for o in fleet.run_until_idle().unwrap() {
        poses.push(o.result.pose_wc);
    }

    assert!(fleet.evict(SessionId(1)).unwrap(), "session was resident");
    assert!(!fleet.is_resident(SessionId(1)), "zero resident state");

    for k in EVICT_AT..FRAMES {
        let (g, d) = session_frame(0, k, speed);
        fleet.submit_frame(SessionId(1), g, d).unwrap();
    }
    for o in fleet.run_until_idle().unwrap() {
        poses.push(o.result.pose_wc);
    }

    assert_eq!(poses.len(), FRAMES);
    for (k, (got, want)) in poses.iter().zip(&baseline).enumerate() {
        assert_eq!(got, want, "frame {k} pose must replay exactly");
    }
    let st = fleet.stats(SessionId(1)).unwrap();
    assert_eq!((st.evictions, st.restores), (1, 1));
}
