//! Per-session flight recorder: a ring of the last N frames' op
//! traces, dumped atomically when something goes wrong.
//!
//! Arming [`crate::SessionSpec::flight_recorder`] makes the fleet
//! record every frame the session runs on the shared pool as a
//! dependency-tracked op trace ([`pimvo_telemetry::optrace`]) and keep
//! the most recent `frames` of them. When the session's circuit
//! breaker trips, a frame misses its deadline, or the pool quarantines
//! an array during the frame, the ring is dumped to disk — like an
//! aircraft flight recorder, the file holds the *lead-up* to the
//! incident, not just the incident itself.
//!
//! Dumps use the same self-validating container idiom as the fleet
//! manifest ([`crate::FleetCheckpointStore`]): written to a temp file
//! and renamed into place, CRC-checked on load, decoded with typed
//! [`StoreError`]s:
//!
//! ```text
//! magic "PIMVOFDR" | version u16 | session u32 | reason u8
//!   | nframes u64 | (frame u64, wall_delta u64, len u64, OpTrace)* | crc32
//! ```
//!
//! Each embedded [`OpTrace`] is itself a CRC'd container, so a dump
//! replays through the ordinary trace tooling: the critical path of a
//! frame's trace equals that frame's recorded `wall_delta` (asserted
//! by the chaos harness in `pimvo-bench`).

use crate::store::StoreError;
use pimvo_core::checkpoint::crc32;
use pimvo_telemetry::optrace::OpTrace;
use std::collections::VecDeque;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Container magic: "PIMVOFDR" (flight data recorder), distinct from
/// the fleet manifest magic "PIMVOFLT" and the raw trace "PIMVOTRC".
pub const FLIGHT_MAGIC: &[u8; 8] = b"PIMVOFDR";
/// Dump container version; bumped on layout changes.
pub const FLIGHT_VERSION: u16 = 1;
/// Bytes before the frame list: magic + version + session + reason +
/// frame count.
const HEADER_LEN: usize = 8 + 2 + 4 + 1 + 8;

/// Why a flight dump was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DumpReason {
    /// The session's circuit breaker tripped open on this frame.
    BreakerTrip,
    /// The frame completed past the session's deadline.
    DeadlineMiss,
    /// The shared pool quarantined at least one array during the frame.
    Quarantine,
    /// An operator or tool requested the dump (no incident).
    Manual,
    /// A host↔array DMA channel quarantined during the frame (the
    /// transfer retry ladder exhausted; traffic degraded to the
    /// synchronous port).
    DmaQuarantine,
}

impl DumpReason {
    /// Stable wire tag.
    fn as_u8(self) -> u8 {
        match self {
            DumpReason::BreakerTrip => 0,
            DumpReason::DeadlineMiss => 1,
            DumpReason::Quarantine => 2,
            DumpReason::Manual => 3,
            DumpReason::DmaQuarantine => 4,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(DumpReason::BreakerTrip),
            1 => Some(DumpReason::DeadlineMiss),
            2 => Some(DumpReason::Quarantine),
            3 => Some(DumpReason::Manual),
            4 => Some(DumpReason::DmaQuarantine),
            _ => None,
        }
    }

    /// Human-readable reason, used in dump file names.
    pub fn as_str(self) -> &'static str {
        match self {
            DumpReason::BreakerTrip => "breaker",
            DumpReason::DeadlineMiss => "deadline",
            DumpReason::Quarantine => "quarantine",
            DumpReason::Manual => "manual",
            DumpReason::DmaQuarantine => "dma",
        }
    }
}

/// One frame's worth of flight data: which completed frame it was (the
/// session's 1-based completion count), how long it ran on the shared
/// pool, and the full op trace of that execution window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightFrame {
    /// The session's completed-frame count when this frame finished.
    pub frame: u64,
    /// Pool wall-cycles the frame consumed (execution, not queue wait).
    pub wall_delta: u64,
    /// Dependency-tracked op trace of the execution window.
    pub trace: OpTrace,
}

/// The in-memory ring holding a session's last N [`FlightFrame`]s.
#[derive(Debug)]
pub(crate) struct FlightRecorder {
    frames: VecDeque<FlightFrame>,
    capacity: usize,
}

impl FlightRecorder {
    pub(crate) fn new(capacity: usize) -> Self {
        FlightRecorder {
            frames: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    pub(crate) fn push(&mut self, frame: FlightFrame) {
        if self.frames.len() >= self.capacity {
            self.frames.pop_front();
        }
        self.frames.push_back(frame);
    }

    pub(crate) fn snapshot(&self) -> Vec<FlightFrame> {
        self.frames.iter().cloned().collect()
    }
}

/// A decoded (or to-be-written) flight-recorder dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Session the dump belongs to.
    pub session: u32,
    /// What triggered it.
    pub reason: DumpReason,
    /// The ring contents at the incident, oldest first; the last entry
    /// is the frame that triggered the dump.
    pub frames: Vec<FlightFrame>,
}

impl FlightDump {
    /// Serializes the dump into its container bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(FLIGHT_MAGIC);
        payload.extend_from_slice(&FLIGHT_VERSION.to_le_bytes());
        payload.extend_from_slice(&self.session.to_le_bytes());
        payload.push(self.reason.as_u8());
        payload.extend_from_slice(&(self.frames.len() as u64).to_le_bytes());
        for f in &self.frames {
            payload.extend_from_slice(&f.frame.to_le_bytes());
            payload.extend_from_slice(&f.wall_delta.to_le_bytes());
            let trace = f.trace.encode();
            payload.extend_from_slice(&(trace.len() as u64).to_le_bytes());
            payload.extend_from_slice(&trace);
        }
        let crc = crc32(&payload[8..]);
        payload.extend_from_slice(&crc.to_le_bytes());
        payload
    }

    /// Decodes a dump, validating length, magic, CRC, version and
    /// structure — in that order, with typed errors and no panics.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < HEADER_LEN + 4 {
            return Err(StoreError::Malformed("file shorter than header"));
        }
        if &bytes[..8] != FLIGHT_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let body = &bytes[8..bytes.len() - 4];
        let expected = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
        let got = crc32(body);
        if expected != got {
            return Err(StoreError::Crc { expected, got });
        }
        let version = u16::from_le_bytes(bytes[8..10].try_into().expect("2 bytes"));
        if version != FLIGHT_VERSION {
            return Err(StoreError::Version(version));
        }
        let session = u32::from_le_bytes(bytes[10..14].try_into().expect("4 bytes"));
        let reason =
            DumpReason::from_u8(bytes[14]).ok_or(StoreError::Malformed("unknown dump reason"))?;
        let nframes = u64::from_le_bytes(bytes[15..23].try_into().expect("8 bytes"));
        let mut cursor = HEADER_LEN;
        let end = bytes.len() - 4;
        let mut frames = Vec::new();
        for _ in 0..nframes {
            if cursor + 24 > end {
                return Err(StoreError::Malformed("truncated frame header"));
            }
            let frame = u64::from_le_bytes(bytes[cursor..cursor + 8].try_into().expect("8 bytes"));
            let wall_delta =
                u64::from_le_bytes(bytes[cursor + 8..cursor + 16].try_into().expect("8 bytes"));
            let len =
                u64::from_le_bytes(bytes[cursor + 16..cursor + 24].try_into().expect("8 bytes"))
                    as usize;
            cursor += 24;
            if len > end - cursor {
                return Err(StoreError::Malformed("frame trace overruns dump"));
            }
            let trace = OpTrace::decode(&bytes[cursor..cursor + len])
                .map_err(|_| StoreError::Malformed("embedded op trace rejected"))?;
            cursor += len;
            frames.push(FlightFrame {
                frame,
                wall_delta,
                trace,
            });
        }
        if cursor != end {
            return Err(StoreError::Malformed("trailing bytes in dump"));
        }
        Ok(FlightDump {
            session,
            reason,
            frames,
        })
    }

    /// Writes the dump atomically: temp file + fsync + rename, the same
    /// crash-safety contract as the fleet manifest store.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        let bytes = self.encode();
        let tmp = path.with_extension("flight.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and decodes a dump file.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`]: I/O, corruption, or structural rejection.
    pub fn load(path: &Path) -> Result<Self, StoreError> {
        Self::decode(&fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimvo_telemetry::optrace::{OpKind, OpRecord, NO_LABEL, NO_ROW, NO_SESSION};

    fn tiny_trace(cycles: u64) -> OpTrace {
        let mut t = OpTrace::new();
        t.records.push(OpRecord {
            id: 1,
            deps: [0, 0, 0],
            start: 0,
            cycles,
            sram: 2,
            size: 40,
            rows: [0, NO_ROW],
            dst: NO_ROW,
            session: NO_SESSION,
            label: NO_LABEL,
            kind: OpKind::AddSub,
            array: 0,
        });
        t
    }

    fn dump() -> FlightDump {
        FlightDump {
            session: 7,
            reason: DumpReason::DeadlineMiss,
            frames: vec![
                FlightFrame {
                    frame: 1,
                    wall_delta: 10,
                    trace: tiny_trace(10),
                },
                FlightFrame {
                    frame: 2,
                    wall_delta: 12,
                    trace: tiny_trace(12),
                },
            ],
        }
    }

    #[test]
    fn dump_roundtrips_byte_identically() {
        let d = dump();
        let bytes = d.encode();
        let back = FlightDump::decode(&bytes).expect("valid dump decodes");
        assert_eq!(back, d);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn corruption_yields_typed_errors() {
        let bytes = dump().encode();
        assert!(matches!(
            FlightDump::decode(&bytes[..10]),
            Err(StoreError::Malformed(_))
        ));
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            FlightDump::decode(&bad),
            Err(StoreError::BadMagic)
        ));
        let mut flipped = bytes.clone();
        let mid = bytes.len() / 2;
        flipped[mid] ^= 0x08;
        assert!(matches!(
            FlightDump::decode(&flipped),
            Err(StoreError::Crc { .. })
        ));
    }

    #[test]
    fn ring_keeps_the_last_n_frames() {
        let mut r = FlightRecorder::new(2);
        for i in 1..=5u64 {
            r.push(FlightFrame {
                frame: i,
                wall_delta: i,
                trace: tiny_trace(i),
            });
        }
        let frames = r.snapshot();
        assert_eq!(frames.len(), 2);
        assert_eq!((frames[0].frame, frames[1].frame), (4, 5));
    }

    #[test]
    fn save_and_load_through_disk() {
        let dir = std::env::temp_dir().join(format!("pimvo_flight_unit_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s7.flight");
        let d = dump();
        d.save(&path).unwrap();
        assert_eq!(FlightDump::load(&path).unwrap(), d);
        std::fs::remove_dir_all(&dir).ok();
    }
}
