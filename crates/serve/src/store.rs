//! Crash-consistent fleet checkpointing: [`FleetCheckpointStore`].
//!
//! The store wraps the fleet's manifest payload (see
//! [`FleetScheduler::recover`]) in a small self-validating container
//! and writes it atomically — temp file + rename — so a hard kill at
//! any instant leaves either the previous manifest or the new one,
//! never a torn file:
//!
//! ```text
//! magic "PIMVOFLT" | version u16 | payload_len u64 | payload | crc32
//! ```
//!
//! The CRC (the same CRC-32 the per-session tracker checkpoints use,
//! [`pimvo_core::checkpoint::crc32`]) covers the payload; magic and
//! version catch foreign or stale files before the payload is parsed.

use crate::fleet::MANIFEST_PAYLOAD_VERSION;
use crate::FleetScheduler;
use pimvo_core::checkpoint::crc32;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Container magic: "PIMVOFLT" (fleet), distinct from the per-session
/// tracker checkpoint magic "PIMVOCKP".
const MAGIC: &[u8; 8] = b"PIMVOFLT";
/// Bytes before the payload: magic + version + payload length.
const HEADER_LEN: usize = 8 + 2 + 8;

/// Typed fleet-store errors.
#[derive(Debug)]
pub enum StoreError {
    /// Reading or writing the manifest file failed.
    Io(std::io::Error),
    /// The file does not start with the fleet-manifest magic.
    BadMagic,
    /// The manifest was written by an incompatible version.
    Version(u16),
    /// The payload CRC does not match: torn or corrupted file.
    Crc {
        /// CRC recorded in the file.
        expected: u32,
        /// CRC of the payload actually read.
        got: u32,
    },
    /// The payload failed structural validation.
    Malformed(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "fleet manifest I/O failed: {e}"),
            StoreError::BadMagic => write!(f, "not a fleet manifest (bad magic)"),
            StoreError::Version(v) => write!(f, "unsupported fleet manifest version {v}"),
            StoreError::Crc { expected, got } => write!(
                f,
                "fleet manifest CRC mismatch (expected {expected:#010x}, got {got:#010x})"
            ),
            StoreError::Malformed(what) => write!(f, "malformed fleet manifest: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Atomic, CRC-checked storage for one fleet manifest file.
#[derive(Debug, Clone)]
pub struct FleetCheckpointStore {
    path: PathBuf,
}

impl FleetCheckpointStore {
    /// A store over `path`. Nothing is touched until the first
    /// [`FleetCheckpointStore::save`].
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FleetCheckpointStore { path: path.into() }
    }

    /// The manifest path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether a manifest file exists (it may still fail validation).
    pub fn exists(&self) -> bool {
        self.path.exists()
    }

    /// Saves the fleet's manifest atomically: the container is written
    /// to a sibling temp file, flushed, and renamed over the target, so
    /// a kill mid-save can never leave a torn manifest behind.
    ///
    /// The manifest covers the virtual clock, pool health/probation,
    /// scheduler counters and per-session checkpoint blobs. In-flight
    /// queued frames are not saved — a crash loses uncommitted frames
    /// and the submitter replays them (at-least-once semantics).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure.
    pub fn save(&self, fleet: &FleetScheduler) -> Result<(), StoreError> {
        let payload = fleet.manifest_payload();
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&MANIFEST_PAYLOAD_VERSION.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(&payload);
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());

        let tmp = self.path.with_extension("fleet.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        Ok(())
    }

    /// Reads and validates the container, returning the raw manifest
    /// payload for [`FleetScheduler::recover`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be read, and
    /// [`StoreError::BadMagic`] / [`StoreError::Version`] /
    /// [`StoreError::Malformed`] / [`StoreError::Crc`] when it fails
    /// validation.
    pub fn load_payload(&self) -> Result<Vec<u8>, StoreError> {
        let bytes = fs::read(&self.path)?;
        if bytes.len() < HEADER_LEN + 4 {
            return Err(StoreError::Malformed("file shorter than header"));
        }
        if &bytes[..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u16::from_le_bytes(bytes[8..10].try_into().expect("2 bytes"));
        if version != MANIFEST_PAYLOAD_VERSION {
            return Err(StoreError::Version(version));
        }
        let len = u64::from_le_bytes(bytes[10..18].try_into().expect("8 bytes")) as usize;
        if bytes.len() != HEADER_LEN + len + 4 {
            return Err(StoreError::Malformed("payload length mismatch"));
        }
        let payload = &bytes[HEADER_LEN..HEADER_LEN + len];
        let expected = u32::from_le_bytes(bytes[HEADER_LEN + len..].try_into().expect("4 bytes"));
        let got = crc32(payload);
        if expected != got {
            return Err(StoreError::Crc { expected, got });
        }
        Ok(payload.to_vec())
    }
}
