#![warn(missing_docs)]

//! `pimvo-serve` — the multi-tenant serving layer: many independent
//! tracker sessions time-sharing **one** [`pimvo_pim::PimArrayPool`].
//!
//! The paper's PIM-SRAM tracker is a single-session device. This crate
//! is the "millions of users" step of the roadmap: a deterministic
//! fleet scheduler that multiplexes N [`pimvo_core::Tracker`] sessions
//! over a shared array pool, built on the job-queue submission API of
//! [`pimvo_pim::PoolExecutor`].
//!
//! # Model
//!
//! * **Sessions** are registered with a [`SessionSpec`] (estimator
//!   configuration, optional frame deadline in pool cycles, bounded
//!   admission queue, priority). Trackers are constructed through
//!   [`pimvo_core::TrackerBuilder`] on first demand — a session that
//!   has never run holds no resident state at all.
//! * **Frames** are submitted to a session's bounded queue
//!   ([`FleetScheduler::submit_frame`]); a full queue *sheds* the frame
//!   (admission control) and returns [`ServeError::QueueFull`].
//! * **Scheduling** is earliest-deadline-first over the head frame of
//!   every backlogged session, with least-served fair-share and then
//!   priority as tie-breaks. One [`FleetScheduler::step`] runs exactly
//!   one frame to completion on the shared pool; the pool's
//!   `wall_cycles` ledger is the fleet's virtual clock, so queue wait
//!   and frame latency are measured in cycles and are **deterministic**
//!   — independent of host thread timing.
//! * **Load shedding** reuses the [`pimvo_core::DegradeRung`] ladder:
//!   a session that misses its deadline is escalated one rung (its next
//!   frame runs cheaper — capped LM iterations, reduced features,
//!   skipped NMS refinement, coast), and relaxed again once latency
//!   falls below the configured fraction of the deadline.
//! * **Eviction** serializes a cold session to its checkpoint bytes
//!   ([`FleetScheduler::evict`]) and drops the tracker, so the session
//!   holds zero resident arrays; the next submitted frame transparently
//!   restores it, replaying bit-exactly.
//! * **Fault containment** is per session: arming a [`BreakerConfig`]
//!   on the spec gives the session a circuit breaker — a session whose
//!   frames keep failing (tracking `Lost`, missed deadlines) trips
//!   open, is evicted through the checkpoint path, and sits out an
//!   exponentially growing backoff in the virtual-cycle domain before
//!   a half-open single-frame probe lets it earn its slot back
//!   ([`BreakerState`]). One poisoned session cannot monopolize the
//!   shared pool. [`SessionStats`] carries the fault/quarantine
//!   telemetry (lost frames, failures, trips, probes, pool fault
//!   events attributed per session).
//! * **Crash recovery** is fleet-wide: [`FleetCheckpointStore`] writes
//!   an atomic, CRC-checked manifest of every session's checkpoint
//!   blob plus the pool health and scheduler counters;
//!   [`FleetScheduler::recover`] rebuilds the fleet from it and
//!   replays the remaining frames bit-identically after a hard kill.
//!
//! Determinism is load-bearing: every kernel and LM batch host-writes
//! the rows it reads, so interleaving sessions on a shared pool cannot
//! perturb any session's poses — the interleaved-vs-solo property test
//! in `tests/interleave_proptests.rs` enforces bit-identity.
//!
//! ```
//! use pimvo_core::TrackerConfig;
//! use pimvo_serve::{FleetScheduler, SessionSpec};
//! use pimvo_kernels::{DepthImage, GrayImage};
//! use pimvo_pim::SessionId;
//!
//! let mut fleet = FleetScheduler::new(2);
//! fleet.add_session(SessionId(1), SessionSpec::new(TrackerConfig::default()));
//! let gray = GrayImage::from_fn(320, 240, |x, y| ((x ^ y) & 0xFF) as u8);
//! let depth = DepthImage::from_fn(320, 240, |_, _| 2.0);
//! fleet.submit_frame(SessionId(1), gray, depth).unwrap();
//! let outcome = fleet.step().unwrap().expect("one frame queued");
//! assert!(outcome.result.is_keyframe); // first frame bootstraps
//! ```

mod fleet;
mod flight;
mod session;
mod store;

pub use fleet::{BreakerState, FleetScheduler};
pub use flight::{DumpReason, FlightDump, FlightFrame, FLIGHT_MAGIC, FLIGHT_VERSION};
pub use session::{BreakerConfig, ServeError, SessionSpec, SessionStats, StepOutcome};
pub use store::{FleetCheckpointStore, StoreError};
