//! The fleet scheduler: N tracker sessions time-sharing one shared
//! [`PimArrayPool`], with admission control, EDF + fair-share
//! scheduling, degrade-ladder load shedding and checkpoint eviction.

use crate::session::{ServeError, SessionSpec, SessionStats, StepOutcome};
use pimvo_core::{BackendKind, Checkpoint, DegradeRung, Tracker, TrackerBuilder};
use pimvo_kernels::{DepthImage, GrayImage};
use pimvo_pim::{ArrayConfig, PimArrayPool, PimMachine, PimMachineBuilder, SessionId};
use pimvo_telemetry::Telemetry;
use std::collections::{BTreeMap, VecDeque};

/// Residency of a session's tracker state.
enum Residency {
    /// Never ran — no state beyond the spec.
    Cold,
    /// Tracker in memory (holds a one-array staging pool while not
    /// running; the shared fleet pool is swapped in per frame).
    Resident(Box<Tracker>),
    /// Serialized checkpoint — zero resident arrays.
    Evicted(Vec<u8>),
}

/// One frame waiting in a session's admission queue.
struct QueuedFrame {
    gray: GrayImage,
    depth: DepthImage,
    /// Fleet virtual time (shared-pool `wall_cycles`) at submission.
    submitted_at: u64,
    /// `submitted_at + deadline_cycles`, for deadline sessions.
    deadline_at: Option<u64>,
}

struct Session {
    spec: SessionSpec,
    residency: Residency,
    queue: VecDeque<QueuedFrame>,
    stats: SessionStats,
    /// Ladder rung the fleet pins the session to (load shedding).
    shed_rung: DegradeRung,
}

/// Deterministic multi-tenant scheduler over one shared array pool.
///
/// See the crate docs for the serving model. All timing is *virtual*:
/// the shared pool's [`PimArrayPool::wall_cycles`] ledger is the fleet
/// clock, so latencies, deadlines and scheduling order are
/// reproducible bit-for-bit across runs and host machines.
pub struct FleetScheduler {
    /// The shared fleet pool. Swapped into the running session's
    /// backend for the duration of exactly one frame.
    shared: PimArrayPool,
    sessions: BTreeMap<SessionId, Session>,
    telemetry: Telemetry,
}

impl FleetScheduler {
    /// Creates a fleet over `arrays` six-bank QVGA arrays.
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is zero.
    pub fn new(arrays: usize) -> Self {
        Self::from_builder(&PimMachine::builder(ArrayConfig::qvga_banks(6)), arrays)
    }

    /// Creates a fleet whose shared arrays are stamped from an explicit
    /// machine builder (fault models, custom cost tables).
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is zero.
    pub fn from_builder(builder: &PimMachineBuilder, arrays: usize) -> Self {
        FleetScheduler {
            shared: builder.build_pool(arrays),
            sessions: BTreeMap::new(),
            telemetry: Telemetry::off(),
        }
    }

    /// Attaches a telemetry handle: pool phases on the shared pool,
    /// per-frame tracker spans and the `pimvo_serve_*` fleet counters.
    /// Attach before registering sessions — already-resident trackers
    /// keep the handle they were built with.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.shared.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Registers a session. Cold until its first frame runs: no
    /// tracker, no arrays, no checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already registered.
    pub fn add_session(&mut self, id: SessionId, spec: SessionSpec) {
        let prev = self.sessions.insert(
            id,
            Session {
                spec,
                residency: Residency::Cold,
                queue: VecDeque::new(),
                stats: SessionStats::default(),
                shed_rung: DegradeRung::Full,
            },
        );
        assert!(prev.is_none(), "session {} already registered", id.0);
    }

    /// The fleet's virtual clock: the shared pool's wall-cycle ledger.
    pub fn now_cycles(&self) -> u64 {
        self.shared.wall_cycles()
    }

    /// Shared view of the fleet pool.
    pub fn pool(&self) -> &PimArrayPool {
        &self.shared
    }

    /// Registered session ids, in order.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.sessions.keys().copied().collect()
    }

    /// Serving statistics of a session.
    pub fn stats(&self, id: SessionId) -> Option<&SessionStats> {
        self.sessions.get(&id).map(|s| &s.stats)
    }

    /// Whether the session currently holds a resident tracker.
    pub fn is_resident(&self, id: SessionId) -> bool {
        matches!(
            self.sessions.get(&id).map(|s| &s.residency),
            Some(Residency::Resident(_))
        )
    }

    /// Frames waiting in the session's admission queue.
    pub fn queue_len(&self, id: SessionId) -> usize {
        self.sessions.get(&id).map_or(0, |s| s.queue.len())
    }

    /// Total backlogged frames across every session.
    pub fn backlog(&self) -> usize {
        self.sessions.values().map(|s| s.queue.len()).sum()
    }

    /// Offers a frame to the session's admission queue.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for an unregistered id;
    /// [`ServeError::QueueFull`] when admission control sheds the
    /// frame (the shed is counted in the session's stats).
    pub fn submit_frame(
        &mut self,
        id: SessionId,
        gray: GrayImage,
        depth: DepthImage,
    ) -> Result<(), ServeError> {
        let now = self.shared.wall_cycles();
        let sess = self
            .sessions
            .get_mut(&id)
            .ok_or(ServeError::UnknownSession(id))?;
        sess.stats.submitted += 1;
        if sess.queue.len() >= sess.spec.max_queue {
            sess.stats.shed += 1;
            if self.telemetry.is_enabled() {
                self.telemetry.counter_add("pimvo_serve_shed_total", 1.0);
            }
            return Err(ServeError::QueueFull {
                session: id,
                capacity: sess.spec.max_queue,
            });
        }
        let deadline_at = sess.spec.deadline_cycles.map(|d| now + d);
        sess.queue.push_back(QueuedFrame {
            gray,
            depth,
            submitted_at: now,
            deadline_at,
        });
        Ok(())
    }

    /// Runs the next frame (earliest deadline first; least-served, then
    /// highest priority, then lowest session id on ties) to completion
    /// on the shared pool. Returns `Ok(None)` when every queue is
    /// empty.
    ///
    /// # Errors
    ///
    /// [`ServeError::Restore`] if the chosen session was evicted and
    /// its checkpoint fails to restore (the frame stays queued).
    pub fn step(&mut self) -> Result<Option<StepOutcome>, ServeError> {
        let Some(id) = self.pick_next() else {
            return Ok(None);
        };
        self.ensure_resident(id)?;

        let start = self.shared.wall_cycles();
        let sess = self.sessions.get_mut(&id).expect("picked session exists");
        let frame = sess.queue.pop_front().expect("picked session has work");
        let Residency::Resident(tracker) = &mut sess.residency else {
            unreachable!("ensure_resident loaded the tracker");
        };

        // Pin the fleet's shed rung, then run the frame on the shared
        // pool: the tracker's one-array staging pool is parked in
        // `self.shared` for the duration.
        if sess.spec.deadline_cycles.is_some() {
            tracker.set_shed_rung(sess.shed_rung);
        }
        let pool = tracker
            .pool_mut()
            .expect("serve sessions run the PIM backend");
        std::mem::swap(pool, &mut self.shared);
        let result = tracker.process_frame(&frame.gray, &frame.depth);
        let pool = tracker
            .pool_mut()
            .expect("serve sessions run the PIM backend");
        std::mem::swap(pool, &mut self.shared);
        let end = self.shared.wall_cycles();

        let latency = end - frame.submitted_at;
        let missed = frame.deadline_at.is_some_and(|d| end > d);
        sess.stats.completed += 1;
        sess.stats.latencies_cycles.push(latency);
        if missed {
            sess.stats.deadline_misses += 1;
            sess.shed_rung = sess.shed_rung.escalate();
        } else if let Some(d) = sess.spec.deadline_cycles {
            let relax = sess.spec.config.budget.relax_fraction;
            if (latency as f64) < relax * d as f64 {
                sess.shed_rung = sess.shed_rung.relax();
            }
        }
        let outcome = StepOutcome {
            session: id,
            result,
            latency_cycles: latency,
            queue_cycles: start - frame.submitted_at,
            missed_deadline: missed,
            shed_rung: sess.shed_rung,
        };
        if self.telemetry.is_enabled() {
            self.telemetry.counter_add("pimvo_serve_frames_total", 1.0);
            if missed {
                self.telemetry
                    .counter_add("pimvo_serve_deadline_miss_total", 1.0);
            }
        }
        Ok(Some(outcome))
    }

    /// Drains every queue, one frame at a time, in scheduling order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ServeError::Restore`] (frames already
    /// completed are returned by value inside the error-free case
    /// only; the scheduler state itself stays consistent).
    pub fn run_until_idle(&mut self) -> Result<Vec<StepOutcome>, ServeError> {
        let mut out = Vec::new();
        while let Some(o) = self.step()? {
            out.push(o);
        }
        Ok(out)
    }

    /// Evicts a resident session to checkpoint bytes: the tracker (and
    /// its staging array) is dropped, leaving zero resident arrays.
    /// Returns `false` if the session was already cold or evicted.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for an unregistered id.
    pub fn evict(&mut self, id: SessionId) -> Result<bool, ServeError> {
        let sess = self
            .sessions
            .get_mut(&id)
            .ok_or(ServeError::UnknownSession(id))?;
        let Residency::Resident(tracker) = &sess.residency else {
            return Ok(false);
        };
        let bytes = tracker.checkpoint().to_bytes();
        sess.residency = Residency::Evicted(bytes);
        sess.stats.evictions += 1;
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter_add("pimvo_serve_evictions_total", 1.0);
        }
        Ok(true)
    }

    /// Evicts every resident session whose queue is empty (the cold
    /// set). Returns how many were evicted.
    pub fn evict_idle(&mut self) -> usize {
        let idle: Vec<SessionId> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.queue.is_empty() && matches!(s.residency, Residency::Resident(_)))
            .map(|(id, _)| *id)
            .collect();
        for id in &idle {
            let _ = self.evict(*id);
        }
        idle.len()
    }

    /// EDF with least-served fair-share: the backlogged session with
    /// the earliest head-frame deadline wins; `None` deadlines sort
    /// last (background). Ties: fewest completed frames, then highest
    /// priority, then lowest session id — a total, deterministic order.
    fn pick_next(&self) -> Option<SessionId> {
        self.sessions
            .iter()
            .filter(|(_, s)| !s.queue.is_empty())
            .min_by_key(|(id, s)| {
                let deadline = s
                    .queue
                    .front()
                    .and_then(|f| f.deadline_at)
                    .unwrap_or(u64::MAX);
                (
                    deadline,
                    s.stats.completed,
                    std::cmp::Reverse(s.spec.priority),
                    **id,
                )
            })
            .map(|(id, _)| *id)
    }

    /// Loads the session's tracker: builds it cold, or restores it
    /// from its eviction checkpoint.
    fn ensure_resident(&mut self, id: SessionId) -> Result<(), ServeError> {
        let telemetry = self.telemetry.clone();
        let sess = self.sessions.get_mut(&id).expect("caller checked id");
        match &sess.residency {
            Residency::Resident(_) => Ok(()),
            Residency::Cold => {
                sess.residency =
                    Residency::Resident(Box::new(build_tracker(&sess.spec, &telemetry)));
                Ok(())
            }
            Residency::Evicted(bytes) => {
                let ckpt = Checkpoint::from_bytes(bytes)?;
                let mut tracker = build_tracker(&sess.spec, &telemetry);
                tracker.restore(&ckpt)?;
                sess.residency = Residency::Resident(Box::new(tracker));
                sess.stats.restores += 1;
                if telemetry.is_enabled() {
                    telemetry.counter_add("pimvo_serve_restores_total", 1.0);
                }
                Ok(())
            }
        }
    }
}

impl std::fmt::Debug for FleetScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetScheduler")
            .field("arrays", &self.shared.len())
            .field("sessions", &self.sessions.len())
            .field("backlog", &self.backlog())
            .field("now_cycles", &self.shared.wall_cycles())
            .finish()
    }
}

/// Builds a session tracker through [`TrackerBuilder`]: PIM backend on
/// a one-array staging pool, with the session deadline armed as the
/// tracker's own per-frame cycle budget so the shed ladder has
/// in-frame enforcement.
fn build_tracker(spec: &SessionSpec, telemetry: &Telemetry) -> Tracker {
    let mut config = spec.config.clone();
    if let Some(d) = spec.deadline_cycles {
        config.budget.cycles_per_frame = Some(d);
    }
    TrackerBuilder::new(config)
        .backend(BackendKind::Pim)
        .telemetry(telemetry.clone())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimvo_core::TrackerConfig;

    fn textured_frame(shift: f64) -> (GrayImage, DepthImage) {
        let gray = GrayImage::from_fn(320, 240, |x, y| {
            let xs = x as f64 + shift;
            let y = y as f64;
            (((xs * 0.55).sin() + (y * 0.41).sin() + (xs * 0.13).sin() * (y * 0.09).cos()) * 50.0
                + 120.0) as u8
        });
        let depth = DepthImage::from_fn(320, 240, |_, _| 2.0);
        (gray, depth)
    }

    #[test]
    fn cold_sessions_hold_no_tracker_until_first_step() {
        let mut fleet = FleetScheduler::new(2);
        fleet.add_session(SessionId(1), SessionSpec::new(TrackerConfig::default()));
        assert!(!fleet.is_resident(SessionId(1)));
        let (g, d) = textured_frame(0.0);
        fleet.submit_frame(SessionId(1), g, d).unwrap();
        assert!(
            !fleet.is_resident(SessionId(1)),
            "submission must not build"
        );
        let out = fleet.step().unwrap().expect("one frame queued");
        assert_eq!(out.session, SessionId(1));
        assert!(fleet.is_resident(SessionId(1)));
    }

    #[test]
    fn admission_control_sheds_past_queue_capacity() {
        let mut fleet = FleetScheduler::new(1);
        fleet.add_session(
            SessionId(1),
            SessionSpec::new(TrackerConfig::default()).max_queue(2),
        );
        let (g, d) = textured_frame(0.0);
        fleet
            .submit_frame(SessionId(1), g.clone(), d.clone())
            .unwrap();
        fleet
            .submit_frame(SessionId(1), g.clone(), d.clone())
            .unwrap();
        let err = fleet.submit_frame(SessionId(1), g, d).unwrap_err();
        assert!(matches!(err, ServeError::QueueFull { capacity: 2, .. }));
        let st = fleet.stats(SessionId(1)).unwrap();
        assert_eq!((st.submitted, st.shed), (3, 1));
        assert!((st.shed_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn edf_runs_deadline_sessions_before_background() {
        let mut fleet = FleetScheduler::new(1);
        fleet.add_session(SessionId(1), SessionSpec::new(TrackerConfig::default()));
        fleet.add_session(
            SessionId(2),
            SessionSpec::new(TrackerConfig::default()).deadline_cycles(u64::MAX / 2),
        );
        let (g, d) = textured_frame(0.0);
        fleet
            .submit_frame(SessionId(1), g.clone(), d.clone())
            .unwrap();
        fleet.submit_frame(SessionId(2), g, d).unwrap();
        let first = fleet.step().unwrap().unwrap();
        assert_eq!(first.session, SessionId(2), "deadline session runs first");
        let second = fleet.step().unwrap().unwrap();
        assert_eq!(second.session, SessionId(1));
        assert!(fleet.step().unwrap().is_none());
    }

    #[test]
    fn fair_share_alternates_equal_background_sessions() {
        let mut fleet = FleetScheduler::new(1);
        for id in [1, 2] {
            fleet.add_session(SessionId(id), SessionSpec::new(TrackerConfig::default()));
        }
        let (g, d) = textured_frame(0.0);
        for _ in 0..2 {
            fleet
                .submit_frame(SessionId(1), g.clone(), d.clone())
                .unwrap();
            fleet
                .submit_frame(SessionId(2), g.clone(), d.clone())
                .unwrap();
        }
        let order: Vec<u32> = fleet
            .run_until_idle()
            .unwrap()
            .iter()
            .map(|o| o.session.0)
            .collect();
        assert_eq!(order, vec![1, 2, 1, 2], "least-served alternation");
    }

    #[test]
    fn missed_deadline_escalates_the_shed_ladder() {
        let mut fleet = FleetScheduler::new(1);
        // 1-cycle deadline: every frame misses
        fleet.add_session(
            SessionId(1),
            SessionSpec::new(TrackerConfig::default()).deadline_cycles(1),
        );
        let (g, d) = textured_frame(0.0);
        fleet
            .submit_frame(SessionId(1), g.clone(), d.clone())
            .unwrap();
        let o1 = fleet.step().unwrap().unwrap();
        assert!(o1.missed_deadline);
        assert_eq!(o1.shed_rung, DegradeRung::CapLmIterations);
        fleet.submit_frame(SessionId(1), g, d).unwrap();
        let o2 = fleet.step().unwrap().unwrap();
        assert_eq!(o2.shed_rung, DegradeRung::ReduceFeatures);
        assert!((fleet.stats(SessionId(1)).unwrap().miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn generous_deadline_relaxes_the_ladder_again() {
        let mut fleet = FleetScheduler::new(1);
        fleet.add_session(
            SessionId(1),
            SessionSpec::new(TrackerConfig::default()).deadline_cycles(1),
        );
        let (g, d) = textured_frame(0.0);
        fleet
            .submit_frame(SessionId(1), g.clone(), d.clone())
            .unwrap();
        let _ = fleet.step().unwrap().unwrap(); // escalate once
                                                // widen the deadline: next frame lands well under relax_fraction
        fleet
            .sessions
            .get_mut(&SessionId(1))
            .unwrap()
            .spec
            .deadline_cycles = Some(u64::MAX / 2);
        fleet.submit_frame(SessionId(1), g, d).unwrap();
        let o = fleet.step().unwrap().unwrap();
        assert!(!o.missed_deadline);
        assert_eq!(o.shed_rung, DegradeRung::Full, "ladder relaxed back");
    }

    #[test]
    fn evict_idle_drops_resident_trackers() {
        let mut fleet = FleetScheduler::new(1);
        fleet.add_session(SessionId(1), SessionSpec::new(TrackerConfig::default()));
        let (g, d) = textured_frame(0.0);
        fleet.submit_frame(SessionId(1), g, d).unwrap();
        let _ = fleet.step().unwrap().unwrap();
        assert!(fleet.is_resident(SessionId(1)));
        assert_eq!(fleet.evict_idle(), 1);
        assert!(!fleet.is_resident(SessionId(1)));
        assert_eq!(fleet.stats(SessionId(1)).unwrap().evictions, 1);
        // evicting again is a no-op
        assert!(!fleet.evict(SessionId(1)).unwrap());
    }

    #[test]
    fn unknown_session_is_a_typed_error() {
        let mut fleet = FleetScheduler::new(1);
        let (g, d) = textured_frame(0.0);
        let err = fleet.submit_frame(SessionId(9), g, d).unwrap_err();
        assert!(matches!(err, ServeError::UnknownSession(SessionId(9))));
        assert!(matches!(
            fleet.evict(SessionId(9)),
            Err(ServeError::UnknownSession(_))
        ));
    }

    #[test]
    fn latency_accounting_is_virtual_and_monotonic() {
        let mut fleet = FleetScheduler::new(2);
        fleet.add_session(SessionId(1), SessionSpec::new(TrackerConfig::default()));
        let (g, d) = textured_frame(0.0);
        // two frames queued back to back: the second waits for the first
        fleet
            .submit_frame(SessionId(1), g.clone(), d.clone())
            .unwrap();
        fleet.submit_frame(SessionId(1), g, d).unwrap();
        let o1 = fleet.step().unwrap().unwrap();
        let o2 = fleet.step().unwrap().unwrap();
        assert_eq!(o1.queue_cycles, 0, "first frame starts immediately");
        assert!(o2.queue_cycles >= o1.latency_cycles - o1.queue_cycles);
        assert!(o2.latency_cycles > o1.latency_cycles);
        assert_eq!(fleet.now_cycles(), fleet.pool().wall_cycles());
        let p50 = fleet
            .stats(SessionId(1))
            .unwrap()
            .latency_percentile(50.0)
            .unwrap();
        assert!(p50 >= o1.latency_cycles.min(o2.latency_cycles));
    }
}
